//! Property-based tests for the cloud-execution simulator.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use qhw::client::{simulate_run, CheckpointStrategy, Environment, JobSpec};
use qhw::event::{EventQueue, SECOND};
use qhw::queue::WaitModel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events always pop in non-decreasing time order, with FIFO ties.
    #[test]
    fn event_queue_is_stably_ordered(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut prev_time = 0u64;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_time = None;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= prev_time);
            if last_time == Some(t) {
                // FIFO within a timestamp: indices ascend.
                prop_assert!(seen_at_time.last().copied().unwrap() < idx);
                seen_at_time.push(idx);
            } else {
                seen_at_time = vec![idx];
                last_time = Some(t);
            }
            prev_time = t;
        }
    }

    /// The run-outcome time accounting balances: the makespan covers queue
    /// time, persisted work, lost work, checkpoint and restore overheads
    /// (plus unattributed partial-step remainders, which are bounded by one
    /// step+write unit per interruption).
    #[test]
    fn outcome_accounting_balances(
        seed in any::<u64>(),
        total_steps in 1u64..200,
        mtbf_s in 5u64..500,
        interval in 1u64..20,
        wait_s in 0u64..60,
    ) {
        let spec = JobSpec {
            total_steps,
            step_cost: SECOND,
        };
        let env = Environment {
            queue: WaitModel::Constant { wait: wait_s * SECOND },
            mtbf: Some(mtbf_s * SECOND),
            session_ttl: None,
            device: None,
        };
        let strategy = CheckpointStrategy::periodic(interval, SECOND / 10, SECOND / 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let o = simulate_run(&spec, &strategy, &env, &mut rng);
        if o.aborted {
            return Ok(());
        }
        // Completed: persisted work equals the job exactly.
        prop_assert_eq!(o.useful_work, total_steps * SECOND);
        let attributed = o.queue_time
            + o.useful_work
            + o.lost_work
            + o.checkpoint_overhead
            + o.restore_overhead;
        prop_assert!(o.makespan >= attributed.saturating_sub(1));
        // Unattributed time (partial in-flight steps at interruptions) is
        // bounded by one step+write per interruption.
        let slack = o.interruptions * (SECOND + SECOND / 10);
        prop_assert!(
            o.makespan <= attributed + slack,
            "makespan {} attributed {} slack {}",
            o.makespan, attributed, slack
        );
        // Lost work is bounded by interruptions × interval.
        prop_assert!(o.lost_work <= o.interruptions * interval * SECOND);
        prop_assert!(o.efficiency() <= 1.0 + 1e-12);
    }

    /// With checkpointing and any failure rate, makespan never beats the
    /// ideal failure-free time.
    #[test]
    fn makespan_is_bounded_below_by_ideal(
        seed in any::<u64>(),
        total_steps in 1u64..100,
        mtbf_s in 10u64..1000,
    ) {
        let spec = JobSpec {
            total_steps,
            step_cost: SECOND,
        };
        let env = Environment {
            queue: WaitModel::Constant { wait: SECOND },
            mtbf: Some(mtbf_s * SECOND),
            session_ttl: None,
            device: None,
        };
        let strategy = CheckpointStrategy::periodic(5, 0, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let o = simulate_run(&spec, &strategy, &env, &mut rng);
        prop_assert!(o.aborted || o.makespan >= total_steps * SECOND + SECOND);
    }

    /// Queue waits sampled from the log-normal model are finite and
    /// positive.
    #[test]
    fn lognormal_waits_are_sane(seed in any::<u64>(), median in 1.0f64..10_000.0, sigma in 0.0f64..3.0) {
        let m = WaitModel::LogNormal { median_s: median, sigma };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let w = m.sample(&mut rng);
            prop_assert!(w >= 1);
            prop_assert!(w <= 30 * 24 * 3600 * 1_000_000);
        }
    }

    /// Identical seeds produce identical outcomes (full determinism).
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>()) {
        let spec = JobSpec {
            total_steps: 50,
            step_cost: SECOND,
        };
        let env = Environment {
            queue: WaitModel::LogNormal { median_s: 30.0, sigma: 1.0 },
            mtbf: Some(40 * SECOND),
            session_ttl: Some(120 * SECOND),
            device: None,
        };
        let strategy = CheckpointStrategy::periodic(7, SECOND / 4, SECOND);
        let a = simulate_run(&spec, &strategy, &env, &mut StdRng::seed_from_u64(seed));
        let b = simulate_run(&spec, &strategy, &env, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }
}
