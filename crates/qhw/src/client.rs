//! Training-job replay: time-to-solution under failures, with and without
//! checkpointing.
//!
//! The simulator advances a single hybrid training job through sessions on
//! a cloud QPU. A session begins after a sampled queue wait, runs optimizer
//! steps back to back, and ends on a Poisson failure or a TTL preemption.
//! Without checkpointing, every interruption restarts the job from step 0;
//! with checkpointing, progress resumes from the last persisted step at the
//! cost of periodic writes and a restore on re-entry. Checkpoint write and
//! restore costs are *inputs* here — the evaluation harness measures them on
//! the real `qcheck` implementation and feeds them in, so only the waiting
//! is simulated (see DESIGN.md, substitutions).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::event::SimTime;
use crate::queue::WaitModel;

/// Static description of the training job.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Optimizer steps to complete.
    pub total_steps: u64,
    /// Wall-clock cost of one step (circuit evals + classical update).
    pub step_cost: SimTime,
}

/// Checkpointing behaviour of the job.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CheckpointStrategy {
    /// No checkpointing: interruptions restart from step 0.
    None,
    /// Checkpoint every `interval_steps`, paying `write_cost` per
    /// checkpoint and `restore_cost` on every resume.
    Periodic {
        /// Steps between checkpoints.
        interval_steps: u64,
        /// Cost of writing one checkpoint.
        write_cost: SimTime,
        /// Cost of restoring after an interruption.
        restore_cost: SimTime,
    },
}

impl CheckpointStrategy {
    /// Convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics if `interval_steps == 0`.
    pub fn periodic(interval_steps: u64, write_cost: SimTime, restore_cost: SimTime) -> Self {
        assert!(interval_steps > 0, "interval must be positive");
        CheckpointStrategy::Periodic {
            interval_steps,
            write_cost,
            restore_cost,
        }
    }
}

/// The execution environment the job runs against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Environment {
    /// Queue-wait model applied at every (re)submission.
    pub queue: WaitModel,
    /// Mean time between in-session failures (exponential); `None` = no
    /// failures.
    pub mtbf: Option<SimTime>,
    /// Session time-to-live (preemption); `None` = unlimited sessions.
    pub session_ttl: Option<SimTime>,
    /// Device calibration/maintenance model; sessions cannot start during a
    /// maintenance window and are evicted when one opens.
    pub device: Option<crate::device::DeviceModel>,
}

/// Outcome of one simulated run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Total wall clock from submission to completion.
    pub makespan: SimTime,
    /// Time spent on steps whose progress *persisted* (rolled-back step
    /// time is accounted under `lost_work` instead).
    pub useful_work: SimTime,
    /// Step time lost to interruptions (recomputed work).
    pub lost_work: SimTime,
    /// Time spent writing checkpoints.
    pub checkpoint_overhead: SimTime,
    /// Time spent restoring from checkpoints.
    pub restore_overhead: SimTime,
    /// Time spent waiting in queues.
    pub queue_time: SimTime,
    /// Interruptions (failures + preemptions).
    pub interruptions: u64,
    /// Checkpoints written.
    pub checkpoints_written: u64,
    /// Whether the run hit the interruption cap and was abandoned.
    pub aborted: bool,
}

impl RunOutcome {
    /// Fraction of makespan that was useful work.
    pub fn efficiency(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        self.useful_work as f64 / self.makespan as f64
    }
}

/// Hard cap on interruptions before declaring the run unfinishable.
const MAX_INTERRUPTIONS: u64 = 200_000;

fn sample_exp<R: Rng>(mean: SimTime, rng: &mut R) -> SimTime {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (-(mean as f64) * u.ln()).clamp(1.0, 1e16) as SimTime
}

/// Simulates one run of `spec` under `strategy` in `env`.
///
/// Deterministic given the RNG state.
pub fn simulate_run<R: Rng>(
    spec: &JobSpec,
    strategy: &CheckpointStrategy,
    env: &Environment,
    rng: &mut R,
) -> RunOutcome {
    let mut out = RunOutcome::default();
    let mut now: SimTime = 0;
    // Steps durably completed (persisted via checkpoint, or 0 without one).
    let mut persisted_steps: u64 = 0;
    let mut first_session = true;

    'sessions: loop {
        // (Re)enter the queue.
        let wait = env.queue.sample(rng);
        now += wait;
        out.queue_time += wait;

        // The session cannot start inside a maintenance window.
        if let Some(device) = &env.device {
            let available = device.next_available(now);
            out.queue_time += available - now;
            now = available;
        }

        // Pay restore cost when resuming from a checkpoint.
        if !first_session {
            if let CheckpointStrategy::Periodic { restore_cost, .. } = strategy {
                if persisted_steps > 0 {
                    now += restore_cost;
                    out.restore_overhead += restore_cost;
                }
            }
        }
        first_session = false;

        // How long does this session last? Failures, TTL preemption and
        // maintenance eviction all cap it; the earliest wins.
        let failure_in = env.mtbf.map(|m| sample_exp(m, rng));
        let session_len = match (failure_in, env.session_ttl) {
            (Some(f), Some(ttl)) => Some(f.min(ttl)),
            (Some(f), None) => Some(f),
            (None, Some(ttl)) => Some(ttl),
            (None, None) => None,
        };
        let mut session_end = session_len.map(|l| now + l);
        if let Some(device) = &env.device {
            let eviction = device.next_maintenance_start(now);
            session_end = Some(session_end.map_or(eviction, |e| e.min(eviction)));
        }

        // Run steps within the session.
        let mut in_session_steps = persisted_steps;
        let mut since_ckpt: SimTime = 0; // unpersisted step time this session
        loop {
            if in_session_steps >= spec.total_steps {
                out.makespan = now;
                return out;
            }
            // Cost of the next unit of progress: one step, plus a
            // checkpoint write if one falls due after it.
            let mut cost = spec.step_cost;
            let mut writes_ckpt = false;
            if let CheckpointStrategy::Periodic {
                interval_steps,
                write_cost,
                ..
            } = strategy
            {
                if (in_session_steps + 1).is_multiple_of(*interval_steps) {
                    cost += write_cost;
                    writes_ckpt = true;
                }
            }
            if let Some(end) = session_end {
                if now + cost > end {
                    // Interrupted before this unit completes. Step time
                    // executed since the last persisted point moves from
                    // `useful_work` to `lost_work`.
                    now = end;
                    out.interruptions += 1;
                    if matches!(strategy, CheckpointStrategy::None) {
                        // Everything since step 0 is lost (persisted_steps
                        // tracks all completed steps, this session's
                        // included).
                        out.lost_work += persisted_steps * spec.step_cost;
                        out.useful_work -= persisted_steps * spec.step_cost;
                        persisted_steps = 0;
                    } else {
                        out.lost_work += since_ckpt;
                        out.useful_work -= since_ckpt;
                    }
                    if out.interruptions >= MAX_INTERRUPTIONS {
                        out.aborted = true;
                        out.makespan = now;
                        return out;
                    }
                    continue 'sessions;
                }
            }
            now += cost;
            in_session_steps += 1;
            out.useful_work += spec.step_cost;
            since_ckpt += spec.step_cost;
            if writes_ckpt {
                out.checkpoints_written += 1;
                out.checkpoint_overhead += cost - spec.step_cost;
                persisted_steps = in_session_steps;
                since_ckpt = 0;
            } else if matches!(strategy, CheckpointStrategy::None) {
                // Without checkpointing nothing persists; `persisted_steps`
                // tracks in-session progress so completion can still happen.
                persisted_steps = in_session_steps;
            }
        }
    }
}

/// Averages `trials` runs (mean makespan, mean efficiency, abort count).
pub fn mean_outcome<R: Rng>(
    spec: &JobSpec,
    strategy: &CheckpointStrategy,
    env: &Environment,
    trials: u32,
    rng: &mut R,
) -> (f64, f64, u32) {
    assert!(trials > 0, "need at least one trial");
    let mut makespan = 0.0;
    let mut eff = 0.0;
    let mut aborts = 0;
    for _ in 0..trials {
        let o = simulate_run(spec, strategy, env, rng);
        makespan += o.makespan as f64;
        eff += o.efficiency();
        if o.aborted {
            aborts += 1;
        }
    }
    (makespan / trials as f64, eff / trials as f64, aborts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MINUTE, SECOND};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> JobSpec {
        JobSpec {
            total_steps: 100,
            step_cost: SECOND,
        }
    }

    #[test]
    fn failure_free_run_is_exact() {
        let env = Environment {
            queue: WaitModel::Constant { wait: 10 * SECOND },
            mtbf: None,
            session_ttl: None,
            device: None,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let o = simulate_run(&spec(), &CheckpointStrategy::None, &env, &mut rng);
        assert_eq!(o.makespan, 10 * SECOND + 100 * SECOND);
        assert_eq!(o.useful_work, 100 * SECOND);
        assert_eq!(o.lost_work, 0);
        assert_eq!(o.interruptions, 0);
        assert!(!o.aborted);
    }

    #[test]
    fn checkpoint_writes_are_counted() {
        let env = Environment {
            queue: WaitModel::Constant { wait: 0 },
            mtbf: None,
            session_ttl: None,
            device: None,
        };
        let strategy = CheckpointStrategy::periodic(10, SECOND / 2, 2 * SECOND);
        let mut rng = StdRng::seed_from_u64(2);
        let o = simulate_run(&spec(), &strategy, &env, &mut rng);
        assert_eq!(o.checkpoints_written, 10);
        assert_eq!(o.checkpoint_overhead, 10 * (SECOND / 2));
        assert_eq!(o.makespan, 100 * SECOND + 5 * SECOND);
    }

    #[test]
    fn checkpointing_beats_no_checkpoint_under_failures() {
        let env = Environment {
            queue: WaitModel::Constant { wait: 30 * SECOND },
            mtbf: Some(40 * SECOND),
            session_ttl: None,
            device: None,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let strategy = CheckpointStrategy::periodic(5, SECOND / 10, SECOND);
        let (with_ckpt, _, a1) = mean_outcome(&spec(), &strategy, &env, 40, &mut rng);
        let (without, _, a2) = mean_outcome(&spec(), &CheckpointStrategy::None, &env, 40, &mut rng);
        assert_eq!(a1 + a2, 0, "runs aborted");
        assert!(
            with_ckpt * 1.5 < without,
            "ckpt {with_ckpt} vs none {without}"
        );
    }

    #[test]
    fn no_checkpoint_restarts_lose_all_progress() {
        // Session TTL shorter than the job: without checkpointing the job
        // can never finish within the interruption cap unless each session
        // completes it whole; with TTL = 50 steps and job = 100 steps it
        // aborts.
        let env = Environment {
            queue: WaitModel::Constant { wait: 0 },
            mtbf: None,
            session_ttl: Some(50 * SECOND),
            device: None,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let o = simulate_run(&spec(), &CheckpointStrategy::None, &env, &mut rng);
        assert!(o.aborted, "must abort: sessions too short to ever finish");

        // With checkpointing every 10 steps it finishes fine.
        let strategy = CheckpointStrategy::periodic(10, 0, 0);
        let o = simulate_run(&spec(), &strategy, &env, &mut rng);
        assert!(!o.aborted);
        assert!(o.interruptions >= 1);
    }

    #[test]
    fn lost_work_is_bounded_by_interval_with_checkpointing() {
        let env = Environment {
            queue: WaitModel::Constant { wait: SECOND },
            mtbf: Some(20 * SECOND),
            session_ttl: None,
            device: None,
        };
        let strategy = CheckpointStrategy::periodic(5, 0, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let o = simulate_run(&spec(), &strategy, &env, &mut rng);
        assert!(!o.aborted);
        // Every interruption loses < interval of work.
        assert!(
            o.lost_work <= o.interruptions * 5 * SECOND,
            "lost {} over {} interruptions",
            o.lost_work,
            o.interruptions
        );
    }

    #[test]
    fn queue_time_dominates_when_waits_are_long() {
        let env = Environment {
            queue: WaitModel::Constant { wait: 10 * MINUTE },
            mtbf: Some(30 * SECOND),
            session_ttl: None,
            device: None,
        };
        let strategy = CheckpointStrategy::periodic(1, 0, 0);
        let mut rng = StdRng::seed_from_u64(6);
        let o = simulate_run(&spec(), &strategy, &env, &mut rng);
        assert!(!o.aborted);
        assert!(o.queue_time > o.useful_work);
        assert!(o.efficiency() < 0.5);
    }

    #[test]
    fn determinism_given_seed() {
        let env = Environment {
            queue: WaitModel::LogNormal {
                median_s: 60.0,
                sigma: 1.0,
            },
            mtbf: Some(90 * SECOND),
            session_ttl: Some(5 * MINUTE),
            device: None,
        };
        let strategy = CheckpointStrategy::periodic(7, SECOND / 4, SECOND);
        let o1 = simulate_run(&spec(), &strategy, &env, &mut StdRng::seed_from_u64(7));
        let o2 = simulate_run(&spec(), &strategy, &env, &mut StdRng::seed_from_u64(7));
        assert_eq!(o1, o2);
    }

    #[test]
    fn efficiency_is_one_for_instant_queue_no_failures() {
        let env = Environment {
            queue: WaitModel::Constant { wait: 0 },
            mtbf: None,
            session_ttl: None,
            device: None,
        };
        let mut rng = StdRng::seed_from_u64(8);
        let o = simulate_run(&spec(), &CheckpointStrategy::None, &env, &mut rng);
        assert!((o.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        CheckpointStrategy::periodic(0, 1, 1);
    }

    #[test]
    fn maintenance_window_evicts_and_delays_sessions() {
        use crate::device::DeviceModel;
        use crate::event::HOUR;
        // Job longer than one calibration cycle: it must be evicted at the
        // maintenance window and resume afterwards.
        let device = DeviceModel {
            base_error: 0.03,
            drift_per_hour: 0.0,
            jitter_per_hour: 0.0,
            calibration_period: 2 * HOUR,
            maintenance_len: HOUR / 2,
        };
        let spec = JobSpec {
            total_steps: 3 * 3600, // 3 h of work at 1 s/step
            step_cost: SECOND,
        };
        let env = Environment {
            queue: WaitModel::Constant { wait: 0 },
            mtbf: None,
            session_ttl: None,
            device: Some(device),
        };
        let strategy = CheckpointStrategy::periodic(60, 0, 0);
        let mut rng = StdRng::seed_from_u64(9);
        let o = simulate_run(&spec, &strategy, &env, &mut rng);
        assert!(!o.aborted);
        // At least one eviction (work spans ≥ 2 windows).
        assert!(o.interruptions >= 1, "{} interruptions", o.interruptions);
        // Makespan covers the work plus at least one 30-min window.
        assert!(o.makespan >= 3 * HOUR + HOUR / 2);
        // Without checkpointing the job cannot cross the window.
        let o2 = simulate_run(&spec, &CheckpointStrategy::None, &env, &mut rng);
        assert!(
            o2.aborted,
            "no-ckpt job should never finish across maintenance"
        );
    }
}
