//! Discrete-event simulation core.
//!
//! A minimal, deterministic DES kernel: an integer microsecond clock (no
//! floats in the clock — reproducibility again) and a priority queue of
//! timestamped events with FIFO tie-breaking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in microseconds.
pub type SimTime = u64;

/// One microsecond.
pub const MICRO: SimTime = 1;
/// One millisecond in simulation time.
pub const MILLIS: SimTime = 1_000;
/// One second in simulation time.
pub const SECOND: SimTime = 1_000_000;
/// One minute in simulation time.
pub const MINUTE: SimTime = 60 * SECOND;
/// One hour in simulation time.
pub const HOUR: SimTime = 60 * MINUTE;

/// A deterministic event queue ordered by `(time, insertion order)`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules an event at an absolute time.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { time, seq, event }));
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(s)| (s.time, s.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, "first");
        q.schedule(5, "second");
        q.schedule(5, "third");
        assert_eq!(q.pop(), Some((5, "first")));
        assert_eq!(q.pop(), Some((5, "second")));
        assert_eq!(q.pop(), Some((5, "third")));
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(7, 1);
        q.schedule(3, 2);
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn time_constants() {
        assert_eq!(SECOND, 1000 * MILLIS);
        assert_eq!(HOUR, 3600 * SECOND);
        assert_eq!(MICRO, 1);
    }
}
