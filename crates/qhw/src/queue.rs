//! Job-queue wait models.
//!
//! On shared cloud QPUs the dominant cost of losing a session is *getting
//! back in line*. Two models are provided: an analytic log-normal sampler
//! (queue waits on public devices are famously heavy-tailed) and an
//! emergent FIFO queue driven by the DES core, where waits arise from
//! Poisson background load. The evaluation uses the log-normal model for
//! parameter sweeps and the FIFO simulation to sanity-check its shape.

use rand::Rng;

use crate::event::{EventQueue, SimTime};

/// Analytic wait-time models.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WaitModel {
    /// Constant wait (unit tests, controlled sweeps).
    Constant {
        /// The wait applied to every submission.
        wait: SimTime,
    },
    /// Log-normal wait with the given median and log-σ.
    LogNormal {
        /// Median wait in seconds.
        median_s: f64,
        /// Sigma of the underlying normal.
        sigma: f64,
    },
}

impl WaitModel {
    /// Samples one queue wait.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> SimTime {
        match *self {
            WaitModel::Constant { wait } => wait,
            WaitModel::LogNormal { median_s, sigma } => {
                // ln W ~ Normal(ln median, sigma); Box–Muller from two
                // uniforms keeps us independent of distribution crates'
                // internals.
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let wait_s = (median_s.max(1e-9).ln() + sigma * z).exp();
                // Clamp to [1 µs, 30 days] to keep sweeps finite.
                let us = (wait_s * 1e6).clamp(1.0, 30.0 * 24.0 * 3600.0 * 1e6);
                us as SimTime
            }
        }
    }

    /// Mean wait implied by the model (exact for both forms).
    pub fn mean_us(&self) -> f64 {
        match *self {
            WaitModel::Constant { wait } => wait as f64,
            WaitModel::LogNormal { median_s, sigma } => {
                median_s * (sigma * sigma / 2.0).exp() * 1e6
            }
        }
    }
}

/// An M/M/1-style FIFO queue simulated with the DES core: background jobs
/// arrive Poisson(λ) and take exponential service times; probes measure the
/// wait a training job would experience.
#[derive(Debug)]
pub struct FifoQueueSim {
    /// Mean background inter-arrival time.
    pub mean_interarrival: SimTime,
    /// Mean background service time.
    pub mean_service: SimTime,
}

/// Internal DES events for the FIFO simulation.
#[derive(Debug)]
enum QueueEvent {
    Arrival,
    Departure,
}

impl FifoQueueSim {
    /// Creates a queue model; utilization is
    /// `mean_service / mean_interarrival`.
    ///
    /// # Panics
    ///
    /// Panics on zero parameters or utilization ≥ 1 (unstable queue).
    pub fn new(mean_interarrival: SimTime, mean_service: SimTime) -> Self {
        assert!(mean_interarrival > 0 && mean_service > 0, "zero rates");
        assert!(
            mean_service < mean_interarrival,
            "utilization ≥ 1: queue diverges"
        );
        FifoQueueSim {
            mean_interarrival,
            mean_service,
        }
    }

    /// Offered load ρ = service / interarrival.
    pub fn utilization(&self) -> f64 {
        self.mean_service as f64 / self.mean_interarrival as f64
    }

    fn sample_exp<R: Rng>(mean: SimTime, rng: &mut R) -> SimTime {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let x = -(mean as f64) * u.ln();
        x.clamp(1.0, 1e15) as SimTime
    }

    /// Simulates `horizon` of queue activity and returns the waits that
    /// probe submissions (one every `probe_every`) would have observed.
    pub fn probe_waits<R: Rng>(
        &self,
        horizon: SimTime,
        probe_every: SimTime,
        rng: &mut R,
    ) -> Vec<SimTime> {
        let mut events: EventQueue<QueueEvent> = EventQueue::new();
        events.schedule(
            Self::sample_exp(self.mean_interarrival, rng),
            QueueEvent::Arrival,
        );
        let mut backlog: Vec<SimTime> = Vec::new(); // remaining service times queued
        let mut server_free_at: SimTime = 0;
        let mut waits = Vec::new();
        let mut next_probe = probe_every;
        let mut now: SimTime = 0;

        while let Some((t, ev)) = events.pop() {
            if t > horizon {
                break;
            }
            now = t;
            // Emit probes for the interval just passed.
            while next_probe <= now {
                let wait =
                    server_free_at.saturating_sub(next_probe) + backlog.iter().sum::<SimTime>();
                waits.push(wait);
                next_probe += probe_every;
            }
            match ev {
                QueueEvent::Arrival => {
                    let service = Self::sample_exp(self.mean_service, rng);
                    if server_free_at <= now && backlog.is_empty() {
                        server_free_at = now + service;
                        events.schedule(server_free_at, QueueEvent::Departure);
                    } else {
                        backlog.push(service);
                    }
                    events.schedule(
                        now + Self::sample_exp(self.mean_interarrival, rng),
                        QueueEvent::Arrival,
                    );
                }
                QueueEvent::Departure => {
                    if !backlog.is_empty() {
                        let service = backlog.remove(0);
                        server_free_at = now.max(server_free_at) + service;
                        events.schedule(server_free_at, QueueEvent::Departure);
                    }
                }
            }
        }
        let _ = now;
        waits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SECOND;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_model_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = WaitModel::Constant { wait: 42 * SECOND };
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), 42 * SECOND);
        }
        assert_eq!(m.mean_us(), 42.0 * 1e6);
    }

    #[test]
    fn lognormal_median_is_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = WaitModel::LogNormal {
            median_s: 300.0,
            sigma: 1.0,
        };
        let mut samples: Vec<SimTime> = (0..4001).map(|_| m.sample(&mut rng)).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64 / 1e6;
        assert!(
            (median / 300.0 - 1.0).abs() < 0.15,
            "sample median {median} vs 300"
        );
    }

    #[test]
    fn lognormal_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = WaitModel::LogNormal {
            median_s: 60.0,
            sigma: 1.5,
        };
        let samples: Vec<f64> = (0..20_000)
            .map(|_| m.sample(&mut rng) as f64 / 1e6)
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let median = {
            let mut s = samples.clone();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        assert!(mean > 1.8 * median, "mean {mean} median {median}");
        // Analytic mean: 60·e^{1.125} ≈ 184.8 s.
        assert!((m.mean_us() / 1e6 - 60.0 * (1.125f64).exp()).abs() < 1.0);
    }

    #[test]
    fn fifo_waits_grow_with_utilization() {
        let mut rng = StdRng::seed_from_u64(4);
        let light = FifoQueueSim::new(10 * SECOND, 2 * SECOND);
        let heavy = FifoQueueSim::new(10 * SECOND, 9 * SECOND);
        let horizon = 3600 * SECOND;
        let wl = light.probe_waits(horizon, 30 * SECOND, &mut rng);
        let wh = heavy.probe_waits(horizon, 30 * SECOND, &mut rng);
        let mean = |xs: &[SimTime]| xs.iter().sum::<SimTime>() as f64 / xs.len().max(1) as f64;
        assert!(
            mean(&wh) > 3.0 * mean(&wl),
            "heavy {} vs light {}",
            mean(&wh),
            mean(&wl)
        );
        assert!((light.utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn unstable_queue_rejected() {
        FifoQueueSim::new(5 * SECOND, 6 * SECOND);
    }

    #[test]
    fn probes_are_emitted() {
        let mut rng = StdRng::seed_from_u64(5);
        let q = FifoQueueSim::new(10 * SECOND, 5 * SECOND);
        let waits = q.probe_waits(1000 * SECOND, 10 * SECOND, &mut rng);
        assert!(waits.len() > 50, "{} probes", waits.len());
    }
}
