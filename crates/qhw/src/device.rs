//! Device model: calibration drift and maintenance windows.
//!
//! NISQ devices are periodically recalibrated; between calibrations the
//! two-qubit error rate drifts upward (random walk with positive bias), and
//! maintenance windows make the device unavailable entirely. Both phenomena
//! matter to checkpointing: drift changes the value of re-used shots, and
//! maintenance is a scheduled interruption a policy can anticipate.

use rand::Rng;

use crate::event::{SimTime, HOUR};

/// A drifting, periodically recalibrated device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceModel {
    /// Base two-qubit error rate right after calibration.
    pub base_error: f64,
    /// Per-hour multiplicative drift bias (e.g. 0.02 = +2%/h).
    pub drift_per_hour: f64,
    /// Random-walk volatility per hour.
    pub jitter_per_hour: f64,
    /// Time between recalibrations.
    pub calibration_period: SimTime,
    /// Length of the maintenance window that precedes each recalibration.
    pub maintenance_len: SimTime,
}

impl DeviceModel {
    /// A model shaped like published superconducting-device calibrations:
    /// 24 h calibration cycle, 30 min maintenance, ~3% base CX error.
    pub fn typical() -> Self {
        DeviceModel {
            base_error: 3.1e-2,
            drift_per_hour: 0.02,
            jitter_per_hour: 0.01,
            calibration_period: 24 * HOUR,
            maintenance_len: HOUR / 2,
        }
    }

    /// Time since the last recalibration.
    pub fn time_in_cycle(&self, t: SimTime) -> SimTime {
        t % self.calibration_period
    }

    /// Whether the device is in a maintenance window at `t` (the window is
    /// the *tail* of each calibration cycle).
    pub fn in_maintenance(&self, t: SimTime) -> bool {
        self.time_in_cycle(t) >= self.calibration_period - self.maintenance_len
    }

    /// Next instant at or after `t` when the device is available.
    pub fn next_available(&self, t: SimTime) -> SimTime {
        if self.in_maintenance(t) {
            let cycle_start = t - self.time_in_cycle(t);
            cycle_start + self.calibration_period
        } else {
            t
        }
    }

    /// Start of the next maintenance window at or after `t` (sessions are
    /// evicted when it opens).
    pub fn next_maintenance_start(&self, t: SimTime) -> SimTime {
        let cycle_start = t - self.time_in_cycle(t);
        let this_window = cycle_start + self.calibration_period - self.maintenance_len;
        if t < this_window {
            this_window
        } else {
            this_window + self.calibration_period
        }
    }

    /// Expected (deterministic-bias) error rate at `t`, ignoring jitter.
    pub fn expected_error_at(&self, t: SimTime) -> f64 {
        let hours = self.time_in_cycle(t) as f64 / HOUR as f64;
        self.base_error * (1.0 + self.drift_per_hour * hours)
    }

    /// Sampled error rate at `t`: expected drift plus a random-walk jitter
    /// term scaled by √(hours since calibration).
    pub fn sample_error_at<R: Rng>(&self, t: SimTime, rng: &mut R) -> f64 {
        let hours = self.time_in_cycle(t) as f64 / HOUR as f64;
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let jitter = self.jitter_per_hour * hours.sqrt() * z;
        (self.expected_error_at(t) * (1.0 + jitter)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn error_resets_at_calibration() {
        let d = DeviceModel::typical();
        let just_after = d.expected_error_at(1);
        let late = d.expected_error_at(20 * HOUR);
        let next_cycle = d.expected_error_at(24 * HOUR + 1);
        assert!(late > just_after * 1.2);
        assert!((next_cycle - just_after).abs() / just_after < 1e-3);
    }

    #[test]
    fn maintenance_window_is_cycle_tail() {
        let d = DeviceModel::typical();
        assert!(!d.in_maintenance(0));
        assert!(!d.in_maintenance(23 * HOUR));
        assert!(d.in_maintenance(24 * HOUR - HOUR / 4));
        assert!(!d.in_maintenance(24 * HOUR));
    }

    #[test]
    fn next_available_skips_maintenance() {
        let d = DeviceModel::typical();
        let in_window = 24 * HOUR - HOUR / 4;
        assert_eq!(d.next_available(in_window), 24 * HOUR);
        assert_eq!(d.next_available(5 * HOUR), 5 * HOUR);
    }

    #[test]
    fn next_maintenance_start_is_cycle_tail() {
        let d = DeviceModel::typical();
        let expected = 24 * HOUR - HOUR / 2;
        assert_eq!(d.next_maintenance_start(0), expected);
        assert_eq!(d.next_maintenance_start(expected - 1), expected);
        // Inside the window → next cycle's window.
        assert_eq!(d.next_maintenance_start(expected + 1), expected + 24 * HOUR);
    }

    #[test]
    fn sampled_error_is_nonnegative_and_tracks_drift() {
        let d = DeviceModel::typical();
        let mut rng = StdRng::seed_from_u64(1);
        let early: f64 = (0..500)
            .map(|_| d.sample_error_at(HOUR, &mut rng))
            .sum::<f64>()
            / 500.0;
        let late: f64 = (0..500)
            .map(|_| d.sample_error_at(20 * HOUR, &mut rng))
            .sum::<f64>()
            / 500.0;
        assert!(late > early);
        for _ in 0..100 {
            assert!(d.sample_error_at(23 * HOUR, &mut rng) >= 0.0);
        }
    }
}
