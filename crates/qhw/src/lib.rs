//! # qhw — simulated NISQ cloud execution
//!
//! The hardware substrate the reproduction does not have: a discrete-event
//! model of running hybrid training jobs on shared cloud quantum devices.
//! It captures the three phenomena the paper's motivation rests on —
//! heavy-tailed **queue waits**, Poisson **failures** / session
//! **preemptions**, and **calibration cycles** — and replays an N-step
//! training job against them with or without checkpointing.
//!
//! Checkpoint write/restore costs are inputs (measured on the real
//! [`qcheck`](https://docs.rs) implementation by the benchmark harness);
//! only the *waiting* and the *interruption semantics* are simulated.
//!
//! ```
//! use qhw::client::{simulate_run, CheckpointStrategy, Environment, JobSpec};
//! use qhw::event::SECOND;
//! use qhw::queue::WaitModel;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let spec = JobSpec { total_steps: 50, step_cost: SECOND };
//! let env = Environment {
//!     queue: WaitModel::Constant { wait: 10 * SECOND },
//!     mtbf: Some(60 * SECOND),
//!     session_ttl: None,
//!     device: None,
//! };
//! let mut rng = StdRng::seed_from_u64(1);
//! let outcome = simulate_run(
//!     &spec,
//!     &CheckpointStrategy::periodic(5, SECOND / 10, SECOND),
//!     &env,
//!     &mut rng,
//! );
//! assert!(!outcome.aborted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod device;
pub mod event;
pub mod queue;

pub use client::{
    mean_outcome, simulate_run, CheckpointStrategy, Environment, JobSpec, RunOutcome,
};
pub use device::DeviceModel;
pub use event::{SimTime, HOUR, MICRO, MILLIS, MINUTE, SECOND};
pub use queue::{FifoQueueSim, WaitModel};
