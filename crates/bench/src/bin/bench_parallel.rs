//! Serial-vs-parallel timing sweep for the hot paths, emitting
//! `BENCH_simulator.json` — the start of the perf trajectory.
//!
//! ```bash
//! cargo run --release -p qcheck-bench --bin bench_parallel -- --threads 8
//! # quick smoke run:
//! QCHECK_BENCH_QUICK=1 cargo run --release -p qcheck-bench --bin bench_parallel
//! ```
//!
//! Three measurements per workload:
//!
//! * `seed_baseline` — the seed's serial implementation
//!   ([`qcheck_bench::baseline`]), the fixed reference point;
//! * `serial` — the current implementation pinned to one thread;
//! * `parallel` — the current implementation at `--threads N`.
//!
//! On a single-core host `parallel` cannot beat `serial`; the honest signal
//! there is `seed_baseline / serial`.

use std::fmt::Write as _;

use criterion::measure_median_ns;
use qcheck::chunk::chunk_bytes_threads;
use qcheck::compress::compress_sections;
use qcheck::hash::Sha256;
use qcheck::repo::{CheckpointRepo, SaveOptions};
use qcheck::snapshot::{RngCapture, StateBlob, TrainingSnapshot};
use qcheck_bench::baseline::circuit_run_seed;
use qnn::ansatz::{hardware_efficient, strongly_entangling};
use qnn::gradient::{parameter_shift_gradient_with, ShiftSite};
use qsim::pauli::PauliSum;
use qsim::plan::{with_fuse_mode, BoundPlan, FuseMode};
use qsim::state::StateVector;

struct Entry {
    name: &'static str,
    seed_baseline_ms: Option<f64>,
    serial_ms: f64,
    parallel_ms: f64,
    /// `(passes_per_layer, amp_bytes_swept)` from the bound plan's
    /// deterministic traffic model, for circuit workloads.
    traffic: Option<(f64, u64)>,
}

fn ms(ns: f64) -> f64 {
    ns / 1e6
}

/// Best of three medians. `measure_median_ns` is noise-resistant within
/// a run, but the circuit figures feed `speedup_vs_seed`, which has been
/// recorded off one noisy run before (4.449 recorded vs the ≈5.4× this
/// box reproduces) — the minimum of three medians records the machine's
/// capability, not one run's scheduling luck.
fn measure_best_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    (0..3)
        .map(|_| measure_median_ns(&mut f))
        .fold(f64::INFINITY, f64::min)
}

/// Pass/traffic counters for a bound plan spread over `layers` ansatz
/// layers.
fn traffic_of(bound: &BoundPlan<'_>, layers: usize) -> (f64, u64) {
    (
        bound.passes() as f64 / layers as f64,
        bound.amp_bytes_swept(),
    )
}

fn snapshot_with_params(n_params: usize, step: u64) -> TrainingSnapshot {
    let mut s = TrainingSnapshot::new("bench-parallel");
    s.step = step;
    s.params = (0..n_params)
        .map(|i| 0.6 + 1e-6 * ((i as u64 + step) as f64).sin())
        .collect();
    s.optimizer = StateBlob::new("adam-v1", vec![0x5A; n_params * 16]);
    s.rng_streams.insert("shots".into(), RngCapture([9; 40]));
    s.total_shots = step * 1000;
    s.shot_ledger = vec![3; 64];
    s
}

/// The seed's serial encode pipeline: flat whole-snapshot hash, then
/// serial per-section hash + compress + chunk.
fn seed_encode(snapshot: &TrainingSnapshot) -> usize {
    let sections = snapshot.to_sections();
    let mut whole = Sha256::new();
    for s in &sections {
        whole.update(&s.bytes);
    }
    let _ = whole.finalize();
    let mut total = 0usize;
    for s in &sections {
        let _ = Sha256::digest(&s.bytes);
        let codec = if s.name == "params" || s.name == "optimizer" {
            qcheck::compress::Compression::XorF64
        } else {
            qcheck::compress::Compression::None
        };
        let compressed = codec.compress(&s.bytes);
        let (refs, _) = chunk_bytes_threads(&compressed, 4096, 1);
        total += refs.len();
    }
    total
}

/// The current encode pipeline at an explicit thread count: per-section
/// hash + compress fan-out, root hash over digests, parallel chunk hashing.
fn current_encode(snapshot: &TrainingSnapshot, threads: usize) -> usize {
    let sections = snapshot.to_sections();
    let jobs: Vec<(qcheck::compress::Compression, &[u8])> = sections
        .iter()
        .map(|s| {
            let codec = if s.name == "params" || s.name == "optimizer" {
                qcheck::compress::Compression::XorF64
            } else {
                qcheck::compress::Compression::None
            };
            (codec, s.bytes.as_slice())
        })
        .collect();
    let compressed = compress_sections(jobs, threads);
    let digests = Sha256::digest_many(
        sections.iter().map(|s| s.bytes.as_slice()).collect(),
        threads,
    );
    let mut root = Sha256::new();
    for d in &digests {
        root.update(&d.0);
    }
    let _ = root.finalize();
    let mut total = 0usize;
    for c in &compressed {
        let (refs, _) = chunk_bytes_threads(c, 4096, threads);
        total += refs.len();
    }
    total
}

fn main() {
    let mut threads = 8usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .expect("--threads needs a positive integer");
            }
            other => panic!("unknown flag {other} (supported: --threads N)"),
        }
    }
    // Pin metrics mode so the histogram stamps below are env-independent;
    // the overhead row flips the mode itself around its two measurements.
    qobs::set_mode(qobs::Mode::Counters);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let simd = qsimd::active().name();
    let sha_backend = qsimd::sha_backend().name();
    println!(
        "bench_parallel: {threads} threads requested, {cores} hardware core(s), \
         simd={simd}, sha={sha_backend} [{}]",
        qsimd::cpu_features()
    );

    // ---- SHA-256 throughput ------------------------------------------------
    // The hashing floor under every content-addressed save: one pass over a
    // buffer big enough that block compression dominates setup. The scalar
    // column reruns the identical streaming API with the SIMD switch forced
    // down — same code path, software compression function.
    let hash_buf = vec![0xA7u8; 8 << 20];
    let hash_pass = || {
        let mut h = Sha256::new();
        h.update(&hash_buf);
        h.finalize()
    };
    let hash_mb_s = hash_buf.len() as f64 / (measure_median_ns(hash_pass) / 1e3);
    let hash_scalar_mb_s = qsimd::with_level(qsimd::Level::Scalar, || {
        hash_buf.len() as f64 / (measure_median_ns(hash_pass) / 1e3)
    });
    println!(
        "sha256 {hash_mb_s:.0} MB/s ({sha_backend}) vs {hash_scalar_mb_s:.0} MB/s scalar \
         — {:.2}x",
        hash_mb_s / hash_scalar_mb_s
    );
    drop(hash_buf);

    let mut entries: Vec<Entry> = Vec::new();

    // ---- circuit_run/16 --------------------------------------------------
    // `Circuit::run` dispatches through the default executor (QSIM_EXEC,
    // normally the compiled-plan path), compiling per call like any
    // one-shot caller would.
    let (circuit, info) = hardware_efficient(16, 4);
    let params: Vec<f64> = (0..info.num_params).map(|i| 0.1 * i as f64).collect();
    let he_plan = circuit.compile().expect("HEA compiles");
    let he_bound = he_plan.bind(&params).expect("HEA binds");
    let he_traffic = traffic_of(&he_bound, 4);
    let fusion_enabled = he_bound.fused();
    drop(he_bound);
    drop(he_plan);
    entries.push(Entry {
        name: "circuit_run_16",
        seed_baseline_ms: Some(ms(measure_best_ns(|| circuit_run_seed(&circuit, &params)))),
        serial_ms: ms(qpar::with_threads(1, || {
            measure_best_ns(|| circuit.run(&params).unwrap())
        })),
        parallel_ms: ms(qpar::with_threads(threads, || {
            measure_best_ns(|| circuit.run(&params).unwrap())
        })),
        traffic: Some(he_traffic),
    });

    // ---- qobs overhead -----------------------------------------------------
    // The observability acceptance: QOBS=off must be within noise of the
    // default counters mode on the hot path (one relaxed atomic load per
    // site). Both sides are best-of-3 medians on the serial path of the
    // same workload as circuit_run_16.
    let qobs_overhead_pct = {
        qobs::set_mode(qobs::Mode::Off);
        let off_ns = qpar::with_threads(1, || measure_best_ns(|| circuit.run(&params).unwrap()));
        qobs::set_mode(qobs::Mode::Counters);
        let counters_ns =
            qpar::with_threads(1, || measure_best_ns(|| circuit.run(&params).unwrap()));
        let pct = (counters_ns - off_ns) / off_ns * 100.0;
        println!(
            "qobs overhead: off {:.3} ms, counters {:.3} ms ({pct:+.2}%)",
            ms(off_ns),
            ms(counters_ns)
        );
        pct
    };

    // ---- fusion stamp ------------------------------------------------------
    // The counter-verified half of the pass-fusion acceptance: the
    // deterministic traffic model on the bound schedule, fused vs the
    // per-gate path, for both layered ansatz shapes. A strongly
    // entangling layer must cost at most N+1 gate-visit passes fused
    // (vs 2N per-gate).
    let fusion_stamp = {
        let stamp_for = |c: &qsim::circuit::Circuit, p: &[f64], layers: usize| {
            let plan = c.compile().expect("ansatz compiles");
            let fused = plan.bind(p).expect("ansatz binds");
            let unfused = with_fuse_mode(FuseMode::Off, || plan.bind(p)).expect("ansatz binds");
            format!(
                "{{ \"passes\": {}, \"passes_per_layer\": {:.2}, \"amp_bytes_swept\": {}, \
                 \"unfused_passes\": {}, \"unfused_amp_bytes_swept\": {} }}",
                fused.passes(),
                fused.passes() as f64 / layers as f64,
                fused.amp_bytes_swept(),
                unfused.passes(),
                unfused.amp_bytes_swept(),
            )
        };
        let (se_circuit, se_info) = strongly_entangling(16, 4);
        let se_params: Vec<f64> = (0..se_info.num_params).map(|i| 0.05 * i as f64).collect();
        format!(
            "{{ \"enabled\": {fusion_enabled}, \"hardware_efficient_16x4\": {}, \"strongly_entangling_16x4\": {} }}",
            stamp_for(&circuit, &params, 4),
            stamp_for(&se_circuit, &se_params, 4),
        )
    };
    println!("fusion: {fusion_stamp}");

    // ---- compile-vs-run split ---------------------------------------------
    // The plan layer's pitch is compile-once/run-many: the compile+bind
    // phase must be microseconds against the milliseconds of execution.
    // Reported as a dedicated JSON object (these are not serial/parallel
    // pairs).
    let plan = circuit.compile().expect("HEA compiles");
    let compile_bind_ms = ms(measure_median_ns(|| {
        let p = circuit.compile().unwrap();
        p.bind(&params).unwrap().num_passes()
    }));
    // Reuse path: bind the prebuilt plan only (what the trainer pays per
    // shift evaluation).
    let bind_ms = ms(measure_median_ns(|| {
        plan.bind(&params).unwrap().num_passes()
    }));
    entries.push(Entry {
        name: "circuit_run_plan_reuse_16",
        seed_baseline_ms: None,
        serial_ms: ms(qpar::with_threads(1, || {
            measure_best_ns(|| plan.run(&params).unwrap())
        })),
        parallel_ms: ms(qpar::with_threads(threads, || {
            measure_best_ns(|| plan.run(&params).unwrap())
        })),
        traffic: Some(he_traffic),
    });
    entries.push(Entry {
        name: "circuit_run_interp_16",
        seed_baseline_ms: None,
        serial_ms: ms(qsim::plan::with_exec_mode(qsim::ExecMode::Interp, || {
            qpar::with_threads(1, || measure_best_ns(|| circuit.run(&params).unwrap()))
        })),
        parallel_ms: ms(qsim::plan::with_exec_mode(qsim::ExecMode::Interp, || {
            qpar::with_threads(threads, || {
                measure_best_ns(|| circuit.run(&params).unwrap())
            })
        })),
        traffic: None,
    });

    // ---- tiled workload ----------------------------------------------------
    // Every operand below the default tile exponent: the whole circuit
    // schedules as tile blocks (one sweep per rotation+entangler band)
    // instead of one pass per gate. On hosts where gate kernels are
    // memory-bandwidth-bound this is where tiling shows; on CPU-bound
    // hosts it tracks circuit_run_16.
    let (tiled_circuit, tinfo) = hardware_efficient(12, 6);
    let tparams: Vec<f64> = (0..tinfo.num_params).map(|i| 0.09 * i as f64).collect();
    let tiled_plan = tiled_circuit.compile().expect("tiled HEA compiles");
    let tiled_traffic = traffic_of(&tiled_plan.bind(&tparams).expect("tiled HEA binds"), 6);
    entries.push(Entry {
        name: "circuit_run_tiled_12",
        seed_baseline_ms: Some(ms(measure_best_ns(|| {
            circuit_run_seed(&tiled_circuit, &tparams)
        }))),
        serial_ms: ms(qpar::with_threads(1, || {
            measure_best_ns(|| tiled_plan.run(&tparams).unwrap())
        })),
        parallel_ms: ms(qpar::with_threads(threads, || {
            measure_best_ns(|| tiled_plan.run(&tparams).unwrap())
        })),
        traffic: Some(tiled_traffic),
    });

    // ---- exact observable on 16 qubits ----------------------------------
    let state = circuit.run(&params).unwrap();
    let h = PauliSum::transverse_ising(16, 1.0, 0.8);
    entries.push(Entry {
        name: "observable_exact_16",
        seed_baseline_ms: None,
        serial_ms: ms(qpar::with_threads(1, || {
            measure_median_ns(|| h.expectation(&state).unwrap())
        })),
        parallel_ms: ms(qpar::with_threads(threads, || {
            measure_median_ns(|| h.expectation(&state).unwrap())
        })),
        traffic: None,
    });

    // ---- parameter-shift gradient (exact, 10 qubits) ---------------------
    let (gcircuit, ginfo) = hardware_efficient(10, 2);
    let gparams: Vec<f64> = (0..ginfo.num_params).map(|i| 0.07 * i as f64).collect();
    let gh = PauliSum::transverse_ising(10, 1.0, 0.6);
    let sites: Vec<ShiftSite> = gcircuit
        .sym_ops()
        .iter()
        .map(|&(op_index, param_index)| ShiftSite {
            op_index,
            param_index,
            scale: 1.0,
        })
        .collect();
    let gplan = gcircuit.compile().expect("gradient ansatz compiles");
    let grad_once = |t: usize| {
        qpar::with_threads(t, || {
            measure_median_ns(|| {
                // The trainer's path: one reusable bind-scratch per worker,
                // rebound in place for every ±π/2 site evaluation.
                parameter_shift_gradient_with::<qsim::circuit::CircuitError, _, _, _>(
                    gparams.len(),
                    &sites,
                    std::f64::consts::FRAC_PI_2,
                    || gplan.bind_scratch(),
                    |bound, op, delta| {
                        bound.rebind_shifted(&gparams, op, delta)?;
                        let mut s = StateVector::zero_state(gcircuit.num_qubits());
                        bound.run_on(&mut s)?;
                        Ok(gh.expectation(&s).expect("matching registers"))
                    },
                )
                .unwrap()
            })
        })
    };
    entries.push(Entry {
        name: "param_shift_gradient_10",
        seed_baseline_ms: None,
        serial_ms: ms(grad_once(1)),
        parallel_ms: ms(grad_once(threads)),
        traffic: None,
    });

    // ---- checkpoint encode (CPU pipeline, no fs) --------------------------
    let snap = snapshot_with_params(65536, 7);
    entries.push(Entry {
        name: "checkpoint_encode_65536",
        seed_baseline_ms: Some(ms(measure_median_ns(|| seed_encode(&snap)))),
        serial_ms: ms(measure_median_ns(|| current_encode(&snap, 1))),
        parallel_ms: ms(measure_median_ns(|| current_encode(&snap, threads))),
        traffic: None,
    });

    // ---- end-to-end save (fs included) ------------------------------------
    // Each measurement gets a fresh repo so the serial and parallel sweeps
    // see the same chain depth and manifest count (an accumulating repo
    // would bias whichever configuration is measured second).
    let save_entry = |tag: &str, mode: fn(u32) -> SaveOptions| {
        let save_at = |t: usize| {
            let dir = qcheck_bench::report::scratch_dir(&format!("bench-parallel-{tag}-{t}"));
            let repo = CheckpointRepo::open(&dir).expect("open scratch repo");
            let mut opts = mode(u32::MAX);
            opts.threads = Some(t);
            let mut step = 0u64;
            let out = measure_median_ns(|| {
                step += 1;
                repo.save(&snapshot_with_params(65536, step), &opts)
                    .unwrap()
            });
            let _ = std::fs::remove_dir_all(&dir);
            out
        };
        let serial_ms = ms(save_at(1));
        let parallel_ms = ms(save_at(threads));
        (serial_ms, parallel_ms)
    };
    let (serial_ms, parallel_ms) = save_entry("full", |_| SaveOptions::default());
    entries.push(Entry {
        name: "save_full_65536",
        seed_baseline_ms: None,
        serial_ms,
        parallel_ms,
        traffic: None,
    });
    let (serial_ms, parallel_ms) = save_entry("delta", SaveOptions::incremental);
    entries.push(Entry {
        name: "save_delta_65536",
        seed_baseline_ms: None,
        serial_ms,
        parallel_ms,
        traffic: None,
    });

    // ---- delta save on a deep chain ---------------------------------------
    // The seed resolved the whole base chain from disk before every delta
    // save; the encode cache removes that read-decompress-verify pass. The
    // seed figure is reconstructed as (measured chain resolve) + (current
    // save), which is exactly the work the seed performed. A fresh repo and
    // chain per configuration keeps both sweeps at identical depth.
    {
        let opts = SaveOptions::incremental(u32::MAX);
        let run_at = |t: usize| {
            let dir = qcheck_bench::report::scratch_dir(&format!("bench-parallel-chain-{t}"));
            let repo = CheckpointRepo::open(&dir).expect("open scratch repo");
            for step in 0..32u64 {
                repo.save(&snapshot_with_params(65536, step), &opts)
                    .unwrap();
            }
            let latest = repo.read_latest().unwrap().expect("chain exists");
            let manifest = repo.load_manifest(&latest).unwrap();
            let resolve_ms = ms(measure_median_ns(|| {
                repo.resolve_sections(&manifest).unwrap()
            }));
            let mut o = opts.clone();
            o.threads = Some(t);
            let mut step = 1000u64;
            let save_ms = ms(measure_median_ns(|| {
                step += 1;
                repo.save(&snapshot_with_params(65536, step), &o).unwrap()
            }));
            let _ = std::fs::remove_dir_all(&dir);
            (resolve_ms, save_ms)
        };
        let (resolve_ms, serial_ms) = run_at(1);
        let (_, parallel_ms) = run_at(threads);
        entries.push(Entry {
            name: "save_delta_chain32_65536",
            seed_baseline_ms: Some(resolve_ms + serial_ms),
            serial_ms,
            parallel_ms,
            traffic: None,
        });
    }

    // ---- report ------------------------------------------------------------
    let core_starved = threads > cores;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"hardware_cores\": {cores},");
    let _ = writeln!(json, "  \"core_starved\": {core_starved},");
    let _ = writeln!(json, "  \"simd\": \"{simd}\",");
    let _ = writeln!(json, "  \"sha_backend\": \"{sha_backend}\",");
    let _ = writeln!(json, "  \"cpu_features\": \"{}\",", qsimd::cpu_features());
    let _ = writeln!(
        json,
        "  \"hash_sha256_8mib\": {{ \"hash_mb_s\": {hash_mb_s:.1}, \"hash_scalar_mb_s\": {hash_scalar_mb_s:.1}, \"speedup\": {:.3} }},",
        hash_mb_s / hash_scalar_mb_s
    );
    if core_starved {
        let _ = writeln!(
            json,
            "  \"note\": \"requested threads exceed hardware cores: parallel_ms measures oversubscription, not scaling — judge this run by speedup_vs_seed\","
        );
    }
    let _ = writeln!(json, "  \"fusion\": {fusion_stamp},");
    let _ = writeln!(
        json,
        "  \"compile_split_16\": {{ \"compile_bind_ms\": {compile_bind_ms:.4}, \"bind_only_ms\": {bind_ms:.4} }},"
    );
    // Executor pass-latency histograms accumulated across the whole run
    // (dominated by the 16-qubit workloads above) plus the measured cost
    // of leaving observability on. p50/p99 are log2-bucket upper bounds
    // in nanoseconds.
    {
        let stamp = |name: &str| {
            let h = qobs::histogram(name);
            format!(
                "{{ \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {} }}",
                h.count(),
                h.p50(),
                h.p99()
            )
        };
        let _ = writeln!(
            json,
            "  \"qobs\": {{ \"overhead_pct\": {qobs_overhead_pct:.2}, \"pass_ns\": {{ \"sweep\": {}, \"tile\": {}, \"permute\": {} }} }},",
            stamp("qsim_sweep_ns"),
            stamp("qsim_tile_ns"),
            stamp("qsim_permute_ns"),
        );
    }
    println!(
        "compile+bind {:.4} ms, bind-only {:.4} ms (plan reuse amortizes the rest)",
        compile_bind_ms, bind_ms
    );
    let _ = writeln!(json, "  \"workloads\": {{");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let baseline = e
            .seed_baseline_ms
            .map(|b| format!("{b:.4}"))
            .unwrap_or_else(|| "null".into());
        let speedup_vs_seed = e
            .seed_baseline_ms
            .map(|b| format!("{:.3}", b / e.serial_ms.min(e.parallel_ms)))
            .unwrap_or_else(|| "null".into());
        let traffic_cols = e
            .traffic
            .map(|(ppl, bytes)| {
                format!(", \"passes_per_layer\": {ppl:.2}, \"amp_bytes_swept\": {bytes}")
            })
            .unwrap_or_default();
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"seed_baseline_ms\": {}, \"serial_ms\": {:.4}, \"parallel_ms\": {:.4}, \"parallel_speedup\": {:.3}, \"speedup_vs_seed\": {}{} }}{}",
            e.name,
            baseline,
            e.serial_ms,
            e.parallel_ms,
            e.serial_ms / e.parallel_ms,
            speedup_vs_seed,
            traffic_cols,
            comma
        );
        let b = e
            .seed_baseline_ms
            .map(|b| format!("  seed {b:8.3} ms"))
            .unwrap_or_default();
        println!(
            "{:<26}{b}  serial {:8.3} ms  parallel({threads}t) {:8.3} ms",
            e.name, e.serial_ms, e.parallel_ms
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_simulator.json", &json).expect("write BENCH_simulator.json");
    println!("wrote BENCH_simulator.json");
}
