//! Binary wrapper for experiment `fig5` — see DESIGN.md §3.
fn main() {
    qcheck_bench::experiments::fig5::run().print();
}
