//! Binary wrapper for experiment `fig3` — see DESIGN.md §3.
fn main() {
    qcheck_bench::experiments::fig3::run().print();
}
