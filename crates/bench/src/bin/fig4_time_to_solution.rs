//! Binary wrapper for experiment `fig4` — see DESIGN.md §3.
fn main() {
    qcheck_bench::experiments::fig4::run().print();
}
