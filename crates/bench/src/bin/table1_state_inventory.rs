//! Binary wrapper for experiment `table1` — see DESIGN.md §3.
fn main() {
    qcheck_bench::experiments::table1::run().print();
}
