//! Binary wrapper for experiment `fig8` — see DESIGN.md §3.
fn main() {
    qcheck_bench::experiments::fig8::run().print();
}
