//! Binary wrapper for experiment `table4` — see DESIGN.md §3.
fn main() {
    qcheck_bench::experiments::table4::run().print();
}
