//! Binary wrapper for experiment `fig6` — see DESIGN.md §3.
fn main() {
    qcheck_bench::experiments::fig6::run().print();
}
