//! Binary wrapper for experiment `table2` — see DESIGN.md §3.
fn main() {
    qcheck_bench::experiments::table2::run().print();
}
