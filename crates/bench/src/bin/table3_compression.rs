//! Binary wrapper for experiment `table3` — see DESIGN.md §3.
fn main() {
    qcheck_bench::experiments::table3::run().print();
}
