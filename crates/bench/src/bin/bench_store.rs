//! Object-store backend comparison, emitting `BENCH_store.json`.
//!
//! ```bash
//! cargo run --release -p qcheck-bench --bin bench_store
//! # quick smoke run:
//! QCHECK_BENCH_QUICK=1 cargo run --release -p qcheck-bench --bin bench_store
//! ```
//!
//! Measures the loose (one file per chunk), pack (one pack file per
//! save) and remote (in-process `qckptd` daemon over localhost TCP)
//! backends on identical workloads:
//!
//! * full-save and delta-chain save latency / logical throughput;
//! * recovery latency over a delta chain;
//! * syscall-proxy counters from [`qcheck::repo::SaveReport`]: renames and
//!   fsyncs per save (the pack backend's point is O(1) renames per commit,
//!   and a single fsync when durability is on), plus the *commit-path*
//!   counters — under the manifest-log protocol every save publishes with
//!   0 renames and (fsync on) exactly 2 fsyncs, independent of snapshot
//!   size and backend;
//! * protocol round trips per save for the remote backend (pipelined
//!   chunk upload + manifest/LATEST mirroring; 0 for local backends).
//!
//! Timing on a noisy single-core box jitters ±20–30%; the *counter*
//! columns are deterministic and are the acceptance signal.

use std::fmt::Write as _;

use criterion::measure_median_ns;
use qcheck::remote::{spawn_daemon, DaemonHandle, RemoteStore};
use qcheck::repo::{CheckpointRepo, SaveOptions, SaveReport};
use qcheck::snapshot::{RngCapture, StateBlob, TrainingSnapshot};
use qcheck::store::{StoreBackend, StoreKind};
use qcheck_bench::report::{quick_mode, scratch_dir};

/// One daemon serves the whole benchmark; every scratch repository gets
/// its own namespace on it.
fn open_repo(daemon: &DaemonHandle, kind: StoreKind, dir: &std::path::Path) -> CheckpointRepo {
    match kind {
        StoreKind::Remote => {
            static NS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let ns = format!(
                "bench-{}-{}",
                std::process::id(),
                NS.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            );
            let store = RemoteStore::connect(daemon.addr(), ns).expect("connect to bench daemon");
            CheckpointRepo::with_store(dir, StoreBackend::Remote(store))
                .expect("open remote scratch repo")
        }
        kind => CheckpointRepo::open_with(dir, kind).expect("open scratch repo"),
    }
}

/// Round trips performed so far by a repo's remote client (0 for local
/// backends).
fn round_trips(repo: &CheckpointRepo) -> u64 {
    repo.store().remote().map_or(0, |r| r.round_trips())
}

fn snapshot_with_params(n_params: usize, step: u64) -> TrainingSnapshot {
    let mut s = TrainingSnapshot::new("bench-store");
    s.step = step;
    s.params = (0..n_params)
        .map(|i| 0.6 + 1e-6 * ((i as u64 + step) as f64).sin())
        .collect();
    s.optimizer = StateBlob::new("adam-v1", vec![0x5A; n_params * 16]);
    s.rng_streams.insert("shots".into(), RngCapture([9; 40]));
    s.total_shots = step * 1000;
    s.shot_ledger = vec![3; 64];
    s
}

fn ms(ns: f64) -> f64 {
    ns / 1e6
}

struct BackendRow {
    kind: StoreKind,
    full_save_ms: f64,
    full_save_mb_s: f64,
    delta_save_ms: f64,
    recover_ms: f64,
    renames_per_full_save: f64,
    fsyncs_per_full_save_fsync_on: f64,
    commit_renames_per_save: f64,
    commit_fsyncs_per_save_fsync_on: f64,
    renames_per_delta_save: f64,
    round_trips_per_full_save: f64,
    round_trips_per_delta_save: f64,
}

fn mean<T: Copy + Into<u64>>(xs: impl Iterator<Item = T>) -> f64 {
    let v: Vec<u64> = xs.map(Into::into).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<u64>() as f64 / v.len() as f64
}

fn counter_sweep(
    daemon: &DaemonHandle,
    kind: StoreKind,
    n_params: usize,
    saves: u64,
    fsync: bool,
    delta: bool,
) -> (Vec<SaveReport>, Vec<u64>) {
    let dir = scratch_dir(&format!("store-count-{kind}-{fsync}-{delta}"));
    let repo = open_repo(daemon, kind, &dir);
    let opts = SaveOptions {
        fsync,
        ..if delta {
            SaveOptions::incremental(u32::MAX)
        } else {
            SaveOptions::default()
        }
    };
    let mut reports = Vec::new();
    let mut trips = Vec::new();
    for step in 1..=saves {
        let before = round_trips(&repo);
        reports.push(
            repo.save(&snapshot_with_params(n_params, step), &opts)
                .unwrap(),
        );
        trips.push(round_trips(&repo) - before);
    }
    let _ = std::fs::remove_dir_all(&dir);
    (reports, trips)
}

fn bench_backend(
    daemon: &DaemonHandle,
    kind: StoreKind,
    n_params: usize,
    chain_depth: u64,
) -> BackendRow {
    // --- full-save latency (fresh content each iteration) ---
    let dir = scratch_dir(&format!("store-full-{kind}"));
    let repo = open_repo(daemon, kind, &dir);
    let mut step = 0u64;
    let mut logical = 0u64;
    let full_save_ms = ms(measure_median_ns(|| {
        step += 1;
        let r = repo
            .save(
                &snapshot_with_params(n_params, step),
                &SaveOptions::default(),
            )
            .unwrap();
        logical = r.logical_bytes;
        r
    }));
    let _ = std::fs::remove_dir_all(&dir);
    let full_save_mb_s = logical as f64 / 1e6 / (full_save_ms / 1e3);

    // --- delta save on a deep chain + recovery over that chain ---
    let dir = scratch_dir(&format!("store-delta-{kind}"));
    let repo = open_repo(daemon, kind, &dir);
    let opts = SaveOptions::incremental(u32::MAX);
    for step in 0..chain_depth {
        repo.save(&snapshot_with_params(n_params, step), &opts)
            .unwrap();
    }
    let mut step = 1000u64;
    let delta_save_ms = ms(measure_median_ns(|| {
        step += 1;
        repo.save(&snapshot_with_params(n_params, step), &opts)
            .unwrap()
    }));
    let recover_ms = ms(measure_median_ns(|| repo.recover().unwrap()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- deterministic syscall- and protocol-proxy counters ---
    let counter_saves = if quick_mode() { 4 } else { 8 };
    let (fulls, full_trips) = counter_sweep(daemon, kind, n_params, counter_saves, false, false);
    let (fulls_fsync, _) = counter_sweep(daemon, kind, n_params, counter_saves, true, false);
    let (deltas, delta_trips) = counter_sweep(daemon, kind, n_params, counter_saves, false, true);

    BackendRow {
        kind,
        full_save_ms,
        full_save_mb_s,
        delta_save_ms,
        recover_ms,
        renames_per_full_save: mean(fulls.iter().map(|r| r.store_renames)),
        fsyncs_per_full_save_fsync_on: mean(fulls_fsync.iter().map(|r| r.store_fsyncs)),
        commit_renames_per_save: mean(fulls.iter().map(|r| r.commit_renames)),
        commit_fsyncs_per_save_fsync_on: mean(fulls_fsync.iter().map(|r| r.commit_fsyncs)),
        // Skip the first (full) save of the chain: steady-state deltas are
        // the number that matters for a training loop.
        renames_per_delta_save: mean(deltas.iter().skip(1).map(|r| r.store_renames)),
        round_trips_per_full_save: mean(full_trips.iter().copied()),
        round_trips_per_delta_save: mean(delta_trips.iter().skip(1).copied()),
    }
}

fn main() {
    let quick = quick_mode();
    let (n_params, chain_depth) = if quick { (16_384, 8) } else { (65_536, 32) };

    // One localhost daemon (pack layout — the deployment default) serves
    // every remote-backend measurement.
    let daemon_root = scratch_dir("store-daemon");
    let daemon = spawn_daemon(&daemon_root, StoreKind::Pack).expect("spawn bench daemon");

    println!("bench_store: {n_params} params, chain depth {chain_depth}, quick={quick}");
    let rows: Vec<BackendRow> = [StoreKind::Loose, StoreKind::Pack, StoreKind::Remote]
        .into_iter()
        .map(|kind| {
            let row = bench_backend(&daemon, kind, n_params, chain_depth);
            println!(
                "  {:<6}  full {:.2} ms ({:.0} MB/s)  delta {:.3} ms  recover {:.1} ms  \
                 renames/full {:.1}  renames/delta {:.1}  fsyncs/full(fsync) {:.1}  \
                 commit renames/fsyncs {:.1}/{:.1}  round-trips full/delta {:.1}/{:.1}",
                row.kind.to_string(),
                row.full_save_ms,
                row.full_save_mb_s,
                row.delta_save_ms,
                row.recover_ms,
                row.renames_per_full_save,
                row.renames_per_delta_save,
                row.fsyncs_per_full_save_fsync_on,
                row.commit_renames_per_save,
                row.commit_fsyncs_per_save_fsync_on,
                row.round_trips_per_full_save,
                row.round_trips_per_delta_save,
            );
            row
        })
        .collect();

    // Daemon-side view of the workload just applied: role/generation
    // confirm the bench ran against a primary, and the oplog-entries
    // counter is the deterministic commit count the remote rows imply.
    let control = RemoteStore::connect(daemon.addr(), "bench-control").expect("daemon status");
    let daemon_status = control.status().expect("daemon status");
    println!(
        "  daemon  role {} ({})  generation {}  oplog-entries {}  repl-lag {}",
        daemon_status.role,
        qcheck::remote::proto::role_name(daemon_status.role),
        daemon_status.generation,
        daemon_status.oplog_entries,
        daemon_status.repl_lag,
    );
    drop(control);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"n_params\": {n_params},");
    let _ = writeln!(json, "  \"chain_depth\": {chain_depth},");
    let _ = writeln!(
        json,
        "  \"note\": \"timings jitter on shared boxes; rename/fsync/round-trip counters are \
         deterministic and are the acceptance signal (pack = O(1) renames per save; commit path = \
         manifest log + dual-root flip, 0 renames and 2 fsyncs per save on every backend; remote = \
         localhost qckptd, pipelined put_batch + manifest/LATEST mirroring)\","
    );
    let _ = writeln!(json, "  \"daemon\": {{");
    let _ = writeln!(
        json,
        "    \"role\": \"{}\",",
        qcheck::remote::proto::role_name(daemon_status.role)
    );
    let _ = writeln!(json, "    \"generation\": {},", daemon_status.generation);
    let _ = writeln!(
        json,
        "    \"oplog_entries\": {},",
        daemon_status.oplog_entries
    );
    let _ = writeln!(json, "    \"repl_lag\": {}", daemon_status.repl_lag);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"backends\": {{");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(json, "    \"{}\": {{", row.kind);
        let _ = writeln!(json, "      \"full_save_ms\": {:.4},", row.full_save_ms);
        let _ = writeln!(json, "      \"full_save_mb_s\": {:.2},", row.full_save_mb_s);
        let _ = writeln!(json, "      \"delta_save_ms\": {:.4},", row.delta_save_ms);
        let _ = writeln!(json, "      \"recover_ms\": {:.4},", row.recover_ms);
        let _ = writeln!(
            json,
            "      \"renames_per_full_save\": {:.2},",
            row.renames_per_full_save
        );
        let _ = writeln!(
            json,
            "      \"renames_per_delta_save\": {:.2},",
            row.renames_per_delta_save
        );
        let _ = writeln!(
            json,
            "      \"fsyncs_per_full_save_fsync_on\": {:.2},",
            row.fsyncs_per_full_save_fsync_on
        );
        let _ = writeln!(
            json,
            "      \"commit_renames_per_save\": {:.2},",
            row.commit_renames_per_save
        );
        let _ = writeln!(
            json,
            "      \"commit_fsyncs_per_save_fsync_on\": {:.2},",
            row.commit_fsyncs_per_save_fsync_on
        );
        let _ = writeln!(
            json,
            "      \"protocol_round_trips_per_full_save\": {:.2},",
            row.round_trips_per_full_save
        );
        let _ = writeln!(
            json,
            "      \"protocol_round_trips_per_delta_save\": {:.2}",
            row.round_trips_per_delta_save
        );
        let _ = writeln!(json, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  }},");
    let rename_ratio = rows[0].renames_per_full_save / rows[1].renames_per_full_save.max(1.0);
    let _ = writeln!(
        json,
        "  \"full_save_rename_ratio_loose_over_pack\": {rename_ratio:.1}"
    );
    json.push_str("}\n");

    std::fs::write("BENCH_store.json", &json).expect("write BENCH_store.json");
    println!("wrote BENCH_store.json");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(daemon_root);
}
