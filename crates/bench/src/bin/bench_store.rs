//! Object-store backend comparison, emitting `BENCH_store.json`.
//!
//! ```bash
//! cargo run --release -p qcheck-bench --bin bench_store
//! # quick smoke run:
//! QCHECK_BENCH_QUICK=1 cargo run --release -p qcheck-bench --bin bench_store
//! ```
//!
//! Measures the loose (one file per chunk), pack (one pack file per
//! save) and remote (in-process `qckptd` daemon over localhost TCP)
//! backends on identical workloads:
//!
//! * full-save and delta-chain save latency / logical throughput;
//! * recovery latency over a delta chain;
//! * syscall-proxy counters from [`qcheck::repo::SaveReport`]: renames and
//!   fsyncs per save (the pack backend's point is O(1) renames per commit,
//!   and a single fsync when durability is on), plus the *commit-path*
//!   counters — under the manifest-log protocol every save publishes with
//!   0 renames and (fsync on) exactly 2 fsyncs, independent of snapshot
//!   size and backend;
//! * protocol round trips per save for the remote backend (pipelined
//!   chunk upload + manifest/LATEST mirroring; 0 for local backends).
//!
//! Timing on a noisy single-core box jitters ±20–30%; the *counter*
//! columns are deterministic and are the acceptance signal.

use std::fmt::Write as _;

use criterion::measure_median_ns;
use qcheck::chunk::ChunkRef;
use qcheck::hash::Sha256;
use qcheck::remote::{
    proto, reset_stream_peak_buffer, spawn_daemon, stream_peak_buffer, DaemonHandle, RemoteStore,
};
use qcheck::repo::{CheckpointRepo, SaveOptions, SaveReport};
use qcheck::snapshot::{RngCapture, StateBlob, TrainingSnapshot};
use qcheck::store::{ObjectStore, StoreBackend, StoreKind};
use qcheck_bench::report::{quick_mode, scratch_dir};

/// One daemon serves the whole benchmark; every scratch repository gets
/// its own namespace on it.
fn open_repo(daemon: &DaemonHandle, kind: StoreKind, dir: &std::path::Path) -> CheckpointRepo {
    match kind {
        StoreKind::Remote => {
            static NS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let ns = format!(
                "bench-{}-{}",
                std::process::id(),
                NS.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            );
            let store = RemoteStore::connect(daemon.addr(), ns).expect("connect to bench daemon");
            CheckpointRepo::with_store(dir, StoreBackend::Remote(store))
                .expect("open remote scratch repo")
        }
        kind => CheckpointRepo::open_with(dir, kind).expect("open scratch repo"),
    }
}

/// Round trips performed so far by a repo's remote client (0 for local
/// backends).
fn round_trips(repo: &CheckpointRepo) -> u64 {
    repo.store().remote().map_or(0, |r| r.round_trips())
}

fn snapshot_with_params(n_params: usize, step: u64) -> TrainingSnapshot {
    let mut s = TrainingSnapshot::new("bench-store");
    s.step = step;
    s.params = (0..n_params)
        .map(|i| 0.6 + 1e-6 * ((i as u64 + step) as f64).sin())
        .collect();
    s.optimizer = StateBlob::new("adam-v1", vec![0x5A; n_params * 16]);
    s.rng_streams.insert("shots".into(), RngCapture([9; 40]));
    s.total_shots = step * 1000;
    s.shot_ledger = vec![3; 64];
    s
}

fn ms(ns: f64) -> f64 {
    ns / 1e6
}

struct BackendRow {
    kind: StoreKind,
    full_save_ms: f64,
    full_save_mb_s: f64,
    delta_save_ms: f64,
    recover_ms: f64,
    renames_per_full_save: f64,
    fsyncs_per_full_save_fsync_on: f64,
    commit_renames_per_save: f64,
    commit_fsyncs_per_save_fsync_on: f64,
    renames_per_delta_save: f64,
    round_trips_per_full_save: f64,
    round_trips_per_delta_save: f64,
}

fn mean<T: Copy + Into<u64>>(xs: impl Iterator<Item = T>) -> f64 {
    let v: Vec<u64> = xs.map(Into::into).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<u64>() as f64 / v.len() as f64
}

fn counter_sweep(
    daemon: &DaemonHandle,
    kind: StoreKind,
    n_params: usize,
    saves: u64,
    fsync: bool,
    delta: bool,
) -> (Vec<SaveReport>, Vec<u64>) {
    let dir = scratch_dir(&format!("store-count-{kind}-{fsync}-{delta}"));
    let repo = open_repo(daemon, kind, &dir);
    let opts = SaveOptions {
        fsync,
        ..if delta {
            SaveOptions::incremental(u32::MAX)
        } else {
            SaveOptions::default()
        }
    };
    let mut reports = Vec::new();
    let mut trips = Vec::new();
    for step in 1..=saves {
        let before = round_trips(&repo);
        reports.push(
            repo.save(&snapshot_with_params(n_params, step), &opts)
                .unwrap(),
        );
        trips.push(round_trips(&repo) - before);
    }
    let _ = std::fs::remove_dir_all(&dir);
    (reports, trips)
}

fn bench_backend(
    daemon: &DaemonHandle,
    kind: StoreKind,
    n_params: usize,
    chain_depth: u64,
) -> BackendRow {
    // --- full-save latency (fresh content each iteration) ---
    let dir = scratch_dir(&format!("store-full-{kind}"));
    let repo = open_repo(daemon, kind, &dir);
    let mut step = 0u64;
    let mut logical = 0u64;
    let full_save_ms = ms(measure_median_ns(|| {
        step += 1;
        let r = repo
            .save(
                &snapshot_with_params(n_params, step),
                &SaveOptions::default(),
            )
            .unwrap();
        logical = r.logical_bytes;
        r
    }));
    let _ = std::fs::remove_dir_all(&dir);
    let full_save_mb_s = logical as f64 / 1e6 / (full_save_ms / 1e3);

    // --- delta save on a deep chain + recovery over that chain ---
    let dir = scratch_dir(&format!("store-delta-{kind}"));
    let repo = open_repo(daemon, kind, &dir);
    let opts = SaveOptions::incremental(u32::MAX);
    for step in 0..chain_depth {
        repo.save(&snapshot_with_params(n_params, step), &opts)
            .unwrap();
    }
    let mut step = 1000u64;
    let delta_save_ms = ms(measure_median_ns(|| {
        step += 1;
        repo.save(&snapshot_with_params(n_params, step), &opts)
            .unwrap()
    }));
    let recover_ms = ms(measure_median_ns(|| repo.recover().unwrap()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- deterministic syscall- and protocol-proxy counters ---
    let counter_saves = if quick_mode() { 4 } else { 8 };
    let (fulls, full_trips) = counter_sweep(daemon, kind, n_params, counter_saves, false, false);
    let (fulls_fsync, _) = counter_sweep(daemon, kind, n_params, counter_saves, true, false);
    let (deltas, delta_trips) = counter_sweep(daemon, kind, n_params, counter_saves, false, true);

    BackendRow {
        kind,
        full_save_ms,
        full_save_mb_s,
        delta_save_ms,
        recover_ms,
        renames_per_full_save: mean(fulls.iter().map(|r| r.store_renames)),
        fsyncs_per_full_save_fsync_on: mean(fulls_fsync.iter().map(|r| r.store_fsyncs)),
        commit_renames_per_save: mean(fulls.iter().map(|r| r.commit_renames)),
        commit_fsyncs_per_save_fsync_on: mean(fulls_fsync.iter().map(|r| r.commit_fsyncs)),
        // Skip the first (full) save of the chain: steady-state deltas are
        // the number that matters for a training loop.
        renames_per_delta_save: mean(deltas.iter().skip(1).map(|r| r.store_renames)),
        round_trips_per_full_save: mean(full_trips.iter().copied()),
        round_trips_per_delta_save: mean(delta_trips.iter().skip(1).copied()),
    }
}

struct StreamRow {
    payload_mib: usize,
    put_ms: f64,
    put_mb_s: f64,
    get_ms: f64,
    get_mb_s: f64,
    peak_buffer_bytes: u64,
}

/// Streams one payload larger than the wire frame cap through
/// `PUT_STREAM`/`GET_STREAM` without ever materializing it: the source
/// synthesizes 4 MiB blocks on the fly and the sink discards them. The
/// peak-buffer counter (fed by client and in-process server alike)
/// proves the whole transfer ran in O(segment) memory.
fn bench_stream(daemon: &DaemonHandle) -> StreamRow {
    const BLOCK: usize = 4 << 20;
    let blocks = proto::MAX_FRAME_LEN / BLOCK + 1; // one block past the frame cap
    let payload = blocks * BLOCK;
    let template = vec![0xC3u8; BLOCK];
    let block_at = |i: usize| {
        let mut b = template.clone();
        b[..8].copy_from_slice(&(i as u64).to_le_bytes());
        b
    };
    // Reference hash by streaming the generator once — the payload never
    // exists as one buffer, here or on the wire.
    let mut h = Sha256::new();
    for i in 0..blocks {
        h.update(&block_at(i));
    }
    let reference = ChunkRef {
        hash: h.finalize(),
        len: payload as u32,
    };

    let store = RemoteStore::connect(daemon.addr(), "bench-stream").expect("connect stream ns");
    reset_stream_peak_buffer();

    let mut next = 0usize;
    let mut source = || -> qcheck::error::Result<Option<Vec<u8>>> {
        if next == blocks {
            return Ok(None);
        }
        next += 1;
        Ok(Some(block_at(next - 1)))
    };
    let t = std::time::Instant::now();
    assert!(
        store
            .put_stream(&reference, &mut source, false)
            .expect("streamed put"),
        "stream payload must be fresh"
    );
    let put_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut got = 0u64;
    let t = std::time::Instant::now();
    store
        .get_stream(&reference, BLOCK, &mut |seg| {
            got += seg.len() as u64;
            Ok(())
        })
        .expect("streamed get");
    let get_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(got, payload as u64);

    let peak_buffer_bytes = stream_peak_buffer();
    assert!(
        peak_buffer_bytes <= 8 << 20,
        "streaming must stay in O(segment) memory, saw peak {peak_buffer_bytes}"
    );
    let mb = payload as f64 / 1e6;
    StreamRow {
        payload_mib: payload >> 20,
        put_ms,
        put_mb_s: mb / (put_ms / 1e3),
        get_ms,
        get_mb_s: mb / (get_ms / 1e3),
        peak_buffer_bytes,
    }
}

fn main() {
    // Pin metrics mode so the fsync-latency stamp is env-independent.
    qobs::set_mode(qobs::Mode::Counters);
    let quick = quick_mode();
    let (n_params, chain_depth) = if quick { (16_384, 8) } else { (65_536, 32) };

    // One localhost daemon (pack layout — the deployment default) serves
    // every remote-backend measurement.
    let daemon_root = scratch_dir("store-daemon");
    let daemon = spawn_daemon(&daemon_root, StoreKind::Pack).expect("spawn bench daemon");

    println!("bench_store: {n_params} params, chain depth {chain_depth}, quick={quick}");
    let rows: Vec<BackendRow> = [StoreKind::Loose, StoreKind::Pack, StoreKind::Remote]
        .into_iter()
        .map(|kind| {
            let row = bench_backend(&daemon, kind, n_params, chain_depth);
            println!(
                "  {:<6}  full {:.2} ms ({:.0} MB/s)  delta {:.3} ms  recover {:.1} ms  \
                 renames/full {:.1}  renames/delta {:.1}  fsyncs/full(fsync) {:.1}  \
                 commit renames/fsyncs {:.1}/{:.1}  round-trips full/delta {:.1}/{:.1}",
                row.kind.to_string(),
                row.full_save_ms,
                row.full_save_mb_s,
                row.delta_save_ms,
                row.recover_ms,
                row.renames_per_full_save,
                row.renames_per_delta_save,
                row.fsyncs_per_full_save_fsync_on,
                row.commit_renames_per_save,
                row.commit_fsyncs_per_save_fsync_on,
                row.round_trips_per_full_save,
                row.round_trips_per_delta_save,
            );
            row
        })
        .collect();

    // --- streaming wire: one object bigger than any legal frame ---
    let stream = bench_stream(&daemon);
    println!(
        "  stream  {} MiB  put {:.0} ms ({:.0} MB/s)  get {:.0} ms ({:.0} MB/s)  \
         peak buffer {} KiB (cap {} KiB)",
        stream.payload_mib,
        stream.put_ms,
        stream.put_mb_s,
        stream.get_ms,
        stream.get_mb_s,
        stream.peak_buffer_bytes >> 10,
        (8 << 20) >> 10,
    );

    // Daemon-side view of the workload just applied: role/generation
    // confirm the bench ran against a primary, and the oplog-entries
    // counter is the deterministic commit count the remote rows imply.
    let control = RemoteStore::connect(daemon.addr(), "bench-control").expect("daemon status");
    let daemon_status = control.status().expect("daemon status");
    println!(
        "  daemon  role {} ({})  generation {}  oplog-entries {}  repl-lag {}",
        daemon_status.role,
        qcheck::remote::proto::role_name(daemon_status.role),
        daemon_status.generation,
        daemon_status.oplog_entries,
        daemon_status.repl_lag,
    );
    drop(control);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"simd\": \"{}\",", qsimd::active().name());
    let _ = writeln!(
        json,
        "  \"sha_backend\": \"{}\",",
        qsimd::sha_backend().name()
    );
    let _ = writeln!(json, "  \"cpu_features\": \"{}\",", qsimd::cpu_features());
    let _ = writeln!(json, "  \"n_params\": {n_params},");
    let _ = writeln!(json, "  \"chain_depth\": {chain_depth},");
    let _ = writeln!(
        json,
        "  \"note\": \"timings jitter on shared boxes; rename/fsync/round-trip counters are \
         deterministic and are the acceptance signal (pack = O(1) renames per save; commit path = \
         manifest log + dual-root flip, 0 renames and 2 fsyncs per save on every backend; remote = \
         localhost qckptd, pipelined put_batch + manifest/LATEST mirroring)\","
    );
    let _ = writeln!(json, "  \"daemon\": {{");
    let _ = writeln!(
        json,
        "    \"role\": \"{}\",",
        qcheck::remote::proto::role_name(daemon_status.role)
    );
    let _ = writeln!(json, "    \"generation\": {},", daemon_status.generation);
    let _ = writeln!(
        json,
        "    \"oplog_entries\": {},",
        daemon_status.oplog_entries
    );
    let _ = writeln!(json, "    \"repl_lag\": {}", daemon_status.repl_lag);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"backends\": {{");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(json, "    \"{}\": {{", row.kind);
        let _ = writeln!(json, "      \"full_save_ms\": {:.4},", row.full_save_ms);
        let _ = writeln!(json, "      \"full_save_mb_s\": {:.2},", row.full_save_mb_s);
        let _ = writeln!(json, "      \"delta_save_ms\": {:.4},", row.delta_save_ms);
        let _ = writeln!(json, "      \"recover_ms\": {:.4},", row.recover_ms);
        let _ = writeln!(
            json,
            "      \"renames_per_full_save\": {:.2},",
            row.renames_per_full_save
        );
        let _ = writeln!(
            json,
            "      \"renames_per_delta_save\": {:.2},",
            row.renames_per_delta_save
        );
        let _ = writeln!(
            json,
            "      \"fsyncs_per_full_save_fsync_on\": {:.2},",
            row.fsyncs_per_full_save_fsync_on
        );
        let _ = writeln!(
            json,
            "      \"commit_renames_per_save\": {:.2},",
            row.commit_renames_per_save
        );
        let _ = writeln!(
            json,
            "      \"commit_fsyncs_per_save_fsync_on\": {:.2},",
            row.commit_fsyncs_per_save_fsync_on
        );
        let _ = writeln!(
            json,
            "      \"protocol_round_trips_per_full_save\": {:.2},",
            row.round_trips_per_full_save
        );
        let _ = writeln!(
            json,
            "      \"protocol_round_trips_per_delta_save\": {:.2}",
            row.round_trips_per_delta_save
        );
        let _ = writeln!(json, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"stream\": {{");
    let _ = writeln!(json, "    \"payload_mib\": {},", stream.payload_mib);
    let _ = writeln!(
        json,
        "    \"max_frame_mib\": {},",
        proto::MAX_FRAME_LEN >> 20
    );
    let _ = writeln!(json, "    \"put_ms\": {:.1},", stream.put_ms);
    let _ = writeln!(json, "    \"put_mb_s\": {:.1},", stream.put_mb_s);
    let _ = writeln!(json, "    \"get_ms\": {:.1},", stream.get_ms);
    let _ = writeln!(json, "    \"get_mb_s\": {:.1},", stream.get_mb_s);
    let _ = writeln!(
        json,
        "    \"peak_buffer_bytes\": {},",
        stream.peak_buffer_bytes
    );
    let _ = writeln!(json, "    \"peak_buffer_cap_bytes\": {}", 8u32 << 20);
    let _ = writeln!(json, "  }},");
    let rename_ratio = rows[0].renames_per_full_save / rows[1].renames_per_full_save.max(1.0);
    let _ = writeln!(
        json,
        "  \"full_save_rename_ratio_loose_over_pack\": {rename_ratio:.1},"
    );
    // Durability latency as the store's qobs registry saw it: every
    // fsync issued by the fsync-on counter sweeps above, all backends.
    // p50/p99 are log2-bucket upper bounds in nanoseconds.
    let fsync_h = qobs::histogram("qcheck_fsync_ns");
    let _ = writeln!(
        json,
        "  \"qobs_fsync_ns\": {{ \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {} }}",
        fsync_h.count(),
        fsync_h.p50(),
        fsync_h.p99()
    );
    json.push_str("}\n");

    std::fs::write("BENCH_store.json", &json).expect("write BENCH_store.json");
    println!("wrote BENCH_store.json");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(daemon_root);
}
