//! Object-store backend comparison, emitting `BENCH_store.json`.
//!
//! ```bash
//! cargo run --release -p qcheck-bench --bin bench_store
//! # quick smoke run:
//! QCHECK_BENCH_QUICK=1 cargo run --release -p qcheck-bench --bin bench_store
//! ```
//!
//! Measures the loose (one file per chunk) and pack (one pack file per
//! save) backends on identical workloads:
//!
//! * full-save and delta-chain save latency / logical throughput;
//! * recovery latency over a delta chain;
//! * syscall-proxy counters from [`qcheck::repo::SaveReport`]: renames and
//!   fsyncs per save (the pack backend's point is O(1) renames per commit,
//!   and a single fsync when durability is on).
//!
//! Timing on a noisy single-core box jitters ±20–30%; the *counter*
//! columns are deterministic and are the acceptance signal.

use std::fmt::Write as _;

use criterion::measure_median_ns;
use qcheck::repo::{CheckpointRepo, SaveOptions, SaveReport};
use qcheck::snapshot::{RngCapture, StateBlob, TrainingSnapshot};
use qcheck::store::StoreKind;
use qcheck_bench::report::{quick_mode, scratch_dir};

fn snapshot_with_params(n_params: usize, step: u64) -> TrainingSnapshot {
    let mut s = TrainingSnapshot::new("bench-store");
    s.step = step;
    s.params = (0..n_params)
        .map(|i| 0.6 + 1e-6 * ((i as u64 + step) as f64).sin())
        .collect();
    s.optimizer = StateBlob::new("adam-v1", vec![0x5A; n_params * 16]);
    s.rng_streams.insert("shots".into(), RngCapture([9; 40]));
    s.total_shots = step * 1000;
    s.shot_ledger = vec![3; 64];
    s
}

fn ms(ns: f64) -> f64 {
    ns / 1e6
}

struct BackendRow {
    kind: StoreKind,
    full_save_ms: f64,
    full_save_mb_s: f64,
    delta_save_ms: f64,
    recover_ms: f64,
    renames_per_full_save: f64,
    fsyncs_per_full_save_fsync_on: f64,
    renames_per_delta_save: f64,
}

fn mean<T: Copy + Into<u64>>(xs: impl Iterator<Item = T>) -> f64 {
    let v: Vec<u64> = xs.map(Into::into).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<u64>() as f64 / v.len() as f64
}

fn counter_sweep(
    kind: StoreKind,
    n_params: usize,
    saves: u64,
    fsync: bool,
    delta: bool,
) -> Vec<SaveReport> {
    let dir = scratch_dir(&format!("store-count-{kind}-{fsync}-{delta}"));
    let repo = CheckpointRepo::open_with(&dir, kind).expect("open scratch repo");
    let opts = SaveOptions {
        fsync,
        ..if delta {
            SaveOptions::incremental(u32::MAX)
        } else {
            SaveOptions::default()
        }
    };
    let reports: Vec<SaveReport> = (1..=saves)
        .map(|step| {
            repo.save(&snapshot_with_params(n_params, step), &opts)
                .unwrap()
        })
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    reports
}

fn bench_backend(kind: StoreKind, n_params: usize, chain_depth: u64) -> BackendRow {
    // --- full-save latency (fresh content each iteration) ---
    let dir = scratch_dir(&format!("store-full-{kind}"));
    let repo = CheckpointRepo::open_with(&dir, kind).expect("open scratch repo");
    let mut step = 0u64;
    let mut logical = 0u64;
    let full_save_ms = ms(measure_median_ns(|| {
        step += 1;
        let r = repo
            .save(
                &snapshot_with_params(n_params, step),
                &SaveOptions::default(),
            )
            .unwrap();
        logical = r.logical_bytes;
        r
    }));
    let _ = std::fs::remove_dir_all(&dir);
    let full_save_mb_s = logical as f64 / 1e6 / (full_save_ms / 1e3);

    // --- delta save on a deep chain + recovery over that chain ---
    let dir = scratch_dir(&format!("store-delta-{kind}"));
    let repo = CheckpointRepo::open_with(&dir, kind).expect("open scratch repo");
    let opts = SaveOptions::incremental(u32::MAX);
    for step in 0..chain_depth {
        repo.save(&snapshot_with_params(n_params, step), &opts)
            .unwrap();
    }
    let mut step = 1000u64;
    let delta_save_ms = ms(measure_median_ns(|| {
        step += 1;
        repo.save(&snapshot_with_params(n_params, step), &opts)
            .unwrap()
    }));
    let recover_ms = ms(measure_median_ns(|| repo.recover().unwrap()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- deterministic syscall-proxy counters ---
    let counter_saves = if quick_mode() { 4 } else { 8 };
    let fulls = counter_sweep(kind, n_params, counter_saves, false, false);
    let fulls_fsync = counter_sweep(kind, n_params, counter_saves, true, false);
    let deltas = counter_sweep(kind, n_params, counter_saves, false, true);

    BackendRow {
        kind,
        full_save_ms,
        full_save_mb_s,
        delta_save_ms,
        recover_ms,
        renames_per_full_save: mean(fulls.iter().map(|r| r.store_renames)),
        fsyncs_per_full_save_fsync_on: mean(fulls_fsync.iter().map(|r| r.store_fsyncs)),
        // Skip the first (full) save of the chain: steady-state deltas are
        // the number that matters for a training loop.
        renames_per_delta_save: mean(deltas.iter().skip(1).map(|r| r.store_renames)),
    }
}

fn main() {
    let quick = quick_mode();
    let (n_params, chain_depth) = if quick { (16_384, 8) } else { (65_536, 32) };

    println!("bench_store: {n_params} params, chain depth {chain_depth}, quick={quick}");
    let rows: Vec<BackendRow> = [StoreKind::Loose, StoreKind::Pack]
        .into_iter()
        .map(|kind| {
            let row = bench_backend(kind, n_params, chain_depth);
            println!(
                "  {:<5}  full {:.2} ms ({:.0} MB/s)  delta {:.3} ms  recover {:.1} ms  \
                 renames/full {:.1}  renames/delta {:.1}  fsyncs/full(fsync) {:.1}",
                row.kind.to_string(),
                row.full_save_ms,
                row.full_save_mb_s,
                row.delta_save_ms,
                row.recover_ms,
                row.renames_per_full_save,
                row.renames_per_delta_save,
                row.fsyncs_per_full_save_fsync_on,
            );
            row
        })
        .collect();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"n_params\": {n_params},");
    let _ = writeln!(json, "  \"chain_depth\": {chain_depth},");
    let _ = writeln!(
        json,
        "  \"note\": \"timings jitter on shared boxes; rename/fsync counters are deterministic \
         and are the acceptance signal (pack = O(1) renames per save)\","
    );
    let _ = writeln!(json, "  \"backends\": {{");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(json, "    \"{}\": {{", row.kind);
        let _ = writeln!(json, "      \"full_save_ms\": {:.4},", row.full_save_ms);
        let _ = writeln!(json, "      \"full_save_mb_s\": {:.2},", row.full_save_mb_s);
        let _ = writeln!(json, "      \"delta_save_ms\": {:.4},", row.delta_save_ms);
        let _ = writeln!(json, "      \"recover_ms\": {:.4},", row.recover_ms);
        let _ = writeln!(
            json,
            "      \"renames_per_full_save\": {:.2},",
            row.renames_per_full_save
        );
        let _ = writeln!(
            json,
            "      \"renames_per_delta_save\": {:.2},",
            row.renames_per_delta_save
        );
        let _ = writeln!(
            json,
            "      \"fsyncs_per_full_save_fsync_on\": {:.2}",
            row.fsyncs_per_full_save_fsync_on
        );
        let _ = writeln!(json, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  }},");
    let rename_ratio = rows[0].renames_per_full_save / rows[1].renames_per_full_save.max(1.0);
    let _ = writeln!(
        json,
        "  \"full_save_rename_ratio_loose_over_pack\": {rename_ratio:.1}"
    );
    json.push_str("}\n");

    std::fs::write("BENCH_store.json", &json).expect("write BENCH_store.json");
    println!("wrote BENCH_store.json");
}
