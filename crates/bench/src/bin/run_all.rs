//! Runs the complete reconstructed evaluation in index order.
fn main() {
    for table in qcheck_bench::experiments::run_all() {
        table.print();
        println!();
    }
}
