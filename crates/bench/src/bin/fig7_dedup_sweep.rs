//! Binary wrapper for experiment `fig7` — see DESIGN.md §3.
fn main() {
    qcheck_bench::experiments::fig7::run().print();
}
