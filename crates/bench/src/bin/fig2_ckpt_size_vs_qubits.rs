//! Binary wrapper for experiment `fig2` — see DESIGN.md §3.
fn main() {
    qcheck_bench::experiments::fig2::run().print();
}
