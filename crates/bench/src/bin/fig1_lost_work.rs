//! Binary wrapper for experiment `fig1` — see DESIGN.md §3.
fn main() {
    qcheck_bench::experiments::fig1::run().print();
}
