//! R-T4 — Ablation of the checkpoint-path design choices.
//!
//! Each row adds one mechanism and measures what it buys on a real snapshot
//! stream: bytes per checkpoint, commit latency, and — the number the
//! training loop actually feels — the stall on the training thread
//! (synchronous commit vs background submission).

use qcheck::background::BackgroundCheckpointer;
use qcheck::repo::{CheckpointRepo, CommitMode, CompressionPolicy, SaveOptions};
use qcheck::snapshot::Checkpointable;
use qcheck::Compression;
use qsim::measure::EvalMode;

use crate::report::{quick_mode, scratch_dir, Table};
use crate::workloads::{median_ms, time_ms, vqe_tfim_trainer_sgd};

/// Pre-captures a stream of consecutive training snapshots.
fn snapshot_stream(steps: usize) -> Vec<qcheck::TrainingSnapshot> {
    let mut trainer = vqe_tfim_trainer_sgd(8, 4, 29, EvalMode::Exact, 0.05);
    (0..steps)
        .map(|_| {
            trainer.train_step().expect("step");
            trainer.capture()
        })
        .collect()
}

struct Ablation {
    name: &'static str,
    options: SaveOptions,
}

/// Runs the experiment and returns the rendered table.
pub fn run() -> Table {
    let steps = if quick_mode() { 8 } else { 24 };
    let stream = snapshot_stream(steps);

    let ablations = vec![
        Ablation {
            name: "naive: in-place, raw",
            options: SaveOptions {
                commit: CommitMode::InPlaceUnsafe,
                compression: CompressionPolicy::Uniform(Compression::None),
                ..SaveOptions::default()
            },
        },
        Ablation {
            name: "+atomic commit",
            options: SaveOptions {
                compression: CompressionPolicy::Uniform(Compression::None),
                ..SaveOptions::default()
            },
        },
        Ablation {
            name: "+section codecs",
            options: SaveOptions::default(),
        },
        Ablation {
            name: "+delta chains",
            options: SaveOptions::incremental(16),
        },
        Ablation {
            name: "+fsync",
            options: SaveOptions {
                fsync: true,
                ..SaveOptions::incremental(16)
            },
        },
    ];

    let mut table = Table::new(
        "R-T4  checkpoint-path ablation (8q/4l SGD stream, medians over the run)",
        &[
            "configuration",
            "bytes/ckpt",
            "commit-ms",
            "train-stall-ms",
            "crash-safe",
        ],
    );

    for ab in &ablations {
        let dir = scratch_dir("table4");
        let repo = CheckpointRepo::open(&dir).expect("repo");
        let mut bytes = Vec::new();
        let mut commit_ms = Vec::new();
        for snap in &stream {
            let (report, ms) = time_ms(|| repo.save(snap, &ab.options));
            let report = report.expect("save");
            bytes.push(report.bytes_written());
            commit_ms.push(ms);
        }
        bytes.sort_unstable();
        let med_bytes = bytes[bytes.len() / 2];
        let med_ms = median_ms(&mut commit_ms);
        table.row(vec![
            ab.name.to_string(),
            med_bytes.to_string(),
            format!("{med_ms:.2}"),
            format!("{med_ms:.2}"), // synchronous: the stall is the commit
            (!matches!(ab.options.commit, CommitMode::InPlaceUnsafe)).to_string(),
        ]);
        let _ = std::fs::remove_dir_all(dir);
    }

    // Background submission: same storage work, near-zero training stall.
    // Submissions are interleaved with real training compute (as in a live
    // loop) so the writer has the step time to drain — submitting in a
    // tight loop would just measure back-pressure.
    {
        let dir = scratch_dir("table4-bg");
        let mut bg = BackgroundCheckpointer::spawn(
            CheckpointRepo::open(&dir).expect("repo"),
            SaveOptions::incremental(16),
        );
        let mut trainer = vqe_tfim_trainer_sgd(8, 4, 31, EvalMode::Exact, 0.05);
        let mut stall_ms = Vec::new();
        for _ in 0..stream.len() {
            trainer.train_step().expect("step");
            let ((), ms) = time_ms(|| {
                let snap = trainer.capture();
                bg.submit(snap).expect("submit")
            });
            stall_ms.push(ms);
        }
        bg.drain().expect("drain");
        let reports = bg.completed();
        let mut bytes: Vec<u64> = reports.iter().map(|r| r.bytes_written()).collect();
        bytes.sort_unstable();
        let med_bytes = bytes.get(bytes.len() / 2).copied().unwrap_or(0);
        let med_stall = median_ms(&mut stall_ms);
        table.row(vec![
            "+background writer".to_string(),
            med_bytes.to_string(),
            "(off critical path)".to_string(),
            format!("{med_stall:.2}"),
            "true".to_string(),
        ]);
        drop(bg);
        let _ = std::fs::remove_dir_all(dir);
    }

    table.note("each mechanism is additive; 'train-stall' is what the optimizer loop waits for");
    table.note("the background writer removes the commit from the critical path entirely — the stall is a snapshot clone plus a channel send");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_covers_all_configurations() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let t = run();
        assert_eq!(t.rows.len(), 6);
        // Delta rows must not exceed raw-bytes rows.
        let raw: u64 = t.rows[0][1].parse().unwrap();
        let delta: u64 = t.rows[3][1].parse().unwrap();
        assert!(delta <= raw, "delta {delta} vs raw {raw}");
        // Background stall must not exceed its synchronous counterpart by
        // more than noise.
        let sync_stall: f64 = t.rows[3][3].parse().unwrap();
        let bg_stall: f64 = t.rows[5][3].parse().unwrap();
        assert!(
            bg_stall <= sync_stall * 3.0 + 1.0,
            "bg stall {bg_stall} vs sync {sync_stall}"
        );
    }
}
