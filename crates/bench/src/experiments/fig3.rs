//! R-F3 — Checkpoint overhead vs interval, with the Young–Daly optimum.
//!
//! The checkpoint write cost `C` is *measured* on the real `qcheck` stack
//! (median of repeated commits of a real training snapshot); the overhead
//! curve is then produced both from the first-order analytic model and from
//! the `qhw` simulation, sweeping the interval through the Young–Daly
//! optimum `τ* = √(2·C·MTBF)`.

use qcheck::policy::math;
use qcheck::repo::{CheckpointRepo, SaveOptions};
use qcheck::snapshot::Checkpointable;
use qhw::client::{mean_outcome, CheckpointStrategy, Environment, JobSpec};
use qhw::event::{HOUR, MINUTE, SECOND};
use qhw::queue::WaitModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{quick_mode, scratch_dir, Table};
use crate::workloads::{median_ms, time_ms, vqe_tfim_trainer_spsa};

/// Measures the real cost (ms) of committing one full snapshot.
pub fn measured_checkpoint_cost_ms() -> f64 {
    let dir = scratch_dir("fig3-cost");
    let repo = CheckpointRepo::open(&dir).expect("repo");
    let mut trainer = vqe_tfim_trainer_spsa(10, 4, 3, qsim::measure::EvalMode::Shots(128));
    for _ in 0..3 {
        trainer.train_step().expect("step");
    }
    let snap = trainer.capture();
    let reps = if quick_mode() { 5 } else { 15 };
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let (r, ms) = time_ms(|| repo.save(&snap, &SaveOptions::default()));
            r.expect("save");
            ms
        })
        .collect();
    let cost = median_ms(&mut samples);
    let _ = std::fs::remove_dir_all(dir);
    cost
}

/// Runs the experiment and returns the rendered table.
pub fn run() -> Table {
    let cost_ms = measured_checkpoint_cost_ms();
    // Scale the measured cost into the simulated regime: the simulated
    // "checkpoint" also covers shipping state off-node; use max(measured,
    // 0.5 s) so the sweep has a visible left wall.
    let write_cost = ((cost_ms * 1000.0) as u64).max(SECOND / 2);
    let mtbf = 2 * HOUR;
    let spec = JobSpec {
        total_steps: 2000,
        step_cost: 15 * SECOND,
    };
    let env = Environment {
        queue: WaitModel::Constant { wait: 5 * MINUTE },
        mtbf: Some(mtbf),
        session_ttl: None,
        device: None,
    };
    let restore = 5 * SECOND;
    let tau_star = math::young_daly_interval(write_cost as f64, mtbf as f64);
    let opt_steps = (tau_star / spec.step_cost as f64).round().max(1.0) as u64;

    let multipliers: Vec<f64> = if quick_mode() {
        vec![0.25, 1.0, 4.0]
    } else {
        vec![0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
    };
    let trials = if quick_mode() { 8 } else { 40 };

    let ideal = (spec.total_steps * spec.step_cost + 5 * MINUTE) as f64;
    let mut table = Table::new(
        format!(
            "R-F3  overhead vs checkpoint interval (C={:.1} ms measured → {} µs sim; MTBF=2 h; τ*={} steps)",
            cost_ms, write_cost, opt_steps
        ),
        &["interval-steps", "tau/tau*", "model-overhead-%", "sim-overhead-%"],
    );
    let mut rng = StdRng::seed_from_u64(7);
    for m in multipliers {
        let interval = ((opt_steps as f64 * m).round() as u64).max(1);
        let tau = (interval * spec.step_cost) as f64;
        let model = math::expected_overhead_fraction(
            tau,
            write_cost as f64,
            (5 * MINUTE + restore) as f64,
            mtbf as f64,
        );
        let strategy = CheckpointStrategy::periodic(interval, write_cost, restore);
        let (makespan, _, aborts) = mean_outcome(&spec, &strategy, &env, trials, &mut rng);
        assert_eq!(aborts, 0, "aborted runs in sweep");
        let sim = makespan / ideal - 1.0;
        table.row(vec![
            interval.to_string(),
            format!("{m:.3}"),
            format!("{:.2}", model * 100.0),
            format!("{:.2}", sim * 100.0),
        ]);
    }
    table.note("the curve is U-shaped: tiny intervals pay write overhead, huge intervals pay rework; the minimum sits near tau/tau* = 1");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_cost_is_positive_and_finite() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let c = measured_checkpoint_cost_ms();
        assert!(c > 0.0 && c < 60_000.0, "cost {c} ms");
    }

    #[test]
    fn sweep_produces_u_shape_data() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let t = run();
        assert!(t.rows.len() >= 3);
        // Model overhead at the extremes must exceed the middle row.
        let parse = |r: &Vec<String>| -> f64 { r[2].parse().unwrap() };
        let first = parse(&t.rows[0]);
        let mid = parse(&t.rows[1]);
        let last = parse(&t.rows[t.rows.len() - 1]);
        assert!(first > mid && last > mid, "{first} {mid} {last}");
    }
}
