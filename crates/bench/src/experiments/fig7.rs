//! R-F7 — Content-addressed dedup across a hyperparameter sweep.
//!
//! Eight runs share the same initialization and the same (large) dataset
//! blob but train with different learning rates. With a content-addressed
//! store, the shared chunks are written once; without, every run pays full
//! price. The saving is measured on the real store.

use qcheck::repo::{CheckpointRepo, SaveOptions};
use qcheck::snapshot::Checkpointable;
use qcheck::store::ObjectStore;
use qsim::measure::EvalMode;

use crate::report::{human_bytes, quick_mode, scratch_dir, Table};
use crate::workloads::vqe_tfim_trainer;

/// Runs the experiment and returns the rendered table.
pub fn run() -> Table {
    let n_runs = if quick_mode() { 3 } else { 8 };
    let steps_per_run = if quick_mode() { 3 } else { 8 };
    // A shared dataset blob every run carries in a custom section (e.g. the
    // encoded training set); identical across runs → dedups to one copy.
    let dataset_blob: Vec<u8> = (0..256 * 1024u32)
        .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
        .collect();

    let dir = scratch_dir("fig7");
    let repo = CheckpointRepo::open(&dir).expect("repo");
    let mut table = Table::new(
        "R-F7  dedup across an LR sweep (shared init + shared 256 KiB dataset blob)",
        &[
            "runs",
            "logical-bytes",
            "store-bytes",
            "saved",
            "dedup-chunk-hits",
        ],
    );
    let mut logical_total = 0u64;
    let mut dedup_hits = 0usize;
    for run in 0..n_runs {
        let lr = 0.01 * (run + 1) as f64;
        // Same seed ⇒ identical initial parameters across the sweep.
        let mut trainer = vqe_tfim_trainer(6, 3, 1234, EvalMode::Exact, lr);
        for step in 0..steps_per_run {
            if step > 0 {
                trainer.train_step().expect("step");
            }
            let mut snap = trainer.capture();
            snap.label = format!("sweep-lr-{lr}");
            snap.custom.insert("dataset".into(), dataset_blob.clone());
            let report = repo.save(&snap, &SaveOptions::default()).expect("save");
            logical_total += report.logical_bytes;
            dedup_hits += report.chunks_deduped;
        }
        let store_bytes = repo.store().stats().expect("store").total_bytes;
        table.row(vec![
            (run + 1).to_string(),
            human_bytes(logical_total as u128),
            human_bytes(store_bytes as u128),
            format!(
                "{:.1}%",
                100.0 * (1.0 - store_bytes as f64 / logical_total.max(1) as f64)
            ),
            dedup_hits.to_string(),
        ]);
    }
    let _ = std::fs::remove_dir_all(dir);
    table.note("the dataset blob and the shared initial checkpoint are stored once; per-run deltas (trained params, ledgers) are unique");
    table.note("saving grows with run count: every additional run re-references the shared chunks");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_saves_most_of_the_sweep() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let t = run();
        let last = t.rows.last().unwrap();
        let saved: f64 = last[3].trim_end_matches('%').parse().unwrap();
        assert!(saved > 50.0, "dedup saved only {saved}%");
        let hits: usize = last[4].parse().unwrap();
        assert!(hits > 0);
    }
}
