//! R-F6 — Recovery latency vs delta-chain length.
//!
//! Resolving a delta checkpoint walks its chain back to the last full
//! checkpoint, fetching and verifying every layer. Latency grows linearly
//! with chain length; `compact_latest` rewrites the chain into a full
//! checkpoint and caps it.

use qcheck::repo::{CheckpointRepo, SaveOptions};
use qcheck::snapshot::Checkpointable;
use qcheck::store::ObjectStore;
use qsim::measure::EvalMode;

use crate::report::{quick_mode, scratch_dir, Table};
use crate::workloads::{median_ms, time_ms, vqe_tfim_trainer};

/// Runs the experiment and returns the rendered table.
pub fn run() -> Table {
    let chain_lengths: Vec<u32> = if quick_mode() {
        vec![0, 4, 8]
    } else {
        vec![0, 1, 2, 4, 8, 16, 32, 64]
    };
    let reps = if quick_mode() { 3 } else { 9 };
    let mut table = Table::new(
        "R-F6  recovery latency vs delta-chain length (6q/3l snapshot stream)",
        &[
            "chain-len",
            "recover-ms",
            "post-compaction-ms",
            "stored-bytes-chain",
        ],
    );
    for &target_len in &chain_lengths {
        let dir = scratch_dir("fig6");
        let repo = CheckpointRepo::open(&dir).expect("repo");
        let mut trainer = vqe_tfim_trainer(6, 3, 13, EvalMode::Exact, 0.05);
        // Unbounded chain growth up to the target.
        let opts = SaveOptions::incremental(u32::MAX);
        for _ in 0..=target_len {
            trainer.train_step().expect("step");
            repo.save(&trainer.capture(), &opts).expect("save");
        }
        let latest = repo.read_latest().expect("latest").expect("pointer");
        let manifest = repo.load_manifest(&latest).expect("manifest");
        assert_eq!(manifest.chain_len, target_len, "chain construction");

        let mut samples: Vec<f64> = (0..reps)
            .map(|_| {
                let (r, ms) = time_ms(|| repo.recover());
                r.expect("recover");
                ms
            })
            .collect();
        let recover_ms = median_ms(&mut samples);
        let chain_bytes = repo.store().stats().expect("store size").total_bytes;

        // Compact, then re-measure.
        repo.compact_latest(&opts).expect("compact");
        let mut samples: Vec<f64> = (0..reps)
            .map(|_| {
                let (r, ms) = time_ms(|| repo.recover());
                r.expect("recover");
                ms
            })
            .collect();
        let compacted_ms = median_ms(&mut samples);

        table.row(vec![
            target_len.to_string(),
            format!("{recover_ms:.2}"),
            format!("{compacted_ms:.2}"),
            chain_bytes.to_string(),
        ]);
        let _ = std::fs::remove_dir_all(dir);
    }
    table.note("recovery walks the whole chain (fetch + decompress + patch + hash-verify per layer): latency is linear in chain length");
    table.note("compaction rewrites the tip as a full checkpoint; recovery afterwards is flat regardless of history");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_chain_and_compaction_caps_it() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let t = run();
        assert!(t.rows.len() >= 3);
        let recover: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let compacted: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        // Longest chain should take longer to recover than chain 0, and
        // compaction should bring it back near the chain-0 cost.
        let longest = *recover.last().unwrap();
        assert!(
            longest >= recover[0],
            "chain recovery {longest} vs base {}",
            recover[0]
        );
        assert!(
            compacted.last().unwrap() <= &(longest.max(0.5) * 2.0),
            "compaction did not cap latency"
        );
    }
}
