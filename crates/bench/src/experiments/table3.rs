//! R-T3 — Compression ratios on parameter streams across training phases.
//!
//! Codecs behave differently as training progresses. A raw parameter
//! vector is near-incompressible at any phase (random angles). The win is
//! in *deltas*: XOR of the current parameters against the previous step's,
//! compressed with zero-byte elision, shrinks as SGD updates vanish toward
//! convergence. Adam is measured alongside to show the optimizer effect.

use qcheck::compress::{f64s_to_bytes, Compression, CompressionStats};
use qnn::trainer::Trainer;
use qsim::measure::EvalMode;

use crate::report::{quick_mode, Table};
use crate::workloads::{vqe_tfim_trainer, vqe_tfim_trainer_sgd};

/// Ratio of the XOR-vs-previous-step payload under zero-elision.
fn delta_ratio(prev: &[f64], cur: &[f64]) -> f64 {
    let a = f64s_to_bytes(prev);
    let b = f64s_to_bytes(cur);
    let xored: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
    let compressed = Compression::ZeroElideF64.compress(&xored);
    b.len() as f64 / compressed.len().max(1) as f64
}

fn phase_rows(label: &str, mut trainer: Trainer, phases: &[(&str, usize)], table: &mut Table) {
    let mut done = 0usize;
    let mut prev: Vec<f64> = trainer.params().to_vec();
    for &(phase, step) in phases {
        while done < step {
            prev = trainer.params().to_vec();
            trainer.train_step().expect("step");
            done += 1;
        }
        let bytes = f64s_to_bytes(trainer.params());
        let rle = CompressionStats::measure(Compression::Rle, &bytes);
        let xor = CompressionStats::measure(Compression::XorF64, &bytes);
        let update_norm: f64 = trainer
            .params()
            .iter()
            .zip(&prev)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        table.row(vec![
            label.to_string(),
            phase.to_string(),
            step.to_string(),
            format!("{:.2}", rle.ratio()),
            format!("{:.2}", xor.ratio()),
            format!("{:.2}", delta_ratio(&prev, trainer.params())),
            format!("{update_norm:.2e}"),
        ]);
    }
}

/// Runs the experiment and returns the rendered table.
pub fn run() -> Table {
    // Meaningful-byte counts in the XOR payload drop one byte per 256×
    // decay of the update magnitude, so the phases must span the full
    // convergence of the run (update l2 falls ~8e-2 → ~9e-4 by step 400).
    let phases: Vec<(&str, usize)> = if quick_mode() {
        vec![("early", 1), ("late", 400)]
    } else {
        vec![("early", 1), ("mid", 200), ("late", 600)]
    };
    let mut table = Table::new(
        "R-T3  compression ratio (raw/compressed) on parameter sections by phase and optimizer",
        &[
            "optimizer",
            "phase",
            "step",
            "rle",
            "xor-f64",
            "delta+zero-elide",
            "step-update-l2",
        ],
    );
    phase_rows(
        "sgd",
        vqe_tfim_trainer_sgd(6, 4, 17, EvalMode::Exact, 0.05),
        &phases,
        &mut table,
    );
    phase_rows(
        "adam",
        vqe_tfim_trainer(6, 4, 17, EvalMode::Exact, 0.05),
        &phases,
        &mut table,
    );
    table.note("full-vector codecs (rle, xor-f64) hover near 1: random angles are incompressible at any phase");
    table.note("delta+zero-elide tracks the step-update magnitude (last column): as it decays, more XOR bytes are zero");
    table.note("parameter updates shrink for both optimizers here; Adam's checkpoint deltas stay expensive anyway because its moment vectors churn — see R-F5");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_late_phase_delta_compresses_better_than_early() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let t = run();
        // Rows: sgd-early, sgd-late, adam-early, adam-late.
        assert!(t.rows.len() >= 4);
        let ratio = |row: &Vec<String>| -> f64 { row[5].parse().unwrap() };
        let sgd_early = ratio(&t.rows[0]);
        let sgd_late = ratio(&t.rows[1]);
        assert!(
            sgd_late > sgd_early,
            "sgd delta ratio should improve: {sgd_early} → {sgd_late}"
        );
    }

    #[test]
    fn ratios_are_positive() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let t = run();
        for row in &t.rows {
            for cell in row.iter().take(6).skip(3) {
                let r: f64 = cell.parse().unwrap();
                assert!(r > 0.0);
            }
        }
    }
}
