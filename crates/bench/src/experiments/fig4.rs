//! R-F4 — Time-to-solution under failures: no checkpointing vs full vs
//! incremental.
//!
//! Write costs for the full and incremental strategies are measured on the
//! real `qcheck` writer (full snapshot vs delta against the previous step),
//! then a 2000-step job is replayed through `qhw` across an MTBF sweep.

use qcheck::repo::{CheckpointRepo, SaveOptions};
use qcheck::snapshot::Checkpointable;
use qhw::client::{mean_outcome, CheckpointStrategy, Environment, JobSpec};
use qhw::event::{HOUR, SECOND};
use qhw::queue::WaitModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{human_seconds, quick_mode, scratch_dir, Table};
use crate::workloads::{median_ms, time_ms, vqe_tfim_trainer_spsa};

/// Measures (full, delta) commit costs in ms on a real training snapshot
/// stream.
pub fn measured_costs_ms() -> (f64, f64) {
    let dir = scratch_dir("fig4-cost");
    let repo = CheckpointRepo::open(&dir).expect("repo");
    let mut trainer = vqe_tfim_trainer_spsa(10, 4, 5, qsim::measure::EvalMode::Shots(64));
    let reps = if quick_mode() { 4 } else { 10 };
    let mut full_samples = Vec::new();
    let mut delta_samples = Vec::new();
    let full_opts = SaveOptions::default();
    let delta_opts = SaveOptions::incremental(16);
    for _ in 0..reps {
        trainer.train_step().expect("step");
        let snap = trainer.capture();
        let (r, ms) = time_ms(|| repo.save(&snap, &full_opts));
        r.expect("full save");
        full_samples.push(ms);
        let (r, ms) = time_ms(|| repo.save(&snap, &delta_opts));
        r.expect("delta save");
        delta_samples.push(ms);
    }
    let out = (median_ms(&mut full_samples), median_ms(&mut delta_samples));
    let _ = std::fs::remove_dir_all(dir);
    out
}

/// Runs the experiment and returns the rendered table.
pub fn run() -> Table {
    let (full_ms, delta_ms) = measured_costs_ms();
    // Project into the simulated regime (state shipped off-node): floor the
    // costs so the strategies stay distinguishable in simulated time.
    let full_cost = ((full_ms * 1000.0) as u64).max(2 * SECOND);
    let delta_cost = ((delta_ms * 1000.0) as u64).max(full_cost / 4);
    let spec = JobSpec {
        total_steps: 2000,
        step_cost: 15 * SECOND,
    };
    let ideal_h = (spec.total_steps * spec.step_cost) as f64 / HOUR as f64;
    let mtbf_hours: Vec<f64> = if quick_mode() {
        vec![0.5, 2.0]
    } else {
        vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
    };
    let trials = if quick_mode() { 6 } else { 30 };
    let mut table = Table::new(
        format!(
            "R-F4  time-to-solution vs MTBF (job ideal {:.1} h; full-ckpt {} µs, delta-ckpt {} µs)",
            ideal_h, full_cost, delta_cost
        ),
        &["mtbf", "none", "full-ckpt", "incremental", "none/incr"],
    );
    let mut rng = StdRng::seed_from_u64(99);
    for &h in &mtbf_hours {
        let mtbf = (h * HOUR as f64) as u64;
        let env = Environment {
            queue: WaitModel::LogNormal {
                median_s: 300.0,
                sigma: 1.0,
            },
            mtbf: Some(mtbf),
            session_ttl: None,
            device: None,
        };
        // Young–Daly intervals per strategy cost.
        let interval = |cost: u64| -> u64 {
            let tau = qcheck::policy::math::young_daly_interval(cost as f64, mtbf as f64);
            ((tau / spec.step_cost as f64).round() as u64).max(1)
        };
        let (none_ms, _, none_aborts) =
            mean_outcome(&spec, &CheckpointStrategy::None, &env, trials, &mut rng);
        let full = CheckpointStrategy::periodic(interval(full_cost), full_cost, 5 * SECOND);
        let (full_mk, _, _) = mean_outcome(&spec, &full, &env, trials, &mut rng);
        let incr = CheckpointStrategy::periodic(interval(delta_cost), delta_cost, 8 * SECOND);
        let (incr_mk, _, _) = mean_outcome(&spec, &incr, &env, trials, &mut rng);
        let none_cell = if none_aborts > 0 {
            format!(
                ">{} (aborts {}/{})",
                human_seconds(none_ms / 1e6),
                none_aborts,
                trials
            )
        } else {
            human_seconds(none_ms / 1e6)
        };
        table.row(vec![
            format!("{h:.2} h"),
            none_cell,
            human_seconds(full_mk / 1e6),
            human_seconds(incr_mk / 1e6),
            format!("{:.1}x", none_ms / incr_mk),
        ]);
    }
    table.note("no-checkpoint makespan grows super-linearly as MTBF shrinks below the job length (memoryless restart)");
    table.note("incremental ≥ full: cheaper writes permit shorter Young–Daly intervals, shrinking rework; restore pays a small chain penalty");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_are_measured_and_ordered() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let (full, delta) = measured_costs_ms();
        assert!(full > 0.0 && delta > 0.0);
    }

    #[test]
    fn checkpointing_strategies_beat_none_at_low_mtbf() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let t = run();
        assert!(!t.rows.is_empty());
        // Speedup column parses as ≥ 1 at the lowest MTBF.
        let speedup: f64 = t.rows[0]
            .last()
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(speedup >= 1.0, "speedup {speedup}");
    }
}
