//! R-T1 — Hybrid training-state inventory.
//!
//! What actually needs to survive a failure? For each model scale: the
//! per-component byte breakdown of the classical snapshot, contrasted with
//! the `2^n · 16 B` cost of naively dumping the simulator state.

use qcheck::repo::naive_statevector_bytes;
use qcheck::snapshot::Checkpointable;
use qsim::measure::EvalMode;

use crate::report::{human_bytes, quick_mode, Table};
use crate::workloads::vqe_tfim_trainer_spsa;

/// Runs the experiment and returns the rendered table.
pub fn run() -> Table {
    let configs: Vec<(usize, usize)> = if quick_mode() {
        vec![(4, 2), (8, 4)]
    } else {
        vec![(4, 2), (8, 4), (12, 6), (16, 8)]
    };
    let mut table = Table::new(
        "R-T1  hybrid training-state inventory (VQE/TFIM, Adam, 512-shot SPSA, 5 steps)",
        &[
            "qubits",
            "layers",
            "params",
            "params-B",
            "optimizer-B",
            "rng-B",
            "ledger-B",
            "metrics-B",
            "meta-B",
            "classical-total",
            "statevector",
            "ratio",
        ],
    );
    for (n, layers) in configs {
        let mut trainer = vqe_tfim_trainer_spsa(n, layers, 7, EvalMode::Shots(512));
        for _ in 0..5 {
            trainer.train_step().expect("training step");
        }
        let snap = trainer.capture();
        let sizes = snap.section_sizes();
        let get = |name: &str| -> usize {
            sizes
                .iter()
                .find(|(s, _)| s == name)
                .map(|(_, b)| *b)
                .unwrap_or(0)
        };
        let total: usize = sizes.iter().map(|(_, b)| b).sum();
        let sv = naive_statevector_bytes(n as u32);
        table.row(vec![
            n.to_string(),
            layers.to_string(),
            snap.params.len().to_string(),
            get("params").to_string(),
            get("optimizer").to_string(),
            get("rng").to_string(),
            get("ledger").to_string(),
            get("metrics").to_string(),
            get("meta").to_string(),
            human_bytes(total as u128),
            human_bytes(sv),
            format!("{:.0}x", sv as f64 / total as f64),
        ]);
    }
    table.note("classical state is O(params); statevector dump is O(2^n) — the gap is the paper's core size argument");
    table.note(
        "ledger grows with completed steps (5 steps here); all other components are steady-state",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_rows_cover_configs() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let t = run();
        assert!(t.rows.len() >= 2);
        // Ratio column must show the statevector dominating at 8 qubits.
        let last = t.rows.last().unwrap();
        let ratio: f64 = last.last().unwrap().trim_end_matches('x').parse().unwrap();
        assert!(ratio > 0.5);
    }
}
