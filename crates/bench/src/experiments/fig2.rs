//! R-F2 — Checkpoint size vs qubit count.
//!
//! The naive baseline serializes the simulator state (`2^n` amplitudes);
//! the hybrid-classical snapshot is `O(P)` and essentially flat in qubit
//! count at fixed ansatz depth. Sizes here are *measured*: the classical
//! snapshot is committed through the real `qcheck` writer, and the
//! statevector is actually produced by the simulator up to 16 qubits (the
//! `2^n·16` line is extended analytically above that).

use qcheck::repo::{naive_statevector_bytes, CheckpointRepo, SaveOptions};
use qcheck::snapshot::Checkpointable;
use qsim::measure::EvalMode;

use crate::report::{human_bytes, quick_mode, scratch_dir, Table};
use crate::workloads::vqe_tfim_trainer_spsa;

/// Runs the experiment and returns the rendered table.
pub fn run() -> Table {
    let qubit_counts: Vec<usize> = if quick_mode() {
        vec![4, 8]
    } else {
        vec![4, 6, 8, 10, 12, 14, 16]
    };
    let layers = 4;
    let mut table = Table::new(
        "R-F2  checkpoint size vs qubits (hardware-efficient, 4 layers)",
        &[
            "qubits",
            "params",
            "classical-stored",
            "classical-logical",
            "statevector-real",
            "statevector-model",
            "sv/classical",
        ],
    );
    for n in qubit_counts {
        let dir = scratch_dir("fig2");
        let repo = CheckpointRepo::open(&dir).expect("repo");
        let mut trainer = vqe_tfim_trainer_spsa(n, layers, 11, EvalMode::Shots(128));
        for _ in 0..3 {
            trainer.train_step().expect("step");
        }
        let snap = trainer.capture();
        let report = repo.save(&snap, &SaveOptions::default()).expect("save");

        // Real statevector bytes, produced by actually running the circuit.
        let state = trainer
            .circuit()
            .run(trainer.params())
            .expect("run circuit");
        let sv_real = state.raw_byte_size() as u128;
        let sv_model = naive_statevector_bytes(n as u32);
        assert_eq!(sv_real, sv_model, "model must match the real simulator");

        table.row(vec![
            n.to_string(),
            snap.params.len().to_string(),
            human_bytes(report.bytes_written() as u128),
            human_bytes(report.logical_bytes as u128),
            human_bytes(sv_real),
            human_bytes(sv_model),
            format!("{:.1}x", sv_model as f64 / report.bytes_written() as f64),
        ]);
        let _ = std::fs::remove_dir_all(dir);
    }
    // Analytic extension beyond simulable sizes.
    for n in [20u32, 24, 28] {
        if quick_mode() {
            break;
        }
        let params = (layers * 2 * n as usize + n as usize) as u128 * 8;
        let classical_est = params + 4096; // + fixed sections, conservative
        table.row(vec![
            n.to_string(),
            (layers * 2 * n as usize + n as usize).to_string(),
            format!("~{}", human_bytes(classical_est)),
            format!("~{}", human_bytes(classical_est)),
            "-".to_string(),
            human_bytes(naive_statevector_bytes(n)),
            format!(
                "{:.0}x",
                naive_statevector_bytes(n) as f64 / classical_est as f64
            ),
        ]);
    }
    table
        .note("classical snapshot is flat in n at fixed depth; statevector dump doubles per qubit");
    table.note("rows 20–28 qubits are analytic (statevector no longer simulable on this host)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classical_size_is_orders_below_statevector_at_16q() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let t = run();
        assert!(t.rows.len() >= 2);
        assert!(t.render().contains("R-F2"));
    }
}
