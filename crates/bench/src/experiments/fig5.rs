//! R-F5 — Per-checkpoint bytes over a real training run.
//!
//! A real VQE run is checkpointed after every step under several
//! configurations. The headline comparison is full vs incremental
//! (delta-chain) checkpoints; the secondary finding is that *the optimizer
//! determines delta compressibility*: SGD's per-step updates shrink with
//! the gradient as training converges, so the XOR-against-base payload
//! collapses, while Adam's normalized steps stay at learning-rate magnitude
//! forever and keep deltas near full size.

use qcheck::repo::{CheckpointRepo, CompressionPolicy, SaveOptions};
use qcheck::snapshot::Checkpointable;
use qcheck::Compression;
use qnn::trainer::Trainer;
use qsim::measure::EvalMode;

use crate::report::{quick_mode, scratch_dir, Table};
use crate::workloads::{vqe_tfim_trainer, vqe_tfim_trainer_sgd};

/// Byte trace of one (trainer, options) configuration across a run,
/// tracking only the `params`+`optimizer` sections (the growing ledger and
/// metrics tails are identical across configurations and would mask the
/// comparison).
fn trace(mut trainer: Trainer, options: &SaveOptions, steps: usize) -> Vec<u64> {
    let dir = scratch_dir("fig5");
    let repo = CheckpointRepo::open(&dir).expect("repo");
    let mut bytes = Vec::with_capacity(steps);
    for _ in 0..steps {
        trainer.train_step().expect("step");
        let snap = trainer.capture();
        let report = repo.save(&snap, options).expect("save");
        let manifest = repo.load_manifest(&report.id).expect("manifest");
        let tracked: u64 = manifest
            .sections
            .iter()
            .filter(|s| s.name == "params" || s.name == "optimizer")
            .flat_map(|s| s.chunks.iter())
            .map(|c| c.len as u64)
            .sum();
        bytes.push(tracked);
    }
    let _ = std::fs::remove_dir_all(dir);
    bytes
}

/// Runs the experiment and returns the rendered table.
pub fn run() -> Table {
    let steps = if quick_mode() { 12 } else { 200 };
    let raw_opts = SaveOptions {
        compression: CompressionPolicy::Uniform(Compression::None),
        ..SaveOptions::default()
    };
    let delta_opts = SaveOptions::incremental(u32::MAX);

    // Each optimizer is compared against its *own* raw-full baseline:
    // Adam's snapshot carries 3× the state (params + m + v moments).
    let full_sgd = trace(
        vqe_tfim_trainer_sgd(6, 3, 21, EvalMode::Exact, 0.05),
        &raw_opts,
        steps,
    );
    let delta_sgd = trace(
        vqe_tfim_trainer_sgd(6, 3, 21, EvalMode::Exact, 0.05),
        &delta_opts,
        steps,
    );
    let full_adam = trace(
        vqe_tfim_trainer(6, 3, 21, EvalMode::Exact, 0.05),
        &raw_opts,
        steps,
    );
    let delta_adam = trace(
        vqe_tfim_trainer(6, 3, 21, EvalMode::Exact, 0.05),
        &delta_opts,
        steps,
    );

    let mut table = Table::new(
        "R-F5  params+optimizer bytes per checkpoint over a VQE run (6q/3l)",
        &[
            "step",
            "sgd-full",
            "sgd-delta",
            "sgd-ratio",
            "adam-full",
            "adam-delta",
            "adam-ratio",
        ],
    );
    let sample_every = (steps / 10).max(1);
    for i in (0..steps).step_by(sample_every) {
        table.row(vec![
            (i + 1).to_string(),
            full_sgd[i].to_string(),
            delta_sgd[i].to_string(),
            format!("{:.2}", delta_sgd[i] as f64 / full_sgd[i] as f64),
            full_adam[i].to_string(),
            delta_adam[i].to_string(),
            format!("{:.2}", delta_adam[i] as f64 / full_adam[i] as f64),
        ]);
    }
    let sum = |xs: &[u64]| xs.iter().sum::<u64>();
    table.note(format!(
        "cumulative: sgd full {} vs delta {}; adam full {} vs delta {}",
        sum(&full_sgd),
        sum(&delta_sgd),
        sum(&full_adam),
        sum(&delta_adam)
    ));
    table.note(
        "SGD deltas shrink as the gradient vanishes (XOR-vs-base payload keeps only changed bytes)",
    );
    table.note("Adam's parameter updates also shrink, but its m/v moment vectors change in every byte each step — the moments, not the parameters, dominate Adam's delta cost; optimizer choice is a storage decision");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_deltas_get_small_late_in_training() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let steps = 30;
        let full = trace(
            vqe_tfim_trainer_sgd(4, 2, 5, EvalMode::Exact, 0.05),
            &SaveOptions {
                compression: CompressionPolicy::Uniform(Compression::None),
                ..SaveOptions::default()
            },
            steps,
        );
        let delta = trace(
            vqe_tfim_trainer_sgd(4, 2, 5, EvalMode::Exact, 0.05),
            &SaveOptions::incremental(u32::MAX),
            steps,
        );
        // Late-training SGD deltas must be well below full size.
        let late_full: u64 = full[steps - 5..].iter().sum();
        let late_delta: u64 = delta[steps - 5..].iter().sum();
        assert!(
            late_delta * 10 < late_full * 9,
            "late delta {late_delta} vs full {late_full}"
        );
    }

    #[test]
    fn table_renders() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let t = run();
        assert!(t.rows.len() >= 4);
    }
}
