//! The reconstructed-evaluation experiments (see DESIGN.md §3).
//!
//! Each module regenerates one table or figure of the evaluation and
//! returns a [`crate::report::Table`]; the `src/bin/` wrappers print them.

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

/// Runs every experiment in index order, returning the rendered tables.
pub fn run_all() -> Vec<crate::report::Table> {
    vec![
        table1::run(),
        fig1::run(),
        fig2::run(),
        fig3::run(),
        fig4::run(),
        fig5::run(),
        table2::run(),
        fig6::run(),
        table3::run(),
        table4::run(),
        fig7::run(),
        fig8::run(),
    ]
}
