//! R-T2 — Resume exactness.
//!
//! Crash a shot-based training run at step `k`, resume it three ways, and
//! compare the next 20 steps against the uninterrupted trajectory:
//!
//! * **full snapshot** — params + optimizer + RNG streams + cursor: must be
//!   bitwise identical;
//! * **params-only** — what an ad-hoc "save the weights" script persists:
//!   shot noise re-randomizes and the trajectory forks;
//! * **params+optimizer, fresh RNG** — closer, still forks.

use qcheck::snapshot::Checkpointable;
use qnn::trainer::StepReport;
use qsim::measure::EvalMode;

use crate::report::{quick_mode, Table};
use crate::workloads::vqe_tfim_trainer;

struct Variant {
    name: &'static str,
    keep_optimizer: bool,
    keep_rng: bool,
}

/// Runs the experiment and returns the rendered table.
pub fn run() -> Table {
    let pre_steps = 5;
    let post_steps = if quick_mode() { 8 } else { 20 };
    let seed = 31;
    let shots = EvalMode::Shots(64);

    // Ground truth: uninterrupted run.
    let mut reference = vqe_tfim_trainer(4, 2, seed, shots, 0.05);
    for _ in 0..pre_steps {
        reference.train_step().expect("step");
    }
    let snapshot = reference.capture();
    let truth: Vec<StepReport> = reference.train_steps(post_steps).expect("steps");

    let variants = [
        Variant {
            name: "full-snapshot",
            keep_optimizer: true,
            keep_rng: true,
        },
        Variant {
            name: "params+optimizer",
            keep_optimizer: true,
            keep_rng: false,
        },
        Variant {
            name: "params-only",
            keep_optimizer: false,
            keep_rng: false,
        },
    ];

    let mut table = Table::new(
        "R-T2  resume exactness after crash at step 5 (VQE 4q/2l, 64 shots/term)",
        &[
            "resume-variant",
            "bitwise-identical",
            "first-divergence-step",
            "max|Δloss|",
            "final-param-l2-dist",
        ],
    );
    for v in variants {
        // Fresh trainer at a *different* point in its RNG life: mimic a
        // restarted process.
        let mut resumed = vqe_tfim_trainer(4, 2, seed, shots, 0.05);
        let mut snap = resumed.capture(); // baseline capture to splice into
        snap.params = snapshot.params.clone();
        snap.step = snapshot.step;
        snap.cursor = snapshot.cursor;
        if v.keep_optimizer {
            snap.optimizer = snapshot.optimizer.clone();
        }
        if v.keep_rng {
            snap.rng_streams = snapshot.rng_streams.clone();
            snap.shot_ledger = snapshot.shot_ledger.clone();
            snap.total_shots = snapshot.total_shots;
        }
        resumed.restore(&snap).expect("restore");
        let replay = resumed.train_steps(post_steps).expect("steps");

        let mut first_div: Option<u64> = None;
        let mut max_delta: f64 = 0.0;
        for (t, r) in truth.iter().zip(&replay) {
            let delta = (t.loss - r.loss).abs();
            max_delta = max_delta.max(delta);
            if t.loss.to_bits() != r.loss.to_bits() && first_div.is_none() {
                first_div = Some(t.step);
            }
        }
        let param_dist: f64 = reference
            .params()
            .iter()
            .zip(resumed.params())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        table.row(vec![
            v.name.to_string(),
            if first_div.is_none() {
                "yes".into()
            } else {
                "no".into()
            },
            first_div
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            format!("{max_delta:.3e}"),
            format!("{param_dist:.3e}"),
        ]);
    }
    table.note(
        "full snapshots reproduce the uninterrupted trajectory bit for bit, shot noise included",
    );
    table.note("partial resumes typically fork on the first resumed step: fresh RNG ⇒ different shot noise ⇒ different gradient");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_snapshot_is_exact_and_partial_is_not() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let t = run();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0][1], "yes", "full snapshot must be bit-exact");
        assert_eq!(t.rows[2][1], "no", "params-only must diverge");
    }
}
