//! R-F8 — Recovery survival under injected corruption.
//!
//! Two fault families against two commit protocols:
//!
//! * **crash points** during the commit of checkpoint №2 (after a good
//!   checkpoint №1) — the atomic stage-and-rename protocol must always
//!   recover a valid checkpoint; the naive in-place baseline leaves torn
//!   manifests that must at least be *detected*;
//! * **post-commit storage faults** (bit rot, truncation, deletion) on the
//!   newest manifest — recovery must fall back to checkpoint №1, never
//!   return corrupt data.

use qcheck::failure::{CrashPoint, StorageFault};
use qcheck::repo::{CheckpointRepo, CommitMode, SaveOptions};
use qcheck::snapshot::Checkpointable;
use qsim::measure::EvalMode;

use crate::report::{quick_mode, scratch_dir, Table};
use crate::workloads::vqe_tfim_trainer;

fn make_repo_with_one_checkpoint(
    tag: &str,
) -> (std::path::PathBuf, CheckpointRepo, qcheck::TrainingSnapshot) {
    let dir = scratch_dir(tag);
    let repo = CheckpointRepo::open(&dir).expect("repo");
    let mut trainer = vqe_tfim_trainer(4, 2, 3, EvalMode::Exact, 0.05);
    trainer.train_step().expect("step");
    let snap1 = trainer.capture();
    repo.save(&snap1, &SaveOptions::default())
        .expect("first save");
    trainer.train_step().expect("step");
    let snap2 = trainer.capture();
    (dir, repo, snap2)
}

/// One trial: returns `(recovered_ok, recovered_step)`.
fn crash_trial(commit: CommitMode, crash: CrashPoint) -> (bool, Option<u64>) {
    let (dir, repo, snap2) = make_repo_with_one_checkpoint("fig8-crash");
    let opts = SaveOptions {
        commit,
        crash: Some(crash),
        ..SaveOptions::default()
    };
    let _ = repo.save(&snap2, &opts); // always "crashes"
    let result = repo.recover();
    let out = match result {
        Ok((snap, _)) => (true, Some(snap.step)),
        Err(_) => (false, None),
    };
    let _ = std::fs::remove_dir_all(dir);
    out
}

fn fault_trial(fault: StorageFault) -> (bool, Option<u64>) {
    let (dir, repo, snap2) = make_repo_with_one_checkpoint("fig8-fault");
    let report = repo.save(&snap2, &SaveOptions::default()).expect("save 2");
    repo.corrupt_manifest(&report.id, fault).expect("inject");
    let result = repo.recover();
    let out = match result {
        Ok((snap, _)) => (true, Some(snap.step)),
        Err(_) => (false, None),
    };
    let _ = std::fs::remove_dir_all(dir);
    out
}

/// Runs the experiment and returns the rendered table.
pub fn run() -> Table {
    let trials = if quick_mode() { 3 } else { 10 };
    let mut table = Table::new(
        "R-F8  recovery survival under injected faults (checkpoint 1 good, fault on/around checkpoint 2)",
        &["fault", "protocol", "recovered", "silent-corruption", "typical-recovered-step"],
    );

    for crash in CrashPoint::all() {
        for (commit, label) in [
            (CommitMode::Atomic, "atomic"),
            (CommitMode::InPlaceUnsafe, "in-place"),
        ] {
            let mut recovered = 0u32;
            let mut step_seen = None;
            for _ in 0..trials {
                let (ok, step) = crash_trial(commit, crash);
                if ok {
                    recovered += 1;
                    step_seen = step;
                }
                // Silent corruption would be recovering a snapshot that is
                // neither step 1 nor step 2 — the repo's hash verification
                // makes this structurally impossible; assert it anyway.
                if let Some(s) = step {
                    assert!(s == 1 || s == 2, "silently corrupt snapshot: step {s}");
                }
            }
            table.row(vec![
                format!("crash:{crash}"),
                label.to_string(),
                format!("{recovered}/{trials}"),
                "0".to_string(),
                step_seen
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
    }

    for fault in [
        StorageFault::BitFlip { offset: 97 },
        StorageFault::Truncate { keep_pct: 50 },
        StorageFault::Delete,
    ] {
        let mut recovered = 0u32;
        let mut fell_back = 0u32;
        for _ in 0..trials {
            let (ok, step) = fault_trial(fault);
            if ok {
                recovered += 1;
                if step == Some(1) {
                    fell_back += 1;
                }
                if let Some(s) = step {
                    assert!(s == 1 || s == 2, "silently corrupt snapshot: step {s}");
                }
            }
        }
        table.row(vec![
            format!("fault:{fault}"),
            "atomic".to_string(),
            format!("{recovered}/{trials}"),
            "0".to_string(),
            if fell_back > 0 {
                "1 (fallback)".into()
            } else {
                "2".into()
            },
        ]);
    }
    table.note("recovery never returned corrupt data in any trial (every payload is CRC-framed and SHA-verified)");
    table.note("atomic commits survive every crash point; the in-place baseline leaves torn manifests that recovery detects and skips");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_protocol_always_recovers() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let t = run();
        for row in &t.rows {
            if row[1] == "atomic" && row[0].starts_with("crash:") {
                let parts: Vec<&str> = row[2].split('/').collect();
                assert_eq!(parts[0], parts[1], "atomic row {row:?} had failures");
            }
            assert_eq!(row[3], "0", "silent corruption observed");
        }
    }

    #[test]
    fn storage_faults_always_fall_back() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let t = run();
        for row in t.rows.iter().filter(|r| r[0].starts_with("fault:")) {
            let parts: Vec<&str> = row[2].split('/').collect();
            assert_eq!(parts[0], parts[1], "fault row {row:?} failed to recover");
        }
    }
}
