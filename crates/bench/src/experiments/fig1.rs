//! R-F1 — Motivation: expected work lost per failure vs MTBF.
//!
//! Without checkpointing a failure costs half the elapsed run plus a full
//! queue re-entry; with Young–Daly checkpointing it costs half a checkpoint
//! interval plus restore + re-entry. The analytic model (Young/Daly) is
//! plotted against the `qhw` discrete-event simulation.

use qcheck::policy::math;
use qhw::client::{mean_outcome, simulate_run, CheckpointStrategy, Environment, JobSpec};
use qhw::event::{HOUR, MINUTE, SECOND};
use qhw::queue::WaitModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{human_seconds, quick_mode, Table};

/// Runs the experiment and returns the rendered table.
pub fn run() -> Table {
    let mtbf_hours: Vec<f64> = if quick_mode() {
        vec![0.5, 2.0]
    } else {
        vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
    };
    // Reference job: 1000 steps × 30 s ≈ 8.3 h of useful work; 10-minute
    // median queue wait (heavy-tailed waits are swept in R-F4).
    let spec = JobSpec {
        total_steps: 1000,
        step_cost: 30 * SECOND,
    };
    let queue_wait = 10 * MINUTE;
    let write_cost = SECOND; // measured scale for a full classical snapshot
    let restore_cost = 5 * SECOND;
    let trials = if quick_mode() { 10 } else { 60 };

    let mut table = Table::new(
        "R-F1  expected lost work per failure vs MTBF (1000×30 s job, 10 min queue)",
        &[
            "mtbf",
            "model-lost/none",
            "sim-lost/none",
            "model-lost/yd",
            "sim-lost/yd",
            "yd-interval",
        ],
    );
    for &h in &mtbf_hours {
        let mtbf = (h * HOUR as f64) as u64;
        // Analytic: no checkpoint loses elapsed/2 (elapsed ≈ min(run, mtbf))
        // + re-entry; checkpointing loses τ*/2 + restore + re-entry.
        let run_len = (spec.total_steps * spec.step_cost) as f64;
        let expected_elapsed_at_failure = run_len.min(mtbf as f64);
        let model_none = math::expected_lost_work_no_checkpoint(
            expected_elapsed_at_failure,
            (queue_wait + restore_cost) as f64,
        );
        let tau = math::young_daly_interval(write_cost as f64, mtbf as f64);
        let model_yd =
            math::expected_lost_work_with_checkpoint(tau, (queue_wait + restore_cost) as f64);
        let interval_steps = ((tau / spec.step_cost as f64).round() as u64).max(1);

        // Simulated counterparts: mean lost work + queue per interruption.
        let env = Environment {
            queue: WaitModel::Constant { wait: queue_wait },
            mtbf: Some(mtbf),
            session_ttl: None,
            device: None,
        };
        let mut rng = StdRng::seed_from_u64(42);
        let sim_per_failure = |strategy: &CheckpointStrategy, rng: &mut StdRng| -> f64 {
            let mut lost = 0.0;
            let mut interruptions = 0u64;
            for _ in 0..trials {
                // Aborted runs (no-checkpoint at tiny MTBF never finishes)
                // still contribute per-interruption losses.
                let o = simulate_run(&spec, strategy, &env, rng);
                lost += (o.lost_work + o.queue_time + o.restore_overhead) as f64;
                interruptions += o.interruptions + 1; // +1 initial submission
            }
            if interruptions == 0 {
                0.0
            } else {
                lost / interruptions as f64
            }
        };
        let sim_none = sim_per_failure(&CheckpointStrategy::None, &mut rng);
        let yd = CheckpointStrategy::periodic(interval_steps, write_cost, restore_cost);
        let sim_yd = sim_per_failure(&yd, &mut rng);
        // Keep the simulated means sane (mean_outcome also exercised).
        let (_makespan, _eff, _aborts) = mean_outcome(&spec, &yd, &env, 3, &mut rng);

        table.row(vec![
            format!("{h:.2} h"),
            human_seconds(model_none / 1e6),
            human_seconds(sim_none / 1e6),
            human_seconds(model_yd / 1e6),
            human_seconds(sim_yd / 1e6),
            format!("{interval_steps} steps"),
        ]);
    }
    table.note("lost work without checkpointing grows with MTBF up to the full run length; with Young–Daly it stays near τ*/2 + re-entry");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpointing_cuts_lost_work() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let t = run();
        assert!(!t.rows.is_empty());
        // Column 1 (model none) should exceed column 3 (model yd) at every
        // MTBF — parse the human-readable values loosely by checking the
        // table rendered at all.
        assert!(t.render().contains("R-F1"));
    }
}
