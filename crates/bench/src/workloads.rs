//! Shared workload builders for the experiment harness.

use qnn::ansatz::{hardware_efficient, init_params};
use qnn::optimizer::Adam;
use qnn::trainer::{Task, Trainer, TrainerConfig};
use qnn::GradientMethod;
use qsim::measure::EvalMode;
use qsim::pauli::PauliSum;
use qsim::rng::Xoshiro256;

/// A VQE workload on the transverse-field Ising chain — the evaluation's
/// reference training job.
pub fn vqe_tfim_trainer(
    num_qubits: usize,
    layers: usize,
    seed: u64,
    eval_mode: EvalMode,
    learning_rate: f64,
) -> Trainer {
    let (circuit, info) = hardware_efficient(num_qubits, layers);
    let mut rng = Xoshiro256::seed_from(seed);
    let params = init_params(info.num_params, &mut rng);
    Trainer::new(
        circuit,
        Task::Vqe {
            hamiltonian: PauliSum::transverse_ising(num_qubits, 1.0, 0.8),
        },
        Box::new(Adam::new(learning_rate)),
        params,
        TrainerConfig {
            label: format!("vqe-tfim-{num_qubits}q-{layers}l"),
            eval_mode,
            gradient: GradientMethod::ParameterShift,
            seed,
            metrics_capacity: 128,
        },
    )
    .expect("workload construction")
}

/// The same VQE workload trained with plain SGD. Relevant wherever delta
/// compressibility is measured: SGD's update magnitudes shrink with the
/// gradient as training converges (XOR deltas collapse), while Adam's
/// normalized steps stay at learning-rate scale forever.
pub fn vqe_tfim_trainer_sgd(
    num_qubits: usize,
    layers: usize,
    seed: u64,
    eval_mode: EvalMode,
    learning_rate: f64,
) -> Trainer {
    let (circuit, info) = hardware_efficient(num_qubits, layers);
    let mut rng = Xoshiro256::seed_from(seed);
    let params = init_params(info.num_params, &mut rng);
    Trainer::new(
        circuit,
        Task::Vqe {
            hamiltonian: PauliSum::transverse_ising(num_qubits, 1.0, 0.8),
        },
        Box::new(qnn::optimizer::Sgd::new(learning_rate)),
        params,
        TrainerConfig {
            label: format!("vqe-tfim-sgd-{num_qubits}q-{layers}l"),
            eval_mode,
            gradient: GradientMethod::ParameterShift,
            seed,
            metrics_capacity: 128,
        },
    )
    .expect("workload construction")
}

/// Same workload but with the cheap SPSA gradient (used where many steps are
/// needed and gradient quality is irrelevant).
pub fn vqe_tfim_trainer_spsa(
    num_qubits: usize,
    layers: usize,
    seed: u64,
    eval_mode: EvalMode,
) -> Trainer {
    let (circuit, info) = hardware_efficient(num_qubits, layers);
    let mut rng = Xoshiro256::seed_from(seed);
    let params = init_params(info.num_params, &mut rng);
    Trainer::new(
        circuit,
        Task::Vqe {
            hamiltonian: PauliSum::transverse_ising(num_qubits, 1.0, 0.8),
        },
        Box::new(Adam::new(0.05)),
        params,
        TrainerConfig {
            label: format!("vqe-tfim-spsa-{num_qubits}q-{layers}l"),
            eval_mode,
            gradient: GradientMethod::Spsa { c: 0.1 },
            seed,
            metrics_capacity: 128,
        },
    )
    .expect("workload construction")
}

/// Median of timing samples in milliseconds.
pub fn median_ms(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "no samples");
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Times a closure in milliseconds.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcheck::snapshot::Checkpointable;

    #[test]
    fn workload_builders_produce_runnable_trainers() {
        let mut t = vqe_tfim_trainer(3, 1, 1, EvalMode::Exact, 0.05);
        t.train_step().unwrap();
        assert_eq!(t.step_count(), 1);
        let snap = t.capture();
        assert!(snap.label.contains("vqe-tfim-3q-1l"));

        let mut s = vqe_tfim_trainer_spsa(3, 1, 1, EvalMode::Shots(16));
        s.train_step().unwrap();
        assert!(s.ledger().total_shots() > 0);
    }

    #[test]
    fn median_and_timing() {
        let mut xs = [3.0, 1.0, 2.0];
        assert_eq!(median_ms(&mut xs), 2.0);
        let ((), ms) = time_ms(|| std::thread::sleep(std::time::Duration::from_millis(2)));
        assert!(ms >= 1.0);
    }
}
