//! Reference (seed) implementations of the hot kernels, kept verbatim so
//! the perf trajectory can always be measured against the original serial
//! baseline — `bench_parallel` reports `baseline / current` speedups from
//! these.
//!
//! Do **not** optimize this module; it exists to stay slow.

use qsim::circuit::{Circuit, ParamRef};
use qsim::complex::Complex64;
use qsim::gate::{Matrix2, Matrix4};
use qsim::state::StateVector;

/// The seed's single-qubit kernel: block/offset loops, no classification,
/// no fusion, no threading.
pub fn apply_matrix2_seed(amps: &mut [Complex64], m: &Matrix2, q: usize) {
    let bit = 1usize << q;
    let n = amps.len();
    let mut base = 0usize;
    while base < n {
        for offset in 0..bit {
            let i0 = base + offset;
            let i1 = i0 | bit;
            let a0 = amps[i0];
            let a1 = amps[i1];
            amps[i0] = m[0][0] * a0 + m[0][1] * a1;
            amps[i1] = m[1][0] * a0 + m[1][1] * a1;
        }
        base += bit << 1;
    }
}

/// The seed's two-qubit kernel: full-index scan skipping 3/4 of the
/// register, dense 4×4 product for every gate.
pub fn apply_matrix4_seed(amps: &mut [Complex64], m: &Matrix4, qa: usize, qb: usize) {
    let ba = 1usize << qa;
    let bb = 1usize << qb;
    let n = amps.len();
    for i in 0..n {
        if i & ba != 0 || i & bb != 0 {
            continue;
        }
        let idx = [i, i | ba, i | bb, i | ba | bb];
        let a = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
        for (k, &target) in idx.iter().enumerate() {
            let mut acc = Complex64::ZERO;
            for (j, &aj) in a.iter().enumerate() {
                acc += m[k][j] * aj;
            }
            amps[target] = acc;
        }
    }
}

/// The seed's circuit executor: one kernel pass per op, no fusion.
///
/// # Panics
///
/// Panics on malformed circuits (the benches only feed it validated ones).
pub fn circuit_run_seed(circuit: &Circuit, params: &[f64]) -> Vec<Complex64> {
    let state = StateVector::zero_state(circuit.num_qubits());
    let mut amps = state.amplitudes().to_vec();
    for op in circuit.ops() {
        let gate = match op.param {
            Some(ParamRef::Fixed(v)) => op.gate.with_param(v),
            Some(ParamRef::Sym { index, scale }) => op.gate.with_param(scale * params[index]),
            None => op.gate,
        };
        match gate.arity() {
            1 => apply_matrix2_seed(&mut amps, &gate.matrix2(), op.qubits[0]),
            _ => apply_matrix4_seed(&mut amps, &gate.matrix4(), op.qubits[0], op.qubits[1]),
        }
    }
    amps
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::ansatz::hardware_efficient;

    #[test]
    fn seed_kernels_agree_with_current_simulator() {
        let (circuit, info) = hardware_efficient(6, 2);
        let params: Vec<f64> = (0..info.num_params).map(|i| 0.17 * i as f64).collect();
        let reference = circuit.run(&params).unwrap();
        let seed = circuit_run_seed(&circuit, &params);
        for (a, b) in reference.amplitudes().iter().zip(&seed) {
            assert!(
                (a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10,
                "kernel divergence: {a:?} vs {b:?}"
            );
        }
    }
}
