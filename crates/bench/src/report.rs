//! Plain-text tables and figure series for the experiment binaries.
//!
//! Every experiment prints (a) a human-readable aligned table and (b) the
//! same data as machine-readable CSV lines prefixed with `#csv#`, so the
//! outputs can be both read in a terminal and scraped into plots.

/// A printable experiment result: title, column headers, string rows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    /// Experiment identifier + description.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (cells rendered by the caller).
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the aligned table plus `#csv#` lines.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        // Machine-readable mirror.
        out.push_str(&format!("#csv#{}\n", self.headers.join(",")));
        for row in &self.rows {
            out.push_str(&format!("#csv#{}\n", row.join(",")));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a byte count with binary units.
pub fn human_bytes(bytes: u128) -> String {
    const UNITS: [&str; 7] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

/// Formats a duration given in seconds adaptively.
pub fn human_seconds(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2} s")
    } else if s < 7200.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{:.2} h", s / 3600.0)
    }
}

/// Is the harness in quick mode? (`QCHECK_BENCH_QUICK=1` shrinks sweeps for
/// CI smoke runs.)
pub fn quick_mode() -> bool {
    std::env::var("QCHECK_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Fresh unique temp directory for an experiment; caller removes it.
pub fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let p = std::env::temp_dir().join(format!(
        "qcheck-bench-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&p).expect("create scratch dir");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let r = t.render();
        assert!(r.contains("== T =="));
        assert!(r.contains("long-header"));
        assert!(r.contains("note: hello"));
        assert!(r.contains("#csv#a,long-header"));
        assert!(r.contains("#csv#1,2"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_is_enforced() {
        Table::new("T", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert_eq!(human_bytes(16 * 1024 * 1024), "16.00 MiB");
        assert_eq!(human_bytes(1u128 << 34), "16.00 GiB");
    }

    #[test]
    fn seconds_formatting() {
        assert!(human_seconds(0.0000005).contains("µs"));
        assert!(human_seconds(0.005).contains("ms"));
        assert!(human_seconds(5.0).contains("s"));
        assert!(human_seconds(600.0).contains("min"));
        assert!(human_seconds(10_000.0).contains("h"));
    }

    #[test]
    fn scratch_dirs_are_unique() {
        let a = scratch_dir("t");
        let b = scratch_dir("t");
        assert_ne!(a, b);
        let _ = std::fs::remove_dir_all(a);
        let _ = std::fs::remove_dir_all(b);
    }
}
