//! # qcheck-bench — the evaluation harness
//!
//! Regenerates every table and figure of the reconstructed evaluation
//! (DESIGN.md §3). Each experiment is a library function returning a
//! [`report::Table`] plus a thin binary in `src/bin/`; `run_all` executes
//! the whole suite:
//!
//! ```bash
//! cargo run --release -p qcheck-bench --bin run_all
//! # or one experiment:
//! cargo run --release -p qcheck-bench --bin fig4_time_to_solution
//! ```
//!
//! Set `QCHECK_BENCH_QUICK=1` to shrink sweeps for smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod experiments;
pub mod report;
pub mod workloads;
