//! Criterion benches: section codecs on parameter-shaped payloads
//! (behind experiment R-T3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use qcheck::compress::{f64s_to_bytes, Compression};

fn payloads() -> Vec<(&'static str, Vec<u8>)> {
    let noise: Vec<f64> = (0..16_384)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as f64) / u64::MAX as f64)
        .collect();
    let clustered: Vec<f64> = (0..16_384)
        .map(|i| 0.6 + 1e-12 * (i as f64).sin())
        .collect();
    let zeros = vec![0.0f64; 16_384];
    vec![
        ("noise", f64s_to_bytes(&noise)),
        ("clustered", f64s_to_bytes(&clustered)),
        ("zeros", f64s_to_bytes(&zeros)),
    ]
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    for (name, data) in payloads() {
        group.throughput(Throughput::Bytes(data.len() as u64));
        for codec in Compression::all() {
            group.bench_with_input(BenchmarkId::new(codec.to_string(), name), &data, |b, d| {
                b.iter(|| codec.compress(d))
            });
        }
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompress");
    for (name, data) in payloads() {
        group.throughput(Throughput::Bytes(data.len() as u64));
        for codec in Compression::all() {
            let compressed = codec.compress(&data);
            group.bench_with_input(
                BenchmarkId::new(codec.to_string(), name),
                &compressed,
                |b, d| b.iter(|| codec.decompress(d).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
