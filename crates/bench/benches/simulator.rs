//! Criterion benches: the quantum-simulator substrate (circuit execution
//! and shot sampling dominate training-step cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qnn::ansatz::hardware_efficient;
use qsim::measure::{evaluate_observable, EvalMode};
use qsim::pauli::PauliSum;
use qsim::rng::Xoshiro256;
use qsim::state::StateVector;

fn bench_circuit_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_run");
    for n in [4usize, 8, 12, 16] {
        let (circuit, info) = hardware_efficient(n, 4);
        let params: Vec<f64> = (0..info.num_params).map(|i| 0.1 * i as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| circuit.run(&params).unwrap())
        });
    }
    group.finish();
}

fn bench_gate_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_kernel");
    for n in [10usize, 16, 20] {
        let mut state = StateVector::zero_state(n);
        let h = qsim::gate::Gate::H.matrix2();
        group.bench_with_input(BenchmarkId::new("h_single", n), &n, |b, _| {
            b.iter(|| state.apply_matrix2(&h, n / 2))
        });
        let cx = qsim::gate::Gate::Cx.matrix4();
        group.bench_with_input(BenchmarkId::new("cx_pair", n), &n, |b, _| {
            b.iter(|| state.apply_matrix4(&cx, 0, n - 1))
        });
    }
    group.finish();
}

fn bench_shot_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shot_sampling");
    let (circuit, info) = hardware_efficient(8, 3);
    let params: Vec<f64> = (0..info.num_params).map(|i| 0.2 * i as f64).collect();
    let state = circuit.run(&params).unwrap();
    let h = PauliSum::transverse_ising(8, 1.0, 0.8);
    for shots in [128u32, 1024, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(shots), &shots, |b, &s| {
            let mut rng = Xoshiro256::seed_from(1);
            b.iter(|| evaluate_observable(&state, &h, EvalMode::Shots(s), &mut rng).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_circuit_run,
    bench_gate_kernels,
    bench_shot_sampling
);
criterion_main!(benches);
