//! Criterion benches: the in-repo SHA-256 and CRC32 (every chunk write and
//! manifest frame pays these).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use qcheck::hash::{crc32, Sha256};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 4096, 65536, 1 << 20] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| Sha256::digest(d))
        });
    }
    group.finish();
}

fn bench_crc32(c: &mut Criterion) {
    let mut group = c.benchmark_group("crc32");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xCDu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| crc32(d))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sha256, bench_crc32);
criterion_main!(benches);
