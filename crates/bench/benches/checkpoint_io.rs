//! Criterion benches: checkpoint commit, load and recovery on the real
//! on-disk stack (hot paths behind experiments R-F3/F4/F6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qcheck::repo::{CheckpointRepo, SaveOptions};
use qcheck::snapshot::{RngCapture, StateBlob, TrainingSnapshot};

fn snapshot_with_params(n_params: usize, step: u64) -> TrainingSnapshot {
    let mut s = TrainingSnapshot::new("bench");
    s.step = step;
    s.params = (0..n_params)
        .map(|i| 0.6 + 1e-6 * ((i as u64 + step) as f64).sin())
        .collect();
    s.optimizer = StateBlob::new("adam-v1", vec![0x5A; n_params * 16]);
    s.rng_streams.insert("shots".into(), RngCapture([9; 40]));
    s.total_shots = step * 1000;
    s.shot_ledger = vec![3; 64];
    s
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("qcheck-crit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn bench_save_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("save_full");
    for n_params in [256usize, 4096, 65536] {
        let dir = scratch(&format!("save-{n_params}"));
        let repo = CheckpointRepo::open(&dir).unwrap();
        let mut step = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n_params), &n_params, |b, &n| {
            b.iter(|| {
                step += 1;
                let snap = snapshot_with_params(n, step);
                repo.save(&snap, &SaveOptions::default()).unwrap()
            })
        });
        let _ = std::fs::remove_dir_all(dir);
    }
    group.finish();
}

fn bench_save_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("save_delta");
    for n_params in [4096usize, 65536] {
        let dir = scratch(&format!("delta-{n_params}"));
        let repo = CheckpointRepo::open(&dir).unwrap();
        let opts = SaveOptions::incremental(32);
        repo.save(&snapshot_with_params(n_params, 0), &opts)
            .unwrap();
        let mut step = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n_params), &n_params, |b, &n| {
            b.iter(|| {
                step += 1;
                let snap = snapshot_with_params(n, step);
                repo.save(&snap, &opts).unwrap()
            })
        });
        let _ = std::fs::remove_dir_all(dir);
    }
    group.finish();
}

fn bench_recover(c: &mut Criterion) {
    let mut group = c.benchmark_group("recover");
    for chain_len in [0u64, 8, 32] {
        let dir = scratch(&format!("recover-{chain_len}"));
        let repo = CheckpointRepo::open(&dir).unwrap();
        let opts = SaveOptions::incremental(u32::MAX);
        for step in 0..=chain_len {
            repo.save(&snapshot_with_params(8192, step), &opts).unwrap();
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(chain_len),
            &chain_len,
            |b, _| b.iter(|| repo.recover().unwrap()),
        );
        let _ = std::fs::remove_dir_all(dir);
    }
    group.finish();
}

criterion_group!(benches, bench_save_full, bench_save_delta, bench_recover);
criterion_main!(benches);
