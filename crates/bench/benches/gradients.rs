//! Criterion benches: one full training step under each gradient method —
//! the unit of useful work whose cost every checkpoint policy weighs
//! against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qcheck::snapshot::Checkpointable;
use qnn::ansatz::{hardware_efficient, init_params};
use qnn::optimizer::Adam;
use qnn::trainer::{Task, Trainer, TrainerConfig};
use qnn::GradientMethod;
use qsim::measure::EvalMode;
use qsim::pauli::PauliSum;
use qsim::rng::Xoshiro256;

fn trainer_with(gradient: GradientMethod) -> Trainer {
    let (circuit, info) = hardware_efficient(6, 2);
    let mut rng = Xoshiro256::seed_from(3);
    let params = init_params(info.num_params, &mut rng);
    Trainer::new(
        circuit,
        Task::Vqe {
            hamiltonian: PauliSum::transverse_ising(6, 1.0, 0.8),
        },
        Box::new(Adam::new(0.05)),
        params,
        TrainerConfig {
            label: "bench".into(),
            eval_mode: EvalMode::Exact,
            gradient,
            seed: 3,
            metrics_capacity: 16,
        },
    )
    .unwrap()
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    for (name, method) in [
        ("parameter_shift", GradientMethod::ParameterShift),
        ("finite_diff", GradientMethod::FiniteDiff { eps: 1e-5 }),
        ("spsa", GradientMethod::Spsa { c: 0.1 }),
    ] {
        let mut t = trainer_with(method);
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| t.train_step().unwrap())
        });
    }
    group.finish();
}

fn bench_capture(c: &mut Criterion) {
    let mut t = trainer_with(GradientMethod::Spsa { c: 0.1 });
    for _ in 0..5 {
        t.train_step().unwrap();
    }
    c.bench_function("trainer_capture", |b| b.iter(|| t.capture()));
}

criterion_group!(benches, bench_train_step, bench_capture);
criterion_main!(benches);
