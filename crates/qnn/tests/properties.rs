//! Property-based tests for the training layer.

use proptest::prelude::*;

use qcheck::snapshot::Checkpointable;
use qnn::ansatz::{hardware_efficient, init_params};
use qnn::ledger::ShotLedger;
use qnn::optimizer::{AdaGrad, Adam, Momentum, Optimizer, RmsProp, Sgd};
use qnn::trainer::{Task, Trainer, TrainerConfig};
use qnn::GradientMethod;
use qsim::measure::EvalMode;
use qsim::pauli::PauliSum;
use qsim::rng::Xoshiro256;
use qsim::testing::arb_ops;

fn arb_f64_bits() -> impl Strategy<Value = f64> {
    // Finite values only — optimizers may legitimately produce NaN from NaN.
    prop::num::f64::NORMAL | prop::num::f64::ZERO | prop::num::f64::SUBNORMAL
}

fn optimizers() -> Vec<Box<dyn Optimizer>> {
    vec![
        Box::new(Sgd::new(0.05)),
        Box::new(Momentum::new(0.05, 0.9)),
        Box::new(Adam::new(0.05)),
        Box::new(AdaGrad::new(0.05)),
        Box::new(RmsProp::new(0.05)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every optimizer's blob round-trip preserves future trajectories
    /// bitwise, from arbitrary reachable states.
    #[test]
    fn optimizer_blobs_round_trip_from_any_state(
        grads in prop::collection::vec(prop::collection::vec(arb_f64_bits(), 6..7), 1..12),
    ) {
        for mut opt in optimizers() {
            let mut params = vec![0.25f64; 6];
            for g in &grads {
                opt.step(&mut params, g);
            }
            let blob = opt.state_blob();

            let mut restored: Box<dyn Optimizer> = match blob.tag.as_str() {
                "sgd-v1" => Box::new(Sgd::new(9.9)),
                "momentum-v1" => Box::new(Momentum::new(9.9, 0.1)),
                "adam-v1" => Box::new(Adam::new(9.9)),
                "adagrad-v1" => Box::new(AdaGrad::new(9.9)),
                "rmsprop-v1" => Box::new(RmsProp::new(9.9)),
                other => panic!("unknown tag {other}"),
            };
            restored.restore_blob(&blob).unwrap();

            let probe = vec![0.125f64; 6];
            let mut p1 = params.clone();
            let mut p2 = params.clone();
            opt.step(&mut p1, &probe);
            restored.step(&mut p2, &probe);
            for (a, b) in p1.iter().zip(&p2) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{}", blob.tag);
            }
        }
    }

    /// The shot ledger round-trips arbitrary entry streams.
    #[test]
    fn ledger_round_trips(entries in prop::collection::vec((any::<u64>(), any::<u32>(), 0u64..1_000_000), 0..100)) {
        let mut l = ShotLedger::new();
        for (step, evals, shots) in &entries {
            l.record(*step, *evals, *shots);
        }
        let back = ShotLedger::from_bytes(&l.to_bytes()).unwrap();
        prop_assert_eq!(back, l);
    }

    /// Trainer capture → restore → identical continuation, across random
    /// seeds and both shot budgets (the exact-resume invariant as a
    /// property, not an example).
    #[test]
    fn capture_restore_is_exact_for_any_seed(seed in any::<u64>(), shots in 8u32..64) {
        let build = || {
            let (circuit, info) = hardware_efficient(3, 1);
            let mut rng = Xoshiro256::seed_from(seed);
            Trainer::new(
                circuit,
                Task::Vqe {
                    hamiltonian: PauliSum::transverse_ising(3, 1.0, 0.6),
                },
                Box::new(Adam::new(0.05)),
                init_params(info.num_params, &mut rng),
                TrainerConfig {
                    eval_mode: EvalMode::Shots(shots),
                    gradient: GradientMethod::Spsa { c: 0.1 },
                    seed,
                    ..TrainerConfig::default()
                },
            )
            .unwrap()
        };
        let mut a = build();
        a.train_step().unwrap();
        let snap = a.capture();
        let r1 = a.train_step().unwrap();

        let mut b = build();
        b.restore(&snap).unwrap();
        let r2 = b.train_step().unwrap();
        prop_assert_eq!(r1.loss.to_bits(), r2.loss.to_bits());
        prop_assert_eq!(r1.shots, r2.shots);
        for (x, y) in a.params().iter().zip(b.params()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Exact capture → restore holds regardless of circuit structure: the
    /// ansatz extended with an arbitrary fixed-gate suffix (drawn from the
    /// shared `qsim::testing::arb_ops` strategy) still resumes bitwise.
    #[test]
    fn capture_restore_exact_with_random_circuit_suffix(
        ops in arb_ops(3, 8),
        seed in any::<u64>(),
    ) {
        let build = || {
            let (mut circuit, info) = hardware_efficient(3, 1);
            for (g, qs) in &ops {
                circuit.push_fixed(*g, qs);
            }
            let mut rng = Xoshiro256::seed_from(seed);
            Trainer::new(
                circuit,
                Task::Vqe {
                    hamiltonian: PauliSum::transverse_ising(3, 1.0, 0.6),
                },
                Box::new(Adam::new(0.05)),
                init_params(info.num_params, &mut rng),
                TrainerConfig {
                    eval_mode: EvalMode::Shots(24),
                    gradient: GradientMethod::Spsa { c: 0.1 },
                    seed,
                    ..TrainerConfig::default()
                },
            )
            .unwrap()
        };
        let mut a = build();
        a.train_step().unwrap();
        let snap = a.capture();
        let r1 = a.train_step().unwrap();

        let mut b = build();
        b.restore(&snap).unwrap();
        let r2 = b.train_step().unwrap();
        prop_assert_eq!(r1.loss.to_bits(), r2.loss.to_bits());
        for (x, y) in a.params().iter().zip(b.params()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Snapshot payload size scales with parameters but never leaks the
    /// Hilbert-space dimension.
    #[test]
    fn snapshot_size_is_classical(qubits in 2usize..7, layers in 1usize..4) {
        let (circuit, info) = hardware_efficient(qubits, layers);
        let mut rng = Xoshiro256::seed_from(1);
        let trainer = Trainer::new(
            circuit,
            Task::Vqe {
                hamiltonian: PauliSum::transverse_ising(qubits, 1.0, 0.5),
            },
            Box::new(Sgd::new(0.1)),
            init_params(info.num_params, &mut rng),
            TrainerConfig::default(),
        )
        .unwrap();
        let snap = trainer.capture();
        let payload = snap.payload_bytes();
        // Linear-ish in params (≤ 64 B/param + 1 KiB fixed), and far below
        // the statevector for larger registers.
        prop_assert!(payload <= info.num_params * 64 + 1024, "payload {payload}");
    }
}
