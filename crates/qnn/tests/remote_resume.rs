//! Resume-over-remote: the acceptance test for the `qckptd` daemon.
//!
//! A training run checkpointing against a remote store must survive the
//! *machine*, not just the process: kill the run, throw its working
//! directory away, open a **fresh** directory against the same daemon
//! and namespace, and the resumed trajectory must be bit-identical to an
//! uninterrupted run — losses compared by bit pattern, shot noise
//! included.

use qcheck::policy::EveryKSteps;
use qcheck::remote::{spawn_daemon, RemoteStore};
use qcheck::repo::{CheckpointRepo, SaveOptions};
use qcheck::store::{StoreBackend, StoreKind};
use qnn::ansatz::{hardware_efficient, init_params};
use qnn::optimizer::Adam;
use qnn::resume::{ResumableRun, RunStart};
use qnn::trainer::{StepReport, Task, Trainer, TrainerConfig};
use qsim::measure::EvalMode;
use qsim::pauli::PauliSum;
use qsim::rng::Xoshiro256;

/// The env-driven test mutates process-global variables with
/// `std::env::set_var`, and concurrent setenv/getenv (even the implicit
/// `temp_dir()` TMPDIR read) is a data race on glibc. Both tests take
/// this lock so they never overlap.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn scratch(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let p = std::env::temp_dir().join(format!(
        "qnn-remote-resume-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn build_trainer(qubits: usize) -> Trainer {
    let (circuit, info) = hardware_efficient(qubits, 1);
    let mut rng = Xoshiro256::seed_from(77);
    let params = init_params(info.num_params, &mut rng);
    Trainer::new(
        circuit,
        Task::Vqe {
            hamiltonian: PauliSum::transverse_ising(qubits, 1.0, 0.7),
        },
        Box::new(Adam::new(0.05)),
        params,
        TrainerConfig {
            eval_mode: EvalMode::Shots(32),
            seed: 77,
            ..TrainerConfig::default()
        },
    )
    .unwrap()
}

fn open_remote_repo(dir: &std::path::Path, addr: &str, ns: &str) -> CheckpointRepo {
    let store = RemoteStore::connect(addr, ns).unwrap();
    CheckpointRepo::with_store(dir, StoreBackend::Remote(store)).unwrap()
}

/// Kill a run training against the daemon, resume it from a *fresh*
/// working directory, and require a bit-identical trajectory.
#[test]
fn killed_run_resumes_bit_identically_from_a_fresh_directory() {
    let _env = ENV_LOCK.lock().unwrap();
    let daemon = spawn_daemon(scratch("daemon"), StoreKind::Pack).unwrap();
    let ns = "train-axz";

    // Uninterrupted reference trajectory to step 10.
    let mut reference = build_trainer(3);
    let ref_reports: Vec<StepReport> = reference.train_steps(10).unwrap();

    // Process 1 (working directory A): run to step 6, checkpointing
    // every 2 steps, then "die" without a final checkpoint.
    let dir_a = scratch("dir-a");
    {
        let repo = open_remote_repo(&dir_a, &daemon.addr(), ns);
        let mut run = ResumableRun::start(
            build_trainer(3),
            repo,
            Box::new(EveryKSteps::new(2)),
            SaveOptions::default(),
        )
        .unwrap();
        assert_eq!(*run.start_info(), RunStart::Fresh);
        run.run_to_step(6).unwrap();
    }
    // The machine is gone: delete the whole working directory.
    std::fs::remove_dir_all(&dir_a).unwrap();

    // Process 2 (fresh working directory B, same daemon + namespace):
    // must resume at step 6 purely from remote state.
    let dir_b = scratch("dir-b");
    let repo = open_remote_repo(&dir_b, &daemon.addr(), ns);
    let mut run = ResumableRun::start(
        build_trainer(3),
        repo,
        Box::new(EveryKSteps::new(2)),
        SaveOptions::default(),
    )
    .unwrap();
    match run.start_info() {
        RunStart::Resumed { step, .. } => assert_eq!(*step, 6),
        other => panic!("expected resume from remote state, got {other:?}"),
    }
    let tail = run.run_to_step(10).unwrap();
    for (resumed, reference) in tail.iter().zip(&ref_reports[6..]) {
        assert_eq!(
            resumed.loss.to_bits(),
            reference.loss.to_bits(),
            "trajectory diverged at step {}",
            resumed.step
        );
    }
    let (trainer, _) = run.finish().unwrap();
    assert_eq!(trainer.step_count(), 10);
    let _ = std::fs::remove_dir_all(dir_b);
}

/// The same resume, but steered entirely through the environment-driven
/// selection path (`QCHECK_STORE=remote` + `QCHECK_REMOTE_ADDR` +
/// `QCHECK_REMOTE_NS`) — the configuration a training script actually
/// uses. Env vars are process-global, so restore them before returning.
#[test]
fn env_selected_remote_backend_round_trips() {
    let _env = ENV_LOCK.lock().unwrap();
    let daemon = spawn_daemon(scratch("env-daemon"), StoreKind::Pack).unwrap();
    let prev: Vec<(&str, Option<String>)> =
        ["QCHECK_STORE", "QCHECK_REMOTE_ADDR", "QCHECK_REMOTE_NS"]
            .into_iter()
            .map(|k| (k, std::env::var(k).ok()))
            .collect();
    std::env::set_var("QCHECK_STORE", "remote");
    std::env::set_var("QCHECK_REMOTE_ADDR", daemon.addr());
    std::env::set_var("QCHECK_REMOTE_NS", "env-run");

    let result = std::panic::catch_unwind(|| {
        let dir = scratch("env-dir");
        {
            let repo = CheckpointRepo::open(&dir).unwrap();
            assert_eq!(repo.store_kind(), StoreKind::Remote);
            let mut run = ResumableRun::start(
                build_trainer(3),
                repo,
                Box::new(EveryKSteps::new(1)),
                SaveOptions::default(),
            )
            .unwrap();
            run.run_to_step(3).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();

        // Fresh directory, same env: resumes from the daemon.
        let dir2 = scratch("env-dir2");
        let repo = CheckpointRepo::open(&dir2).unwrap();
        let run = ResumableRun::start(
            build_trainer(3),
            repo,
            Box::new(EveryKSteps::new(1)),
            SaveOptions::default(),
        )
        .unwrap();
        match run.start_info() {
            RunStart::Resumed { step, .. } => assert_eq!(*step, 3),
            other => panic!("expected env-driven resume, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir2);
    });

    for (k, v) in prev {
        match v {
            Some(v) => std::env::set_var(k, v),
            None => std::env::remove_var(k),
        }
    }
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}
