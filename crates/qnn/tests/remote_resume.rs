//! Resume-over-remote: the acceptance test for the `qckptd` daemon.
//!
//! A training run checkpointing against a remote store must survive the
//! *machine*, not just the process: kill the run, throw its working
//! directory away, open a **fresh** directory against the same daemon
//! and namespace, and the resumed trajectory must be bit-identical to an
//! uninterrupted run — losses compared by bit pattern, shot noise
//! included.

use qcheck::policy::EveryKSteps;
use qcheck::remote::{spawn_daemon, spawn_secondary, RemoteStore};
use qcheck::repo::{CheckpointRepo, SaveOptions};
use qcheck::store::{StoreBackend, StoreKind};
use qnn::ansatz::{hardware_efficient, init_params};
use qnn::optimizer::Adam;
use qnn::resume::{ResumableRun, RunStart};
use qnn::trainer::{StepReport, Task, Trainer, TrainerConfig};
use qsim::measure::EvalMode;
use qsim::pauli::PauliSum;
use qsim::rng::Xoshiro256;

/// The env-driven test mutates process-global variables with
/// `std::env::set_var`, and concurrent setenv/getenv (even the implicit
/// `temp_dir()` TMPDIR read) is a data race on glibc. Both tests take
/// this lock so they never overlap.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn scratch(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let p = std::env::temp_dir().join(format!(
        "qnn-remote-resume-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn build_trainer(qubits: usize) -> Trainer {
    let (circuit, info) = hardware_efficient(qubits, 1);
    let mut rng = Xoshiro256::seed_from(77);
    let params = init_params(info.num_params, &mut rng);
    Trainer::new(
        circuit,
        Task::Vqe {
            hamiltonian: PauliSum::transverse_ising(qubits, 1.0, 0.7),
        },
        Box::new(Adam::new(0.05)),
        params,
        TrainerConfig {
            eval_mode: EvalMode::Shots(32),
            seed: 77,
            ..TrainerConfig::default()
        },
    )
    .unwrap()
}

fn open_remote_repo(dir: &std::path::Path, addr: &str, ns: &str) -> CheckpointRepo {
    let store = RemoteStore::connect(addr, ns).unwrap();
    CheckpointRepo::with_store(dir, StoreBackend::Remote(store)).unwrap()
}

/// Kill a run training against the daemon, resume it from a *fresh*
/// working directory, and require a bit-identical trajectory.
#[test]
fn killed_run_resumes_bit_identically_from_a_fresh_directory() {
    let _env = ENV_LOCK.lock().unwrap();
    let daemon = spawn_daemon(scratch("daemon"), StoreKind::Pack).unwrap();
    let ns = "train-axz";

    // Uninterrupted reference trajectory to step 10.
    let mut reference = build_trainer(3);
    let ref_reports: Vec<StepReport> = reference.train_steps(10).unwrap();

    // Process 1 (working directory A): run to step 6, checkpointing
    // every 2 steps, then "die" without a final checkpoint.
    let dir_a = scratch("dir-a");
    {
        let repo = open_remote_repo(&dir_a, &daemon.addr(), ns);
        let mut run = ResumableRun::start(
            build_trainer(3),
            repo,
            Box::new(EveryKSteps::new(2)),
            SaveOptions::default(),
        )
        .unwrap();
        assert_eq!(*run.start_info(), RunStart::Fresh);
        run.run_to_step(6).unwrap();
    }
    // The machine is gone: delete the whole working directory.
    std::fs::remove_dir_all(&dir_a).unwrap();

    // Process 2 (fresh working directory B, same daemon + namespace):
    // must resume at step 6 purely from remote state.
    let dir_b = scratch("dir-b");
    let repo = open_remote_repo(&dir_b, &daemon.addr(), ns);
    let mut run = ResumableRun::start(
        build_trainer(3),
        repo,
        Box::new(EveryKSteps::new(2)),
        SaveOptions::default(),
    )
    .unwrap();
    match run.start_info() {
        RunStart::Resumed { step, .. } => assert_eq!(*step, 6),
        other => panic!("expected resume from remote state, got {other:?}"),
    }
    let tail = run.run_to_step(10).unwrap();
    for (resumed, reference) in tail.iter().zip(&ref_reports[6..]) {
        assert_eq!(
            resumed.loss.to_bits(),
            reference.loss.to_bits(),
            "trajectory diverged at step {}",
            resumed.step
        );
    }
    let (trainer, _) = run.finish().unwrap();
    assert_eq!(trainer.step_count(), 10);
    let _ = std::fs::remove_dir_all(dir_b);
}

/// The replicated form of the acceptance drill: the *daemon* is what
/// dies. A run checkpoints against a primary while a secondary tails
/// its oplog; the primary is killed mid-`PUT_BATCH`, the secondary is
/// promoted, and a fresh working directory pointed at the failover
/// address list resumes against the promoted secondary — bit-identical
/// losses, fenced old generation, no half-frame debris.
#[test]
fn killed_primary_resumes_bit_identically_against_promoted_secondary() {
    let _env = ENV_LOCK.lock().unwrap();
    let primary = spawn_daemon(scratch("repl-primary"), StoreKind::Pack).unwrap();
    let secondary =
        spawn_secondary(scratch("repl-secondary"), StoreKind::Pack, &primary.addr()).unwrap();
    let failover_spec = format!("{},{}", primary.addr(), secondary.addr());
    let ns = "train-repl";

    // Uninterrupted reference trajectory to step 10.
    let mut reference = build_trainer(3);
    let ref_reports: Vec<StepReport> = reference.train_steps(10).unwrap();

    // Process 1: checkpoints every 2 steps to step 6 against the
    // primary (the failover list dials the primary first while it is
    // alive); the background tailer replicates each commit.
    let dir_a = scratch("repl-dir-a");
    {
        let repo = open_remote_repo(&dir_a, &failover_spec, ns);
        let mut run = ResumableRun::start(
            build_trainer(3),
            repo,
            Box::new(EveryKSteps::new(2)),
            SaveOptions::default(),
        )
        .unwrap();
        run.run_to_step(6).unwrap();
    }
    std::fs::remove_dir_all(&dir_a).unwrap();

    // Wait for the tailer to drain the oplog (secondary's length
    // reaches the primary's), then kill the primary with a half-written
    // PUT_BATCH in flight — the worst moment.
    let primary_probe = RemoteStore::connect(primary.addr(), ns).unwrap();
    let committed = primary_probe.status().unwrap().oplog_entries;
    assert!(committed > 0, "the run must have committed oplog entries");
    drop(primary_probe);
    let lag_probe = RemoteStore::connect(secondary.addr(), ns).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while lag_probe.status().unwrap().oplog_entries < committed {
        assert!(
            std::time::Instant::now() < deadline,
            "tailer never caught up"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    drop(lag_probe);
    qcheck::remote::fault::die_mid_put_batch(&primary.addr(), ns, vec![0x5A; 4096]).unwrap();
    primary.shutdown();

    // Operator promotes the secondary.
    let generation = secondary.promote().unwrap();
    assert!(generation > 1, "promotion must advance the generation");

    // Process 2: fresh working directory, same failover list. The dead
    // primary is skipped, the run resumes at step 6 from the promoted
    // secondary, and the tail matches the reference bit for bit.
    let dir_b = scratch("repl-dir-b");
    let repo = open_remote_repo(&dir_b, &failover_spec, ns);
    assert_eq!(
        repo.store().remote().unwrap().observed_generation(),
        generation,
        "the resumed client must be running at the promoted generation"
    );
    let mut run = ResumableRun::start(
        build_trainer(3),
        repo,
        Box::new(EveryKSteps::new(2)),
        SaveOptions::default(),
    )
    .unwrap();
    match run.start_info() {
        RunStart::Resumed { step, .. } => assert_eq!(*step, 6),
        other => panic!("expected resume from the promoted secondary, got {other:?}"),
    }
    let tail = run.run_to_step(10).unwrap();
    for (resumed, reference) in tail.iter().zip(&ref_reports[6..]) {
        assert_eq!(
            resumed.loss.to_bits(),
            reference.loss.to_bits(),
            "trajectory diverged at step {} after failover",
            resumed.step
        );
    }
    let (trainer, _) = run.finish().unwrap();
    assert_eq!(trainer.step_count(), 10);
    let _ = std::fs::remove_dir_all(dir_b);
}

/// The same resume, but steered entirely through the environment-driven
/// selection path (`QCHECK_STORE=remote` + `QCHECK_REMOTE_ADDR` +
/// `QCHECK_REMOTE_NS`) — the configuration a training script actually
/// uses. Env vars are process-global, so restore them before returning.
#[test]
fn env_selected_remote_backend_round_trips() {
    let _env = ENV_LOCK.lock().unwrap();
    let daemon = spawn_daemon(scratch("env-daemon"), StoreKind::Pack).unwrap();
    let prev: Vec<(&str, Option<String>)> =
        ["QCHECK_STORE", "QCHECK_REMOTE_ADDR", "QCHECK_REMOTE_NS"]
            .into_iter()
            .map(|k| (k, std::env::var(k).ok()))
            .collect();
    std::env::set_var("QCHECK_STORE", "remote");
    std::env::set_var("QCHECK_REMOTE_ADDR", daemon.addr());
    std::env::set_var("QCHECK_REMOTE_NS", "env-run");

    let result = std::panic::catch_unwind(|| {
        let dir = scratch("env-dir");
        {
            let repo = CheckpointRepo::open(&dir).unwrap();
            assert_eq!(repo.store_kind(), StoreKind::Remote);
            let mut run = ResumableRun::start(
                build_trainer(3),
                repo,
                Box::new(EveryKSteps::new(1)),
                SaveOptions::default(),
            )
            .unwrap();
            run.run_to_step(3).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();

        // Fresh directory, same env: resumes from the daemon.
        let dir2 = scratch("env-dir2");
        let repo = CheckpointRepo::open(&dir2).unwrap();
        let run = ResumableRun::start(
            build_trainer(3),
            repo,
            Box::new(EveryKSteps::new(1)),
            SaveOptions::default(),
        )
        .unwrap();
        match run.start_info() {
            RunStart::Resumed { step, .. } => assert_eq!(*step, 3),
            other => panic!("expected env-driven resume, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir2);
    });

    for (k, v) in prev {
        match v {
            Some(v) => std::env::set_var(k, v),
            None => std::env::remove_var(k),
        }
    }
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}
