//! Synthetic training datasets.
//!
//! Quantum training data is generated, not collected: state-pair datasets
//! come from a hidden "device" unitary applied to random inputs (the
//! characterization workload QNN papers motivate), and classical feature
//! datasets are standard synthetic classification problems routed through a
//! feature map. All generation is seed-deterministic.

use qsim::circuit::Circuit;
use qsim::gate::Gate;
use qsim::rng::Xoshiro256;
use qsim::state::StateVector;

/// Input/target state pairs for learning an unknown unitary.
#[derive(Clone, Debug, PartialEq)]
pub struct StatePairs {
    /// Input states `|φ_x⟩`.
    pub inputs: Vec<StateVector>,
    /// Target states `Y|φ_x⟩`.
    pub targets: Vec<StateVector>,
}

impl StatePairs {
    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Splits into (train, validation) at `train_count`.
    ///
    /// # Panics
    ///
    /// Panics if `train_count > len`.
    pub fn split(&self, train_count: usize) -> (StatePairs, StatePairs) {
        assert!(train_count <= self.len(), "split beyond dataset");
        (
            StatePairs {
                inputs: self.inputs[..train_count].to_vec(),
                targets: self.targets[..train_count].to_vec(),
            },
            StatePairs {
                inputs: self.inputs[train_count..].to_vec(),
                targets: self.targets[train_count..].to_vec(),
            },
        )
    }
}

/// A classical feature/label dataset (labels in `[-1, 1]`).
#[derive(Clone, Debug, PartialEq)]
pub struct Labeled {
    /// Feature vectors.
    pub features: Vec<Vec<f64>>,
    /// Scalar labels.
    pub labels: Vec<f64>,
}

impl Labeled {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

/// Samples a random circuit acting as the hidden "device" unitary `Y`.
///
/// Depth-`depth` alternation of random single-qubit rotations and a CX ring,
/// fully determined by `rng`.
pub fn random_unitary_circuit(num_qubits: usize, depth: usize, rng: &mut Xoshiro256) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for _ in 0..depth {
        for q in 0..num_qubits {
            let theta = rng.uniform(-std::f64::consts::PI, std::f64::consts::PI);
            let phi = rng.uniform(-std::f64::consts::PI, std::f64::consts::PI);
            let lambda = rng.uniform(-std::f64::consts::PI, std::f64::consts::PI);
            c.push_fixed(Gate::U3(theta, phi, lambda), &[q]);
        }
        if num_qubits > 1 {
            for q in 0..num_qubits {
                c.push_fixed(Gate::Cx, &[q, (q + 1) % num_qubits]);
            }
        }
    }
    c
}

/// Generates the unitary-learning workload: `n_pairs` Haar-ish random input
/// states and their images under a hidden random circuit.
///
/// Returns the dataset together with the hidden circuit (for validation
/// losses and "what should the network have learned" diagnostics).
///
/// # Panics
///
/// Panics if the hidden circuit fails to execute (impossible for valid
/// arguments).
pub fn unitary_learning(
    num_qubits: usize,
    n_pairs: usize,
    hidden_depth: usize,
    rng: &mut Xoshiro256,
) -> (StatePairs, Circuit) {
    let hidden = random_unitary_circuit(num_qubits, hidden_depth, rng);
    let mut inputs = Vec::with_capacity(n_pairs);
    let mut targets = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let input = StateVector::random(num_qubits, rng);
        let mut target = input.clone();
        hidden
            .run_on(&mut target, &[])
            .expect("hidden circuit must execute");
        inputs.push(input);
        targets.push(target);
    }
    (StatePairs { inputs, targets }, hidden)
}

/// Parity classification: features in `{-π/2, +π/2}^d`, label = product of
/// feature signs (the canonical hard-for-local-models synthetic task).
pub fn parity(num_features: usize, n_examples: usize, rng: &mut Xoshiro256) -> Labeled {
    let mut features = Vec::with_capacity(n_examples);
    let mut labels = Vec::with_capacity(n_examples);
    for _ in 0..n_examples {
        let x: Vec<f64> = (0..num_features)
            .map(|_| {
                if rng.next_f64() < 0.5 {
                    -std::f64::consts::FRAC_PI_2
                } else {
                    std::f64::consts::FRAC_PI_2
                }
            })
            .collect();
        let label: f64 = x.iter().map(|v| v.signum()).product();
        features.push(x);
        labels.push(label);
    }
    Labeled { features, labels }
}

/// Two Gaussian blobs in `d` dimensions, labels ±1 — an easy linearly
/// separable task for smoke tests and quickstarts.
pub fn blobs(
    num_features: usize,
    n_examples: usize,
    separation: f64,
    rng: &mut Xoshiro256,
) -> Labeled {
    let mut features = Vec::with_capacity(n_examples);
    let mut labels = Vec::with_capacity(n_examples);
    for i in 0..n_examples {
        let label = if i % 2 == 0 { 1.0 } else { -1.0 };
        let center = label * separation / 2.0;
        let x: Vec<f64> = (0..num_features)
            .map(|_| center + 0.3 * rng.next_gaussian())
            .collect();
        features.push(x);
        labels.push(label);
    }
    Labeled { features, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unitary_learning_targets_are_images() {
        let mut rng = Xoshiro256::seed_from(3);
        let (pairs, hidden) = unitary_learning(3, 5, 2, &mut rng);
        assert_eq!(pairs.len(), 5);
        for (input, target) in pairs.inputs.iter().zip(&pairs.targets) {
            let mut out = input.clone();
            hidden.run_on(&mut out, &[]).unwrap();
            assert!((out.fidelity(target).unwrap() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn unitary_learning_is_seed_deterministic() {
        let mut a = Xoshiro256::seed_from(11);
        let mut b = Xoshiro256::seed_from(11);
        let (pa, _) = unitary_learning(2, 4, 2, &mut a);
        let (pb, _) = unitary_learning(2, 4, 2, &mut b);
        assert_eq!(pa, pb);
    }

    #[test]
    fn random_circuit_is_nontrivial() {
        let mut rng = Xoshiro256::seed_from(5);
        let c = random_unitary_circuit(3, 2, &mut rng);
        let out = c.run(&[]).unwrap();
        let zero = StateVector::zero_state(3);
        assert!(
            out.fidelity(&zero).unwrap() < 0.99,
            "hidden unitary ≈ identity"
        );
    }

    #[test]
    fn split_partitions() {
        let mut rng = Xoshiro256::seed_from(1);
        let (pairs, _) = unitary_learning(2, 10, 1, &mut rng);
        let (train, val) = pairs.split(7);
        assert_eq!(train.len(), 7);
        assert_eq!(val.len(), 3);
        assert_eq!(train.inputs[0], pairs.inputs[0]);
        assert_eq!(val.inputs[0], pairs.inputs[7]);
    }

    #[test]
    fn parity_labels_are_sign_products() {
        let mut rng = Xoshiro256::seed_from(9);
        let d = parity(4, 50, &mut rng);
        assert_eq!(d.len(), 50);
        for (x, y) in d.features.iter().zip(&d.labels) {
            let expected: f64 = x.iter().map(|v| v.signum()).product();
            assert_eq!(*y, expected);
        }
    }

    #[test]
    fn blobs_are_separated() {
        let mut rng = Xoshiro256::seed_from(21);
        let d = blobs(2, 100, 2.0, &mut rng);
        // Mean of class +1 features should exceed mean of class −1.
        let mean = |label: f64| -> f64 {
            let sel: Vec<f64> = d
                .features
                .iter()
                .zip(&d.labels)
                .filter(|(_, y)| **y == label)
                .flat_map(|(x, _)| x.iter().copied())
                .collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        assert!(mean(1.0) > mean(-1.0) + 1.0);
    }

    #[test]
    fn empty_checks() {
        let d = Labeled {
            features: vec![],
            labels: vec![],
        };
        assert!(d.is_empty());
        let p = StatePairs {
            inputs: vec![],
            targets: vec![],
        };
        assert!(p.is_empty());
    }
}
