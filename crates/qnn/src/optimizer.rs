//! Optimizers with serializable state.
//!
//! Every optimizer here exposes its complete internal state as a tagged
//! [`StateBlob`] and restores from one byte-exactly. This is not a nicety:
//! resuming Adam without its moment vectors silently changes the effective
//! learning-rate schedule and the training trajectory diverges — one of the
//! failure modes the resume-exactness experiment (R-T2) quantifies.
//!
//! An [`Optimizer::step`] is `O(params)` classical arithmetic — noise next
//! to the `2·sites + 1` circuit evaluations a parameter-shift gradient
//! costs. The trainer therefore spends its effort on the quantum side:
//! one `qsim::plan::ExecPlan` compiled per ansatz, reused (rebound) for
//! every evaluation feeding these optimizers.

use qcheck::codec::{Decoder, Encoder};
use qcheck::snapshot::StateBlob;

/// An optimizer updating a parameter vector from a gradient.
pub trait Optimizer: std::fmt::Debug + Send {
    /// Applies one update step in place.
    ///
    /// # Panics
    ///
    /// Implementations panic when `params.len() != grad.len()`.
    fn step(&mut self, params: &mut [f64], grad: &[f64]);

    /// Serializes the full internal state (hyperparameters + moments).
    fn state_blob(&self) -> StateBlob;

    /// Restores the state captured by [`Optimizer::state_blob`].
    ///
    /// # Errors
    ///
    /// Returns a message on tag mismatch or malformed payload.
    fn restore_blob(&mut self, blob: &StateBlob) -> Result<(), String>;

    /// Stable identifier, also used as the blob tag.
    fn name(&self) -> &'static str;

    /// Clears accumulated state (moments, step counters), keeping
    /// hyperparameters.
    fn reset(&mut self);
}

fn check_tag(blob: &StateBlob, expected: &str) -> Result<(), String> {
    if blob.tag != expected {
        return Err(format!(
            "optimizer blob tag mismatch: expected '{expected}', found '{}'",
            blob.tag
        ));
    }
    Ok(())
}

fn decode_err(e: qcheck::Error) -> String {
    format!("optimizer blob decode failure: {e}")
}

/// Plain stochastic gradient descent.
#[derive(Clone, Debug, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(learning_rate: f64) -> Self {
        Sgd { learning_rate }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len(), "gradient length mismatch");
        for (p, g) in params.iter_mut().zip(grad) {
            *p -= self.learning_rate * g;
        }
    }

    fn state_blob(&self) -> StateBlob {
        let mut e = Encoder::new();
        e.put_f64(self.learning_rate);
        StateBlob::new(self.name(), e.into_bytes())
    }

    fn restore_blob(&mut self, blob: &StateBlob) -> Result<(), String> {
        check_tag(blob, self.name())?;
        let mut d = Decoder::new(&blob.data, "sgd blob");
        self.learning_rate = d.get_f64().map_err(decode_err)?;
        d.finish().map_err(decode_err)
    }

    fn name(&self) -> &'static str {
        "sgd-v1"
    }

    fn reset(&mut self) {}
}

/// SGD with classical momentum.
#[derive(Clone, Debug, PartialEq)]
pub struct Momentum {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum factor μ.
    pub momentum: f64,
    velocity: Vec<f64>,
}

impl Momentum {
    /// Creates momentum SGD.
    pub fn new(learning_rate: f64, momentum: f64) -> Self {
        Momentum {
            learning_rate,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len(), "gradient length mismatch");
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, g), v) in params.iter_mut().zip(grad).zip(&mut self.velocity) {
            *v = self.momentum * *v - self.learning_rate * g;
            *p += *v;
        }
    }

    fn state_blob(&self) -> StateBlob {
        let mut e = Encoder::new();
        e.put_f64(self.learning_rate)
            .put_f64(self.momentum)
            .put_f64_slice(&self.velocity);
        StateBlob::new(self.name(), e.into_bytes())
    }

    fn restore_blob(&mut self, blob: &StateBlob) -> Result<(), String> {
        check_tag(blob, self.name())?;
        let mut d = Decoder::new(&blob.data, "momentum blob");
        self.learning_rate = d.get_f64().map_err(decode_err)?;
        self.momentum = d.get_f64().map_err(decode_err)?;
        self.velocity = d.get_f64_vec().map_err(decode_err)?;
        d.finish().map_err(decode_err)
    }

    fn name(&self) -> &'static str {
        "momentum-v1"
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam (Kingma & Ba 2015).
#[derive(Clone, Debug, PartialEq)]
pub struct Adam {
    /// Learning rate α.
    pub learning_rate: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Numerical floor ε.
    pub epsilon: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates Adam with standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(learning_rate: f64) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Bias-corrected step count.
    pub fn step_count(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len(), "gradient length mismatch");
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn state_blob(&self) -> StateBlob {
        let mut e = Encoder::new();
        e.put_f64(self.learning_rate)
            .put_f64(self.beta1)
            .put_f64(self.beta2)
            .put_f64(self.epsilon)
            .put_u64(self.t)
            .put_f64_slice(&self.m)
            .put_f64_slice(&self.v);
        StateBlob::new(self.name(), e.into_bytes())
    }

    fn restore_blob(&mut self, blob: &StateBlob) -> Result<(), String> {
        check_tag(blob, self.name())?;
        let mut d = Decoder::new(&blob.data, "adam blob");
        self.learning_rate = d.get_f64().map_err(decode_err)?;
        self.beta1 = d.get_f64().map_err(decode_err)?;
        self.beta2 = d.get_f64().map_err(decode_err)?;
        self.epsilon = d.get_f64().map_err(decode_err)?;
        self.t = d.get_u64().map_err(decode_err)?;
        self.m = d.get_f64_vec().map_err(decode_err)?;
        self.v = d.get_f64_vec().map_err(decode_err)?;
        d.finish().map_err(decode_err)
    }

    fn name(&self) -> &'static str {
        "adam-v1"
    }

    fn reset(&mut self) {
        self.t = 0;
        self.m.clear();
        self.v.clear();
    }
}

/// AdaGrad (Duchi et al. 2011).
#[derive(Clone, Debug, PartialEq)]
pub struct AdaGrad {
    /// Learning rate.
    pub learning_rate: f64,
    /// Numerical floor ε.
    pub epsilon: f64,
    accum: Vec<f64>,
}

impl AdaGrad {
    /// Creates AdaGrad.
    pub fn new(learning_rate: f64) -> Self {
        AdaGrad {
            learning_rate,
            epsilon: 1e-10,
            accum: Vec::new(),
        }
    }
}

impl Optimizer for AdaGrad {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len(), "gradient length mismatch");
        if self.accum.len() != params.len() {
            self.accum = vec![0.0; params.len()];
        }
        for i in 0..params.len() {
            self.accum[i] += grad[i] * grad[i];
            params[i] -= self.learning_rate * grad[i] / (self.accum[i].sqrt() + self.epsilon);
        }
    }

    fn state_blob(&self) -> StateBlob {
        let mut e = Encoder::new();
        e.put_f64(self.learning_rate)
            .put_f64(self.epsilon)
            .put_f64_slice(&self.accum);
        StateBlob::new(self.name(), e.into_bytes())
    }

    fn restore_blob(&mut self, blob: &StateBlob) -> Result<(), String> {
        check_tag(blob, self.name())?;
        let mut d = Decoder::new(&blob.data, "adagrad blob");
        self.learning_rate = d.get_f64().map_err(decode_err)?;
        self.epsilon = d.get_f64().map_err(decode_err)?;
        self.accum = d.get_f64_vec().map_err(decode_err)?;
        d.finish().map_err(decode_err)
    }

    fn name(&self) -> &'static str {
        "adagrad-v1"
    }

    fn reset(&mut self) {
        self.accum.clear();
    }
}

/// RMSProp (Tieleman & Hinton 2012).
#[derive(Clone, Debug, PartialEq)]
pub struct RmsProp {
    /// Learning rate.
    pub learning_rate: f64,
    /// Squared-gradient decay ρ.
    pub rho: f64,
    /// Numerical floor ε.
    pub epsilon: f64,
    sq: Vec<f64>,
}

impl RmsProp {
    /// Creates RMSProp with ρ = 0.9.
    pub fn new(learning_rate: f64) -> Self {
        RmsProp {
            learning_rate,
            rho: 0.9,
            epsilon: 1e-10,
            sq: Vec::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len(), "gradient length mismatch");
        if self.sq.len() != params.len() {
            self.sq = vec![0.0; params.len()];
        }
        for i in 0..params.len() {
            self.sq[i] = self.rho * self.sq[i] + (1.0 - self.rho) * grad[i] * grad[i];
            params[i] -= self.learning_rate * grad[i] / (self.sq[i].sqrt() + self.epsilon);
        }
    }

    fn state_blob(&self) -> StateBlob {
        let mut e = Encoder::new();
        e.put_f64(self.learning_rate)
            .put_f64(self.rho)
            .put_f64(self.epsilon)
            .put_f64_slice(&self.sq);
        StateBlob::new(self.name(), e.into_bytes())
    }

    fn restore_blob(&mut self, blob: &StateBlob) -> Result<(), String> {
        check_tag(blob, self.name())?;
        let mut d = Decoder::new(&blob.data, "rmsprop blob");
        self.learning_rate = d.get_f64().map_err(decode_err)?;
        self.rho = d.get_f64().map_err(decode_err)?;
        self.epsilon = d.get_f64().map_err(decode_err)?;
        self.sq = d.get_f64_vec().map_err(decode_err)?;
        d.finish().map_err(decode_err)
    }

    fn name(&self) -> &'static str {
        "rmsprop-v1"
    }

    fn reset(&mut self) {
        self.sq.clear();
    }
}

/// Builds an optimizer by name (CLI / config convenience).
///
/// # Errors
///
/// Returns the unknown name.
pub fn by_name(name: &str, learning_rate: f64) -> Result<Box<dyn Optimizer>, String> {
    match name {
        "sgd" => Ok(Box::new(Sgd::new(learning_rate))),
        "momentum" => Ok(Box::new(Momentum::new(learning_rate, 0.9))),
        "adam" => Ok(Box::new(Adam::new(learning_rate))),
        "adagrad" => Ok(Box::new(AdaGrad::new(learning_rate))),
        "rmsprop" => Ok(Box::new(RmsProp::new(learning_rate))),
        other => Err(format!("unknown optimizer '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_converges(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        // Minimize f(x) = Σ (x_i - i)², gradient 2(x_i - i).
        let mut params = vec![10.0; 5];
        for _ in 0..steps {
            let grad: Vec<f64> = params
                .iter()
                .enumerate()
                .map(|(i, p)| 2.0 * (p - i as f64))
                .collect();
            opt.step(&mut params, &grad);
        }
        params
            .iter()
            .enumerate()
            .map(|(i, p)| (p - i as f64).powi(2))
            .sum()
    }

    #[test]
    fn all_optimizers_descend_a_quadratic() {
        let mut opts: Vec<Box<dyn Optimizer>> = vec![
            Box::new(Sgd::new(0.1)),
            Box::new(Momentum::new(0.05, 0.9)),
            Box::new(Adam::new(0.3)),
            Box::new(AdaGrad::new(2.0)),
            Box::new(RmsProp::new(0.5)),
        ];
        for opt in &mut opts {
            // Sign-normalized optimizers (RMSProp) oscillate within ~lr of
            // the optimum; 0.1 is loose enough for all five.
            let residual = quadratic_converges(opt.as_mut(), 300);
            assert!(residual < 0.1, "{} residual {residual}", opt.name());
        }
    }

    #[test]
    fn sgd_step_is_linear() {
        let mut opt = Sgd::new(0.5);
        let mut params = vec![1.0, 2.0];
        opt.step(&mut params, &[2.0, -4.0]);
        assert_eq!(params, vec![0.0, 4.0]);
    }

    #[test]
    fn adam_moments_round_trip_bitwise() {
        let mut a = Adam::new(0.01);
        let mut params = vec![0.3; 8];
        for k in 0..17 {
            let grad: Vec<f64> = params
                .iter()
                .map(|p: &f64| p.sin() + k as f64 * 1e-3)
                .collect();
            a.step(&mut params, &grad);
        }
        let blob = a.state_blob();
        let mut b = Adam::new(999.0); // wrong hypers, must be overwritten
        b.restore_blob(&blob).unwrap();
        assert_eq!(a, b);

        // Future trajectories must now be identical bit for bit.
        let mut pa = params.clone();
        let mut pb = params.clone();
        for _ in 0..10 {
            let ga: Vec<f64> = pa.iter().map(|p| p.cos()).collect();
            let gb: Vec<f64> = pb.iter().map(|p| p.cos()).collect();
            a.step(&mut pa, &ga);
            b.step(&mut pb, &gb);
        }
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn every_optimizer_blob_round_trips() {
        let mut params = vec![1.0; 6];
        let grad = vec![0.5; 6];
        let factories: Vec<fn() -> Box<dyn Optimizer>> = vec![
            || Box::new(Sgd::new(0.1)),
            || Box::new(Momentum::new(0.1, 0.8)),
            || Box::new(Adam::new(0.1)),
            || Box::new(AdaGrad::new(0.1)),
            || Box::new(RmsProp::new(0.1)),
        ];
        for factory in factories {
            let mut original = factory();
            original.step(&mut params, &grad);
            original.step(&mut params, &grad);
            let blob = original.state_blob();
            assert_eq!(blob.tag, original.name());

            let mut restored = factory();
            restored.restore_blob(&blob).unwrap();
            // One more step on each must agree exactly.
            let mut p1 = params.clone();
            let mut p2 = params.clone();
            original.step(&mut p1, &grad);
            restored.step(&mut p2, &grad);
            for (a, b) in p1.iter().zip(&p2) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}", original.name());
            }
        }
    }

    #[test]
    fn restore_rejects_wrong_tag() {
        let sgd_blob = Sgd::new(0.1).state_blob();
        let mut adam = Adam::new(0.1);
        let err = adam.restore_blob(&sgd_blob).unwrap_err();
        assert!(err.contains("tag mismatch"));
    }

    #[test]
    fn restore_rejects_truncated_blob() {
        let mut adam = Adam::new(0.1);
        let mut params = vec![0.1; 3];
        adam.step(&mut params, &[1.0, 1.0, 1.0]);
        let mut blob = adam.state_blob();
        blob.data.truncate(blob.data.len() / 2);
        assert!(adam.restore_blob(&blob).is_err());
    }

    #[test]
    fn reset_clears_moments_not_hypers() {
        let mut m = Momentum::new(0.1, 0.9);
        let mut params = vec![1.0];
        m.step(&mut params, &[1.0]);
        m.reset();
        assert_eq!(m.learning_rate, 0.1);
        assert_eq!(m.momentum, 0.9);
        let blob = m.state_blob();
        // Velocity is empty again.
        let mut d = Decoder::new(&blob.data, "m");
        d.get_f64().unwrap();
        d.get_f64().unwrap();
        assert!(d.get_f64_vec().unwrap().is_empty());
    }

    #[test]
    fn by_name_constructs_all() {
        for name in ["sgd", "momentum", "adam", "adagrad", "rmsprop"] {
            assert_eq!(
                by_name(name, 0.1)
                    .unwrap()
                    .name()
                    .split('-')
                    .next()
                    .unwrap(),
                name
            );
        }
        assert!(by_name("lbfgs", 0.1).is_err());
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn mismatched_gradient_panics() {
        Sgd::new(0.1).step(&mut [1.0, 2.0], &[1.0]);
    }
}
