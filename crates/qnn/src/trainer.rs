//! The hybrid training loop.
//!
//! [`Trainer`] owns everything the paper's state-inventory table lists:
//! parameters, optimizer, two named RNG streams (`shots` for measurement
//! sampling, `data` for batch order and SPSA directions), the dataset
//! cursor, the shot ledger and the metrics tail. It implements
//! [`Checkpointable`], and its contract is the strong one: restoring a
//! capture makes the *future trajectory bitwise identical* to a run that
//! never stopped — the property experiment R-T2 verifies and that
//! params-only resumes break.

use std::time::Instant;

use qcheck::snapshot::{Checkpointable, DatasetCursor, MetricPoint, RngCapture, TrainingSnapshot};
use qsim::circuit::{Circuit, CircuitError, ParamRef};
use qsim::measure::{evaluate_observable, EvalMode};
use qsim::pauli::PauliSum;
use qsim::plan::{BoundPlan, ExecPlan};
use qsim::rng::{RngState, Xoshiro256};
use qsim::state::{StateError, StateVector};

use crate::dataset::{Labeled, StatePairs};
use crate::encode::FeatureMap;
use crate::gradient::{
    finite_diff_gradient, finite_diff_gradient_parallel, parameter_shift_gradient_with,
    spsa_gradient, GradientMethod, ShiftSite,
};
use crate::ledger::ShotLedger;
use crate::optimizer::Optimizer;

/// Training-loop errors.
#[derive(Debug)]
pub enum TrainError {
    /// Circuit execution failure.
    Circuit(CircuitError),
    /// State-vector failure.
    State(StateError),
    /// Configuration the trainer cannot run.
    Unsupported(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Circuit(e) => write!(f, "circuit error: {e}"),
            TrainError::State(e) => write!(f, "state error: {e}"),
            TrainError::Unsupported(msg) => write!(f, "unsupported configuration: {msg}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Body of [`Trainer::exact_loss_at`], over just a bound-plan scratch and
/// the task so gradient workers can share it without capturing the whole
/// (non-`Sync`) trainer. The plan is compiled once per trainer; `bound`
/// is a reusable [`BoundPlan`] shell (see [`ExecPlan::bind_scratch`])
/// rebound in place here, so the `2·sites` evaluations of a gradient pay
/// one bind each but zero allocations — and the batch loops below bind
/// once per *loss call*, not once per example.
fn exact_loss_at_parts(
    bound: &mut BoundPlan<'_>,
    task: &Task,
    params: &[f64],
    batch: &[usize],
    op_shift: Option<(usize, f64)>,
) -> Result<f64, TrainError> {
    match op_shift {
        Some((op, delta)) => bound.rebind_shifted(params, op, delta)?,
        None => bound.rebind(params)?,
    }
    match task {
        Task::Vqe { hamiltonian } => {
            let mut state = StateVector::zero_state(bound.num_qubits());
            bound.run_on(&mut state)?;
            Ok(hamiltonian.expectation(&state)?)
        }
        Task::StateLearning { data } => {
            let mut acc = 0.0;
            for &i in batch {
                let mut state = data.inputs[i].clone();
                bound.run_on(&mut state)?;
                acc += state.fidelity(&data.targets[i])?;
            }
            Ok(1.0 - acc / batch.len() as f64)
        }
        Task::Classification {
            data,
            feature_map,
            observable,
            ..
        } => {
            let mut acc = 0.0;
            for &i in batch {
                let mut state = StateVector::zero_state(bound.num_qubits());
                feature_map.encode_onto(&mut state, &data.features[i])?;
                bound.run_on(&mut state)?;
                let pred = observable.expectation(&state)?;
                let err = pred - data.labels[i];
                acc += err * err;
            }
            Ok(acc / batch.len() as f64)
        }
    }
}

impl From<CircuitError> for TrainError {
    fn from(e: CircuitError) -> Self {
        TrainError::Circuit(e)
    }
}

impl From<StateError> for TrainError {
    fn from(e: StateError) -> Self {
        TrainError::State(e)
    }
}

/// What the model is being trained to do.
#[derive(Clone, Debug)]
pub enum Task {
    /// Minimize `⟨ψ(θ)|H|ψ(θ)⟩` (variational eigensolver).
    Vqe {
        /// The Hamiltonian.
        hamiltonian: PauliSum,
    },
    /// Learn an unknown unitary from input/target state pairs
    /// (loss = 1 − mean fidelity). In shot mode, fidelities are estimated
    /// with the destructive SWAP test, exactly as on hardware.
    StateLearning {
        /// The training pairs.
        data: StatePairs,
    },
    /// Supervised regression/classification of classical features through a
    /// feature map (loss = mini-batch MSE against labels in `[-1, 1]`).
    Classification {
        /// The dataset.
        data: Labeled,
        /// Feature encoding.
        feature_map: FeatureMap,
        /// Readout observable.
        observable: PauliSum,
        /// Mini-batch size.
        batch_size: usize,
    },
}

impl Task {
    fn dataset_len(&self) -> usize {
        match self {
            Task::Vqe { .. } => 0,
            Task::StateLearning { data } => data.len(),
            Task::Classification { data, .. } => data.len(),
        }
    }

    /// Short task name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Task::Vqe { .. } => "vqe",
            Task::StateLearning { .. } => "state-learning",
            Task::Classification { .. } => "classification",
        }
    }
}

/// Static configuration of a training run.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Run label recorded in checkpoints.
    pub label: String,
    /// Exact or shot-based evaluation.
    pub eval_mode: EvalMode,
    /// Gradient estimator.
    pub gradient: GradientMethod,
    /// Master seed; the `shots` and `data` streams are split from it.
    pub seed: u64,
    /// Metric-tail capacity kept in memory and checkpoints.
    pub metrics_capacity: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            label: "qnn-run".into(),
            eval_mode: EvalMode::Exact,
            gradient: GradientMethod::ParameterShift,
            seed: 0,
            metrics_capacity: 256,
        }
    }
}

/// Per-step outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepReport {
    /// Step index after the update (1-based).
    pub step: u64,
    /// Loss evaluated *before* the update, on the step's batch.
    pub loss: f64,
    /// L2 norm of the gradient used.
    pub grad_norm: f64,
    /// Observable evaluations consumed by the step.
    pub evals: u32,
    /// Shots consumed by the step.
    pub shots: u64,
}

/// The hybrid quantum-classical training loop.
#[derive(Debug)]
pub struct Trainer {
    circuit: Circuit,
    /// Execution plan compiled once from `circuit` at construction and
    /// reused for every evaluation the trainer ever makes.
    plan: ExecPlan,
    task: Task,
    optimizer: Box<dyn Optimizer>,
    params: Vec<f64>,
    config: TrainerConfig,
    shots_rng: Xoshiro256,
    data_rng: Xoshiro256,
    step: u64,
    epoch: u64,
    cursor_position: u64,
    order_seed: u64,
    order: Vec<usize>,
    ledger: ShotLedger,
    metrics: Vec<MetricPoint>,
    wall_accum_ms: u64,
    started: Instant,
}

impl Trainer {
    /// Creates a trainer with freshly initialized parameters.
    ///
    /// # Errors
    ///
    /// Rejects structurally impossible configurations: parameter-count
    /// mismatch, shot-based state-learning (fidelity is evaluated exactly in
    /// this simulator), zero batch size, or observable width mismatch.
    pub fn new(
        circuit: Circuit,
        task: Task,
        optimizer: Box<dyn Optimizer>,
        params: Vec<f64>,
        config: TrainerConfig,
    ) -> Result<Self, TrainError> {
        if params.len() < circuit.num_params() {
            return Err(TrainError::Unsupported(format!(
                "circuit references {} parameters, got {}",
                circuit.num_params(),
                params.len()
            )));
        }
        match &task {
            Task::StateLearning { data } => {
                if data.is_empty() {
                    return Err(TrainError::Unsupported("empty state-pair dataset".into()));
                }
                if data.inputs[0].num_qubits() != circuit.num_qubits() {
                    return Err(TrainError::Unsupported(format!(
                        "dataset is {}-qubit, circuit is {}-qubit",
                        data.inputs[0].num_qubits(),
                        circuit.num_qubits()
                    )));
                }
            }
            Task::Classification {
                data,
                batch_size,
                observable,
                ..
            } => {
                if *batch_size == 0 {
                    return Err(TrainError::Unsupported(
                        "batch size must be positive".into(),
                    ));
                }
                if data.is_empty() {
                    return Err(TrainError::Unsupported("empty labeled dataset".into()));
                }
                if observable.num_qubits() != circuit.num_qubits() {
                    return Err(TrainError::Unsupported(
                        "observable width does not match circuit".into(),
                    ));
                }
            }
            Task::Vqe { hamiltonian } => {
                if hamiltonian.num_qubits() != circuit.num_qubits() {
                    return Err(TrainError::Unsupported(
                        "hamiltonian width does not match circuit".into(),
                    ));
                }
            }
        }
        let mut master = Xoshiro256::seed_from(config.seed);
        let shots_rng = master.split();
        let mut data_rng = master.split();
        let order_seed = data_rng.next_u64();
        let plan = circuit.compile()?;
        let mut trainer = Trainer {
            circuit,
            plan,
            task,
            optimizer,
            params,
            config,
            shots_rng,
            data_rng,
            step: 0,
            epoch: 0,
            cursor_position: 0,
            order_seed,
            order: Vec::new(),
            ledger: ShotLedger::new(),
            metrics: Vec::new(),
            wall_accum_ms: 0,
            started: Instant::now(),
        };
        trainer.rebuild_order();
        Ok(trainer)
    }

    /// Current parameters.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Completed steps.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Completed epochs (classification only; 0 otherwise).
    pub fn epoch_count(&self) -> u64 {
        self.epoch
    }

    /// The shot ledger.
    pub fn ledger(&self) -> &ShotLedger {
        &self.ledger
    }

    /// Recent metrics (bounded tail).
    pub fn metrics(&self) -> &[MetricPoint] {
        &self.metrics
    }

    /// The task being trained.
    pub fn task(&self) -> &Task {
        &self.task
    }

    /// The variational circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The run configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    fn rebuild_order(&mut self) {
        let len = self.task.dataset_len();
        self.order = (0..len).collect();
        if len > 1 {
            let mut order_rng = Xoshiro256::seed_from(self.order_seed);
            order_rng.shuffle(&mut self.order);
        }
    }

    /// Selects the batch for the next step, advancing the cursor.
    fn next_batch(&mut self) -> Vec<usize> {
        let (len, batch_size) = match &self.task {
            Task::Vqe { .. } => return Vec::new(),
            Task::StateLearning { data } => return (0..data.len()).collect(),
            Task::Classification {
                data, batch_size, ..
            } => (data.len(), *batch_size),
        };
        if self.cursor_position as usize >= len {
            self.epoch += 1;
            self.cursor_position = 0;
            self.order_seed = self.data_rng.next_u64();
            self.rebuild_order();
        }
        let start = self.cursor_position as usize;
        let end = (start + batch_size).min(len);
        self.cursor_position = end as u64;
        self.order[start..end].to_vec()
    }

    /// Evaluates the loss on a batch at given parameters.
    ///
    /// `op_shift` offsets one op's angle (parameter-shift internals).
    /// Returns `(loss, evals, shots)`.
    fn loss_at(
        &mut self,
        params: &[f64],
        batch: &[usize],
        op_shift: Option<(usize, f64)>,
    ) -> Result<(f64, u32, u64), TrainError> {
        let mode = self.config.eval_mode;
        // One bind per loss call; the batch loops below reuse the bound
        // schedule and only vary the input state.
        let mut bound = self.plan.bind_scratch();
        match op_shift {
            Some((op, delta)) => bound.rebind_shifted(params, op, delta)?,
            None => bound.rebind(params)?,
        }
        match &self.task {
            Task::Vqe { hamiltonian } => {
                let mut state = StateVector::zero_state(self.circuit.num_qubits());
                bound.run_on(&mut state)?;
                let (value, shots) =
                    evaluate_observable(&state, hamiltonian, mode, &mut self.shots_rng)?;
                Ok((value, 1, shots))
            }
            Task::StateLearning { data } => {
                let mut acc = 0.0;
                let mut shots_total = 0u64;
                for &i in batch {
                    let mut state = data.inputs[i].clone();
                    bound.run_on(&mut state)?;
                    match mode {
                        EvalMode::Exact => acc += state.fidelity(&data.targets[i])?,
                        EvalMode::Shots(shots) => {
                            acc += qsim::measure::swap_test_fidelity(
                                &state,
                                &data.targets[i],
                                shots,
                                &mut self.shots_rng,
                            )?;
                            shots_total += shots as u64;
                        }
                    }
                }
                Ok((
                    1.0 - acc / batch.len() as f64,
                    batch.len() as u32,
                    shots_total,
                ))
            }
            Task::Classification {
                data,
                feature_map,
                observable,
                ..
            } => {
                let mut acc = 0.0;
                let mut shots_total = 0u64;
                for &i in batch {
                    let mut state = StateVector::zero_state(self.circuit.num_qubits());
                    feature_map.encode_onto(&mut state, &data.features[i])?;
                    bound.run_on(&mut state)?;
                    let (pred, shots) =
                        evaluate_observable(&state, observable, mode, &mut self.shots_rng)?;
                    shots_total += shots;
                    let err = pred - data.labels[i];
                    acc += err * err;
                }
                Ok((acc / batch.len() as f64, batch.len() as u32, shots_total))
            }
        }
    }

    /// Per-example prediction with optional op shift (classification chain
    /// rule). Returns `(prediction, shots)`.
    fn prediction_at(
        &mut self,
        params: &[f64],
        example: usize,
        op_shift: Option<(usize, f64)>,
    ) -> Result<(f64, u64), TrainError> {
        let mode = self.config.eval_mode;
        match &self.task {
            Task::Classification {
                data,
                feature_map,
                observable,
                ..
            } => {
                let mut state = StateVector::zero_state(self.circuit.num_qubits());
                feature_map.encode_onto(&mut state, &data.features[example])?;
                match op_shift {
                    Some((op, delta)) => self
                        .plan
                        .run_on_with_op_shift(&mut state, params, op, delta)?,
                    None => self.plan.run_on(&mut state, params)?,
                }
                let (pred, shots) =
                    evaluate_observable(&state, observable, mode, &mut self.shots_rng)?;
                Ok((pred, shots))
            }
            _ => Err(TrainError::Unsupported(
                "prediction_at is a classification internal".into(),
            )),
        }
    }

    /// Loss evaluations consumed by one exact-loss call (mirrors the
    /// `evals` accounting of the serial `loss_at`).
    fn exact_evals_per_loss(&self, batch: &[usize]) -> u32 {
        match &self.task {
            Task::Vqe { .. } => 1,
            _ => batch.len() as u32,
        }
    }

    /// `(op_index, param_index, scale)` of every parametrized op.
    fn shift_sites(&self) -> Vec<(usize, usize, f64)> {
        self.circuit
            .ops()
            .iter()
            .enumerate()
            .filter_map(|(i, op)| match op.param {
                Some(ParamRef::Sym { index, scale }) => Some((i, index, scale)),
                _ => None,
            })
            .collect()
    }

    /// Computes the gradient on a batch. Returns `(grad, evals, shots)`.
    fn gradient(&mut self, batch: &[usize]) -> Result<(Vec<f64>, u32, u64), TrainError> {
        let _span = qobs::span("qnn.gradient");
        const SHIFT: f64 = std::f64::consts::FRAC_PI_2;
        let params = self.params.clone();
        match self.config.gradient {
            GradientMethod::ParameterShift => {
                let sites = self.shift_sites();
                let mut grad = vec![0.0; params.len()];
                let mut evals = 0u32;
                let mut shots = 0u64;
                match &self.task {
                    Task::Classification { data, .. } => {
                        // Chain rule: dL/dθ = (2/B) Σ_x (p_x − y_x) · dp_x/dθ.
                        let labels: Vec<f64> = batch.iter().map(|&i| data.labels[i]).collect();
                        for (bi, &example) in batch.to_vec().iter().enumerate() {
                            let (pred, s0) = self.prediction_at(&params, example, None)?;
                            shots += s0;
                            evals += 1;
                            let residual = 2.0 * (pred - labels[bi]) / batch.len() as f64;
                            for &(op, pidx, scale) in &sites {
                                let (plus, s1) =
                                    self.prediction_at(&params, example, Some((op, SHIFT)))?;
                                let (minus, s2) =
                                    self.prediction_at(&params, example, Some((op, -SHIFT)))?;
                                shots += s1 + s2;
                                evals += 2;
                                grad[pidx] += residual * scale * (plus - minus) / 2.0;
                            }
                        }
                    }
                    _ => {
                        if self.config.eval_mode == EvalMode::Exact && qpar::current_threads() > 1 {
                            // Exact evaluations draw no RNG, so the ±π/2
                            // evaluations of every site are embarrassingly
                            // parallel; results are bit-identical to the
                            // serial loop below.
                            let shift_sites: Vec<ShiftSite> = sites
                                .iter()
                                .map(|&(op, pidx, scale)| ShiftSite {
                                    op_index: op,
                                    param_index: pidx,
                                    scale,
                                })
                                .collect();
                            let (plan, task) = (&self.plan, &self.task);
                            grad = parameter_shift_gradient_with(
                                params.len(),
                                &shift_sites,
                                SHIFT,
                                || plan.bind_scratch(),
                                |bound, op, delta| {
                                    exact_loss_at_parts(
                                        bound,
                                        task,
                                        &params,
                                        batch,
                                        Some((op, delta)),
                                    )
                                },
                            )?;
                            evals += 2 * sites.len() as u32 * self.exact_evals_per_loss(batch);
                        } else {
                            // Direct rule on the (expectation-shaped) loss.
                            for &(op, pidx, scale) in &sites {
                                let (plus, e1, s1) =
                                    self.loss_at(&params, batch, Some((op, SHIFT)))?;
                                let (minus, e2, s2) =
                                    self.loss_at(&params, batch, Some((op, -SHIFT)))?;
                                evals += e1 + e2;
                                shots += s1 + s2;
                                grad[pidx] += scale * (plus - minus) / 2.0;
                            }
                        }
                    }
                }
                Ok((grad, evals, shots))
            }
            GradientMethod::FiniteDiff { eps } => {
                if self.config.eval_mode == EvalMode::Exact && qpar::current_threads() > 1 {
                    let (plan, task) = (&self.plan, &self.task);
                    let grad = finite_diff_gradient_parallel(&params, eps, |p| {
                        exact_loss_at_parts(&mut plan.bind_scratch(), task, p, batch, None)
                    })?;
                    let evals = 2 * params.len() as u32 * self.exact_evals_per_loss(batch);
                    return Ok((grad, evals, 0));
                }
                let mut evals = 0u32;
                let mut shots = 0u64;
                let grad = finite_diff_gradient(&params, eps, |p| {
                    let (l, e, s) = self.loss_at(p, batch, None)?;
                    evals += e;
                    shots += s;
                    Ok::<f64, TrainError>(l)
                })?;
                Ok((grad, evals, shots))
            }
            GradientMethod::Spsa { c } => {
                let mut evals = 0u32;
                let mut shots = 0u64;
                // Temporarily take the data stream to avoid aliasing self.
                let mut rng = std::mem::replace(&mut self.data_rng, Xoshiro256::seed_from(0));
                let result = spsa_gradient(&params, c, &mut rng, |p| {
                    let (l, e, s) = self.loss_at(p, batch, None)?;
                    evals += e;
                    shots += s;
                    Ok::<f64, TrainError>(l)
                });
                self.data_rng = rng;
                Ok((result?, evals, shots))
            }
        }
    }

    /// Runs one optimizer step. Returns the step report.
    ///
    /// # Errors
    ///
    /// Propagates circuit/state failures.
    pub fn train_step(&mut self) -> Result<StepReport, TrainError> {
        let _span = qobs::span("qnn.step");
        let batch = self.next_batch();
        let (loss, loss_evals, loss_shots) = self.loss_at(&self.params.clone(), &batch, None)?;
        let (grad, grad_evals, grad_shots) = self.gradient(&batch)?;
        self.optimizer.step(&mut self.params, &grad);
        self.step += 1;
        let evals = loss_evals + grad_evals;
        let shots = loss_shots + grad_shots;
        self.ledger.record(self.step, evals, shots);
        self.metrics.push(MetricPoint {
            step: self.step,
            value: loss,
        });
        if self.metrics.len() > self.config.metrics_capacity {
            let excess = self.metrics.len() - self.config.metrics_capacity;
            self.metrics.drain(..excess);
        }
        let grad_norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        Ok(StepReport {
            step: self.step,
            loss,
            grad_norm,
            evals,
            shots,
        })
    }

    /// Runs `n` steps, returning every report.
    ///
    /// # Errors
    ///
    /// Stops at the first failing step.
    pub fn train_steps(&mut self, n: usize) -> Result<Vec<StepReport>, TrainError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.train_step()?);
        }
        Ok(out)
    }

    /// Exact (noise-free, shot-free) loss over the full dataset at the
    /// current parameters. Does not touch the RNG streams, so it is safe to
    /// call between steps without perturbing resume exactness.
    ///
    /// # Errors
    ///
    /// Propagates circuit/state failures.
    pub fn exact_loss(&self) -> Result<f64, TrainError> {
        match &self.task {
            Task::Vqe { hamiltonian } => {
                let state = self.plan.run(&self.params)?;
                Ok(hamiltonian.expectation(&state)?)
            }
            Task::StateLearning { data } => {
                let bound = self.plan.bind(&self.params)?;
                let mut acc = 0.0;
                for (input, target) in data.inputs.iter().zip(&data.targets) {
                    let mut state = input.clone();
                    bound.run_on(&mut state)?;
                    acc += state.fidelity(target)?;
                }
                Ok(1.0 - acc / data.len() as f64)
            }
            Task::Classification {
                data,
                feature_map,
                observable,
                ..
            } => {
                let bound = self.plan.bind(&self.params)?;
                let mut acc = 0.0;
                for (x, y) in data.features.iter().zip(&data.labels) {
                    let mut state = StateVector::zero_state(self.circuit.num_qubits());
                    feature_map.encode_onto(&mut state, x)?;
                    bound.run_on(&mut state)?;
                    let pred = observable.expectation(&state)?;
                    acc += (pred - y) * (pred - y);
                }
                Ok(acc / data.len() as f64)
            }
        }
    }
}

impl Checkpointable for Trainer {
    fn capture(&self) -> TrainingSnapshot {
        let mut snap = TrainingSnapshot::new(self.config.label.clone());
        snap.step = self.step;
        snap.epoch = self.epoch;
        snap.wall_time_ms = self.wall_accum_ms + self.started.elapsed().as_millis() as u64;
        snap.params = self.params.clone();
        snap.optimizer = self.optimizer.state_blob();
        snap.rng_streams.insert(
            "shots".into(),
            RngCapture(self.shots_rng.state().to_bytes()),
        );
        snap.rng_streams
            .insert("data".into(), RngCapture(self.data_rng.state().to_bytes()));
        snap.cursor = DatasetCursor {
            epoch: self.epoch,
            position: self.cursor_position,
            order_seed: self.order_seed,
        };
        snap.total_shots = self.ledger.total_shots();
        snap.shot_ledger = self.ledger.to_bytes();
        snap.metrics = self.metrics.clone();
        snap
    }

    fn restore(&mut self, snapshot: &TrainingSnapshot) -> Result<(), String> {
        if snapshot.params.len() != self.params.len() {
            return Err(format!(
                "parameter count mismatch: snapshot {}, trainer {}",
                snapshot.params.len(),
                self.params.len()
            ));
        }
        self.optimizer.restore_blob(&snapshot.optimizer)?;
        let shots = snapshot
            .rng_streams
            .get("shots")
            .ok_or("snapshot missing 'shots' rng stream")?;
        let data = snapshot
            .rng_streams
            .get("data")
            .ok_or("snapshot missing 'data' rng stream")?;
        let shots_state = RngState::from_bytes(&shots.0).ok_or("malformed 'shots' rng state")?;
        let data_state = RngState::from_bytes(&data.0).ok_or("malformed 'data' rng state")?;
        let ledger = ShotLedger::from_bytes(&snapshot.shot_ledger)?;

        self.params = snapshot.params.clone();
        self.shots_rng = Xoshiro256::from_state(shots_state);
        self.data_rng = Xoshiro256::from_state(data_state);
        self.step = snapshot.step;
        self.epoch = snapshot.cursor.epoch;
        self.cursor_position = snapshot.cursor.position;
        self.order_seed = snapshot.cursor.order_seed;
        self.rebuild_order();
        self.ledger = ledger;
        self.metrics = snapshot.metrics.clone();
        self.wall_accum_ms = snapshot.wall_time_ms;
        self.started = Instant::now();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{hardware_efficient, init_params};
    use crate::dataset;
    use crate::optimizer::{Adam, Sgd};

    fn vqe_trainer(seed: u64, mode: EvalMode) -> Trainer {
        let (circuit, info) = hardware_efficient(3, 1);
        let mut rng = Xoshiro256::seed_from(seed);
        let params = init_params(info.num_params, &mut rng);
        Trainer::new(
            circuit,
            Task::Vqe {
                hamiltonian: PauliSum::transverse_ising(3, 1.0, 0.7),
            },
            Box::new(Adam::new(0.05)),
            params,
            TrainerConfig {
                label: "vqe-test".into(),
                eval_mode: mode,
                gradient: GradientMethod::ParameterShift,
                seed,
                metrics_capacity: 64,
            },
        )
        .unwrap()
    }

    #[test]
    fn vqe_exact_training_descends() {
        let mut t = vqe_trainer(1, EvalMode::Exact);
        let before = t.exact_loss().unwrap();
        for _ in 0..30 {
            t.train_step().unwrap();
        }
        let after = t.exact_loss().unwrap();
        assert!(after < before - 0.1, "no descent: {before} → {after}");
        assert_eq!(t.step_count(), 30);
        // Exact mode consumes no shots.
        assert_eq!(t.ledger().total_shots(), 0);
    }

    #[test]
    fn vqe_energy_approaches_ground_state() {
        // 2-qubit TFIM (J=g=1): ground energy = -√(J²+g²)·... — compute by
        // brute force over the Hamiltonian matrix instead: use the known
        // value for n=2, J=1, g=1: E0 = -2.23606797749979 (−√5).
        let (circuit, info) = hardware_efficient(2, 2);
        let mut rng = Xoshiro256::seed_from(7);
        let params = init_params(info.num_params, &mut rng);
        let mut t = Trainer::new(
            circuit,
            Task::Vqe {
                hamiltonian: PauliSum::transverse_ising(2, 1.0, 1.0),
            },
            Box::new(Adam::new(0.08)),
            params,
            TrainerConfig::default(),
        )
        .unwrap();
        for _ in 0..200 {
            t.train_step().unwrap();
        }
        let e = t.exact_loss().unwrap();
        assert!(
            (e - (-(5.0f64).sqrt())).abs() < 0.05,
            "VQE energy {e} far from ground {}",
            -(5.0f64).sqrt()
        );
    }

    #[test]
    fn shot_mode_consumes_and_records_shots() {
        let mut t = vqe_trainer(2, EvalMode::Shots(64));
        let r = t.train_step().unwrap();
        assert!(r.shots > 0);
        assert_eq!(t.ledger().total_shots(), r.shots);
        assert_eq!(t.ledger().len(), 1);
        assert!(r.evals > 1);
    }

    #[test]
    fn exact_resume_is_bitwise_identical() {
        // The headline property: capture at step 5, run to 10; restore the
        // capture into a fresh trainer and run 5 steps; trajectories match
        // bit for bit, shot noise included.
        let mut a = vqe_trainer(3, EvalMode::Shots(32));
        for _ in 0..5 {
            a.train_step().unwrap();
        }
        let snap = a.capture();
        let tail_a: Vec<StepReport> = a.train_steps(5).unwrap();

        let mut b = vqe_trainer(3, EvalMode::Shots(32));
        b.restore(&snap).unwrap();
        let tail_b: Vec<StepReport> = b.train_steps(5).unwrap();

        for (ra, rb) in tail_a.iter().zip(&tail_b) {
            assert_eq!(ra.step, rb.step);
            assert_eq!(ra.loss.to_bits(), rb.loss.to_bits(), "loss diverged");
            assert_eq!(ra.shots, rb.shots);
        }
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert_eq!(pa.to_bits(), pb.to_bits(), "params diverged");
        }
        assert_eq!(a.ledger().total_shots(), b.ledger().total_shots());
    }

    #[test]
    fn params_only_resume_diverges_under_shot_noise() {
        // The failure mode the paper warns about: restoring only parameters
        // (fresh RNG) changes the shot-noise stream and the trajectory.
        let mut a = vqe_trainer(4, EvalMode::Shots(32));
        for _ in 0..5 {
            a.train_step().unwrap();
        }
        let snap = a.capture();
        let tail_a = a.train_steps(5).unwrap();

        let mut b = vqe_trainer(4, EvalMode::Shots(32));
        // Partial restore: params only.
        let mut partial = b.capture();
        partial.params = snap.params.clone();
        partial.step = snap.step;
        b.restore(&partial).unwrap();
        let tail_b = b.train_steps(5).unwrap();

        let diverged = tail_a
            .iter()
            .zip(&tail_b)
            .any(|(ra, rb)| ra.loss.to_bits() != rb.loss.to_bits());
        assert!(
            diverged,
            "params-only resume should diverge under shot noise"
        );
    }

    #[test]
    fn state_learning_improves_fidelity() {
        let mut rng = Xoshiro256::seed_from(5);
        let (pairs, _) = dataset::unitary_learning(2, 6, 1, &mut rng);
        let (circuit, info) = hardware_efficient(2, 2);
        let params = init_params(info.num_params, &mut rng);
        let mut t = Trainer::new(
            circuit,
            Task::StateLearning { data: pairs },
            Box::new(Adam::new(0.1)),
            params,
            TrainerConfig::default(),
        )
        .unwrap();
        let before = t.exact_loss().unwrap();
        for _ in 0..60 {
            t.train_step().unwrap();
        }
        let after = t.exact_loss().unwrap();
        assert!(after < before * 0.5, "fidelity loss {before} → {after}");
    }

    #[test]
    fn state_learning_shot_mode_uses_swap_test_and_resumes_exactly() {
        let mut rng = Xoshiro256::seed_from(6);
        let (pairs, _) = dataset::unitary_learning(2, 4, 1, &mut rng);
        let build = |pairs: crate::dataset::StatePairs| {
            let (circuit, info) = hardware_efficient(2, 1);
            let mut prng = Xoshiro256::seed_from(61);
            Trainer::new(
                circuit,
                Task::StateLearning { data: pairs },
                Box::new(Sgd::new(0.05)),
                init_params(info.num_params, &mut prng),
                TrainerConfig {
                    eval_mode: EvalMode::Shots(64),
                    seed: 61,
                    ..TrainerConfig::default()
                },
            )
            .unwrap()
        };
        let mut a = build(pairs.clone());
        let r = a.train_step().unwrap();
        assert!(r.shots > 0, "swap test must consume shots");
        let snap = a.capture();
        let tail: Vec<u64> = a
            .train_steps(3)
            .unwrap()
            .iter()
            .map(|s| s.loss.to_bits())
            .collect();
        let mut b = build(pairs);
        b.restore(&snap).unwrap();
        let replay: Vec<u64> = b
            .train_steps(3)
            .unwrap()
            .iter()
            .map(|s| s.loss.to_bits())
            .collect();
        assert_eq!(tail, replay, "swap-test stream must resume exactly");
    }

    #[test]
    fn classification_batches_cycle_epochs() {
        let mut rng = Xoshiro256::seed_from(8);
        let data = dataset::blobs(2, 10, 2.0, &mut rng);
        let (circuit, info) = hardware_efficient(2, 1);
        let params = init_params(info.num_params, &mut rng);
        let mut t = Trainer::new(
            circuit,
            Task::Classification {
                data,
                feature_map: FeatureMap::Angle,
                observable: PauliSum::mean_z(2),
                batch_size: 4,
            },
            Box::new(Sgd::new(0.1)),
            params,
            TrainerConfig {
                gradient: GradientMethod::Spsa { c: 0.1 },
                ..TrainerConfig::default()
            },
        )
        .unwrap();
        // 10 examples / batch 4 → batches of 4,4,2 per epoch.
        for _ in 0..3 {
            t.train_step().unwrap();
        }
        assert_eq!(t.epoch_count(), 0);
        t.train_step().unwrap();
        assert_eq!(t.epoch_count(), 1, "fourth step rolls into epoch 1");
    }

    #[test]
    fn classification_learns_blobs() {
        let mut rng = Xoshiro256::seed_from(9);
        let data = dataset::blobs(2, 20, 2.5, &mut rng);
        let (circuit, info) = hardware_efficient(2, 2);
        let params = init_params(info.num_params, &mut rng);
        let mut t = Trainer::new(
            circuit,
            Task::Classification {
                data,
                feature_map: FeatureMap::Angle,
                observable: PauliSum::mean_z(2),
                batch_size: 20,
            },
            Box::new(Adam::new(0.1)),
            params,
            TrainerConfig::default(),
        )
        .unwrap();
        let before = t.exact_loss().unwrap();
        for _ in 0..40 {
            t.train_step().unwrap();
        }
        let after = t.exact_loss().unwrap();
        assert!(after < before * 0.6, "classification {before} → {after}");
    }

    #[test]
    fn parallel_gradients_bit_identical_across_thread_counts() {
        // Exact-mode gradients must not depend on the worker count: run the
        // same training trajectory under different qpar overrides and
        // compare parameter bits.
        let run_at = |threads: usize, method: GradientMethod| {
            qpar::with_threads(threads, || {
                let mut t = vqe_trainer(11, EvalMode::Exact);
                t.config.gradient = method;
                for _ in 0..5 {
                    t.train_step().unwrap();
                }
                t.params().iter().map(|p| p.to_bits()).collect::<Vec<u64>>()
            })
        };
        for method in [
            GradientMethod::ParameterShift,
            GradientMethod::FiniteDiff { eps: 1e-5 },
        ] {
            let reference = run_at(1, method);
            for threads in [2, 4, 8] {
                assert_eq!(run_at(threads, method), reference, "{method} x{threads}");
            }
        }
    }

    #[test]
    fn finite_diff_agrees_with_parameter_shift_exact() {
        let mut shift = vqe_trainer(10, EvalMode::Exact);
        let mut fd = vqe_trainer(10, EvalMode::Exact);
        fd.config.gradient = GradientMethod::FiniteDiff { eps: 1e-6 };
        let batch: Vec<usize> = Vec::new();
        let (g1, _, _) = shift.gradient(&batch).unwrap();
        let (g2, _, _) = fd.gradient(&batch).unwrap();
        for (a, b) in g1.iter().zip(&g2) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn parameter_shift_handles_shared_parameters() {
        // QAOA ansatz shares each parameter across several ops.
        let h = PauliSum::transverse_ising(3, 1.0, 0.8);
        let (circuit, info) = crate::ansatz::qaoa_like(&h, 2);
        let mut rng = Xoshiro256::seed_from(11);
        let params = init_params(info.num_params, &mut rng);
        let mut shift = Trainer::new(
            circuit.clone(),
            Task::Vqe {
                hamiltonian: h.clone(),
            },
            Box::new(Sgd::new(0.05)),
            params.clone(),
            TrainerConfig::default(),
        )
        .unwrap();
        let mut fd = Trainer::new(
            circuit,
            Task::Vqe { hamiltonian: h },
            Box::new(Sgd::new(0.05)),
            params,
            TrainerConfig {
                gradient: GradientMethod::FiniteDiff { eps: 1e-6 },
                ..TrainerConfig::default()
            },
        )
        .unwrap();
        let (g1, _, _) = shift.gradient(&[]).unwrap();
        let (g2, _, _) = fd.gradient(&[]).unwrap();
        for (a, b) in g1.iter().zip(&g2) {
            assert!((a - b).abs() < 1e-4, "shared-param gradient {a} vs {b}");
        }
    }

    #[test]
    fn metrics_tail_is_bounded() {
        let mut t = vqe_trainer(12, EvalMode::Exact);
        t.config.metrics_capacity = 5;
        for _ in 0..12 {
            t.train_step().unwrap();
        }
        assert_eq!(t.metrics().len(), 5);
        assert_eq!(t.metrics().last().unwrap().step, 12);
    }

    #[test]
    fn restore_rejects_mismatched_snapshot() {
        let t = vqe_trainer(13, EvalMode::Exact);
        let mut snap = t.capture();
        snap.params.push(0.0);
        let mut t2 = vqe_trainer(13, EvalMode::Exact);
        assert!(t2.restore(&snap).unwrap_err().contains("mismatch"));
    }

    #[test]
    fn constructor_validates_widths() {
        let (circuit, info) = hardware_efficient(3, 1);
        let err = Trainer::new(
            circuit.clone(),
            Task::Vqe {
                hamiltonian: PauliSum::transverse_ising(2, 1.0, 1.0),
            },
            Box::new(Sgd::new(0.1)),
            vec![0.0; info.num_params],
            TrainerConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("width"));

        let err = Trainer::new(
            circuit,
            Task::Vqe {
                hamiltonian: PauliSum::transverse_ising(3, 1.0, 1.0),
            },
            Box::new(Sgd::new(0.1)),
            vec![0.0; 2],
            TrainerConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("parameters"));
    }

    #[test]
    fn capture_contains_full_inventory() {
        let mut t = vqe_trainer(14, EvalMode::Shots(16));
        t.train_step().unwrap();
        let snap = t.capture();
        assert_eq!(snap.step, 1);
        assert!(!snap.params.is_empty());
        assert_eq!(snap.optimizer.tag, "adam-v1");
        assert!(snap.rng_streams.contains_key("shots"));
        assert!(snap.rng_streams.contains_key("data"));
        assert!(snap.total_shots > 0);
        assert!(!snap.shot_ledger.is_empty());
        assert_eq!(snap.metrics.len(), 1);
        assert_eq!(snap.label, "vqe-test");
    }
}
