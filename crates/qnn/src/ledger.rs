//! The shot ledger: an auditable record of consumed QPU shots.
//!
//! Cloud QPU time is billed and quota'd per shot. A training job that
//! crashes without its ledger loses the accounting of what it already spent
//! — and a resumed job that re-draws shots silently double-spends. The
//! ledger is therefore first-class training state: append-only during
//! training, serialized into every checkpoint, and exact-resume aware (the
//! entry count at a checkpoint tells the resumed loop exactly where the
//! record left off).

use qcheck::codec::{Decoder, Encoder};

/// One ledger row: shots consumed by one optimizer step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Optimizer step.
    pub step: u64,
    /// Number of observable evaluations in the step (loss + gradient).
    pub evals: u32,
    /// Total shots consumed by the step.
    pub shots: u64,
}

/// Append-only shot accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShotLedger {
    entries: Vec<LedgerEntry>,
    total_shots: u64,
}

impl ShotLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        ShotLedger::default()
    }

    /// Appends one step's accounting.
    pub fn record(&mut self, step: u64, evals: u32, shots: u64) {
        self.entries.push(LedgerEntry { step, evals, shots });
        self.total_shots += shots;
    }

    /// All entries in order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Total shots across all entries.
    pub fn total_shots(&self) -> u64 {
        self.total_shots
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Deterministic serialization.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(self.total_shots);
        e.put_varint(self.entries.len() as u64);
        for entry in &self.entries {
            e.put_varint(entry.step)
                .put_varint(entry.evals as u64)
                .put_varint(entry.shots);
        }
        e.into_bytes()
    }

    /// Parses bytes produced by [`ShotLedger::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a message on truncation or when the stored total disagrees
    /// with the entries (internal-consistency check).
    pub fn from_bytes(bytes: &[u8]) -> Result<ShotLedger, String> {
        let mut d = Decoder::new(bytes, "shot ledger");
        let mut parse = || -> qcheck::Result<ShotLedger> {
            let total_shots = d.get_u64()?;
            let n = d.get_varint()? as usize;
            let mut entries = Vec::with_capacity(n.min(1 << 22));
            for _ in 0..n {
                entries.push(LedgerEntry {
                    step: d.get_varint()?,
                    evals: d.get_varint()? as u32,
                    shots: d.get_varint()?,
                });
            }
            Ok(ShotLedger {
                entries,
                total_shots,
            })
        };
        let ledger = parse().map_err(|e| e.to_string())?;
        d.finish().map_err(|e| e.to_string())?;
        let sum: u64 = ledger.entries.iter().map(|e| e.shots).sum();
        if sum != ledger.total_shots {
            return Err(format!(
                "ledger total {} disagrees with entry sum {sum}",
                ledger.total_shots
            ));
        }
        Ok(ledger)
    }

    /// Serialized size in bytes (for the state-inventory table).
    pub fn byte_size(&self) -> usize {
        self.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut l = ShotLedger::new();
        assert!(l.is_empty());
        l.record(0, 10, 1024);
        l.record(1, 10, 1024);
        l.record(2, 12, 2048);
        assert_eq!(l.len(), 3);
        assert_eq!(l.total_shots(), 4096);
        assert_eq!(l.entries()[2].evals, 12);
    }

    #[test]
    fn bytes_round_trip() {
        let mut l = ShotLedger::new();
        for step in 0..100u64 {
            l.record(step, 4 + (step % 3) as u32, 512 * (1 + step % 5));
        }
        let bytes = l.to_bytes();
        let back = ShotLedger::from_bytes(&bytes).unwrap();
        assert_eq!(l, back);
    }

    #[test]
    fn empty_ledger_round_trips() {
        let l = ShotLedger::new();
        assert_eq!(ShotLedger::from_bytes(&l.to_bytes()).unwrap(), l);
    }

    #[test]
    fn truncation_is_rejected() {
        let mut l = ShotLedger::new();
        l.record(0, 1, 100);
        l.record(1, 1, 200);
        let bytes = l.to_bytes();
        for cut in 0..bytes.len() {
            assert!(ShotLedger::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn inconsistent_total_is_rejected() {
        let mut l = ShotLedger::new();
        l.record(0, 1, 100);
        let mut bytes = l.to_bytes();
        // Corrupt the stored total (first 8 bytes, little-endian).
        bytes[0] ^= 0xFF;
        assert!(ShotLedger::from_bytes(&bytes)
            .unwrap_err()
            .contains("disagrees"));
    }

    #[test]
    fn byte_size_grows_linearly() {
        let mut l = ShotLedger::new();
        for step in 0..10 {
            l.record(step, 4, 1000);
        }
        let s10 = l.byte_size();
        for step in 10..20 {
            l.record(step, 4, 1000);
        }
        let s20 = l.byte_size();
        assert!(s20 > s10);
        assert!(s20 - s10 < 10 * 16, "entries should be varint-compact");
    }
}
