//! Variational ansatz builders.
//!
//! All builders produce [`Circuit`]s whose parametrized gates are rotation
//! generators (`RY`, `RZ`, `RX`, `RZZ`, …) with unit scale, so the two-term
//! parameter-shift rule in [`crate::gradient`] is exact for them.

use qsim::circuit::Circuit;
use qsim::gate::Gate;
use qsim::pauli::{Pauli, PauliSum};

/// Description of an ansatz, for reports and the state-inventory table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnsatzInfo {
    /// Builder name.
    pub name: &'static str,
    /// Register width.
    pub num_qubits: usize,
    /// Layer count.
    pub layers: usize,
    /// Parameter count.
    pub num_params: usize,
}

/// Hardware-efficient ansatz: per layer, `RY`+`RZ` on every qubit followed
/// by a ring of CNOTs; a final `RY` rotation layer closes the circuit.
///
/// Parameter count: `layers · 2n + n`.
///
/// # Panics
///
/// Panics if `num_qubits == 0`.
///
/// # Examples
///
/// ```
/// use qnn::ansatz::hardware_efficient;
///
/// let (circuit, info) = hardware_efficient(4, 2);
/// assert_eq!(info.num_params, 2 * 2 * 4 + 4);
/// assert_eq!(circuit.num_params(), info.num_params);
/// ```
pub fn hardware_efficient(num_qubits: usize, layers: usize) -> (Circuit, AnsatzInfo) {
    assert!(num_qubits > 0, "ansatz needs at least one qubit");
    let mut c = Circuit::new(num_qubits);
    let mut p = 0usize;
    for _ in 0..layers {
        for q in 0..num_qubits {
            c.push_sym(Gate::Ry(0.0), &[q], p);
            p += 1;
            c.push_sym(Gate::Rz(0.0), &[q], p);
            p += 1;
        }
        if num_qubits > 1 {
            for q in 0..num_qubits {
                c.push_fixed(Gate::Cx, &[q, (q + 1) % num_qubits]);
            }
        }
    }
    for q in 0..num_qubits {
        c.push_sym(Gate::Ry(0.0), &[q], p);
        p += 1;
    }
    let info = AnsatzInfo {
        name: "hardware-efficient",
        num_qubits,
        layers,
        num_params: p,
    };
    (c, info)
}

/// Strongly entangling ansatz: `RX`/`RY`/`RZ` on every qubit per layer plus
/// a CNOT ring with stride growing per layer.
///
/// Parameter count: `layers · 3n`.
///
/// # Panics
///
/// Panics if `num_qubits == 0`.
pub fn strongly_entangling(num_qubits: usize, layers: usize) -> (Circuit, AnsatzInfo) {
    assert!(num_qubits > 0, "ansatz needs at least one qubit");
    let mut c = Circuit::new(num_qubits);
    let mut p = 0usize;
    for layer in 0..layers {
        for q in 0..num_qubits {
            c.push_sym(Gate::Rx(0.0), &[q], p);
            p += 1;
            c.push_sym(Gate::Ry(0.0), &[q], p);
            p += 1;
            c.push_sym(Gate::Rz(0.0), &[q], p);
            p += 1;
        }
        if num_qubits > 1 {
            let stride = 1 + layer % (num_qubits - 1).max(1);
            for q in 0..num_qubits {
                c.push_fixed(Gate::Cx, &[q, (q + stride) % num_qubits]);
            }
        }
    }
    let info = AnsatzInfo {
        name: "strongly-entangling",
        num_qubits,
        layers,
        num_params: p,
    };
    (c, info)
}

/// QAOA-style alternating ansatz for a diagonal-plus-mixer Hamiltonian:
/// per layer, `RZZ(γ_l)` across every `ZZ` term of `problem` (one parameter
/// per layer, shared across terms — exercising the generalized
/// parameter-shift path), then an `RX(β_l)` mixer on every qubit.
///
/// Parameter count: `2 · layers`.
///
/// # Panics
///
/// Panics if `problem` has no two-qubit `ZZ` terms.
pub fn qaoa_like(problem: &PauliSum, layers: usize) -> (Circuit, AnsatzInfo) {
    let n = problem.num_qubits();
    let mut zz_pairs: Vec<(usize, usize)> = Vec::new();
    for (_, term) in problem.terms() {
        let support = term.support();
        if support.len() == 2
            && term.paulis()[support[0]] == Pauli::Z
            && term.paulis()[support[1]] == Pauli::Z
        {
            zz_pairs.push((support[0], support[1]));
        }
    }
    assert!(!zz_pairs.is_empty(), "problem has no ZZ terms");
    let mut c = Circuit::new(n);
    // Uniform superposition start.
    for q in 0..n {
        c.push_fixed(Gate::H, &[q]);
    }
    let mut p = 0usize;
    for _ in 0..layers {
        for &(a, b) in &zz_pairs {
            c.push_sym(Gate::Rzz(0.0), &[a, b], p); // shared γ_l
        }
        p += 1;
        for q in 0..n {
            c.push_sym(Gate::Rx(0.0), &[q], p); // shared β_l
        }
        p += 1;
    }
    let info = AnsatzInfo {
        name: "qaoa-like",
        num_qubits: n,
        layers,
        num_params: p,
    };
    (c, info)
}

/// Draws an initial parameter vector uniformly from `[-π, π)`.
pub fn init_params(num_params: usize, rng: &mut qsim::rng::Xoshiro256) -> Vec<f64> {
    (0..num_params)
        .map(|_| rng.uniform(-std::f64::consts::PI, std::f64::consts::PI))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::rng::Xoshiro256;

    #[test]
    fn hardware_efficient_shapes() {
        for (n, l) in [(1, 1), (2, 3), (6, 2)] {
            let (c, info) = hardware_efficient(n, l);
            assert_eq!(info.num_params, l * 2 * n + n);
            assert_eq!(c.num_params(), info.num_params);
            assert_eq!(c.num_qubits(), n);
            c.validate(info.num_params).unwrap();
        }
    }

    #[test]
    fn hardware_efficient_executes() {
        let (c, info) = hardware_efficient(4, 2);
        let mut rng = Xoshiro256::seed_from(1);
        let params = init_params(info.num_params, &mut rng);
        let state = c.run(&params).unwrap();
        assert!((state.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn strongly_entangling_shapes() {
        let (c, info) = strongly_entangling(5, 3);
        assert_eq!(info.num_params, 3 * 3 * 5);
        assert_eq!(c.num_params(), info.num_params);
        c.validate(info.num_params).unwrap();
    }

    #[test]
    fn single_qubit_ansatz_has_no_entanglers() {
        let (c, _) = hardware_efficient(1, 2);
        assert_eq!(c.gate_counts().1, 0);
        let (c, _) = strongly_entangling(1, 2);
        assert_eq!(c.gate_counts().1, 0);
    }

    #[test]
    fn qaoa_like_shares_parameters() {
        let h = PauliSum::transverse_ising(4, 1.0, 0.5);
        let (c, info) = qaoa_like(&h, 3);
        assert_eq!(info.num_params, 6);
        assert_eq!(c.num_params(), 6);
        // Multiple ops share each γ parameter.
        let sym_ops = c.sym_ops();
        let count_p0 = sym_ops.iter().filter(|(_, p)| *p == 0).count();
        assert_eq!(count_p0, 3, "3 ZZ edges share γ₀");
        c.validate(info.num_params).unwrap();
    }

    #[test]
    #[should_panic(expected = "no ZZ terms")]
    fn qaoa_rejects_problems_without_zz() {
        let h = PauliSum::mean_z(3);
        qaoa_like(&h, 1);
    }

    #[test]
    fn init_params_in_range_and_deterministic() {
        let mut rng = Xoshiro256::seed_from(7);
        let p = init_params(64, &mut rng);
        assert!(p
            .iter()
            .all(|x| (-std::f64::consts::PI..std::f64::consts::PI).contains(x)));
        let mut rng2 = Xoshiro256::seed_from(7);
        assert_eq!(p, init_params(64, &mut rng2));
    }

    #[test]
    fn deeper_ansatz_more_expressive_params() {
        let (_, shallow) = hardware_efficient(4, 1);
        let (_, deep) = hardware_efficient(4, 4);
        assert!(deep.num_params > shallow.num_params);
    }
}
