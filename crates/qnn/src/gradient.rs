//! Gradient estimators for variational circuits.
//!
//! Three estimators:
//!
//! * [`GradientMethod::ParameterShift`] — the generalized two-term rule,
//!   applied per *op occurrence* so that parameters shared across several
//!   gates (QAOA-style ansätze) differentiate correctly. Exact for
//!   rotation-generator gates (`RX/RY/RZ/RXX/RYY/RZZ`).
//! * [`GradientMethod::FiniteDiff`] — central differences on the whole
//!   loss; works for any gate but biased under shot noise.
//! * [`GradientMethod::Spsa`] — simultaneous perturbation with two loss
//!   evaluations per step regardless of parameter count; the perturbation
//!   directions come from the *data* RNG stream so they are part of the
//!   captured training state.

use serde::{Deserialize, Serialize};

use qsim::rng::Xoshiro256;

/// Gradient estimation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum GradientMethod {
    /// Generalized parameter-shift rule (per-op shifts of ±π/2).
    ParameterShift,
    /// Central finite differences with step `eps`.
    FiniteDiff {
        /// Perturbation magnitude.
        eps: f64,
    },
    /// SPSA with perturbation magnitude `c`.
    Spsa {
        /// Perturbation magnitude.
        c: f64,
    },
}

impl GradientMethod {
    /// Number of loss/expectation evaluations one gradient costs, given the
    /// parameter count and (for parameter-shift) the number of parametrized
    /// op occurrences.
    pub fn evals_per_gradient(&self, num_params: usize, num_sym_ops: usize) -> usize {
        match self {
            GradientMethod::ParameterShift => 2 * num_sym_ops,
            GradientMethod::FiniteDiff { .. } => 2 * num_params,
            GradientMethod::Spsa { .. } => 2,
        }
    }
}

impl std::fmt::Display for GradientMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GradientMethod::ParameterShift => write!(f, "parameter-shift"),
            GradientMethod::FiniteDiff { eps } => write!(f, "finite-diff(eps={eps})"),
            GradientMethod::Spsa { c } => write!(f, "spsa(c={c})"),
        }
    }
}

/// One parametrized op occurrence, as differentiated by the generalized
/// parameter-shift rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShiftSite {
    /// Index of the op within its circuit.
    pub op_index: usize,
    /// Parameter the op reads.
    pub param_index: usize,
    /// Scale the op applies to the parameter (chain-rule factor).
    pub scale: f64,
}

/// Generalized parameter-shift gradient over explicit shift sites, with the
/// `±shift` evaluations of every site fanned out across the ambient
/// [`qpar::current_threads`] worker threads.
///
/// `eval(op_index, delta)` must be a *pure* loss evaluation (exact
/// expectation — no RNG draws), which is what makes the fan-out safe: each
/// worker runs its own circuit evaluation. Per-site contributions are
/// accumulated into the gradient in site order, so the result is
/// bit-identical for every thread count.
///
/// A gradient costs `2 · sites.len()` circuit evaluations, so `eval`
/// should run a **precompiled** `qsim::plan::ExecPlan` (shift sites
/// patch resolved angles at bind time via
/// `ExecPlan::run_on_with_op_shift`) rather than re-interpreting the
/// circuit — the trainer compiles one plan per ansatz and reuses it for
/// every site of every epoch.
///
/// # Errors
///
/// Returns the first failing evaluation in site order.
pub fn parameter_shift_gradient<E, F>(
    num_params: usize,
    sites: &[ShiftSite],
    shift: f64,
    eval: F,
) -> Result<Vec<f64>, E>
where
    E: Send,
    F: Fn(usize, f64) -> Result<f64, E> + Sync,
{
    parameter_shift_gradient_with(
        num_params,
        sites,
        shift,
        || (),
        |(), op, delta| eval(op, delta),
    )
}

/// [`parameter_shift_gradient`] with per-worker evaluation scratch.
///
/// A gradient performs `2 · sites.len()` evaluations; when each
/// evaluation binds a fresh [`qsim::plan::BoundPlan`], the allocation
/// cost dominates small circuits. This variant chunks the sites across
/// the ambient worker threads and calls `init()` **once per worker** to
/// build a reusable scratch value `S` (typically a `BoundPlan` rebound
/// in place via `rebind_shifted` — see `Trainer::gradient`), so the
/// 2P+1 binds per step stop paying per-bind allocation.
///
/// Per-site contributions accumulate in site order regardless of the
/// chunking, so the gradient is bit-identical at every thread count.
///
/// # Errors
///
/// Returns the first failing evaluation in site order.
pub fn parameter_shift_gradient_with<E, S, I, F>(
    num_params: usize,
    sites: &[ShiftSite],
    shift: f64,
    init: I,
    eval: F,
) -> Result<Vec<f64>, E>
where
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, f64) -> Result<f64, E> + Sync,
{
    type Pair<E> = (Result<f64, E>, Result<f64, E>);
    let mut grad = vec![0.0; num_params];
    if sites.is_empty() {
        return Ok(grad);
    }
    // One chunk per worker slot: each chunk builds its scratch once and
    // walks its sites serially, so scratch reuse scales with sites per
    // worker instead of being reset 2·sites times.
    let threads = qpar::current_threads().max(1);
    let per = sites.len().div_ceil(threads);
    let chunks: Vec<Vec<ShiftSite>> = sites.chunks(per).map(|c| c.to_vec()).collect();
    let results: Vec<Vec<Pair<E>>> = qpar::map(chunks, |chunk| {
        // The site fan-out owns the parallelism budget; keep the nested
        // gate kernels serial on worker threads (they would otherwise
        // re-resolve the ambient thread count and oversubscribe).
        qpar::with_threads(1, || {
            let mut scratch = init();
            chunk
                .iter()
                .map(|s| {
                    (
                        eval(&mut scratch, s.op_index, shift),
                        eval(&mut scratch, s.op_index, -shift),
                    )
                })
                .collect()
        })
    });
    for (site, (plus, minus)) in sites.iter().zip(results.into_iter().flatten()) {
        grad[site.param_index] += site.scale * (plus? - minus?) / 2.0;
    }
    Ok(grad)
}

/// Parallel central-difference gradient of a *pure* black-box loss: the
/// per-parameter `±eps` evaluations run on the ambient
/// [`qpar::current_threads`] worker threads. Results are bit-identical to
/// [`finite_diff_gradient`] (same perturbed vectors, same arithmetic).
///
/// # Errors
///
/// Returns the first failing evaluation in parameter order.
pub fn finite_diff_gradient_parallel<E, F>(params: &[f64], eps: f64, loss: F) -> Result<Vec<f64>, E>
where
    E: Send,
    F: Fn(&[f64]) -> Result<f64, E> + Sync,
{
    type Pair<E> = (Result<f64, E>, Result<f64, E>);
    let pairs: Vec<Pair<E>> = qpar::map((0..params.len()).collect(), |i| {
        // See parameter_shift_gradient: one level of fan-out only.
        qpar::with_threads(1, || {
            let mut work = params.to_vec();
            work[i] = params[i] + eps;
            let plus = loss(&work);
            work[i] = params[i] - eps;
            let minus = loss(&work);
            (plus, minus)
        })
    });
    let mut grad = vec![0.0; params.len()];
    for (g, (plus, minus)) in grad.iter_mut().zip(pairs) {
        *g = (plus? - minus?) / (2.0 * eps);
    }
    Ok(grad)
}

/// Computes a finite-difference gradient of a black-box loss.
///
/// # Errors
///
/// Propagates the first loss-evaluation error.
pub fn finite_diff_gradient<E, F>(params: &[f64], eps: f64, mut loss: F) -> Result<Vec<f64>, E>
where
    F: FnMut(&[f64]) -> Result<f64, E>,
{
    let mut grad = vec![0.0; params.len()];
    let mut work = params.to_vec();
    for i in 0..params.len() {
        let orig = work[i];
        work[i] = orig + eps;
        let plus = loss(&work)?;
        work[i] = orig - eps;
        let minus = loss(&work)?;
        work[i] = orig;
        grad[i] = (plus - minus) / (2.0 * eps);
    }
    Ok(grad)
}

/// Computes an SPSA gradient estimate of a black-box loss; the ±1
/// perturbation directions are drawn from `rng`.
///
/// # Errors
///
/// Propagates the first loss-evaluation error.
pub fn spsa_gradient<E, F>(
    params: &[f64],
    c: f64,
    rng: &mut Xoshiro256,
    mut loss: F,
) -> Result<Vec<f64>, E>
where
    F: FnMut(&[f64]) -> Result<f64, E>,
{
    let delta: Vec<f64> = (0..params.len())
        .map(|_| if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 })
        .collect();
    let plus: Vec<f64> = params.iter().zip(&delta).map(|(p, d)| p + c * d).collect();
    let minus: Vec<f64> = params.iter().zip(&delta).map(|(p, d)| p - c * d).collect();
    let lp = loss(&plus)?;
    let lm = loss(&minus)?;
    let scale = (lp - lm) / (2.0 * c);
    Ok(delta.iter().map(|d| scale / d).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_diff_on_quadratic() {
        // f(x) = Σ x_i², ∇f = 2x.
        let params = [1.0, -2.0, 0.5];
        let g: Vec<f64> =
            finite_diff_gradient::<(), _>(&params, 1e-6, |x| Ok(x.iter().map(|v| v * v).sum()))
                .unwrap();
        for (gi, pi) in g.iter().zip(&params) {
            assert!((gi - 2.0 * pi).abs() < 1e-5, "{gi} vs {}", 2.0 * pi);
        }
    }

    #[test]
    fn spsa_is_unbiased_on_linear_functions() {
        // f(x) = a·x has exact SPSA estimates in expectation; average many.
        let a = [3.0, -1.0, 2.0];
        let params = [0.1, 0.2, 0.3];
        let mut rng = Xoshiro256::seed_from(5);
        let mut acc = [0.0; 3];
        let trials = 2000;
        for _ in 0..trials {
            let g = spsa_gradient::<(), _>(&params, 0.01, &mut rng, |x| {
                Ok(x.iter().zip(&a).map(|(xi, ai)| xi * ai).sum())
            })
            .unwrap();
            for (acc_i, gi) in acc.iter_mut().zip(&g) {
                *acc_i += gi;
            }
        }
        for (acc_i, ai) in acc.iter().zip(&a) {
            let mean = acc_i / trials as f64;
            assert!((mean - ai).abs() < 0.15, "{mean} vs {ai}");
        }
    }

    #[test]
    fn spsa_draws_from_the_given_stream() {
        let params = [0.0; 4];
        let mut r1 = Xoshiro256::seed_from(9);
        let mut r2 = Xoshiro256::seed_from(9);
        let g1 = spsa_gradient::<(), _>(&params, 0.1, &mut r1, |x| Ok(x[0])).unwrap();
        let g2 = spsa_gradient::<(), _>(&params, 0.1, &mut r2, |x| Ok(x[0])).unwrap();
        assert_eq!(g1, g2);
        assert_eq!(r1.draw_count(), 4);
    }

    #[test]
    fn evals_accounting() {
        assert_eq!(
            GradientMethod::ParameterShift.evals_per_gradient(10, 14),
            28
        );
        assert_eq!(
            GradientMethod::FiniteDiff { eps: 1e-4 }.evals_per_gradient(10, 14),
            20
        );
        assert_eq!(
            GradientMethod::Spsa { c: 0.1 }.evals_per_gradient(10, 14),
            2
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(
            GradientMethod::ParameterShift.to_string(),
            "parameter-shift"
        );
        assert!(GradientMethod::FiniteDiff { eps: 0.01 }
            .to_string()
            .contains("0.01"));
        assert!(GradientMethod::Spsa { c: 0.2 }.to_string().contains("spsa"));
    }

    #[test]
    fn error_propagates() {
        let r = finite_diff_gradient::<&str, _>(&[1.0], 1e-3, |_| Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        let mut rng = Xoshiro256::seed_from(0);
        let r = spsa_gradient::<&str, _>(&[1.0], 1e-3, &mut rng, |_| Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
    }
}
