//! High-level resumable training runs.
//!
//! [`ResumableRun`] is the API a training script actually wants: point it
//! at a repository, give it a way to build the trainer, and call
//! [`ResumableRun::start`]. If the repository already holds a valid
//! checkpoint — because a previous process crashed, was preempted, or just
//! exited — the run resumes from it (exactly); otherwise it starts fresh.
//! During training the embedded [`Checkpointer`] applies its policy after
//! every step, and [`ResumableRun::finish`] writes a final checkpoint.

use qcheck::checkpointer::Checkpointer;
use qcheck::error::Error as QcheckError;
use qcheck::manifest::CheckpointId;
use qcheck::policy::CheckpointPolicy;
use qcheck::repo::{CheckpointRepo, RepoLock, SaveOptions, SaveReport};
use qcheck::snapshot::Checkpointable;
use qcheck::store::{ObjectStore, StoreBackend};

use crate::trainer::{StepReport, TrainError, Trainer};

/// Errors from the resumable-run driver.
#[derive(Debug)]
pub enum RunError {
    /// Training-step failure.
    Train(TrainError),
    /// Storage failure.
    Storage(QcheckError),
    /// The recovered snapshot does not fit the trainer this run builds.
    Incompatible(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Train(e) => write!(f, "training failure: {e}"),
            RunError::Storage(e) => write!(f, "storage failure: {e}"),
            RunError::Incompatible(msg) => write!(f, "incompatible checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<TrainError> for RunError {
    fn from(e: TrainError) -> Self {
        RunError::Train(e)
    }
}

impl From<QcheckError> for RunError {
    fn from(e: QcheckError) -> Self {
        RunError::Storage(e)
    }
}

/// How a run began.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunStart {
    /// No usable checkpoint existed; training starts at step 0.
    Fresh,
    /// Resumed from the named checkpoint at the given step.
    Resumed {
        /// Checkpoint recovered from.
        id: CheckpointId,
        /// Step at which training continues.
        step: u64,
    },
}

/// A training run bound to a checkpoint repository. Generic over the
/// repository's storage backend: pass a repo opened with
/// `CheckpointRepo::open` (backend resolved via `QCHECK_STORE` / the
/// sticky `STORE` marker) or with an explicitly injected store.
#[derive(Debug)]
pub struct ResumableRun<S: ObjectStore = StoreBackend> {
    trainer: Trainer,
    checkpointer: Checkpointer<S>,
    start: RunStart,
    /// Writer exclusion for *shared* (daemon-backed) repositories: the
    /// namespace's server-side lease, acquired before recovery so two
    /// trainers pointed at one namespace fail loudly with a typed
    /// lease-held error instead of interleaving checkpoints. `None` for
    /// local backends, whose working directory is already private.
    _lock: Option<RepoLock>,
}

impl<S: ObjectStore> ResumableRun<S> {
    /// Builds the run: constructs the trainer, then resumes from the newest
    /// valid checkpoint when one exists.
    ///
    /// # Errors
    ///
    /// Fails on storage errors other than "repository is empty", and on
    /// structurally incompatible checkpoints (the caller changed the model
    /// between runs — refusing loudly beats silently restarting).
    pub fn start(
        trainer: Trainer,
        repo: CheckpointRepo<S>,
        policy: Box<dyn CheckpointPolicy + Send>,
        options: SaveOptions,
    ) -> Result<Self, RunError> {
        let mut trainer = trainer;
        let lock = if repo.store().is_shared() {
            Some(repo.try_lock()?)
        } else {
            None
        };
        let start = match repo.recover() {
            Ok((snapshot, report)) => {
                let id = report.recovered.expect("recover names its source");
                let step = snapshot.step;
                trainer.restore(&snapshot).map_err(RunError::Incompatible)?;
                RunStart::Resumed { id, step }
            }
            Err(QcheckError::NoValidCheckpoint { rejected: 0 }) => RunStart::Fresh,
            Err(QcheckError::NoValidCheckpoint { rejected }) => {
                // Checkpoints exist but none verify: surfacing this matters
                // more than limping on from scratch.
                return Err(RunError::Storage(QcheckError::NoValidCheckpoint {
                    rejected,
                }));
            }
            Err(e) => return Err(RunError::Storage(e)),
        };
        Ok(ResumableRun {
            trainer,
            checkpointer: Checkpointer::new(repo, policy, options),
            start,
            _lock: lock,
        })
    }

    /// How this run began.
    pub fn start_info(&self) -> &RunStart {
        &self.start
    }

    /// The underlying trainer.
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    /// The checkpointer (history, observed cost).
    pub fn checkpointer(&self) -> &Checkpointer<S> {
        &self.checkpointer
    }

    /// Runs one step; the policy may persist a checkpoint afterwards.
    ///
    /// Returns the step report and the save report when one was written.
    ///
    /// # Errors
    ///
    /// Propagates training and storage failures.
    pub fn step(&mut self) -> Result<(StepReport, Option<SaveReport>), RunError> {
        let report = self.trainer.train_step()?;
        let saved = self.checkpointer.on_step(report.step, &self.trainer)?;
        Ok((report, saved))
    }

    /// Trains until `target_step` (inclusive), checkpointing per policy.
    ///
    /// # Errors
    ///
    /// Propagates the first failure.
    pub fn run_to_step(&mut self, target_step: u64) -> Result<Vec<StepReport>, RunError> {
        let mut reports = Vec::new();
        while self.trainer.step_count() < target_step {
            let (report, _) = self.step()?;
            reports.push(report);
        }
        Ok(reports)
    }

    /// Writes a final checkpoint and returns the trainer.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn finish(mut self) -> Result<(Trainer, SaveReport), RunError> {
        let report = self
            .checkpointer
            .force_checkpoint(self.trainer.step_count(), &self.trainer)?;
        // A clean finish hands the namespace to the next writer
        // immediately instead of waiting out the lease TTL. (A crashed
        // run never reaches this; the daemon expires its lease.)
        self.checkpointer.repo().store().release_writer_lease();
        Ok((self.trainer, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{hardware_efficient, init_params};
    use crate::optimizer::Adam;
    use crate::trainer::{Task, TrainerConfig};
    use qcheck::policy::EveryKSteps;
    use qsim::measure::EvalMode;
    use qsim::pauli::PauliSum;
    use qsim::rng::Xoshiro256;

    fn scratch() -> std::path::PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qnn-resume-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn build_trainer(qubits: usize) -> Trainer {
        let (circuit, info) = hardware_efficient(qubits, 1);
        let mut rng = Xoshiro256::seed_from(50);
        let params = init_params(info.num_params, &mut rng);
        Trainer::new(
            circuit,
            Task::Vqe {
                hamiltonian: PauliSum::transverse_ising(qubits, 1.0, 0.7),
            },
            Box::new(Adam::new(0.05)),
            params,
            TrainerConfig {
                eval_mode: EvalMode::Shots(32),
                seed: 50,
                ..TrainerConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn fresh_start_when_repo_is_empty() {
        let dir = scratch();
        let repo = CheckpointRepo::open(&dir).unwrap();
        let run = ResumableRun::start(
            build_trainer(3),
            repo,
            Box::new(EveryKSteps::new(2)),
            SaveOptions::default(),
        )
        .unwrap();
        assert_eq!(*run.start_info(), RunStart::Fresh);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn second_process_resumes_and_matches_uninterrupted_run() {
        let dir = scratch();

        // Uninterrupted reference to step 10.
        let mut reference = build_trainer(3);
        let ref_reports: Vec<StepReport> = reference.train_steps(10).unwrap();

        // Process 1: run to step 6, checkpointing every 2 steps, then "die".
        {
            let repo = CheckpointRepo::open(&dir).unwrap();
            let mut run = ResumableRun::start(
                build_trainer(3),
                repo,
                Box::new(EveryKSteps::new(2)),
                SaveOptions::default(),
            )
            .unwrap();
            run.run_to_step(6).unwrap();
            // dropped without finish(): last checkpoint is at step 6.
        }

        // Process 2: resumes at step 6 and continues to 10.
        let repo = CheckpointRepo::open(&dir).unwrap();
        let mut run = ResumableRun::start(
            build_trainer(3),
            repo,
            Box::new(EveryKSteps::new(2)),
            SaveOptions::default(),
        )
        .unwrap();
        match run.start_info() {
            RunStart::Resumed { step, .. } => assert_eq!(*step, 6),
            other => panic!("expected resume, got {other:?}"),
        }
        let tail = run.run_to_step(10).unwrap();
        for (resumed, reference) in tail.iter().zip(&ref_reports[6..]) {
            assert_eq!(resumed.loss.to_bits(), reference.loss.to_bits());
        }
        let (trainer, final_save) = run.finish().unwrap();
        assert_eq!(trainer.step_count(), 10);
        assert_eq!(
            final_save.id.as_str().split('-').nth(1).unwrap(),
            "0000000010"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn incompatible_model_is_refused() {
        let dir = scratch();
        {
            let repo = CheckpointRepo::open(&dir).unwrap();
            let mut run = ResumableRun::start(
                build_trainer(3),
                repo,
                Box::new(EveryKSteps::new(1)),
                SaveOptions::default(),
            )
            .unwrap();
            run.run_to_step(2).unwrap();
        }
        // A different model shape must not silently restart.
        let repo = CheckpointRepo::open(&dir).unwrap();
        let err = ResumableRun::start(
            build_trainer(4),
            repo,
            Box::new(EveryKSteps::new(1)),
            SaveOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RunError::Incompatible(_)), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fully_corrupt_repo_is_surfaced_not_restarted() {
        let dir = scratch();
        {
            let repo = CheckpointRepo::open(&dir).unwrap();
            let mut run = ResumableRun::start(
                build_trainer(3),
                repo,
                Box::new(EveryKSteps::new(1)),
                SaveOptions::default(),
            )
            .unwrap();
            run.run_to_step(2).unwrap();
        }
        // Corrupt every manifest record in the log.
        let repo = CheckpointRepo::open(&dir).unwrap();
        for id in repo.list_ids().unwrap() {
            repo.corrupt_manifest(&id, qcheck::failure::StorageFault::BitFlip { offset: 30 })
                .unwrap();
        }
        let err = ResumableRun::start(
            build_trainer(3),
            repo,
            Box::new(EveryKSteps::new(1)),
            SaveOptions::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, RunError::Storage(QcheckError::NoValidCheckpoint { rejected }) if rejected > 0),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}
