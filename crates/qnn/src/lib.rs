//! # qnn — hybrid quantum-classical training
//!
//! The workload layer of the `qnn-checkpoint` project: variational quantum
//! models (VQE, unitary learning, classification through feature maps)
//! trained by classical optimizers against the [`qsim`] simulator, with the
//! complete loop state — parameters, optimizer moments, RNG streams, dataset
//! cursor, shot ledger — exposed through the
//! [`qcheck::snapshot::Checkpointable`] contract so that the [`qcheck`]
//! storage layer can capture and exactly resume it.
//!
//! ## Quickstart: a checkpointable VQE run
//!
//! ```
//! use qnn::ansatz::{hardware_efficient, init_params};
//! use qnn::optimizer::Adam;
//! use qnn::trainer::{Task, Trainer, TrainerConfig};
//! use qsim::pauli::PauliSum;
//! use qsim::rng::Xoshiro256;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (circuit, info) = hardware_efficient(3, 1);
//! let mut rng = Xoshiro256::seed_from(7);
//! let params = init_params(info.num_params, &mut rng);
//!
//! let mut trainer = Trainer::new(
//!     circuit,
//!     Task::Vqe { hamiltonian: PauliSum::transverse_ising(3, 1.0, 0.5) },
//!     Box::new(Adam::new(0.05)),
//!     params,
//!     TrainerConfig::default(),
//! )?;
//!
//! let report = trainer.train_step()?;
//! assert_eq!(report.step, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ansatz;
pub mod dataset;
pub mod encode;
pub mod gradient;
pub mod ledger;
pub mod optimizer;
pub mod resume;
pub mod trainer;

pub use encode::FeatureMap;
pub use gradient::GradientMethod;
pub use ledger::ShotLedger;
pub use optimizer::{AdaGrad, Adam, Momentum, Optimizer, RmsProp, Sgd};
pub use resume::{ResumableRun, RunError, RunStart};
pub use trainer::{StepReport, Task, TrainError, Trainer, TrainerConfig};
