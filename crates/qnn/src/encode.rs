//! Classical-data encoding (feature maps).
//!
//! Classification workloads feed classical feature vectors into the quantum
//! model by preparing a data-dependent input state. The encodings here are
//! deterministic functions of the features — no trainable parameters — so
//! they contribute circuit structure but nothing to the checkpoint beyond
//! the dataset cursor.

use serde::{Deserialize, Serialize};

use qsim::circuit::CircuitError;
use qsim::gate::Gate;
use qsim::state::StateVector;

/// Feature-to-state encodings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureMap {
    /// Angle encoding: `RY(x_i)` on qubit `i mod n`, cycling over features.
    Angle,
    /// Angle encoding followed by a CZ ring and a second rotation pass
    /// (a ZZ-feature-map-flavoured, entangling encoding).
    AngleEntangled,
}

impl FeatureMap {
    /// Prepares `|φ(x)⟩` on `num_qubits` qubits from a feature vector.
    ///
    /// # Errors
    ///
    /// Propagates gate-application errors (cannot occur for valid
    /// `num_qubits > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0` or `features` is empty.
    pub fn encode(&self, num_qubits: usize, features: &[f64]) -> Result<StateVector, CircuitError> {
        assert!(num_qubits > 0, "need at least one qubit");
        assert!(!features.is_empty(), "need at least one feature");
        let mut state = StateVector::zero_state(num_qubits);
        self.encode_onto(&mut state, features)?;
        Ok(state)
    }

    /// Applies the encoding to an existing zero-initialized state.
    ///
    /// # Errors
    ///
    /// Propagates gate-application errors.
    pub fn encode_onto(
        &self,
        state: &mut StateVector,
        features: &[f64],
    ) -> Result<(), CircuitError> {
        let n = state.num_qubits();
        match self {
            FeatureMap::Angle => {
                for (i, &x) in features.iter().enumerate() {
                    state.apply_gate(Gate::Ry(x), &[i % n])?;
                }
            }
            FeatureMap::AngleEntangled => {
                for (i, &x) in features.iter().enumerate() {
                    state.apply_gate(Gate::Ry(x), &[i % n])?;
                }
                if n > 1 {
                    for q in 0..n {
                        state.apply_gate(Gate::Cz, &[q, (q + 1) % n])?;
                    }
                }
                for (i, &x) in features.iter().enumerate() {
                    state.apply_gate(Gate::Rz(x * x), &[i % n])?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn angle_encoding_rotates_each_qubit() {
        // RY(π)|0⟩ = |1⟩ on both qubits.
        let s = FeatureMap::Angle
            .encode(2, &[std::f64::consts::PI, std::f64::consts::PI])
            .unwrap();
        assert!((s.probability(0b11) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn feature_wraparound_cycles_qubits() {
        // Three features on two qubits: qubit 0 receives features 0 and 2.
        let s = FeatureMap::Angle
            .encode(
                2,
                &[
                    std::f64::consts::FRAC_PI_2,
                    0.0,
                    std::f64::consts::FRAC_PI_2,
                ],
            )
            .unwrap();
        // Qubit 0 got two quarter-turns = RY(π) → |1⟩; qubit 1 unrotated.
        assert!((s.probability(0b01) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn entangled_encoding_differs_from_plain() {
        let x = [0.4, 1.1];
        let a = FeatureMap::Angle.encode(2, &x).unwrap();
        let b = FeatureMap::AngleEntangled.encode(2, &x).unwrap();
        assert!(a.fidelity(&b).unwrap() < 0.999);
    }

    #[test]
    fn encoding_is_deterministic() {
        let x = [0.1, 0.2, 0.3];
        let a = FeatureMap::AngleEntangled.encode(3, &x).unwrap();
        let b = FeatureMap::AngleEntangled.encode(3, &x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_inputs_distinct_states() {
        let a = FeatureMap::Angle.encode(2, &[0.3, 0.4]).unwrap();
        let b = FeatureMap::Angle.encode(2, &[0.31, 0.4]).unwrap();
        assert!(a.fidelity(&b).unwrap() < 1.0);
    }
}
