//! Property-based tests for the parallelism layer: the determinism
//! contract (`tests/parallel_equivalence.rs` at the workspace root proves
//! it for fixed circuits) generalized to *random* circuits × random
//! thread counts.

use proptest::prelude::*;

use qsim::gate::Gate;
use qsim::pauli::PauliSum;
use qsim::rng::Xoshiro256;
use qsim::state::StateVector;
use qsim::testing::arb_op;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn amp_bits(state: &StateVector) -> Vec<(u64, u64)> {
    state
        .amplitudes()
        .iter()
        .map(|a| (a.re.to_bits(), a.im.to_bits()))
        .collect()
}

fn run_ops(qubits: usize, ops: &[(Gate, Vec<usize>)], seed: u64, threads: usize) -> StateVector {
    qpar::with_threads(threads, || {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut state = StateVector::random(qubits, &mut rng);
        for (g, qs) in ops {
            state.apply_gate(*g, qs).unwrap();
        }
        state
    })
}

proptest! {
    // 14-qubit registers cross the gate-kernel fan-out threshold
    // (`PARALLEL_MIN_AMPS = 1 << 14`), so every case below genuinely
    // exercises the scoped-thread path; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random circuits produce bit-identical amplitudes, norms and draw
    /// counts at every thread count.
    #[test]
    fn random_circuits_bit_identical_across_threads(
        ops in prop::collection::vec(arb_op(14), 1..16),
        seed in any::<u64>(),
    ) {
        let reference = run_ops(14, &ops, seed, 1);
        let ref_bits = amp_bits(&reference);
        let ref_norm = reference.norm().to_bits();
        for &threads in &THREAD_SWEEP[1..] {
            let state = run_ops(14, &ops, seed, threads);
            prop_assert!(amp_bits(&state) == ref_bits, "threads={}", threads);
            prop_assert_eq!(state.norm().to_bits(), ref_norm, "threads={}", threads);
        }
    }

    /// Observable estimation (striped-sum reduction path, crossed at 15
    /// qubits) is bit-identical across thread counts for random circuits.
    #[test]
    fn expectation_reduction_bit_identical_across_threads(
        ops in prop::collection::vec(arb_op(15), 1..6),
        seed in any::<u64>(),
        coupling in 0.1f64..2.0,
    ) {
        let h = PauliSum::transverse_ising(15, 1.0, coupling);
        let expectation_at = |threads: usize| {
            let state = run_ops(15, &ops, seed, threads);
            qpar::with_threads(threads, || h.expectation(&state).unwrap().to_bits())
        };
        let reference = expectation_at(1);
        for &threads in &THREAD_SWEEP[1..] {
            prop_assert_eq!(expectation_at(threads), reference, "threads={}", threads);
        }
    }

    /// `map_threads` is a drop-in for the serial map at any thread count:
    /// same values, same order.
    #[test]
    fn map_threads_matches_serial_map(
        items in prop::collection::vec(any::<u64>(), 0..500),
        threads in 1usize..9,
    ) {
        let f = |x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        let serial: Vec<u64> = items.iter().copied().map(f).collect();
        prop_assert_eq!(qpar::map_threads(threads, items, f), serial);
    }

    /// `map_owned` (the persistent-pool executor) is a drop-in for both
    /// the serial map and the scoped executor at any thread count, with
    /// the pool forced on and forced off (scoped fallback).
    #[test]
    fn map_owned_matches_serial_map_on_both_executors(
        items in prop::collection::vec(any::<u64>(), 0..500),
        threads in 1usize..9,
    ) {
        let f = |x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        let serial: Vec<u64> = items.iter().copied().map(f).collect();
        for pooled in [true, false] {
            let got = qpar::with_pool(pooled, || qpar::map_owned(threads, items.clone(), f));
            prop_assert_eq!(got, serial.clone(), "pooled={}", pooled);
        }
    }

    /// `ranges` tiles `[0, len)` exactly: contiguous, in order, no gaps or
    /// overlap, and never more than `parts` pieces.
    #[test]
    fn ranges_partition_exactly(len in 0usize..10_000, parts in 1usize..16) {
        let rs = qpar::ranges(len, parts);
        prop_assert!(rs.len() <= parts);
        let mut next = 0usize;
        for r in &rs {
            prop_assert_eq!(r.start, next, "contiguous at {}", next);
            prop_assert!(r.end > r.start, "non-empty piece");
            next = r.end;
        }
        prop_assert_eq!(next, len);
    }
}
