//! # qpar — the workspace's shared threading layer
//!
//! A dependency-light fan-out helper over [`std::thread::scope`], used by
//! the three hot paths of the system: `qsim` gate kernels, `qnn`
//! parameter-shift gradients, and the `qcheck` checkpoint encode pipeline.
//!
//! ## Thread-count resolution
//!
//! [`current_threads`] resolves, in priority order:
//!
//! 1. a thread-local override installed by [`with_threads`] (tests,
//!    benchmark sweeps);
//! 2. the process-wide builder value set via [`set_global_threads`];
//! 3. the `QCHECK_THREADS` environment variable (read once);
//! 4. [`std::thread::available_parallelism`].
//!
//! A resolved value of 1 keeps every caller on its serial path, so the
//! default behavior on a single-core host is exactly the serial code.
//!
//! ## Determinism contract
//!
//! All combinators here preserve **input order** in their outputs and
//! assign work in contiguous stripes. Callers that reduce floating-point
//! results must reduce over *fixed* partitions in index order (never over
//! per-thread accumulation order) so that results are bit-identical for
//! every thread count — see `qsim::state` for the pattern.
//!
//! ## Executors: scoped threads vs the persistent pool
//!
//! Two executors sit behind the combinator family:
//!
//! * **Scoped threads** ([`map_threads`], [`for_each_threads`]) — spawn
//!   per call via [`std::thread::scope`]. Work items may *borrow* from the
//!   caller's stack (the gate kernels hand out disjoint `&mut` slices),
//!   but every fan-out pays thread-spawn cost (~140 µs for 8 threads on
//!   the reference container).
//! * **The persistent pool** ([`map_owned`], [`for_each_owned`]) — a
//!   process-wide set of long-lived workers fed through an
//!   ownership-passing job queue. Jobs must own their data
//!   (`T: 'static`), which is what keeps the pool free of `unsafe`:
//!   nothing borrowed ever crosses into a thread that outlives the
//!   borrow. Spawn cost is paid once per process, not per fan-out.
//!
//! Both executors stripe identically and preserve input order, so their
//! results are bit-identical to each other and to the serial path at
//! every thread count. The pool is on by default; `QPAR_POOL=0` (or a
//! [`with_pool`] override) routes the owned combinators through scoped
//! threads instead — scoped threads remain the fallback whenever the
//! pool is disabled or cannot spawn workers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Name of the environment variable controlling the default thread count.
pub const THREADS_ENV: &str = "QCHECK_THREADS";

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

thread_local! {
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn env_threads() -> Option<usize> {
    *ENV_THREADS.get_or_init(|| {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sets the process-wide thread count (builder API). `0` clears the
/// override, restoring env/hardware resolution.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The thread count parallel kernels on this thread will use.
pub fn current_threads() -> usize {
    let local = LOCAL_THREADS.with(Cell::get);
    if local > 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    env_threads().unwrap_or_else(hardware_threads)
}

/// Runs `f` with a thread-local thread-count override — the hook the
/// equivalence tests use to sweep 1/2/4/8 threads inside one process.
///
/// The override applies to the calling thread only (worker threads spawned
/// by the combinators do not consult it — partitioning decisions are made
/// on the calling thread).
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_THREADS.with(Cell::get);
    let _restore = Restore(prev);
    LOCAL_THREADS.with(|c| c.set(n));
    f()
}

/// Order-preserving parallel map over owned work items with an explicit
/// thread count. Stripe `i` of the input maps to stripe `i` of the output,
/// so the result is identical to `items.into_iter().map(f).collect()` for
/// every thread count.
///
/// # Panics
///
/// Propagates panics from `f` (the scope re-raises worker panics).
pub fn map_threads<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let t = threads.clamp(1, n.max(1));
    if t <= 1 {
        return items.into_iter().map(f).collect();
    }
    let stripes = stripe_items(items, t);
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let f = &f;
        let mut handles = Vec::with_capacity(stripes.len());
        let mut stripes = stripes.into_iter();
        // Stripe 0 runs on the calling thread; the rest are spawned first so
        // they overlap with it.
        let first = stripes.next().expect("at least one stripe");
        for st in stripes {
            handles.push(s.spawn(move || st.into_iter().map(f).collect::<Vec<R>>()));
        }
        out.extend(first.into_iter().map(f));
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    out
}

/// Splits owned items into at most `t` contiguous stripes of
/// `ceil(n / t)` items each — the single striping rule every executor
/// (serial, scoped, pooled) shares, so grouping never depends on which
/// executor runs the work.
fn stripe_items<T>(items: Vec<T>, t: usize) -> Vec<Vec<T>> {
    let stripe = items.len().div_ceil(t);
    let mut stripes: Vec<Vec<T>> = Vec::with_capacity(t);
    let mut rest = items;
    while rest.len() > stripe {
        let tail = rest.split_off(stripe);
        stripes.push(std::mem::replace(&mut rest, tail));
    }
    stripes.push(rest);
    stripes
}

/// Order-preserving parallel map over owned work items on the persistent
/// worker pool ([`pool`]). Striping, ordering and per-item arithmetic are
/// identical to [`map_threads`], so the two executors produce
/// bit-identical results; only *where* the stripes run differs.
///
/// The `'static` bounds are the safety contract of the pool: jobs own
/// their stripe outright, so no borrow ever crosses into a long-lived
/// worker thread. Falls back to the scoped-thread executor when the pool
/// is disabled ([`with_pool`] / `QPAR_POOL=0`), when called from inside a
/// pool worker (nested fan-out would deadlock the queue), or when no
/// worker can be spawned.
///
/// # Panics
///
/// Propagates panics from `f` (worker panics are captured and re-raised
/// on the calling thread).
pub fn map_owned<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    let n = items.len();
    let t = threads.clamp(1, n.max(1));
    if t <= 1 {
        return items.into_iter().map(f).collect();
    }
    if !pool::active(t) {
        return map_threads(t, items, f);
    }
    let f = Arc::new(f);
    let stripes = stripe_items(items, t);
    let jobs: Vec<Box<dyn FnOnce() -> Vec<R> + Send>> = stripes
        .into_iter()
        .map(|stripe| {
            let f = Arc::clone(&f);
            let job: Box<dyn FnOnce() -> Vec<R> + Send> =
                Box::new(move || stripe.into_iter().map(|x| f(x)).collect());
            job
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    for part in pool::run_owned(jobs) {
        out.extend(part);
    }
    out
}

/// [`map_owned`] discarding results: order-independent consumption of
/// owned work items on the persistent pool (scoped fallback as
/// [`map_owned`]).
pub fn for_each_owned<T, F>(threads: usize, items: Vec<T>, f: F)
where
    T: Send + 'static,
    F: Fn(T) + Send + Sync + 'static,
{
    map_owned(threads, items, f);
}

/// Runs `f` with a thread-local override of the pool toggle — the hook
/// equivalence tests use to sweep the pooled and scoped executors inside
/// one process.
pub fn with_pool<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    pool::with_enabled(enabled, f)
}

/// [`map_threads`] with the ambient [`current_threads`] count.
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    map_threads(current_threads(), items, f)
}

/// Order-independent parallel consumption of owned work items (used for
/// in-place kernels whose items hold disjoint `&mut` slices).
pub fn for_each_threads<T, F>(threads: usize, items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    map_threads(threads, items, f);
}

/// [`for_each_threads`] with the ambient [`current_threads`] count.
pub fn for_each<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    for_each_threads(current_threads(), items, f);
}

/// Splits `0..len` into at most `parts` contiguous ranges of near-equal
/// size. The partition depends only on `len` and `parts` — callers that
/// need thread-count-independent partitions pass a fixed `parts`.
///
/// `parts` is clamped to `1..=len`, so no returned range is ever empty:
/// `parts > len` yields `len` single-element ranges, `parts == 0` is
/// treated as 1, and `len == 0` yields no ranges at all.
pub fn ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_at_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for t in [1, 2, 4, 8, 17] {
            let got = map_threads(t, items.clone(), |x| x * 3 + 1);
            assert_eq!(got, expect, "threads={t}");
        }
    }

    #[test]
    fn map_handles_edge_sizes() {
        assert_eq!(map_threads::<u8, u8, _>(4, vec![], |x| x), Vec::<u8>::new());
        assert_eq!(map_threads(4, vec![9], |x: i32| x + 1), vec![10]);
        assert_eq!(map_threads(8, vec![1, 2], |x: i32| x * 2), vec![2, 4]);
    }

    #[test]
    fn for_each_touches_every_item_once() {
        use std::sync::atomic::AtomicU64;
        let hits = AtomicU64::new(0);
        let items: Vec<u64> = (1..=100).collect();
        for_each_threads(4, items, |x| {
            hits.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let ambient = current_threads();
        let inner = with_threads(6, current_threads);
        assert_eq!(inner, 6);
        assert_eq!(current_threads(), ambient);
        // Nested overrides unwind correctly.
        with_threads(2, || {
            assert_eq!(current_threads(), 2);
            with_threads(3, || assert_eq!(current_threads(), 3));
            assert_eq!(current_threads(), 2);
        });
    }

    #[test]
    fn ranges_cover_exactly() {
        for len in [0usize, 1, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 2000] {
                let rs = ranges(len, parts);
                let total: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(total, len, "len={len} parts={parts}");
                let mut cursor = 0;
                for r in &rs {
                    assert_eq!(r.start, cursor);
                    assert!(!r.is_empty());
                    cursor = r.end;
                }
            }
        }
    }

    #[test]
    fn ranges_edge_cases_never_yield_empty_ranges() {
        // len = 0: nothing to partition.
        assert!(ranges(0, 4).is_empty());
        assert!(ranges(0, 0).is_empty());
        // parts = 1: the whole span in one range.
        assert_eq!(ranges(5, 1), vec![0..5]);
        // parts = 0 clamps to 1.
        assert_eq!(ranges(5, 0), vec![0..5]);
        // parts > len clamps to len: one element per range, none empty.
        let rs = ranges(3, 8);
        assert_eq!(rs, vec![0..1, 1..2, 2..3]);
        assert!(rs.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn map_owned_matches_map_threads_at_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for t in [1, 2, 4, 8, 17] {
            let scoped = map_threads(t, items.clone(), |x| x * x + 1);
            let pooled = map_owned(t, items.clone(), |x| x * x + 1);
            let forced_scoped = with_pool(false, || map_owned(t, items.clone(), |x| x * x + 1));
            assert_eq!(scoped, expect, "scoped threads={t}");
            assert_eq!(pooled, expect, "pooled threads={t}");
            assert_eq!(forced_scoped, expect, "fallback threads={t}");
        }
    }

    #[test]
    fn map_owned_handles_edge_sizes() {
        assert_eq!(map_owned::<u8, u8, _>(4, vec![], |x| x), Vec::<u8>::new());
        assert_eq!(map_owned(4, vec![9], |x: i32| x + 1), vec![10]);
        assert_eq!(map_owned(8, vec![1, 2], |x: i32| x * 2), vec![2, 4]);
    }

    #[test]
    fn for_each_owned_touches_every_item_once() {
        use std::sync::atomic::AtomicU64;
        let hits = Arc::new(AtomicU64::new(0));
        let items: Vec<u64> = (1..=100).collect();
        let sink = Arc::clone(&hits);
        for_each_owned(4, items, move |x| {
            sink.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn nested_map_owned_from_a_pool_worker_does_not_deadlock() {
        // Each outer job fans out again; the nested call must detect it
        // is running on a worker and go serial instead of queueing.
        let outer: Vec<u64> = (0..8).collect();
        let got = map_owned(4, outer, |i| {
            map_owned(4, (0..50u64).collect(), move |x| x + i)
                .into_iter()
                .sum::<u64>()
        });
        let expect: Vec<u64> = (0..8).map(|i| (0..50u64).map(|x| x + i).sum()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn map_owned_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            map_owned(2, (0..64).collect::<Vec<i32>>(), |x: i32| {
                assert!(x < 60, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn map_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            map_threads(2, vec![1, 2, 3, 4], |x: i32| {
                assert!(x < 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
