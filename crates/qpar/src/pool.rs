//! The persistent worker pool behind [`crate::map_owned`] /
//! [`crate::for_each_owned`].
//!
//! ## Design: ownership-passing, no `unsafe`
//!
//! Workers are plain `std::thread::spawn` threads that live for the rest
//! of the process, popping jobs from a shared queue. A job is a
//! `Box<dyn FnOnce() + Send + 'static>`: it **owns** everything it
//! touches (its input stripe, an `Arc` of the map closure, the result
//! channel). That ownership transfer is the whole safety story — no
//! lifetime erasure, no `unsafe`, nothing borrowed ever reaches a thread
//! that could outlive the borrow. The cost is that borrowing callers
//! (the in-place gate kernels handing out disjoint `&mut` slices) cannot
//! use the pool; they stay on the scoped-thread executor
//! ([`crate::for_each_threads`]), which remains the fallback everywhere.
//!
//! ## Queue and completion protocol
//!
//! One `mpsc` channel feeds all workers (the receiver sits behind a
//! mutex; workers block on `recv`). Each [`run_owned`] call creates its
//! own return channel and tags jobs with their stripe index, so
//! concurrent calls from different threads never see each other's
//! results and completion order cannot perturb output order. Stripe 0
//! runs on the calling thread — identical to the scoped executor — so a
//! single-worker pool still overlaps caller and worker.
//!
//! ## Panic and nesting behavior
//!
//! Worker panics are caught ([`std::panic::catch_unwind`]), shipped back
//! through the return channel and re-raised on the calling thread —
//! matching [`crate::map_threads`]. A job that itself calls
//! [`crate::map_owned`] takes the scoped-thread fallback for its nested
//! fan-out (a worker blocking on its own pool could deadlock the
//! queue); the [`in_worker`] thread-local makes that detection free.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};

/// Name of the environment variable toggling the pool (`0`/`off`/`false`
/// disables it; anything else, or unset, leaves it on).
pub const POOL_ENV: &str = "QPAR_POOL";

/// Hard cap on pool workers: fan-outs beyond this stripe count queue
/// behind the existing workers instead of spawning more.
pub const MAX_POOL_WORKERS: usize = 16;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Jobs currently sitting in the queue (enqueued, not yet started).
static QUEUE_DEPTH: qobs::LazyGauge = qobs::LazyGauge::new("qpar_queue_depth");
/// Time a job spent queued before a worker picked it up.
static JOB_WAIT_NS: qobs::LazyHistogram = qobs::LazyHistogram::new("qpar_job_wait_ns");
/// Time a job spent executing on a worker.
static JOB_RUN_NS: qobs::LazyHistogram = qobs::LazyHistogram::new("qpar_job_run_ns");

/// Wraps a queued job with queue-depth / wait / run instrumentation.
/// One relaxed load when observability is off.
fn instrumented(job: Job) -> Job {
    if !qobs::enabled() {
        return job;
    }
    QUEUE_DEPTH.add(1);
    let queued = std::time::Instant::now();
    Box::new(move || {
        QUEUE_DEPTH.sub(1);
        JOB_WAIT_NS.record_duration(queued.elapsed());
        let start = std::time::Instant::now();
        job();
        JOB_RUN_NS.record_duration(start.elapsed());
    })
}

struct Pool {
    sender: Sender<Job>,
    /// Receiver end shared by every worker.
    receiver: Arc<Mutex<Receiver<Job>>>,
    /// Workers successfully spawned so far.
    workers: AtomicUsize,
    /// Guards worker spawning (so two racing fan-outs do not overshoot).
    grow: Mutex<()>,
}

static POOL: OnceLock<Pool> = OnceLock::new();
static ENV_ENABLED: OnceLock<bool> = OnceLock::new();

thread_local! {
    /// Thread-local pool toggle: 0 = inherit env, 1 = force on,
    /// 2 = force off.
    static LOCAL_ENABLED: Cell<u8> = const { Cell::new(0) };
    /// Set for the lifetime of every pool worker thread.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn env_enabled() -> bool {
    *ENV_ENABLED.get_or_init(|| {
        !matches!(
            std::env::var(POOL_ENV).ok().as_deref().map(str::trim),
            Some("0") | Some("off") | Some("false")
        )
    })
}

/// Whether the pooled executor is enabled for this thread (thread-local
/// override first, then the `QPAR_POOL` environment variable, default
/// on).
pub fn enabled() -> bool {
    match LOCAL_ENABLED.with(Cell::get) {
        1 => true,
        2 => false,
        _ => env_enabled(),
    }
}

/// Runs `f` with the pool forced on or off for the calling thread
/// (restores the previous override on exit, even on panic).
pub fn with_enabled<R>(on: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_ENABLED.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_ENABLED.with(Cell::get);
    let _restore = Restore(prev);
    LOCAL_ENABLED.with(|c| c.set(if on { 1 } else { 2 }));
    f()
}

/// Whether the calling thread is itself a pool worker (nested fan-outs
/// must not block on the queue they are draining).
pub fn in_worker() -> bool {
    IS_WORKER.with(Cell::get)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let (sender, receiver) = channel::<Job>();
        Pool {
            sender,
            receiver: Arc::new(Mutex::new(receiver)),
            workers: AtomicUsize::new(0),
            grow: Mutex::new(()),
        }
    })
}

/// Ensures at least `min(wanted, MAX_POOL_WORKERS)` workers exist;
/// returns the live worker count (0 when spawning fails entirely).
fn ensure_workers(wanted: usize) -> usize {
    let p = pool();
    let target = wanted.min(MAX_POOL_WORKERS);
    if p.workers.load(Ordering::Acquire) >= target {
        return p.workers.load(Ordering::Acquire);
    }
    let _g = p.grow.lock().expect("pool grow lock poisoned");
    let mut have = p.workers.load(Ordering::Acquire);
    while have < target {
        let receiver = Arc::clone(&p.receiver);
        let spawned = std::thread::Builder::new()
            .name(format!("qpar-pool-{have}"))
            .spawn(move || {
                IS_WORKER.with(|c| c.set(true));
                loop {
                    let job = {
                        let rx = receiver.lock().expect("pool queue lock poisoned");
                        rx.recv()
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => break, // sender gone: process is exiting
                    }
                }
            });
        if spawned.is_err() {
            break;
        }
        have += 1;
        p.workers.store(have, Ordering::Release);
    }
    have
}

/// Whether a fan-out of `threads` stripes should take the pooled
/// executor right now: pool enabled for this thread, not already inside
/// a worker, more than one stripe, and at least one worker available.
pub fn active(threads: usize) -> bool {
    threads > 1 && enabled() && !in_worker() && ensure_workers(threads - 1) > 0
}

/// Runs owned jobs on the pool, returning their results in job order.
/// Job 0 executes on the calling thread (the scoped executor's stripe-0
/// convention); the rest are queued. Panics from any job are re-raised
/// on the calling thread after all jobs have finished.
///
/// Callers are expected to have checked [`active`]; if no worker exists
/// the queued jobs would never run, so this falls back to running every
/// job inline.
pub fn run_owned<R: Send + 'static>(jobs: Vec<Box<dyn FnOnce() -> R + Send>>) -> Vec<R> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 || ensure_workers(n - 1) == 0 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let (tx, rx) = channel::<(usize, std::thread::Result<R>)>();
    let mut jobs = VecDeque::from(jobs);
    let first = jobs.pop_front().expect("n >= 1");
    for (i, job) in jobs.into_iter().enumerate() {
        let tx = tx.clone();
        let wrapped: Job = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(job));
            // A receiver that hung up (caller panicked) is not our
            // problem; dropping the result is fine then.
            let _ = tx.send((i + 1, result));
        });
        pool()
            .sender
            .send(instrumented(wrapped))
            .expect("pool queue receiver lives as long as the process");
    }
    drop(tx);
    let mut slots: Vec<Option<std::thread::Result<R>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    slots[0] = Some(catch_unwind(AssertUnwindSafe(first)));
    for _ in 1..n {
        let (i, result) = rx.recv().expect("every queued job reports exactly once");
        slots[i] = Some(result);
    }
    let mut out = Vec::with_capacity(n);
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    for slot in slots {
        match slot.expect("all slots filled") {
            Ok(r) => out.push(r),
            Err(p) => panic = Some(p),
        }
    }
    if let Some(p) = panic {
        resume_unwind(p);
    }
    out
}

/// Runs one owned job on a pool worker without blocking the caller —
/// the fire-and-forget sibling of [`run_owned`], used for long-lived
/// tasks such as `qckptd` connection handlers. `busy` is the number of
/// pool workers the caller believes are already occupied by detached
/// jobs; the pool grows to `busy + 1` workers (up to
/// [`MAX_POOL_WORKERS`]) so a new job is not starved behind them.
///
/// Hands the job back (`Err(job)`) when the pool is disabled for this
/// thread, already saturated past `busy + 1` ≥ [`MAX_POOL_WORKERS`], or
/// no worker could be spawned; the caller should then run it on a
/// dedicated thread. The saturation check matters for long-lived jobs:
/// queueing a connection handler behind [`MAX_POOL_WORKERS`] other
/// handlers would starve it indefinitely, which is worse than one extra
/// thread.
#[allow(clippy::type_complexity)]
pub fn spawn_detached(
    busy: usize,
    job: Box<dyn FnOnce() + Send + 'static>,
) -> std::result::Result<(), Box<dyn FnOnce() + Send + 'static>> {
    if !enabled() || in_worker() || busy.saturating_add(1) > MAX_POOL_WORKERS {
        return Err(job);
    }
    if ensure_workers(busy.saturating_add(1)) <= busy {
        return Err(job);
    }
    pool()
        .sender
        .send(instrumented(job))
        .expect("pool queue receiver lives as long as the process");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_detached_runs_the_job() {
        let (tx, rx) = channel();
        let ok = spawn_detached(
            0,
            Box::new(move || {
                let _ = tx.send(42u8);
            }),
        );
        if ok.is_ok() {
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_secs(10)).ok(),
                Some(42)
            );
        }
    }

    #[test]
    fn spawn_detached_hands_the_job_back_when_disabled() {
        with_enabled(false, || {
            let job = spawn_detached(0, Box::new(|| {})).expect_err("pool is off");
            job(); // still runnable by the caller
        });
    }

    #[test]
    fn spawn_detached_refuses_past_the_worker_cap() {
        assert!(spawn_detached(MAX_POOL_WORKERS, Box::new(|| {})).is_err());
    }

    #[test]
    fn run_owned_preserves_job_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..24)
            .map(|i| {
                let job: Box<dyn FnOnce() -> usize + Send> = Box::new(move || i * 7);
                job
            })
            .collect();
        let got = run_owned(jobs);
        assert_eq!(got, (0..24).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn run_owned_handles_empty_and_single() {
        assert_eq!(run_owned::<u8>(Vec::new()), Vec::<u8>::new());
        let one: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| 9)];
        assert_eq!(run_owned(one), vec![9]);
    }

    #[test]
    fn run_owned_propagates_panics_after_draining() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8)
            .map(|i| {
                let job: Box<dyn FnOnce() -> usize + Send> = Box::new(move || {
                    assert!(i != 5, "boom");
                    i
                });
                job
            })
            .collect();
        let result = catch_unwind(AssertUnwindSafe(|| run_owned(jobs)));
        assert!(result.is_err());
    }

    #[test]
    fn with_enabled_overrides_and_restores() {
        let ambient = enabled();
        assert!(!with_enabled(false, enabled));
        assert!(with_enabled(true, enabled));
        assert_eq!(enabled(), ambient);
    }

    #[test]
    fn workers_are_capped() {
        assert!(ensure_workers(1000) <= MAX_POOL_WORKERS);
    }
}
