//! Backend-equivalence and shared crash-safety property suites.
//!
//! The `ObjectStore` abstraction promises that the *logical* behavior of a
//! checkpoint repository is independent of the storage layout: the same
//! sequence of saves, deltas, garbage collections, retentions and
//! recoveries against a loose-backend repo, a pack-backend repo and a
//! remote-backend repo (an in-process `qckptd` daemon) must produce
//! byte-identical manifests, identical snapshots, identical GC
//! reachability and identical fsck health — only the syscall profile
//! (renames/fsyncs per save) may differ. These properties drive random
//! operation sequences against all backends side by side and assert
//! exactly that, plus the crash-safety contract (every simulated crash
//! point leaves every repository recoverable to the same state, and
//! `recover` clears the staging debris the crash left behind — local
//! *and*, for the remote backend, server-side via `CLEAR_STAGING`).

use proptest::prelude::*;

use qcheck::failure::CrashPoint;
use qcheck::remote::{
    spawn_daemon, DaemonHandle, RemoteStore, ReplStop, ReplicateConfig, Server, ServerConfig,
};
use qcheck::repo::{CheckpointRepo, Retention, SaveMode, SaveOptions, SaveReport};
use qcheck::snapshot::{StateBlob, TrainingSnapshot};
use qcheck::store::{ObjectStore, StoreBackend, StoreKind};
use qcheck::verify::fsck;

/// One step of the randomized repository workload.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Full save after perturbing `bump` parameters.
    SaveFull { bump: u8 },
    /// Delta-auto save after a sparse single-parameter update.
    SaveDelta { sparse_idx: u16, max_chain: u8 },
    /// Mark-and-sweep garbage collection.
    Gc,
    /// Recovery scan (newest verifiable checkpoint).
    Recover,
    /// Rewrite the latest delta chain as a full checkpoint.
    Compact,
    /// Retention: keep the newest `keep` checkpoints, then GC.
    Retain { keep: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16).prop_map(|bump| Op::SaveFull { bump }),
        (any::<u16>(), 1u8..6).prop_map(|(sparse_idx, max_chain)| Op::SaveDelta {
            sparse_idx,
            max_chain
        }),
        Just(Op::Gc),
        Just(Op::Recover),
        Just(Op::Compact),
        (1u8..4).prop_map(|keep| Op::Retain { keep }),
    ]
}

const N_PARAMS: usize = 1200; // ≈ 9.4 KiB of parameters → several chunks

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "qcheck-backend-equiv-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Spawns an in-process daemon (loose layout, eager GC — the
/// logical-equivalence reference configuration) and opens a remote-backed
/// repository under `dir` against a unique namespace.
fn remote_repo(dir: &std::path::Path, tag: &str) -> (DaemonHandle, CheckpointRepo) {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let daemon = spawn_daemon(dir.join("daemon"), StoreKind::Loose).unwrap();
    let ns = format!(
        "equiv-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    );
    let store = RemoteStore::connect(daemon.addr(), ns).unwrap();
    let repo = CheckpointRepo::with_store(dir.join("client"), StoreBackend::Remote(store)).unwrap();
    (daemon, repo)
}

fn snapshot_at(step: u64, params: &[f64]) -> TrainingSnapshot {
    let mut s = TrainingSnapshot::new("backend-equivalence");
    s.step = step;
    s.params = params.to_vec();
    s.optimizer = StateBlob::new("adam-v1", vec![(step % 251) as u8; 256]);
    s.total_shots = step * 1000;
    s.shot_ledger = vec![(step % 7) as u8; 32];
    s
}

fn options(mode: SaveMode) -> SaveOptions {
    SaveOptions {
        mode,
        // Pinned timestamp: manifests must come out byte-identical.
        created_unix_ms: Some(1_750_000_000_000),
        ..SaveOptions::default()
    }
}

/// The per-save fields that must not depend on the storage backend
/// (everything except the syscall profile).
fn logical_view(r: &SaveReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.id.clone(),
        r.is_delta,
        r.chain_len,
        r.logical_bytes,
        r.stored_bytes,
        r.new_chunk_bytes,
        r.chunks_new,
        r.chunks_deduped,
        r.manifest_bytes,
    )
}

/// Asserts the backend-specific syscall contract of one save.
fn assert_rename_contract(kind: StoreKind, r: &SaveReport) {
    match kind {
        StoreKind::Loose => assert_eq!(
            r.store_renames, r.chunks_new as u64,
            "loose backend pays one rename per fresh chunk"
        ),
        StoreKind::Pack => assert!(
            r.store_renames <= 1,
            "pack backend must commit each save with at most one rename (got {})",
            r.store_renames
        ),
        // The equivalence daemon serves a loose layout, so the
        // server-reported counters must match the loose contract.
        StoreKind::Remote => assert_eq!(
            r.store_renames, r.chunks_new as u64,
            "remote(loose) backend must report the server's renames"
        ),
    }
}

/// Drives one op against one repo; returns a comparable outcome string.
fn apply_op(repo: &CheckpointRepo, kind: StoreKind, op: Op, step: u64, params: &[f64]) -> String {
    match op {
        Op::SaveFull { .. } => {
            let r = repo
                .save(&snapshot_at(step, params), &options(SaveMode::Full))
                .unwrap();
            assert_rename_contract(kind, &r);
            format!("{:?}", logical_view(&r))
        }
        Op::SaveDelta { max_chain, .. } => {
            let r = repo
                .save(
                    &snapshot_at(step, params),
                    &options(SaveMode::DeltaAuto {
                        max_chain_len: max_chain as u32,
                    }),
                )
                .unwrap();
            assert_rename_contract(kind, &r);
            format!("{:?}", logical_view(&r))
        }
        Op::Gc => format!("{:?}", repo.gc().unwrap()),
        Op::Recover => match repo.recover() {
            Ok((snap, report)) => format!("recovered {:?} step {}", report.recovered, snap.step),
            Err(e) => format!("recover error: {e}"),
        },
        Op::Compact => match repo.compact_latest(&options(SaveMode::Full)) {
            Ok(r) => format!("{:?}", r.map(|r| format!("{:?}", logical_view(&r)))),
            Err(e) => format!("compact error: {e}"),
        },
        Op::Retain { keep } => {
            let r = repo
                .apply_retention(Retention::KeepLast(keep as usize))
                .unwrap();
            format!("{r:?}")
        }
    }
}

/// Evolves the model parameters deterministically for one op.
fn evolve(params: &mut [f64], op: Op, step: u64) {
    match op {
        Op::SaveFull { bump } => {
            for i in 0..bump as usize {
                let idx = (i * 97 + step as usize * 13) % params.len();
                params[idx] += 1e-3 * (step as f64 + 1.0);
            }
        }
        Op::SaveDelta { sparse_idx, .. } => {
            let idx = sparse_idx as usize % params.len();
            params[idx] += 1e-6;
        }
        _ => {}
    }
}

proptest! {
    // Each case replays a whole repository history twice (fs-heavy);
    // keep the default case count modest. QPROP_CASES still overrides.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random save/delta/gc/recover/compact/retain sequences produce
    /// byte-identical manifests, identical snapshots and identical GC
    /// reachability on the loose, pack and remote backends.
    #[test]
    fn backends_are_logically_equivalent(ops in prop::collection::vec(arb_op(), 1..10)) {
        // Pin the pack GC to eager rewrites: with the default deferral
        // threshold (QCHECK_GC_DEAD_FRACTION=0.5) the pack backend keeps
        // barely-fragmented packs alive, so its orphan/GC accounting
        // legitimately diverges from loose. Eager mode is the
        // logical-equivalence contract; the deferral policy has its own
        // unit tests in `store::pack`. The remote daemon serves a loose
        // layout (spawn_daemon pins eager GC too).
        let loose_dir = TempDir::new("loose");
        let pack_dir = TempDir::new("pack");
        let remote_dir = TempDir::new("remote");
        let loose = CheckpointRepo::open_with(&loose_dir.0, StoreKind::Loose).unwrap();
        let mut pack = CheckpointRepo::open_with(&pack_dir.0, StoreKind::Pack).unwrap();
        pack.store_mut().set_gc_dead_fraction(0.0);
        let pack = pack;
        let (_daemon, remote) = remote_repo(&remote_dir.0, "logic");
        prop_assert_eq!(loose.store_kind(), StoreKind::Loose);
        prop_assert_eq!(pack.store_kind(), StoreKind::Pack);
        prop_assert_eq!(remote.store_kind(), StoreKind::Remote);
        let repos = [
            (StoreKind::Loose, &loose),
            (StoreKind::Pack, &pack),
            (StoreKind::Remote, &remote),
        ];

        let mut params = vec![0.5f64; N_PARAMS];
        let mut step = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if matches!(op, Op::SaveFull { .. } | Op::SaveDelta { .. }) {
                step += 1;
                evolve(&mut params, *op, step);
            }
            let outcomes: Vec<String> = repos
                .iter()
                .map(|(kind, repo)| apply_op(repo, *kind, *op, step, &params))
                .collect();
            prop_assert_eq!(&outcomes[0], &outcomes[1], "pack diverged at op {} ({:?})", i, op);
            prop_assert_eq!(&outcomes[0], &outcomes[2], "remote diverged at op {} ({:?})", i, op);
        }

        // Histories must agree checkpoint by checkpoint…
        let ids = loose.list_ids().unwrap();
        for (kind, repo) in &repos[1..] {
            prop_assert_eq!(&ids, &repo.list_ids().unwrap(), "{} ids", kind);
            for id in &ids {
                let ml = loose.load_manifest(id).unwrap();
                let mr = repo.load_manifest(id).unwrap();
                prop_assert_eq!(
                    ml.encode(), mr.encode(),
                    "manifest {} must be byte-identical on {}", id, kind
                );
                prop_assert_eq!(loose.load(id).unwrap(), repo.load(id).unwrap());
            }
        }

        // …as must overall health and reachability after a final GC.
        let fl = fsck(&loose).unwrap();
        let gl = loose.gc().unwrap();
        for (kind, repo) in &repos[1..] {
            let fr = fsck(repo).unwrap();
            prop_assert_eq!(fl.intact_count(), fr.intact_count(), "{} intact", kind);
            prop_assert_eq!(fl.orphan_chunks, fr.orphan_chunks, "{} orphans", kind);
            let gr = repo.gc().unwrap();
            prop_assert_eq!(&gl, &gr, "{} GC reachability must match", kind);
            prop_assert_eq!(
                loose.store().stats().unwrap(),
                repo.store().stats().unwrap(),
                "{} post-GC logical store contents must match", kind
            );
            for id in &ids {
                prop_assert_eq!(loose.load(id).unwrap(), repo.load(id).unwrap());
            }
        }
    }

    /// Every simulated crash point leaves EVERY backend recoverable to the
    /// same pre-crash state, and `recover` clears the staging debris.
    #[test]
    fn crash_points_recover_identically_on_all_backends(
        committed_saves in 1u8..4,
        crash_idx in 0usize..5,
    ) {
        // (Crash recovery never sweeps objects, so the pack GC deferral
        // threshold is irrelevant here — no pinning needed.)
        let crash = CrashPoint::all()[crash_idx];
        let loose_dir = TempDir::new("crash-loose");
        let pack_dir = TempDir::new("crash-pack");
        let remote_dir = TempDir::new("crash-remote");
        let (_daemon, remote) = remote_repo(&remote_dir.0, "crash");
        let repos = [
            CheckpointRepo::open_with(&loose_dir.0, StoreKind::Loose).unwrap(),
            CheckpointRepo::open_with(&pack_dir.0, StoreKind::Pack).unwrap(),
            remote,
        ];

        let mut outcomes = Vec::new();
        for repo in &repos {
            let mut params = vec![0.25f64; N_PARAMS];
            for step in 1..=committed_saves as u64 {
                params[step as usize] += 0.5;
                repo.save(&snapshot_at(step, &params), &options(SaveMode::Full)).unwrap();
            }
            params[0] = -1.0;
            let crashing = SaveOptions {
                crash: Some(crash),
                ..options(SaveMode::Full)
            };
            let err = repo
                .save(&snapshot_at(committed_saves as u64 + 1, &params), &crashing)
                .unwrap_err();
            prop_assert!(matches!(err, qcheck::Error::SimulatedCrash { .. }));

            let (snap, report) = repo.recover().unwrap();
            // The staging area must be empty after recovery — the whole
            // point of clearing orphaned debris. (For the remote backend
            // this covers the *local* manifest staging; server-side
            // staging is exercised below.)
            let leftovers = std::fs::read_dir(repo.root().join("tmp")).unwrap().count();
            prop_assert_eq!(leftovers, 0, "recover must clear staging debris");
            outcomes.push((snap.step, snap.params.clone(), report.recovered));
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1], "crash {:?} diverged loose/pack", crash);
        prop_assert_eq!(&outcomes[0], &outcomes[2], "crash {:?} diverged loose/remote", crash);
    }
}

proptest! {
    // Replication drags a whole second daemon through every case; keep
    // the count low (QPROP_CASES still overrides).
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The replicated remote backend joins the equivalence family: after
    /// an arbitrary workload on the primary, a secondary that "crashed"
    /// mid-pass at a randomly chosen oplog stage (chunks shipped but
    /// entry unapplied / entry applied but unacked / clean cut between
    /// passes) and then resynced, once promoted, serves a repository
    /// with byte-identical manifests, identical recovery and identical
    /// fsck health — convergence is idempotent at every stage boundary.
    #[test]
    fn replicated_secondary_converges_after_staged_crashes(
        ops in prop::collection::vec(arb_op(), 1..8),
        stage in 0usize..3,
    ) {
        let dir = TempDir::new("repl-equiv");
        let primary = spawn_daemon(dir.0.join("primary"), StoreKind::Loose).unwrap();
        let mut sec_config = ServerConfig::new(dir.0.join("secondary"));
        sec_config.store_kind = StoreKind::Loose;
        sec_config.gc_dead_fraction = Some(0.0);
        let mut repl = ReplicateConfig::new(primary.addr());
        repl.manual = true; // passes are driven (and cut) explicitly
        sec_config.replicate = Some(repl);
        let secondary = Server::bind("127.0.0.1:0", sec_config).unwrap().spawn();

        let store = RemoteStore::connect(primary.addr(), "repl-equiv").unwrap();
        let repo =
            CheckpointRepo::with_store(dir.0.join("client"), StoreBackend::Remote(store)).unwrap();
        let mut params = vec![0.5f64; N_PARAMS];
        let mut step = 0u64;
        for op in &ops {
            if matches!(op, Op::SaveFull { .. } | Op::SaveDelta { .. }) {
                step += 1;
                evolve(&mut params, *op, step);
            }
            apply_op(&repo, StoreKind::Remote, *op, step, &params);
        }

        // Crash the first replication pass at the drilled stage, then
        // resync to convergence.
        match stage {
            0 => { secondary.repl_sync(Some(ReplStop::AfterChunks)).unwrap(); }
            1 => { secondary.repl_sync(Some(ReplStop::AfterEntry)).unwrap(); }
            _ => {} // no partial pass: the clean-cut baseline
        }
        for _ in 0..64 {
            if secondary.repl_sync(None).unwrap().remaining == 0 {
                break;
            }
        }
        secondary.promote().unwrap();

        // The promoted secondary must be logically indistinguishable
        // from the primary — same checks the three-way suite applies.
        let failover_store = RemoteStore::connect(secondary.addr(), "repl-equiv").unwrap();
        let failover = CheckpointRepo::with_store(
            dir.0.join("fresh"),
            StoreBackend::Remote(failover_store),
        )
        .unwrap();
        let ids = repo.list_ids().unwrap();
        prop_assert_eq!(&ids, &failover.list_ids().unwrap(), "ids diverged at stage {}", stage);
        for id in &ids {
            prop_assert_eq!(
                repo.load_manifest(id).unwrap().encode(),
                failover.load_manifest(id).unwrap().encode(),
                "manifest {} diverged at stage {}", id, stage
            );
            prop_assert_eq!(repo.load(id).unwrap(), failover.load(id).unwrap());
        }
        match (repo.recover(), failover.recover()) {
            (Ok((s1, _)), Ok((s2, _))) => {
                prop_assert_eq!(s1.step, s2.step);
                prop_assert_eq!(s1.params, s2.params);
            }
            (Err(qcheck::Error::NoValidCheckpoint { .. }),
             Err(qcheck::Error::NoValidCheckpoint { .. })) => {}
            (a, b) => prop_assert!(false, "recover diverged: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
        let fp = fsck(&repo).unwrap();
        let fs = fsck(&failover).unwrap();
        prop_assert_eq!(fp.intact_count(), fs.intact_count(), "intact diverged");
        prop_assert_eq!(fp.orphan_chunks, fs.orphan_chunks, "orphans diverged");
    }
}

/// Recovery into a fresh working directory pulls the namespace's
/// manifests down from the daemon and reports how many
/// (`RecoveryReport::meta_synced` sums the open-time and recovery-time
/// syncs for the handle).
#[test]
fn fresh_directory_recover_reports_meta_synced() {
    let dir = TempDir::new("fresh-meta");
    let (daemon, repo) = remote_repo(&dir.0, "freshmeta");
    let ns = repo.store().remote().unwrap().namespace().to_string();
    let params = vec![0.5f64; N_PARAMS];
    repo.save(&snapshot_at(1, &params), &options(SaveMode::Full))
        .unwrap();
    drop(repo);

    let store = RemoteStore::connect(daemon.addr(), ns).unwrap();
    let fresh =
        CheckpointRepo::with_store(dir.0.join("fresh"), StoreBackend::Remote(store)).unwrap();
    let (snap, report) = fresh.recover().unwrap();
    assert_eq!(snap.step, 1);
    assert_eq!(
        report.meta_synced, 1,
        "the fresh directory pulled one manifest from the daemon"
    );
}

/// The pack files currently published under `dir/packs/`.
fn pack_files(dir: &std::path::Path) -> std::collections::BTreeSet<String> {
    std::fs::read_dir(dir.join("packs"))
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.file_name().to_string_lossy().to_string())
                .filter(|n| n.starts_with("pack-"))
                .collect()
        })
        .unwrap_or_default()
}

/// The pack index must rescan `packs/` at most once per recovery chunk
/// walk. A missing chunk used to trigger one directory rescan *per index
/// miss* — O(chunks) rescans when a whole pack had vanished, the
/// `recover_ms` pathology in `BENCH_store.json`.
#[test]
fn pack_recovery_rescans_index_at_most_once() {
    let dir = TempDir::new("pack-rescan");
    let mut params = vec![0.5f64; N_PARAMS];
    let new_packs = {
        let repo = CheckpointRepo::open_with(&dir.0, StoreKind::Pack).unwrap();
        repo.save(&snapshot_at(1, &params), &options(SaveMode::Full))
            .unwrap();
        let before = pack_files(&dir.0);

        // A healthy recovery never touches the miss path: zero rescans.
        let rescans = repo.store().pack().unwrap().index_rescans();
        let (snap, _) = repo.recover().unwrap();
        assert_eq!(snap.step, 1);
        assert_eq!(
            repo.store().pack().unwrap().index_rescans(),
            rescans,
            "healthy recovery must not rescan packs/"
        );

        params[7] += 1.0;
        repo.save(&snapshot_at(2, &params), &options(SaveMode::Full))
            .unwrap();
        let after = pack_files(&dir.0);
        after.difference(&before).cloned().collect::<Vec<_>>()
    };
    assert!(!new_packs.is_empty(), "second save must publish a new pack");
    for name in &new_packs {
        std::fs::remove_file(dir.0.join("packs").join(name)).unwrap();
    }

    // Fresh handle: its index never saw the deleted pack, so every chunk
    // of checkpoint 2 is a clean index miss during the recovery walk.
    let repo = CheckpointRepo::open_with(&dir.0, StoreKind::Pack).unwrap();
    let rescans = repo.store().pack().unwrap().index_rescans();
    let (snap, report) = repo.recover().unwrap();
    assert_eq!(snap.step, 1, "must fall back to the intact checkpoint");
    assert_eq!(report.manifests_tried, 2);
    assert!(!report.skipped.is_empty());
    let walked = repo.store().pack().unwrap().index_rescans() - rescans;
    assert!(
        walked <= 1,
        "recovery chunk walk must rescan packs/ at most once, got {walked}"
    );
}

/// A crash *between* the local tombstone append and the mirror deletes
/// used to resurrect retired checkpoints on the next fresh-directory
/// sync. The durable tombstones plus recovery's reconciliation pin the
/// fix: `recover` re-issues the (idempotent) mirror deletes.
#[test]
fn retention_crash_before_mirror_deletes_does_not_resurrect() {
    let dir = TempDir::new("retire-crash");
    let (daemon, repo) = remote_repo(&dir.0, "retire");
    let ns = repo.store().remote().unwrap().namespace().to_string();
    let mut params = vec![0.5f64; N_PARAMS];
    for step in 1..=3u64 {
        params[step as usize] += 0.5;
        repo.save(&snapshot_at(step, &params), &options(SaveMode::Full))
            .unwrap();
    }
    let ids = repo.list_ids().unwrap();
    assert_eq!(ids.len(), 3);
    let kept = ids.last().unwrap().clone();

    let err = repo
        .apply_retention_with(Retention::KeepLast(1), Some(CrashPoint::AfterRetireLocal))
        .unwrap_err();
    assert!(matches!(err, qcheck::Error::SimulatedCrash { .. }), "{err}");

    // The crash left the exact divergence of the bug: tombstones are
    // durable locally, but the mirror still lists every manifest.
    assert_eq!(repo.list_ids().unwrap(), vec![kept.clone()]);
    assert_eq!(
        repo.store().meta_list("manifests/").unwrap().len(),
        3,
        "crash fired before any mirror delete went out"
    );

    // Recovery reconciles the divergence.
    let (snap, _) = repo.recover().unwrap();
    assert_eq!(snap.step, 3);
    assert_eq!(
        repo.store().meta_list("manifests/").unwrap().len(),
        1,
        "recover must re-issue the mirror deletes for tombstoned ids"
    );

    // The resurrection scenario proper: a fresh working directory on the
    // same namespace must see only the kept checkpoint.
    let store = RemoteStore::connect(daemon.addr(), ns).unwrap();
    let fresh =
        CheckpointRepo::with_store(dir.0.join("fresh"), StoreBackend::Remote(store)).unwrap();
    assert_eq!(fresh.list_ids().unwrap(), vec![kept]);
    let (fresh_snap, _) = fresh.recover().unwrap();
    assert_eq!(fresh_snap.step, 3);
}

fn read_slots(paths: &[std::path::PathBuf; 2]) -> [Option<Vec<u8>>; 2] {
    [std::fs::read(&paths[0]).ok(), std::fs::read(&paths[1]).ok()]
}

fn restore_slots(paths: &[std::path::PathBuf; 2], slots: &[Option<Vec<u8>>; 2]) {
    for (path, bytes) in paths.iter().zip(slots) {
        match bytes {
            Some(b) => std::fs::write(path, b).unwrap(),
            None => {
                let _ = std::fs::remove_file(path);
            }
        }
    }
}

/// Tears the committed checkpoint-2 tail of the manifest log at `stride`d
/// byte offsets (truncation and bit flip, against the pre-flip roots a
/// real crash would leave) and asserts recovery opens the longest valid
/// prefix; then tears each root slot byte-by-byte and asserts fallback
/// across slots. `mirror_heals` is true for the remote backend, whose
/// meta mirror re-supplies the torn manifest.
fn torn_tail_sweep(repo: &CheckpointRepo, mirror_heals: bool, stride: usize) {
    use qcheck::manifest_log::RECORD_OVERHEAD;

    let params1: Vec<f64> = (0..64).map(|i| 0.1 * i as f64).collect();
    let mut params2 = params1.clone();
    params2[3] += 1.0;
    repo.save(&snapshot_at(1, &params1), &options(SaveMode::Full))
        .unwrap();
    let log = repo.manifest_log_path().unwrap();
    let committed = std::fs::read(&log).unwrap().len();
    let paths = repo.root_slot_paths();
    let slots1 = read_slots(&paths);
    repo.save(&snapshot_at(2, &params2), &options(SaveMode::Full))
        .unwrap();
    let full = std::fs::read(&log).unwrap();
    let slots2 = read_slots(&paths);

    // Frame geometry of the tail: ManifestPut(ckpt2) then LatestAdvance.
    let tail = &full[committed..];
    assert_eq!(tail[4], 1, "tail must start with a ManifestPut record");
    let id_len = u16::from_le_bytes([tail[5], tail[6]]) as usize;
    let pay_len = u32::from_le_bytes(tail[7 + id_len..11 + id_len].try_into().unwrap()) as usize;
    let put_end = committed + RECORD_OVERHEAD + id_len + pay_len;
    assert!(put_end < full.len(), "a LatestAdvance record follows");

    for cut in (committed..=full.len()).step_by(stride.max(1)) {
        // A checkpoint recovers iff its ManifestPut survives whole (or
        // the mirror re-supplies it); the torn remainder is benign.
        let expect = if mirror_heals || cut >= put_end { 2 } else { 1 };

        // Truncation: the tail of a crashed append.
        restore_slots(&paths, &slots1);
        std::fs::write(&log, &full[..cut]).unwrap();
        let (snap, report) = repo.recover().unwrap();
        assert_eq!(snap.step, expect, "truncate at {cut}");
        if !mirror_heals {
            assert!(
                report.skipped.is_empty(),
                "a torn tail is benign, truncate at {cut}: {:?}",
                report.skipped
            );
        }

        // Bit flip: every CRC frame must reject its own damage.
        if cut < full.len() {
            restore_slots(&paths, &slots1);
            let mut damaged = full.clone();
            damaged[cut] ^= 0xA5;
            std::fs::write(&log, &damaged).unwrap();
            let (snap, _) = repo.recover().unwrap();
            assert_eq!(snap.step, expect, "bit flip at {cut}");
        }
    }

    // Root-slot leg: any single torn slot (either of them) falls back to
    // the survivor, and checkpoint 2 — durable in the log — still wins.
    for slot in 0..2 {
        let Some(good) = &slots2[slot] else { continue };
        for off in (0..good.len()).step_by(stride.max(1)) {
            restore_slots(&paths, &slots2);
            std::fs::write(&log, &full).unwrap();
            let mut torn = good.clone();
            torn[off] ^= 0xA5;
            std::fs::write(&paths[slot], &torn).unwrap();
            let (snap, _) = repo.recover().unwrap();
            assert_eq!(snap.step, 2, "flip in slot {slot} byte {off}");

            restore_slots(&paths, &slots2);
            std::fs::write(&log, &full).unwrap();
            std::fs::write(&paths[slot], &good[..off]).unwrap();
            let (snap, _) = repo.recover().unwrap();
            assert_eq!(snap.step, 2, "truncated slot {slot} at {off}");
        }
    }

    // Leave the repository healthy.
    restore_slots(&paths, &slots2);
    std::fs::write(&log, &full).unwrap();
    let (snap, _) = repo.recover().unwrap();
    assert_eq!(snap.step, 2);
}

/// Torn-tail sweep on all three backends. The loose leg tears *every*
/// byte offset; pack and remote share the identical log code path and
/// sweep strided offsets to bound runtime.
#[test]
fn torn_log_tail_opens_longest_valid_prefix_on_every_backend() {
    {
        let dir = TempDir::new("torn-loose");
        let repo = CheckpointRepo::open_with(&dir.0, StoreKind::Loose).unwrap();
        torn_tail_sweep(&repo, false, 1);
    }
    {
        let dir = TempDir::new("torn-pack");
        let repo = CheckpointRepo::open_with(&dir.0, StoreKind::Pack).unwrap();
        torn_tail_sweep(&repo, false, 2);
    }
    {
        let dir = TempDir::new("torn-remote");
        let (_daemon, repo) = remote_repo(&dir.0, "torn");
        torn_tail_sweep(&repo, true, 3);
    }
}

/// The legacy `manifests/*.qmf` + `LATEST` layout migrates automatically
/// and losslessly on open: identical ids, manifest bytes, loads and fsck
/// health, and a second open is a no-op.
#[test]
fn legacy_layout_migrates_losslessly() {
    for kind in [StoreKind::Loose, StoreKind::Pack] {
        let dir = TempDir::new("migrate");
        let mut params = vec![0.5f64; N_PARAMS];
        let (ids, manifests, snapshots, health) = {
            let repo = CheckpointRepo::open_with(&dir.0, kind).unwrap();
            for step in 1..=3u64 {
                params[step as usize] += 0.25;
                let mode = if step == 3 {
                    SaveMode::DeltaAuto { max_chain_len: 4 }
                } else {
                    SaveMode::Full
                };
                repo.save(&snapshot_at(step, &params), &options(mode))
                    .unwrap();
            }
            let ids = repo.list_ids().unwrap();
            let manifests: Vec<Vec<u8>> = ids
                .iter()
                .map(|id| repo.load_manifest(id).unwrap().encode())
                .collect();
            let snapshots: Vec<_> = ids.iter().map(|id| repo.load(id).unwrap()).collect();
            let h = fsck(&repo).unwrap();
            (
                ids,
                manifests,
                snapshots,
                (h.intact_count(), h.orphan_chunks),
            )
        };

        // De-migrate: rewrite the legacy layout, drop the log-era files.
        let legacy = dir.0.join("manifests");
        std::fs::create_dir_all(&legacy).unwrap();
        for (id, bytes) in ids.iter().zip(&manifests) {
            std::fs::write(legacy.join(id.file_name()), bytes).unwrap();
        }
        std::fs::write(dir.0.join("LATEST"), ids.last().unwrap().as_str()).unwrap();
        for entry in std::fs::read_dir(&dir.0).unwrap().flatten() {
            let name = entry.file_name().to_string_lossy().to_string();
            if name.starts_with("ROOT.") || name.ends_with(".qlg") {
                std::fs::remove_file(entry.path()).unwrap();
            }
        }

        // Reopen: the one-shot migration must reproduce the repo exactly.
        let repo = CheckpointRepo::open_with(&dir.0, kind).unwrap();
        assert!(!legacy.exists(), "{kind}: legacy dir must be cleaned up");
        assert!(!dir.0.join("LATEST").exists(), "{kind}");
        assert!(repo.manifest_log_path().unwrap().exists(), "{kind}");
        assert_eq!(&repo.list_ids().unwrap(), &ids, "{kind}: ids");
        assert_eq!(repo.read_latest().unwrap().as_ref(), ids.last(), "{kind}");
        for ((id, bytes), snap) in ids.iter().zip(&manifests).zip(&snapshots) {
            assert_eq!(
                &repo.load_manifest(id).unwrap().encode(),
                bytes,
                "{kind}: manifest {id} must survive migration byte-identically"
            );
            assert_eq!(&repo.load(id).unwrap(), snap, "{kind}: load {id}");
        }
        let h = fsck(&repo).unwrap();
        assert_eq!(
            (h.intact_count(), h.orphan_chunks),
            health,
            "{kind}: fsck diverged across migration"
        );
        let (recovered, report) = repo.recover().unwrap();
        assert_eq!(recovered.step, 3, "{kind}");
        assert_eq!(
            report.manifests_tried, 1,
            "{kind}: recovery short-circuits post-migration"
        );
        drop(repo);

        // Idempotent: a second open changes nothing.
        let again = CheckpointRepo::open_with(&dir.0, kind).unwrap();
        assert_eq!(again.list_ids().unwrap(), ids, "{kind}: reopen");
    }
}

/// A client dying mid-`put_batch` (its frame never completes) must leave
/// the daemon's store clean: the next client sees no partial objects, no
/// staging debris, and a working repository.
#[test]
fn client_death_mid_put_batch_recovers_cleanly() {
    let dir = TempDir::new("mid-batch");
    let (daemon, repo) = remote_repo(&dir.0, "midbatch");
    let ns = repo.store().remote().unwrap().namespace().to_string();
    let mut params = vec![0.75f64; N_PARAMS];
    repo.save(&snapshot_at(1, &params), &options(SaveMode::Full))
        .unwrap();

    // A raw client handshakes into the same namespace, then dies halfway
    // through a PUT_BATCH frame.
    qcheck::remote::fault::die_mid_put_batch(&daemon.addr(), &ns, vec![0xEEu8; 8192]).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));

    // The surviving client keeps working and recovery is clean.
    let (snap, report) = repo.recover().unwrap();
    assert_eq!(snap.step, 1);
    assert!(report.skipped.is_empty());
    params[3] += 1.0;
    repo.save(&snapshot_at(2, &params), &options(SaveMode::Full))
        .unwrap();
    let health = fsck(&repo).unwrap();
    assert_eq!(health.intact_count(), 2);
    assert_eq!(
        health.orphan_chunks, 0,
        "the dead client's half-frame must not materialize objects"
    );
}

/// Save/recover drills move the qobs counters by at least the drill's
/// own contribution. Deltas are `>=`, never `==`: every test in this
/// binary shares one process-wide registry. Only deterministic
/// counters are asserted — never timings.
#[test]
fn observability_counters_track_a_save_recover_drill() {
    if qobs::mode() == qobs::Mode::Off {
        qobs::set_mode(qobs::Mode::Counters);
    }
    let dir = TempDir::new("obs-deltas");
    let repo = CheckpointRepo::open(dir.0.join("repo")).unwrap();

    let saves0 = qobs::counter("qcheck_saves_total").get();
    let recovers0 = qobs::counter("qcheck_recovers_total").get();
    let tried0 = qobs::counter("qcheck_manifests_tried_total").get();
    let replays0 = qobs::counter("qcheck_manifest_log_replays_total").get();
    let fsyncs0 = qobs::histogram("qcheck_fsync_ns").count();
    let renames0 = qobs::histogram("qcheck_rename_ns").count();

    // fsync on: the default stays off for speed, but this drill pins
    // the durability histograms, which only fill when fsync runs.
    let durable = |mode| SaveOptions {
        fsync: true,
        ..options(mode)
    };
    let params = vec![0.25f64; N_PARAMS];
    repo.save(&snapshot_at(1, &params), &durable(SaveMode::Full))
        .unwrap();
    repo.save(
        &snapshot_at(2, &params),
        &durable(SaveMode::DeltaAuto { max_chain_len: 4 }),
    )
    .unwrap();
    let (snap, report) = repo.recover().unwrap();
    assert_eq!(snap.step, 2);
    assert_eq!(report.manifests_tried, 1);

    assert!(qobs::counter("qcheck_saves_total").get() >= saves0 + 2);
    assert!(qobs::counter("qcheck_recovers_total").get() > recovers0);
    assert!(qobs::counter("qcheck_manifests_tried_total").get() > tried0);
    assert!(qobs::counter("qcheck_manifest_log_replays_total").get() > replays0);
    // Every durable save fsyncs and renames at least once (chunk
    // payloads plus the manifest-log append).
    assert!(qobs::histogram("qcheck_fsync_ns").count() >= fsyncs0 + 2);
    assert!(qobs::histogram("qcheck_rename_ns").count() >= renames0 + 2);
}
