//! Backend-equivalence and shared crash-safety property suites.
//!
//! The `ObjectStore` abstraction promises that the *logical* behavior of a
//! checkpoint repository is independent of the storage layout: the same
//! sequence of saves, deltas, garbage collections, retentions and
//! recoveries against a loose-backend repo, a pack-backend repo and a
//! remote-backend repo (an in-process `qckptd` daemon) must produce
//! byte-identical manifests, identical snapshots, identical GC
//! reachability and identical fsck health — only the syscall profile
//! (renames/fsyncs per save) may differ. These properties drive random
//! operation sequences against all backends side by side and assert
//! exactly that, plus the crash-safety contract (every simulated crash
//! point leaves every repository recoverable to the same state, and
//! `recover` clears the staging debris the crash left behind — local
//! *and*, for the remote backend, server-side via `CLEAR_STAGING`).

use proptest::prelude::*;

use qcheck::failure::CrashPoint;
use qcheck::remote::{
    spawn_daemon, DaemonHandle, RemoteStore, ReplStop, ReplicateConfig, Server, ServerConfig,
};
use qcheck::repo::{CheckpointRepo, Retention, SaveMode, SaveOptions, SaveReport};
use qcheck::snapshot::{StateBlob, TrainingSnapshot};
use qcheck::store::{ObjectStore, StoreBackend, StoreKind};
use qcheck::verify::fsck;

/// One step of the randomized repository workload.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Full save after perturbing `bump` parameters.
    SaveFull { bump: u8 },
    /// Delta-auto save after a sparse single-parameter update.
    SaveDelta { sparse_idx: u16, max_chain: u8 },
    /// Mark-and-sweep garbage collection.
    Gc,
    /// Recovery scan (newest verifiable checkpoint).
    Recover,
    /// Rewrite the latest delta chain as a full checkpoint.
    Compact,
    /// Retention: keep the newest `keep` checkpoints, then GC.
    Retain { keep: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16).prop_map(|bump| Op::SaveFull { bump }),
        (any::<u16>(), 1u8..6).prop_map(|(sparse_idx, max_chain)| Op::SaveDelta {
            sparse_idx,
            max_chain
        }),
        Just(Op::Gc),
        Just(Op::Recover),
        Just(Op::Compact),
        (1u8..4).prop_map(|keep| Op::Retain { keep }),
    ]
}

const N_PARAMS: usize = 1200; // ≈ 9.4 KiB of parameters → several chunks

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "qcheck-backend-equiv-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Spawns an in-process daemon (loose layout, eager GC — the
/// logical-equivalence reference configuration) and opens a remote-backed
/// repository under `dir` against a unique namespace.
fn remote_repo(dir: &std::path::Path, tag: &str) -> (DaemonHandle, CheckpointRepo) {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let daemon = spawn_daemon(dir.join("daemon"), StoreKind::Loose).unwrap();
    let ns = format!(
        "equiv-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    );
    let store = RemoteStore::connect(daemon.addr(), ns).unwrap();
    let repo = CheckpointRepo::with_store(dir.join("client"), StoreBackend::Remote(store)).unwrap();
    (daemon, repo)
}

fn snapshot_at(step: u64, params: &[f64]) -> TrainingSnapshot {
    let mut s = TrainingSnapshot::new("backend-equivalence");
    s.step = step;
    s.params = params.to_vec();
    s.optimizer = StateBlob::new("adam-v1", vec![(step % 251) as u8; 256]);
    s.total_shots = step * 1000;
    s.shot_ledger = vec![(step % 7) as u8; 32];
    s
}

fn options(mode: SaveMode) -> SaveOptions {
    SaveOptions {
        mode,
        // Pinned timestamp: manifests must come out byte-identical.
        created_unix_ms: Some(1_750_000_000_000),
        ..SaveOptions::default()
    }
}

/// The per-save fields that must not depend on the storage backend
/// (everything except the syscall profile).
fn logical_view(r: &SaveReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.id.clone(),
        r.is_delta,
        r.chain_len,
        r.logical_bytes,
        r.stored_bytes,
        r.new_chunk_bytes,
        r.chunks_new,
        r.chunks_deduped,
        r.manifest_bytes,
    )
}

/// Asserts the backend-specific syscall contract of one save.
fn assert_rename_contract(kind: StoreKind, r: &SaveReport) {
    match kind {
        StoreKind::Loose => assert_eq!(
            r.store_renames, r.chunks_new as u64,
            "loose backend pays one rename per fresh chunk"
        ),
        StoreKind::Pack => assert!(
            r.store_renames <= 1,
            "pack backend must commit each save with at most one rename (got {})",
            r.store_renames
        ),
        // The equivalence daemon serves a loose layout, so the
        // server-reported counters must match the loose contract.
        StoreKind::Remote => assert_eq!(
            r.store_renames, r.chunks_new as u64,
            "remote(loose) backend must report the server's renames"
        ),
    }
}

/// Drives one op against one repo; returns a comparable outcome string.
fn apply_op(repo: &CheckpointRepo, kind: StoreKind, op: Op, step: u64, params: &[f64]) -> String {
    match op {
        Op::SaveFull { .. } => {
            let r = repo
                .save(&snapshot_at(step, params), &options(SaveMode::Full))
                .unwrap();
            assert_rename_contract(kind, &r);
            format!("{:?}", logical_view(&r))
        }
        Op::SaveDelta { max_chain, .. } => {
            let r = repo
                .save(
                    &snapshot_at(step, params),
                    &options(SaveMode::DeltaAuto {
                        max_chain_len: max_chain as u32,
                    }),
                )
                .unwrap();
            assert_rename_contract(kind, &r);
            format!("{:?}", logical_view(&r))
        }
        Op::Gc => format!("{:?}", repo.gc().unwrap()),
        Op::Recover => match repo.recover() {
            Ok((snap, report)) => format!("recovered {:?} step {}", report.recovered, snap.step),
            Err(e) => format!("recover error: {e}"),
        },
        Op::Compact => match repo.compact_latest(&options(SaveMode::Full)) {
            Ok(r) => format!("{:?}", r.map(|r| format!("{:?}", logical_view(&r)))),
            Err(e) => format!("compact error: {e}"),
        },
        Op::Retain { keep } => {
            let r = repo
                .apply_retention(Retention::KeepLast(keep as usize))
                .unwrap();
            format!("{r:?}")
        }
    }
}

/// Evolves the model parameters deterministically for one op.
fn evolve(params: &mut [f64], op: Op, step: u64) {
    match op {
        Op::SaveFull { bump } => {
            for i in 0..bump as usize {
                let idx = (i * 97 + step as usize * 13) % params.len();
                params[idx] += 1e-3 * (step as f64 + 1.0);
            }
        }
        Op::SaveDelta { sparse_idx, .. } => {
            let idx = sparse_idx as usize % params.len();
            params[idx] += 1e-6;
        }
        _ => {}
    }
}

proptest! {
    // Each case replays a whole repository history twice (fs-heavy);
    // keep the default case count modest. QPROP_CASES still overrides.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random save/delta/gc/recover/compact/retain sequences produce
    /// byte-identical manifests, identical snapshots and identical GC
    /// reachability on the loose, pack and remote backends.
    #[test]
    fn backends_are_logically_equivalent(ops in prop::collection::vec(arb_op(), 1..10)) {
        // Pin the pack GC to eager rewrites: with the default deferral
        // threshold (QCHECK_GC_DEAD_FRACTION=0.5) the pack backend keeps
        // barely-fragmented packs alive, so its orphan/GC accounting
        // legitimately diverges from loose. Eager mode is the
        // logical-equivalence contract; the deferral policy has its own
        // unit tests in `store::pack`. The remote daemon serves a loose
        // layout (spawn_daemon pins eager GC too).
        let loose_dir = TempDir::new("loose");
        let pack_dir = TempDir::new("pack");
        let remote_dir = TempDir::new("remote");
        let loose = CheckpointRepo::open_with(&loose_dir.0, StoreKind::Loose).unwrap();
        let mut pack = CheckpointRepo::open_with(&pack_dir.0, StoreKind::Pack).unwrap();
        pack.store_mut().set_gc_dead_fraction(0.0);
        let pack = pack;
        let (_daemon, remote) = remote_repo(&remote_dir.0, "logic");
        prop_assert_eq!(loose.store_kind(), StoreKind::Loose);
        prop_assert_eq!(pack.store_kind(), StoreKind::Pack);
        prop_assert_eq!(remote.store_kind(), StoreKind::Remote);
        let repos = [
            (StoreKind::Loose, &loose),
            (StoreKind::Pack, &pack),
            (StoreKind::Remote, &remote),
        ];

        let mut params = vec![0.5f64; N_PARAMS];
        let mut step = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if matches!(op, Op::SaveFull { .. } | Op::SaveDelta { .. }) {
                step += 1;
                evolve(&mut params, *op, step);
            }
            let outcomes: Vec<String> = repos
                .iter()
                .map(|(kind, repo)| apply_op(repo, *kind, *op, step, &params))
                .collect();
            prop_assert_eq!(&outcomes[0], &outcomes[1], "pack diverged at op {} ({:?})", i, op);
            prop_assert_eq!(&outcomes[0], &outcomes[2], "remote diverged at op {} ({:?})", i, op);
        }

        // Histories must agree checkpoint by checkpoint…
        let ids = loose.list_ids().unwrap();
        for (kind, repo) in &repos[1..] {
            prop_assert_eq!(&ids, &repo.list_ids().unwrap(), "{} ids", kind);
            for id in &ids {
                let ml = loose.load_manifest(id).unwrap();
                let mr = repo.load_manifest(id).unwrap();
                prop_assert_eq!(
                    ml.encode(), mr.encode(),
                    "manifest {} must be byte-identical on {}", id, kind
                );
                prop_assert_eq!(loose.load(id).unwrap(), repo.load(id).unwrap());
            }
        }

        // …as must overall health and reachability after a final GC.
        let fl = fsck(&loose).unwrap();
        let gl = loose.gc().unwrap();
        for (kind, repo) in &repos[1..] {
            let fr = fsck(repo).unwrap();
            prop_assert_eq!(fl.intact_count(), fr.intact_count(), "{} intact", kind);
            prop_assert_eq!(fl.orphan_chunks, fr.orphan_chunks, "{} orphans", kind);
            let gr = repo.gc().unwrap();
            prop_assert_eq!(&gl, &gr, "{} GC reachability must match", kind);
            prop_assert_eq!(
                loose.store().stats().unwrap(),
                repo.store().stats().unwrap(),
                "{} post-GC logical store contents must match", kind
            );
            for id in &ids {
                prop_assert_eq!(loose.load(id).unwrap(), repo.load(id).unwrap());
            }
        }
    }

    /// Every simulated crash point leaves EVERY backend recoverable to the
    /// same pre-crash state, and `recover` clears the staging debris.
    #[test]
    fn crash_points_recover_identically_on_all_backends(
        committed_saves in 1u8..4,
        crash_idx in 0usize..5,
    ) {
        // (Crash recovery never sweeps objects, so the pack GC deferral
        // threshold is irrelevant here — no pinning needed.)
        let crash = CrashPoint::all()[crash_idx];
        let loose_dir = TempDir::new("crash-loose");
        let pack_dir = TempDir::new("crash-pack");
        let remote_dir = TempDir::new("crash-remote");
        let (_daemon, remote) = remote_repo(&remote_dir.0, "crash");
        let repos = [
            CheckpointRepo::open_with(&loose_dir.0, StoreKind::Loose).unwrap(),
            CheckpointRepo::open_with(&pack_dir.0, StoreKind::Pack).unwrap(),
            remote,
        ];

        let mut outcomes = Vec::new();
        for repo in &repos {
            let mut params = vec![0.25f64; N_PARAMS];
            for step in 1..=committed_saves as u64 {
                params[step as usize] += 0.5;
                repo.save(&snapshot_at(step, &params), &options(SaveMode::Full)).unwrap();
            }
            params[0] = -1.0;
            let crashing = SaveOptions {
                crash: Some(crash),
                ..options(SaveMode::Full)
            };
            let err = repo
                .save(&snapshot_at(committed_saves as u64 + 1, &params), &crashing)
                .unwrap_err();
            prop_assert!(matches!(err, qcheck::Error::SimulatedCrash { .. }));

            let (snap, report) = repo.recover().unwrap();
            // The staging area must be empty after recovery — the whole
            // point of clearing orphaned debris. (For the remote backend
            // this covers the *local* manifest staging; server-side
            // staging is exercised below.)
            let leftovers = std::fs::read_dir(repo.root().join("tmp")).unwrap().count();
            prop_assert_eq!(leftovers, 0, "recover must clear staging debris");
            outcomes.push((snap.step, snap.params.clone(), report.recovered));
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1], "crash {:?} diverged loose/pack", crash);
        prop_assert_eq!(&outcomes[0], &outcomes[2], "crash {:?} diverged loose/remote", crash);
    }
}

proptest! {
    // Replication drags a whole second daemon through every case; keep
    // the count low (QPROP_CASES still overrides).
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The replicated remote backend joins the equivalence family: after
    /// an arbitrary workload on the primary, a secondary that "crashed"
    /// mid-pass at a randomly chosen oplog stage (chunks shipped but
    /// entry unapplied / entry applied but unacked / clean cut between
    /// passes) and then resynced, once promoted, serves a repository
    /// with byte-identical manifests, identical recovery and identical
    /// fsck health — convergence is idempotent at every stage boundary.
    #[test]
    fn replicated_secondary_converges_after_staged_crashes(
        ops in prop::collection::vec(arb_op(), 1..8),
        stage in 0usize..3,
    ) {
        let dir = TempDir::new("repl-equiv");
        let primary = spawn_daemon(dir.0.join("primary"), StoreKind::Loose).unwrap();
        let mut sec_config = ServerConfig::new(dir.0.join("secondary"));
        sec_config.store_kind = StoreKind::Loose;
        sec_config.gc_dead_fraction = Some(0.0);
        let mut repl = ReplicateConfig::new(primary.addr());
        repl.manual = true; // passes are driven (and cut) explicitly
        sec_config.replicate = Some(repl);
        let secondary = Server::bind("127.0.0.1:0", sec_config).unwrap().spawn();

        let store = RemoteStore::connect(primary.addr(), "repl-equiv").unwrap();
        let repo =
            CheckpointRepo::with_store(dir.0.join("client"), StoreBackend::Remote(store)).unwrap();
        let mut params = vec![0.5f64; N_PARAMS];
        let mut step = 0u64;
        for op in &ops {
            if matches!(op, Op::SaveFull { .. } | Op::SaveDelta { .. }) {
                step += 1;
                evolve(&mut params, *op, step);
            }
            apply_op(&repo, StoreKind::Remote, *op, step, &params);
        }

        // Crash the first replication pass at the drilled stage, then
        // resync to convergence.
        match stage {
            0 => { secondary.repl_sync(Some(ReplStop::AfterChunks)).unwrap(); }
            1 => { secondary.repl_sync(Some(ReplStop::AfterEntry)).unwrap(); }
            _ => {} // no partial pass: the clean-cut baseline
        }
        for _ in 0..64 {
            if secondary.repl_sync(None).unwrap().remaining == 0 {
                break;
            }
        }
        secondary.promote().unwrap();

        // The promoted secondary must be logically indistinguishable
        // from the primary — same checks the three-way suite applies.
        let failover_store = RemoteStore::connect(secondary.addr(), "repl-equiv").unwrap();
        let failover = CheckpointRepo::with_store(
            dir.0.join("fresh"),
            StoreBackend::Remote(failover_store),
        )
        .unwrap();
        let ids = repo.list_ids().unwrap();
        prop_assert_eq!(&ids, &failover.list_ids().unwrap(), "ids diverged at stage {}", stage);
        for id in &ids {
            prop_assert_eq!(
                repo.load_manifest(id).unwrap().encode(),
                failover.load_manifest(id).unwrap().encode(),
                "manifest {} diverged at stage {}", id, stage
            );
            prop_assert_eq!(repo.load(id).unwrap(), failover.load(id).unwrap());
        }
        match (repo.recover(), failover.recover()) {
            (Ok((s1, _)), Ok((s2, _))) => {
                prop_assert_eq!(s1.step, s2.step);
                prop_assert_eq!(s1.params, s2.params);
            }
            (Err(qcheck::Error::NoValidCheckpoint { .. }),
             Err(qcheck::Error::NoValidCheckpoint { .. })) => {}
            (a, b) => prop_assert!(false, "recover diverged: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
        let fp = fsck(&repo).unwrap();
        let fs = fsck(&failover).unwrap();
        prop_assert_eq!(fp.intact_count(), fs.intact_count(), "intact diverged");
        prop_assert_eq!(fp.orphan_chunks, fs.orphan_chunks, "orphans diverged");
    }
}

/// Recovery into a fresh working directory pulls the namespace's
/// manifests down from the daemon and reports how many
/// (`RecoveryReport::meta_synced` sums the open-time and recovery-time
/// syncs for the handle).
#[test]
fn fresh_directory_recover_reports_meta_synced() {
    let dir = TempDir::new("fresh-meta");
    let (daemon, repo) = remote_repo(&dir.0, "freshmeta");
    let ns = repo.store().remote().unwrap().namespace().to_string();
    let params = vec![0.5f64; N_PARAMS];
    repo.save(&snapshot_at(1, &params), &options(SaveMode::Full))
        .unwrap();
    drop(repo);

    let store = RemoteStore::connect(daemon.addr(), ns).unwrap();
    let fresh =
        CheckpointRepo::with_store(dir.0.join("fresh"), StoreBackend::Remote(store)).unwrap();
    let (snap, report) = fresh.recover().unwrap();
    assert_eq!(snap.step, 1);
    assert_eq!(
        report.meta_synced, 1,
        "the fresh directory pulled one manifest from the daemon"
    );
}

/// A client dying mid-`put_batch` (its frame never completes) must leave
/// the daemon's store clean: the next client sees no partial objects, no
/// staging debris, and a working repository.
#[test]
fn client_death_mid_put_batch_recovers_cleanly() {
    let dir = TempDir::new("mid-batch");
    let (daemon, repo) = remote_repo(&dir.0, "midbatch");
    let ns = repo.store().remote().unwrap().namespace().to_string();
    let mut params = vec![0.75f64; N_PARAMS];
    repo.save(&snapshot_at(1, &params), &options(SaveMode::Full))
        .unwrap();

    // A raw client handshakes into the same namespace, then dies halfway
    // through a PUT_BATCH frame.
    qcheck::remote::fault::die_mid_put_batch(&daemon.addr(), &ns, vec![0xEEu8; 8192]).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));

    // The surviving client keeps working and recovery is clean.
    let (snap, report) = repo.recover().unwrap();
    assert_eq!(snap.step, 1);
    assert!(report.skipped.is_empty());
    params[3] += 1.0;
    repo.save(&snapshot_at(2, &params), &options(SaveMode::Full))
        .unwrap();
    let health = fsck(&repo).unwrap();
    assert_eq!(health.intact_count(), 2);
    assert_eq!(
        health.orphan_chunks, 0,
        "the dead client's half-frame must not materialize objects"
    );
}
