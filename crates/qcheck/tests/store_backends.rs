//! Backend-equivalence and shared crash-safety property suites.
//!
//! The `ObjectStore` abstraction promises that the *logical* behavior of a
//! checkpoint repository is independent of the storage layout: the same
//! sequence of saves, deltas, garbage collections, retentions and
//! recoveries against a loose-backend repo and a pack-backend repo must
//! produce byte-identical manifests, identical snapshots, identical GC
//! reachability and identical fsck health — only the syscall profile
//! (renames/fsyncs per save) may differ. These properties drive random
//! operation sequences against both backends side by side and assert
//! exactly that, plus the crash-safety contract (every simulated crash
//! point leaves both repositories recoverable to the same state, and
//! `recover` clears the staging debris the crash left behind).

use proptest::prelude::*;

use qcheck::failure::CrashPoint;
use qcheck::repo::{CheckpointRepo, Retention, SaveMode, SaveOptions, SaveReport};
use qcheck::snapshot::{StateBlob, TrainingSnapshot};
use qcheck::store::{ObjectStore, StoreKind};
use qcheck::verify::fsck;

/// One step of the randomized repository workload.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Full save after perturbing `bump` parameters.
    SaveFull { bump: u8 },
    /// Delta-auto save after a sparse single-parameter update.
    SaveDelta { sparse_idx: u16, max_chain: u8 },
    /// Mark-and-sweep garbage collection.
    Gc,
    /// Recovery scan (newest verifiable checkpoint).
    Recover,
    /// Rewrite the latest delta chain as a full checkpoint.
    Compact,
    /// Retention: keep the newest `keep` checkpoints, then GC.
    Retain { keep: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16).prop_map(|bump| Op::SaveFull { bump }),
        (any::<u16>(), 1u8..6).prop_map(|(sparse_idx, max_chain)| Op::SaveDelta {
            sparse_idx,
            max_chain
        }),
        Just(Op::Gc),
        Just(Op::Recover),
        Just(Op::Compact),
        (1u8..4).prop_map(|keep| Op::Retain { keep }),
    ]
}

const N_PARAMS: usize = 1200; // ≈ 9.4 KiB of parameters → several chunks

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "qcheck-backend-equiv-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn snapshot_at(step: u64, params: &[f64]) -> TrainingSnapshot {
    let mut s = TrainingSnapshot::new("backend-equivalence");
    s.step = step;
    s.params = params.to_vec();
    s.optimizer = StateBlob::new("adam-v1", vec![(step % 251) as u8; 256]);
    s.total_shots = step * 1000;
    s.shot_ledger = vec![(step % 7) as u8; 32];
    s
}

fn options(mode: SaveMode) -> SaveOptions {
    SaveOptions {
        mode,
        // Pinned timestamp: manifests must come out byte-identical.
        created_unix_ms: Some(1_750_000_000_000),
        ..SaveOptions::default()
    }
}

/// The per-save fields that must not depend on the storage backend
/// (everything except the syscall profile).
fn logical_view(r: &SaveReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.id.clone(),
        r.is_delta,
        r.chain_len,
        r.logical_bytes,
        r.stored_bytes,
        r.new_chunk_bytes,
        r.chunks_new,
        r.chunks_deduped,
        r.manifest_bytes,
    )
}

/// Asserts the backend-specific syscall contract of one save.
fn assert_rename_contract(kind: StoreKind, r: &SaveReport) {
    match kind {
        StoreKind::Loose => assert_eq!(
            r.store_renames, r.chunks_new as u64,
            "loose backend pays one rename per fresh chunk"
        ),
        StoreKind::Pack => assert!(
            r.store_renames <= 1,
            "pack backend must commit each save with at most one rename (got {})",
            r.store_renames
        ),
    }
}

/// Drives one op against one repo; returns a comparable outcome string.
fn apply_op(repo: &CheckpointRepo, kind: StoreKind, op: Op, step: u64, params: &[f64]) -> String {
    match op {
        Op::SaveFull { .. } => {
            let r = repo
                .save(&snapshot_at(step, params), &options(SaveMode::Full))
                .unwrap();
            assert_rename_contract(kind, &r);
            format!("{:?}", logical_view(&r))
        }
        Op::SaveDelta { max_chain, .. } => {
            let r = repo
                .save(
                    &snapshot_at(step, params),
                    &options(SaveMode::DeltaAuto {
                        max_chain_len: max_chain as u32,
                    }),
                )
                .unwrap();
            assert_rename_contract(kind, &r);
            format!("{:?}", logical_view(&r))
        }
        Op::Gc => format!("{:?}", repo.gc().unwrap()),
        Op::Recover => match repo.recover() {
            Ok((snap, report)) => format!("recovered {:?} step {}", report.recovered, snap.step),
            Err(e) => format!("recover error: {e}"),
        },
        Op::Compact => match repo.compact_latest(&options(SaveMode::Full)) {
            Ok(r) => format!("{:?}", r.map(|r| format!("{:?}", logical_view(&r)))),
            Err(e) => format!("compact error: {e}"),
        },
        Op::Retain { keep } => {
            let r = repo
                .apply_retention(Retention::KeepLast(keep as usize))
                .unwrap();
            format!("{r:?}")
        }
    }
}

/// Evolves the model parameters deterministically for one op.
fn evolve(params: &mut [f64], op: Op, step: u64) {
    match op {
        Op::SaveFull { bump } => {
            for i in 0..bump as usize {
                let idx = (i * 97 + step as usize * 13) % params.len();
                params[idx] += 1e-3 * (step as f64 + 1.0);
            }
        }
        Op::SaveDelta { sparse_idx, .. } => {
            let idx = sparse_idx as usize % params.len();
            params[idx] += 1e-6;
        }
        _ => {}
    }
}

proptest! {
    // Each case replays a whole repository history twice (fs-heavy);
    // keep the default case count modest. QPROP_CASES still overrides.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random save/delta/gc/recover/compact/retain sequences produce
    /// byte-identical manifests, identical snapshots and identical GC
    /// reachability on the loose and pack backends.
    #[test]
    fn backends_are_logically_equivalent(ops in prop::collection::vec(arb_op(), 1..10)) {
        // Pin the pack GC to eager rewrites: with the default deferral
        // threshold (QCHECK_GC_DEAD_FRACTION=0.5) the pack backend keeps
        // barely-fragmented packs alive, so its orphan/GC accounting
        // legitimately diverges from loose. Eager mode is the
        // logical-equivalence contract; the deferral policy has its own
        // unit tests in `store::pack`.
        let loose_dir = TempDir::new("loose");
        let pack_dir = TempDir::new("pack");
        let loose = CheckpointRepo::open_with(&loose_dir.0, StoreKind::Loose).unwrap();
        let mut pack = CheckpointRepo::open_with(&pack_dir.0, StoreKind::Pack).unwrap();
        pack.store_mut().set_gc_dead_fraction(0.0);
        let pack = pack;
        prop_assert_eq!(loose.store_kind(), StoreKind::Loose);
        prop_assert_eq!(pack.store_kind(), StoreKind::Pack);

        let mut params = vec![0.5f64; N_PARAMS];
        let mut step = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if matches!(op, Op::SaveFull { .. } | Op::SaveDelta { .. }) {
                step += 1;
                evolve(&mut params, *op, step);
            }
            let a = apply_op(&loose, StoreKind::Loose, *op, step, &params);
            let b = apply_op(&pack, StoreKind::Pack, *op, step, &params);
            prop_assert_eq!(a, b, "diverged at op {} ({:?})", i, op);
        }

        // Histories must agree checkpoint by checkpoint…
        let ids = loose.list_ids().unwrap();
        prop_assert_eq!(&ids, &pack.list_ids().unwrap());
        for id in &ids {
            let ml = loose.load_manifest(id).unwrap();
            let mp = pack.load_manifest(id).unwrap();
            prop_assert_eq!(
                ml.encode(), mp.encode(),
                "manifest {} must be byte-identical across backends", id
            );
            prop_assert_eq!(loose.load(id).unwrap(), pack.load(id).unwrap());
        }

        // …as must overall health and reachability after a final GC.
        let fl = fsck(&loose).unwrap();
        let fp = fsck(&pack).unwrap();
        prop_assert_eq!(fl.intact_count(), fp.intact_count());
        prop_assert_eq!(fl.orphan_chunks, fp.orphan_chunks);
        let gl = loose.gc().unwrap();
        let gp = pack.gc().unwrap();
        prop_assert_eq!(&gl, &gp, "GC reachability must match");
        prop_assert_eq!(
            loose.store().stats().unwrap(),
            pack.store().stats().unwrap(),
            "post-GC logical store contents must match"
        );
        for id in &ids {
            prop_assert_eq!(loose.load(id).unwrap(), pack.load(id).unwrap());
        }
    }

    /// Every simulated crash point leaves BOTH backends recoverable to the
    /// same pre-crash state, and `recover` clears the staging debris.
    #[test]
    fn crash_points_recover_identically_on_both_backends(
        committed_saves in 1u8..4,
        crash_idx in 0usize..5,
    ) {
        // (Crash recovery never sweeps objects, so the pack GC deferral
        // threshold is irrelevant here — no pinning needed.)
        let crash = CrashPoint::all()[crash_idx];
        let loose_dir = TempDir::new("crash-loose");
        let pack_dir = TempDir::new("crash-pack");
        let repos = [
            CheckpointRepo::open_with(&loose_dir.0, StoreKind::Loose).unwrap(),
            CheckpointRepo::open_with(&pack_dir.0, StoreKind::Pack).unwrap(),
        ];

        let mut outcomes = Vec::new();
        for repo in &repos {
            let mut params = vec![0.25f64; N_PARAMS];
            for step in 1..=committed_saves as u64 {
                params[step as usize] += 0.5;
                repo.save(&snapshot_at(step, &params), &options(SaveMode::Full)).unwrap();
            }
            params[0] = -1.0;
            let crashing = SaveOptions {
                crash: Some(crash),
                ..options(SaveMode::Full)
            };
            let err = repo
                .save(&snapshot_at(committed_saves as u64 + 1, &params), &crashing)
                .unwrap_err();
            prop_assert!(matches!(err, qcheck::Error::SimulatedCrash { .. }));

            let (snap, report) = repo.recover().unwrap();
            // The staging area must be empty after recovery — the whole
            // point of clearing orphaned debris.
            let leftovers = std::fs::read_dir(repo.root().join("tmp")).unwrap().count();
            prop_assert_eq!(leftovers, 0, "recover must clear staging debris");
            outcomes.push((snap.step, snap.params.clone(), report.recovered));
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1], "crash {:?} diverged across backends", crash);
    }
}
