//! Property suite: the hardware SHA-256 backend is bit-identical to the
//! portable compression loop.
//!
//! `qcheck::hash::Sha256` routes whole blocks through
//! `qsimd::sha256_compress_blocks`; forcing `QSIM_SIMD=scalar` via
//! `qsimd::with_level` keeps every block on the portable loop instead.
//! Random byte strings × random update splits (including splits landing
//! exactly on 64-byte block boundaries, and hashers that *switch*
//! backend mid-stream at a block boundary) must all produce one digest.
//! On machines without SHA extensions both paths are the portable loop
//! and the properties hold trivially.

use proptest::prelude::*;

use qcheck::hash::{ContentHash, Sha256};
use qsimd::Level;

/// Digest `data` fed as a single update at the given SIMD level.
fn digest_at(level: Level, data: &[u8]) -> ContentHash {
    qsimd::with_level(level, || Sha256::digest(data))
}

/// Digest `data` split at the given cut points (clamped + sorted).
fn digest_split(level: Level, data: &[u8], cuts: &[usize]) -> ContentHash {
    qsimd::with_level(level, || {
        let mut sorted: Vec<usize> = cuts.iter().map(|&c| c.min(data.len())).collect();
        sorted.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for cut in sorted {
            h.update(&data[prev..cut]);
            prev = cut;
        }
        h.update(&data[prev..]);
        h.finalize()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One-shot digests agree between the forced-scalar oracle and the
    /// detected backend, at every length (empty through multi-block,
    /// crossing the 55/56/64-byte padding edges).
    #[test]
    fn oneshot_accel_matches_scalar(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        let scalar = digest_at(Level::Scalar, &data);
        let native = digest_at(qsimd::detected(), &data);
        prop_assert_eq!(scalar, native, "len={}", data.len());
    }

    /// Streaming updates at random offsets agree with the one-shot
    /// scalar digest regardless of backend — partial-block buffering and
    /// bulk-block routing compose to the same state.
    #[test]
    fn streamed_accel_matches_scalar(
        data in prop::collection::vec(any::<u8>(), 1..4096),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..6),
    ) {
        let want = digest_at(Level::Scalar, &data);
        let cuts: Vec<usize> = cuts.iter().map(|i| i.index(data.len())).collect();
        for level in [Level::Scalar, qsimd::detected()] {
            prop_assert_eq!(
                digest_split(level, &data, &cuts), want,
                "level={} cuts={:?}", level.name(), &cuts
            );
        }
    }

    /// Splits landing exactly on 64-byte block boundaries — the seam the
    /// bulk path hands back to the buffer — are digest-neutral.
    #[test]
    fn block_boundary_splits_are_seamless(
        blocks in 1usize..8,
        tail in 0usize..64,
        seam in any::<prop::sample::Index>(),
        byte in any::<u8>(),
    ) {
        let data: Vec<u8> = (0..blocks * 64 + tail)
            .map(|i| byte.wrapping_add(i as u8))
            .collect();
        let want = digest_at(Level::Scalar, &data);
        let cut = 64 * (1 + seam.index(blocks)); // always a block boundary
        for level in [Level::Scalar, qsimd::detected()] {
            prop_assert_eq!(
                digest_split(level, &data, &[cut]), want,
                "level={} cut={}", level.name(), cut
            );
        }
    }

    /// A stream may *change* backend between updates (the resume seam: a
    /// checkpoint encoded on a SHA-NI box, re-verified scalar, or vice
    /// versa). The hasher state is backend-independent, so switching at
    /// any update boundary — block-aligned or not — is invisible.
    #[test]
    fn backend_switch_mid_stream_is_invisible(
        data in prop::collection::vec(any::<u8>(), 1..4096),
        cut in any::<prop::sample::Index>(),
        scalar_first in any::<bool>(),
        align in any::<bool>(),
    ) {
        let want = digest_at(Level::Scalar, &data);
        let mut cut = cut.index(data.len());
        if align {
            cut -= cut % 64; // exercise the exact block-boundary seam
        }
        let (a, b) = if scalar_first {
            (Level::Scalar, qsimd::detected())
        } else {
            (qsimd::detected(), Level::Scalar)
        };
        let mut h = Sha256::new();
        qsimd::with_level(a, || h.update(&data[..cut]));
        qsimd::with_level(b, || h.update(&data[cut..]));
        prop_assert_eq!(
            h.finalize(), want,
            "cut={} scalar_first={} align={}", cut, scalar_first, align
        );
    }

    /// `digest_many` (the parallel encode primitive) agrees with serial
    /// scalar digests — pool workers resolve the backend themselves from
    /// the environment, and both resolutions hash identically.
    #[test]
    fn digest_many_matches_scalar(
        bufs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..512), 1..8),
        threads in 1usize..4,
    ) {
        let want: Vec<ContentHash> =
            bufs.iter().map(|b| digest_at(Level::Scalar, b)).collect();
        let views: Vec<&[u8]> = bufs.iter().map(Vec::as_slice).collect();
        prop_assert_eq!(Sha256::digest_many(views, threads), want);
    }
}
