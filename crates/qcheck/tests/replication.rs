//! Replication, failover, fencing, lease and auth integration suite.
//!
//! The scenario under test is the paper's deployment story taken to its
//! operational conclusion: checkpoints must survive not just the
//! training *process* but the checkpoint *daemon*. A secondary `qckptd`
//! tails the primary's per-namespace oplog; when the primary dies an
//! operator promotes the secondary, the promotion bumps the fencing
//! generation, clients fail over, and the demoted primary can never
//! accept another write from a client that has seen the new generation.

use std::collections::BTreeSet;
use std::time::Duration;

use qcheck::remote::proto::{ROLE_PRIMARY, ROLE_SECONDARY};
use qcheck::remote::{
    spawn_daemon, spawn_secondary, DaemonHandle, RemoteStore, ReplStop, ReplicateConfig, Server,
    ServerConfig,
};
use qcheck::repo::{CheckpointRepo, Retention, SaveMode, SaveOptions};
use qcheck::snapshot::{StateBlob, TrainingSnapshot};
use qcheck::store::{ObjectStore, StoreBackend, StoreKind};
use qcheck::verify::fsck;
use qcheck::Error;

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "qcheck-repl-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Spawns a *manual* secondary: role SECONDARY, no background tailer —
/// the tests drive replication passes explicitly via
/// [`DaemonHandle::repl_sync`] so they can stop at crash-drill points.
fn spawn_manual_secondary(root: &std::path::Path, primary_addr: &str) -> DaemonHandle {
    let mut config = ServerConfig::new(root);
    config.store_kind = StoreKind::Loose;
    config.gc_dead_fraction = Some(0.0);
    let mut repl = ReplicateConfig::new(primary_addr);
    repl.manual = true;
    config.replicate = Some(repl);
    Server::bind("127.0.0.1:0", config).unwrap().spawn()
}

fn snapshot_at(step: u64, params: &[f64]) -> TrainingSnapshot {
    let mut s = TrainingSnapshot::new("replication");
    s.step = step;
    s.params = params.to_vec();
    s.optimizer = StateBlob::new("adam-v1", vec![(step % 251) as u8; 128]);
    s.total_shots = step * 500;
    s
}

fn options(mode: SaveMode) -> SaveOptions {
    SaveOptions {
        mode,
        created_unix_ms: Some(1_750_000_000_000),
        ..SaveOptions::default()
    }
}

fn open_repo(addr: &str, ns: &str, dir: &std::path::Path) -> CheckpointRepo {
    let store = RemoteStore::connect(addr, ns).unwrap();
    CheckpointRepo::with_store(dir, StoreBackend::Remote(store)).unwrap()
}

/// Drives replication passes until the secondary reports zero remaining
/// entries.
fn sync_to_convergence(secondary: &DaemonHandle) {
    for _ in 0..64 {
        let report = secondary.repl_sync(None).unwrap();
        if report.remaining == 0 {
            return;
        }
    }
    panic!("secondary failed to converge");
}

/// A workload that exercises every oplog op kind: full saves and deltas
/// (MetaPut + chunk content), retention (MetaDelete) and GC (Sweep).
fn apply_workload(repo: &CheckpointRepo) -> Vec<f64> {
    let mut params = vec![0.5f64; 900];
    for step in 1..=3u64 {
        params[step as usize] += 0.25 * step as f64;
        repo.save(&snapshot_at(step, &params), &options(SaveMode::Full))
            .unwrap();
    }
    params[7] += 1e-6;
    repo.save(
        &snapshot_at(4, &params),
        &options(SaveMode::DeltaAuto { max_chain_len: 4 }),
    )
    .unwrap();
    repo.apply_retention(Retention::KeepLast(2)).unwrap();
    params
}

#[test]
fn secondary_converges_and_promotion_yields_identical_repository() {
    let dir = TempDir::new("converge");
    let primary = spawn_daemon(dir.0.join("primary"), StoreKind::Loose).unwrap();
    let secondary = spawn_manual_secondary(&dir.0.join("secondary"), &primary.addr());
    assert_eq!(primary.role(), ROLE_PRIMARY);
    assert_eq!(secondary.role(), ROLE_SECONDARY);

    let repo = open_repo(&primary.addr(), "conv", &dir.0.join("client"));
    let params = apply_workload(&repo);

    sync_to_convergence(&secondary);

    // A secondary refuses writes until promoted (reads are fine).
    let probe = RemoteStore::connect(secondary.addr(), "conv").unwrap();
    let err = probe.meta_put("probe", b"x").unwrap_err();
    assert!(matches!(err, Error::NotPrimary(_)), "{err}");
    drop(probe);

    // Promote: generation advances past the primary's.
    let old_gen = primary.generation();
    let new_gen = secondary.promote().unwrap();
    assert!(new_gen > old_gen, "promotion must bump the generation");
    assert_eq!(secondary.role(), ROLE_PRIMARY);

    // A fresh working directory against the promoted secondary
    // reconstructs the repository: same checkpoint ids, byte-identical
    // manifests, same recovered snapshot, fsck-clean.
    let failover = open_repo(&secondary.addr(), "conv", &dir.0.join("fresh"));
    let (snap, _) = failover.recover().unwrap();
    assert_eq!(snap.step, 4);
    assert_eq!(snap.params, params);
    let ids = repo.list_ids().unwrap();
    assert_eq!(failover.list_ids().unwrap(), ids);
    for id in &ids {
        assert_eq!(
            repo.load_manifest(id).unwrap().encode(),
            failover.load_manifest(id).unwrap().encode(),
            "manifest {id} must replicate byte-identically"
        );
    }
    let health = fsck(&failover).unwrap();
    assert_eq!(health.intact_count(), ids.len());
    assert_eq!(health.orphan_chunks, 0, "retention deletes must replicate");
}

#[test]
fn background_tailer_follows_a_live_primary() {
    let dir = TempDir::new("tailer");
    let primary = spawn_daemon(dir.0.join("primary"), StoreKind::Pack).unwrap();
    let secondary =
        spawn_secondary(dir.0.join("secondary"), StoreKind::Pack, &primary.addr()).unwrap();

    let repo = open_repo(&primary.addr(), "tail", &dir.0.join("client"));
    apply_workload(&repo);

    // The background tailer must converge without any manual driving.
    let status_probe = RemoteStore::connect(secondary.addr(), "tail").unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let status = status_probe.status().unwrap();
        if status.repl_lag == 0 && status.oplog_entries > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "tailer failed to catch up: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let primary_probe = RemoteStore::connect(primary.addr(), "tail").unwrap();
    assert_eq!(
        status_probe.status().unwrap().oplog_entries,
        primary_probe.status().unwrap().oplog_entries,
        "secondary oplog must reach the primary's length"
    );
}

#[test]
fn tailer_survives_connection_drops_on_the_replication_stream() {
    let dir = TempDir::new("repl-drops");
    // Every connection to the primary — including the secondary's
    // replication streams — dies after 3 requests.
    let mut config = ServerConfig::new(dir.0.join("primary"));
    config.store_kind = StoreKind::Loose;
    config.gc_dead_fraction = Some(0.0);
    config.drop_after_requests = Some(3);
    let primary = Server::bind("127.0.0.1:0", config).unwrap().spawn();
    let secondary = spawn_manual_secondary(&dir.0.join("secondary"), &primary.addr());

    let repo = open_repo(&primary.addr(), "drops", &dir.0.join("client"));
    apply_workload(&repo);

    // Each manual pass gets a fresh stream and is cut short by the drop
    // budget — exactly what the background tailer's reconnect loop
    // handles by starting a new pass. Progress made before each cut
    // (applied entries land in the secondary's own oplog) must persist,
    // so repeated passes converge by resuming from the local offset.
    let mut converged = false;
    for _ in 0..200 {
        match secondary.repl_sync(None) {
            Ok(report) if report.remaining == 0 => {
                converged = true;
                break;
            }
            Ok(_) => {}
            // The injected drop kills the stream mid-pass; the next
            // pass reconnects.
            Err(Error::Io { .. } | Error::Protocol { .. }) => {}
            Err(e) => panic!("unexpected replication failure: {e}"),
        }
    }
    assert!(converged, "tailer passes failed to converge through drops");
    secondary.promote().unwrap();
    let failover = open_repo(&secondary.addr(), "drops", &dir.0.join("fresh"));
    let (snap, _) = failover.recover().unwrap();
    assert_eq!(snap.step, 4);
    assert_eq!(fsck(&failover).unwrap().orphan_chunks, 0);
}

#[test]
fn oplog_stage_crash_drills_resync_idempotently() {
    // A secondary that died mid-pass — after pulling an entry's chunks
    // but before applying it, or after applying but before acking —
    // must converge to the identical store on the next full pass.
    for (tag, stop) in [
        ("after-chunks", ReplStop::AfterChunks),
        ("after-entry", ReplStop::AfterEntry),
    ] {
        let dir = TempDir::new(tag);
        let primary = spawn_daemon(dir.0.join("primary"), StoreKind::Loose).unwrap();
        let secondary = spawn_manual_secondary(&dir.0.join("secondary"), &primary.addr());
        let repo = open_repo(&primary.addr(), "drill", &dir.0.join("client"));
        apply_workload(&repo);

        // Partial pass, "crashing" at the drill point…
        let partial = secondary.repl_sync(Some(stop)).unwrap();
        assert!(
            partial.remaining > 0,
            "{tag}: the drill must stop before convergence"
        );
        // …then resync from scratch: already-shipped chunks and
        // already-applied entries must not duplicate or corrupt.
        sync_to_convergence(&secondary);
        secondary.promote().unwrap();
        let failover = open_repo(&secondary.addr(), "drill", &dir.0.join("fresh"));
        let (snap, _) = failover.recover().unwrap();
        assert_eq!(snap.step, 4, "{tag}");
        let health = fsck(&failover).unwrap();
        assert_eq!(health.orphan_chunks, 0, "{tag}: orphans after resync");
        assert_eq!(
            repo.list_ids().unwrap(),
            failover.list_ids().unwrap(),
            "{tag}: histories diverged"
        );
    }
}

#[test]
fn stale_generation_fences_a_demoted_primary() {
    let dir = TempDir::new("fence");
    let stale = spawn_daemon(dir.0.join("stale"), StoreKind::Pack).unwrap();
    let promoted = spawn_daemon(dir.0.join("promoted"), StoreKind::Pack).unwrap();
    let new_gen = promoted.promote().unwrap();
    assert!(new_gen > stale.generation());

    // The client dials the promoted daemon first and adopts its
    // generation as the fencing floor.
    let spec = format!("{},{}", promoted.addr(), stale.addr());
    let store = RemoteStore::connect(spec, "fence").unwrap();
    assert_eq!(store.observed_generation(), new_gen);
    store.put(b"written at the new generation").unwrap();

    // The promoted daemon dies; the only remaining address has an older
    // generation than the client has observed. Failing over to it would
    // silently fork history — the client must refuse with the typed
    // stale-generation error rather than retry its way into the past.
    promoted.shutdown();
    let err = store.ping().unwrap_err();
    assert!(matches!(err, Error::StaleGeneration(_)), "{err}");
    // The demoted daemon itself is alive and healthy for *un*-fenced
    // clients (ones that never saw the newer generation).
    let fresh = RemoteStore::connect(stale.addr(), "fence").unwrap();
    fresh.ping().unwrap();
}

#[test]
fn writer_lease_excludes_second_writer_and_expires_by_ttl() {
    let dir = TempDir::new("lease");
    let mut config = ServerConfig::new(dir.0.join("daemon"));
    config.gc_dead_fraction = Some(0.0);
    config.lease_ttl = Duration::from_millis(200);
    let daemon = Server::bind("127.0.0.1:0", config).unwrap().spawn();

    // Lease traffic feeds the qobs registry, shared by every in-process
    // daemon in this test binary — hence `>=` deltas.
    if qobs::mode() == qobs::Mode::Off {
        qobs::set_mode(qobs::Mode::Counters);
    }
    let grants0 = qobs::counter("qckptd_lease_grants_total").get();
    let expiries0 = qobs::counter("qckptd_lease_expiries_total").get();

    let writer = RemoteStore::connect(daemon.addr(), "leased").unwrap();
    writer.acquire_writer_lease().unwrap();
    assert!(qobs::counter("qckptd_lease_grants_total").get() > grants0);
    // Re-acquiring from the same handle renews (token re-presented on
    // the forced re-handshake), it does not conflict.
    writer.acquire_writer_lease().unwrap();

    // A second handle is refused with the typed error while the holder
    // keeps renewing via traffic.
    let intruder = RemoteStore::connect(daemon.addr(), "leased").unwrap();
    writer.ping().unwrap();
    let err = intruder.acquire_writer_lease().unwrap_err();
    assert!(matches!(err, Error::LeaseHeld(_)), "{err}");

    // An explicit release hands the lease over immediately.
    writer.release_writer_lease();
    intruder.acquire_writer_lease().unwrap();

    // A writer that is killed (no release, no traffic) leaks nothing
    // forever: the lease expires by TTL.
    std::mem::forget(intruder);
    std::thread::sleep(Duration::from_millis(400));
    let heir = RemoteStore::connect(daemon.addr(), "leased").unwrap();
    heir.acquire_writer_lease().unwrap();
    // Three fresh grants (writer, intruder, heir) and one TTL expiry
    // crossed the registry during this drill.
    assert!(qobs::counter("qckptd_lease_grants_total").get() >= grants0 + 3);
    assert!(qobs::counter("qckptd_lease_expiries_total").get() > expiries0);
}

#[test]
fn dropping_the_store_releases_its_lease() {
    let dir = TempDir::new("lease-drop");
    let daemon = spawn_daemon(dir.0.join("daemon"), StoreKind::Pack).unwrap();
    let writer = RemoteStore::connect(daemon.addr(), "dropped").unwrap();
    writer.acquire_writer_lease().unwrap();
    drop(writer); // best-effort LeaseRelease on the open connection
    let next = RemoteStore::connect(daemon.addr(), "dropped").unwrap();
    next.acquire_writer_lease()
        .expect("a dropped handle must not hold the lease for the whole TTL");
}

#[test]
fn auth_token_gates_shutdown_sweep_and_replication() {
    let dir = TempDir::new("auth");
    let mut config = ServerConfig::new(dir.0.join("daemon"));
    config.gc_dead_fraction = Some(0.0);
    config.auth_token = Some("sekrit".into());
    let daemon = Server::bind("127.0.0.1:0", config).unwrap().spawn();

    // A wrong (non-empty) token is refused at the handshake.
    let err = RemoteStore::connect_opts(daemon.addr(), "authed", Some("wrong".into())).unwrap_err();
    assert!(matches!(err, Error::Unauthorized(_)), "{err}");

    // No token: the data plane stays open, privileged operations do not
    // — even from loopback, because a token is configured.
    let anon = RemoteStore::connect_opts(daemon.addr(), "authed", None).unwrap();
    let (r, _) = anon.put(b"data plane is open").unwrap();
    assert_eq!(anon.get(&r).unwrap(), b"data plane is open");
    anon.plan_sweep(&BTreeSet::new()).unwrap(); // dry-run: harmless
    let err = anon.sweep(&BTreeSet::new()).unwrap_err();
    assert!(
        matches!(err, Error::Unauthorized(_)),
        "destructive sweep: {err}"
    );
    let err = anon.shutdown_daemon().unwrap_err();
    assert!(matches!(err, Error::Unauthorized(_)), "shutdown: {err}");
    let err = anon.promote_daemon().unwrap_err();
    assert!(matches!(err, Error::Unauthorized(_)), "promote: {err}");

    // An unauthenticated secondary cannot open a replication stream
    // (the oplog carries every namespace's data).
    let unauth_secondary = spawn_manual_secondary(&dir.0.join("unauth-sec"), &daemon.addr());
    let err = unauth_secondary.repl_sync(None).unwrap_err();
    assert!(matches!(err, Error::Unauthorized(_)), "repl: {err}");

    // The right token unlocks all of it.
    let mut sec_config = ServerConfig::new(dir.0.join("auth-sec"));
    sec_config.gc_dead_fraction = Some(0.0);
    let mut repl = ReplicateConfig::new(daemon.addr());
    repl.manual = true;
    repl.auth_token = Some("sekrit".into());
    sec_config.replicate = Some(repl);
    let auth_secondary = Server::bind("127.0.0.1:0", sec_config).unwrap().spawn();
    auth_secondary.repl_sync(None).unwrap();

    let authed = RemoteStore::connect_opts(daemon.addr(), "authed", Some("sekrit".into())).unwrap();
    authed.sweep(&BTreeSet::new()).unwrap();
    authed.shutdown_daemon().unwrap();
}

/// End-to-end acceptance drill: a writer is killed mid-save by its
/// primary dying; the secondary is promoted; a client with a failover
/// address list resumes against it, bit-identically, from a fresh
/// working directory.
#[test]
fn kill_primary_mid_save_promote_and_resume_via_failover_list() {
    let dir = TempDir::new("kill-drill");
    let primary = spawn_daemon(dir.0.join("primary"), StoreKind::Loose).unwrap();
    let secondary = spawn_manual_secondary(&dir.0.join("secondary"), &primary.addr());
    let failover_spec = format!("{},{}", primary.addr(), secondary.addr());

    // Phase 1: a client (with the failover list) commits steps 1..=3,
    // the secondary tails them, and then the primary is killed while a
    // half-written PUT_BATCH for step 4 is in flight.
    let repo = open_repo(&failover_spec, "drill", &dir.0.join("client"));
    let mut params = vec![0.25f64; 900];
    for step in 1..=3u64 {
        params[step as usize] += 0.5;
        repo.save(&snapshot_at(step, &params), &options(SaveMode::Full))
            .unwrap();
    }
    sync_to_convergence(&secondary);
    qcheck::remote::fault::die_mid_put_batch(&primary.addr(), "drill", vec![0xAB; 4096]).unwrap();
    primary.shutdown(); // the kill

    // Phase 2: operator promotes the secondary…
    let gen = secondary.promote().unwrap();
    assert!(gen > 1);

    // …and the surviving client handle fails over transparently: its
    // next save lands on the promoted secondary.
    params[4] += 0.5;
    repo.save(&snapshot_at(4, &params), &options(SaveMode::Full))
        .unwrap();
    assert_eq!(
        repo.store().remote().unwrap().observed_generation(),
        gen,
        "the client must adopt the promoted generation on failover"
    );

    // Phase 3: a fresh working directory pointed at the failover list
    // resumes from the promoted secondary (the dead primary is skipped)
    // with the exact committed state — including the post-failover save
    // — and a clean bill of health.
    let fresh = open_repo(&failover_spec, "drill", &dir.0.join("fresh"));
    let (snap, _) = fresh.recover().unwrap();
    assert_eq!(snap.step, 4);
    assert_eq!(snap.params, params);
    let health = fsck(&fresh).unwrap();
    assert_eq!(health.intact_count(), 4);
    assert_eq!(health.orphan_chunks, 0, "the half-frame must not survive");
}

/// A tenant whose primary-side data is damaged must not starve the
/// rest of the fleet: the tailer pulls each chunk through a content-
/// address check, and a namespace that fails it is quarantined for the
/// pass (reported, lag retained) while every other namespace keeps
/// replicating and stays fully usable after promotion.
#[test]
fn a_poisoned_namespace_is_quarantined_without_starving_others() {
    let dir = TempDir::new("quarantine");
    let primary = spawn_daemon(dir.0.join("primary"), StoreKind::Loose).unwrap();

    // "aaa-poison" sorts before "zzz-clean", so before quarantine
    // existed the poisoned tenant aborted the pass ahead of the clean
    // one on every poll.
    let bad = open_repo(&primary.addr(), "aaa-poison", &dir.0.join("bad"));
    let r = bad
        .save(&snapshot_at(1, &vec![1.0; 900]), &options(SaveMode::Full))
        .unwrap();
    let victim = bad
        .load_manifest(&r.id)
        .unwrap()
        .chunk_refs()
        .next()
        .unwrap()
        .hash;
    bad.store().corrupt_object(&victim, 0).unwrap();

    let clean = open_repo(&primary.addr(), "zzz-clean", &dir.0.join("clean"));
    let params = apply_workload(&clean);

    let secondary = spawn_manual_secondary(&dir.0.join("secondary"), &primary.addr());
    let report = secondary.repl_sync(None).unwrap();
    assert_eq!(report.quarantined, 1, "the poisoned tenant is set aside");
    assert!(report.remaining > 0, "its entries stay outstanding");
    assert!(
        report.entries_applied > 0,
        "the clean tenant must replicate in the same pass"
    );
    // The quarantine is stable: another pass neither clears nor grows it.
    let again = secondary.repl_sync(None).unwrap();
    assert_eq!(again.quarantined, 1);
    assert_eq!(
        again.entries_applied, 0,
        "the clean tenant already converged"
    );

    // After promotion the clean tenant is fully usable from a fresh
    // working directory.
    secondary.promote().unwrap();
    let fresh = open_repo(&secondary.addr(), "zzz-clean", &dir.0.join("fresh"));
    let (snap, _) = fresh.recover().unwrap();
    assert_eq!(snap.step, 4);
    assert_eq!(snap.params, params);
    assert!(fsck(&fresh).unwrap().is_clean());
}
