//! Property-based tests for the checkpointing core.

use proptest::prelude::*;

use qcheck::chunk::{chunk_bytes, reassemble};
use qcheck::codec::{Decoder, Encoder};
use qcheck::compress::{bytes_to_f64s, f64s_to_bytes, Compression};
use qcheck::delta::BlockPatch;
use qcheck::hash::{crc32, ContentHash, Sha256};
use qcheck::manifest::Manifest;
use qcheck::snapshot::{DatasetCursor, MetricPoint, RngCapture, StateBlob, TrainingSnapshot};

fn arb_f64_bits() -> impl Strategy<Value = f64> {
    // Arbitrary bit patterns: exercises NaN payloads, infinities, denormals.
    any::<u64>().prop_map(f64::from_bits)
}

fn arb_snapshot() -> impl Strategy<Value = TrainingSnapshot> {
    (
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec(arb_f64_bits(), 0..300),
        prop::collection::vec(any::<u8>(), 0..200),
        prop::collection::vec(any::<u8>(), 0..100),
        prop::collection::vec((any::<u64>(), arb_f64_bits()), 0..20),
        ".{0,24}",
    )
        .prop_map(|(step, shots, params, opt, ledger, metrics, label)| {
            let mut s = TrainingSnapshot::new(label);
            s.step = step;
            s.epoch = step / 97;
            s.wall_time_ms = step.wrapping_mul(31);
            s.params = params;
            s.optimizer = StateBlob::new("prop-opt", opt);
            s.rng_streams
                .insert("shots".into(), RngCapture([(step % 251) as u8; 40]));
            s.cursor = DatasetCursor {
                epoch: step % 11,
                position: step % 13,
                order_seed: step.wrapping_mul(7),
            };
            s.total_shots = shots;
            s.shot_ledger = ledger;
            s.metrics = metrics
                .into_iter()
                .map(|(step, value)| MetricPoint { step, value })
                .collect();
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Snapshot → sections → snapshot is the identity (bitwise, including
    /// NaN payloads in parameters).
    #[test]
    fn snapshot_sections_round_trip(snap in arb_snapshot()) {
        let sections = snap.to_sections();
        let back = TrainingSnapshot::from_sections(&sections).unwrap();
        prop_assert_eq!(back.step, snap.step);
        prop_assert_eq!(back.params.len(), snap.params.len());
        for (a, b) in snap.params.iter().zip(&back.params) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(back.optimizer, snap.optimizer);
        prop_assert_eq!(back.shot_ledger, snap.shot_ledger);
        prop_assert_eq!(back.metrics.len(), snap.metrics.len());
    }

    /// Snapshot serialization is deterministic.
    #[test]
    fn snapshot_encoding_is_deterministic(snap in arb_snapshot()) {
        let a = snap.to_sections();
        let b = snap.clone().to_sections();
        prop_assert_eq!(a, b);
    }

    /// All compressors are lossless on arbitrary byte strings.
    #[test]
    fn compressors_round_trip(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        for codec in Compression::all() {
            let c = codec.compress(&data);
            let d = codec.decompress(&c).unwrap();
            prop_assert_eq!(&d, &data, "codec {}", codec);
        }
    }

    /// XOR-f64 is lossless on arbitrary f64 bit patterns.
    #[test]
    fn xor_f64_round_trips_bit_patterns(xs in prop::collection::vec(arb_f64_bits(), 0..512)) {
        let bytes = f64s_to_bytes(&xs);
        let c = Compression::XorF64.compress(&bytes);
        let d = Compression::XorF64.decompress(&c).unwrap();
        prop_assert_eq!(d, bytes);
    }

    /// f64 byte packing round-trips.
    #[test]
    fn f64_packing_round_trips(xs in prop::collection::vec(arb_f64_bits(), 0..256)) {
        let bytes = f64s_to_bytes(&xs);
        let back = bytes_to_f64s(&bytes).unwrap();
        prop_assert_eq!(back.len(), xs.len());
        for (a, b) in xs.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// diff ∘ apply is the identity for arbitrary byte strings and block
    /// sizes.
    #[test]
    fn delta_diff_apply_identity(
        base in prop::collection::vec(any::<u8>(), 0..3000),
        new in prop::collection::vec(any::<u8>(), 0..3000),
        block_size in 1usize..700,
    ) {
        let patch = BlockPatch::diff(&base, &new, block_size);
        let out = patch.apply(&base).unwrap();
        prop_assert_eq!(out, new);
    }

    /// Delta patches survive their own serialization.
    #[test]
    fn delta_encode_decode(
        base in prop::collection::vec(any::<u8>(), 0..2000),
        new in prop::collection::vec(any::<u8>(), 0..2000),
    ) {
        let patch = BlockPatch::diff(&base, &new, 128);
        let decoded = BlockPatch::decode(&patch.encode()).unwrap();
        prop_assert_eq!(&decoded, &patch);
        prop_assert_eq!(decoded.apply(&base).unwrap(), new);
    }

    /// Chunking partitions the input exactly and reassembles losslessly.
    #[test]
    fn chunking_partitions(
        data in prop::collection::vec(any::<u8>(), 0..10_000),
        chunk_size in 1usize..5000,
    ) {
        let (refs, slices) = chunk_bytes(&data, chunk_size);
        let total: u64 = refs.iter().map(|r| r.len as u64).sum();
        prop_assert_eq!(total, data.len() as u64);
        let owned: Vec<Vec<u8>> = slices.iter().map(|s| s.to_vec()).collect();
        prop_assert_eq!(reassemble(&refs, &owned).unwrap(), data);
    }

    /// SHA-256 streaming equals one-shot for any chunk split.
    #[test]
    fn sha_streaming_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..2000),
        split in 0usize..2000,
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    /// Hex encoding of content hashes round-trips.
    #[test]
    fn content_hash_hex_round_trip(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let h = Sha256::digest(&data);
        prop_assert_eq!(ContentHash::from_hex(&h.to_hex()), Some(h));
    }

    /// CRC32 differs for data differing in one byte (collision over small
    /// perturbations would defeat torn-write detection).
    #[test]
    fn crc_detects_single_byte_change(
        mut data in prop::collection::vec(any::<u8>(), 1..512),
        idx in any::<prop::sample::Index>(),
        delta in 1u8..=255,
    ) {
        let before = crc32(&data);
        let i = idx.index(data.len());
        data[i] = data[i].wrapping_add(delta);
        prop_assert_ne!(before, crc32(&data));
    }

    /// Codec primitives round-trip arbitrary values.
    #[test]
    fn codec_round_trips(
        a in any::<u64>(),
        b in any::<i64>(),
        c in arb_f64_bits(),
        s in ".{0,64}",
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut e = Encoder::new();
        e.put_varint(a).put_i64(b).put_f64(c).put_str(&s).put_bytes(&bytes);
        let buf = e.into_bytes();
        let mut d = Decoder::new(&buf, "prop");
        prop_assert_eq!(d.get_varint().unwrap(), a);
        prop_assert_eq!(d.get_i64().unwrap(), b);
        prop_assert_eq!(d.get_f64().unwrap().to_bits(), c.to_bits());
        prop_assert_eq!(d.get_str().unwrap(), s);
        prop_assert_eq!(d.get_bytes().unwrap(), bytes);
        d.finish().unwrap();
    }

    /// Manifest decoding never accepts a corrupted encoding (CRC frame).
    #[test]
    fn manifest_rejects_random_corruption(
        snap in arb_snapshot(),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        // Build a real manifest through the repo save path is expensive;
        // construct a minimal one directly instead.
        let manifest = Manifest {
            id: qcheck::CheckpointId::new(snap.step, 0),
            step: snap.step,
            kind: qcheck::manifest::CheckpointKind::Full,
            chain_len: 0,
            created_unix_ms: 0,
            snapshot_sha: Sha256::digest(&snap.params.len().to_le_bytes()),
            sections: vec![],
        };
        let mut bytes = manifest.encode();
        let i = flip_at.index(bytes.len());
        bytes[i] ^= 1 << flip_bit;
        prop_assert!(Manifest::decode(&bytes).is_err());
    }
}
