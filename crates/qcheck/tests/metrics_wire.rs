//! Protocol v3 `METRICS` acceptance suite.
//!
//! The daemon's observability contract: any v3 client can fetch the
//! qobs text exposition in one frame, without ever holding a writer
//! lease, and the rendering is stable-ordered across scrapes. The
//! single test below drives real checkpoint traffic through an
//! in-process daemon and then checks the scrape covers the documented
//! metric names (see the "Observability" section of the qcheck
//! README). Everything lives in one test on purpose: parallel tests
//! would mint new label sets between the two scrapes and break the
//! name-sequence comparison.

use qcheck::remote::{spawn_daemon, RemoteStore};
use qcheck::repo::{CheckpointRepo, SaveOptions};
use qcheck::snapshot::TrainingSnapshot;
use qcheck::store::{StoreBackend, StoreKind};

fn scratch(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("qcheck-metrics-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Non-comment lines of an exposition, split into (name, value).
fn samples(text: &str) -> Vec<(String, String)> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (name, value) = l.rsplit_once(' ').expect("sample line has a value column");
            (name.to_string(), value.to_string())
        })
        .collect()
}

#[test]
fn metrics_scrape_parses_and_covers_the_contract() {
    if qobs::mode() == qobs::Mode::Off {
        qobs::set_mode(qobs::Mode::Counters);
    }
    let dir = scratch("contract");
    let daemon = spawn_daemon(dir.join("daemon"), StoreKind::Pack).unwrap();

    // Real traffic: a save/recover drill over the wire, so the scrape
    // below has request counters and server-side fsync samples to show.
    let store = RemoteStore::connect(daemon.addr(), "drill").unwrap();
    store.acquire_writer_lease().unwrap();
    let repo = CheckpointRepo::with_store(dir.join("client"), StoreBackend::Remote(store)).unwrap();
    let mut snap = TrainingSnapshot::new("metrics-drill");
    snap.step = 7;
    snap.params = vec![0.5; 256];
    let durable = SaveOptions {
        fsync: true,
        ..SaveOptions::default()
    };
    repo.save(&snap, &durable).unwrap();
    let (recovered, _) = repo.recover().unwrap();
    assert_eq!(recovered.step, 7);

    // The probe handle never acquires a lease — METRICS, like STATUS,
    // is read-only and must be served anyway (here the drill's writer
    // lease on "drill" is still live).
    let probe = RemoteStore::connect(daemon.addr(), "control").unwrap();
    let text = probe.metrics().unwrap();

    // Every sample line is `name[{labels}] value` with a numeric value.
    let first = samples(&text);
    assert!(!first.is_empty(), "exposition is empty");
    for (name, value) in &first {
        assert!(!name.is_empty(), "empty name in {text:?}");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value {value:?} for {name}"
        );
    }

    // Contract coverage: per-op request counters, fsync latency
    // histogram, replication lag, lease grants, in-flight connections.
    let has = |needle: &str| first.iter().any(|(name, _)| name.contains(needle));
    assert!(has("qckptd_requests_total{"), "no per-op request counters");
    assert!(
        first
            .iter()
            .any(|(n, _)| n.starts_with("qckptd_requests_total{") && n.contains("op=\"hello\"")),
        "request counters are not labeled per op"
    );
    assert!(has("qcheck_fsync_ns_bucket{"), "no fsync latency histogram");
    assert!(has("qckptd_repl_lag_entries"), "no repl lag gauge");
    assert!(has("qckptd_lease_grants_total"), "no lease-grant counter");
    assert!(has("qckptd_inflight_connections"), "no in-flight gauge");
    assert!(has("qckptd_uptime_seconds"), "no uptime gauge");
    assert!(has("qckptd_bytes_in_total"), "no ingress byte counter");
    assert!(has("qckptd_bytes_out_total"), "no egress byte counter");

    // The drill held the only lease the whole time, so the probe's
    // scrape proves lease-free reads; its own requests were counted
    // too (METRICS is counted before it renders).
    assert!(
        first
            .iter()
            .any(|(n, _)| n.contains("ns=\"control\"") && n.contains("op=\"metrics\"")),
        "the scrape itself is not counted"
    );

    // Stable order: a second scrape renders the identical name
    // sequence (values may move; names and their order may not).
    let second = samples(&probe.metrics().unwrap());
    let names = |v: &[(String, String)]| v.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
    assert_eq!(names(&first), names(&second), "scrape order is unstable");
}
