//! Protocol v3 streaming-wire suite.
//!
//! The streaming path exists so a multi-GiB state never has to fit in
//! one wire frame (or one buffer): `PUT_STREAM`/`GET_STREAM` move an
//! object as a sequence of bounded segments with the SHA-256 running
//! incrementally on both ends. These tests pin the contract at both
//! layers — the local backends' `put_stream`/`get_stream` (which the
//! daemon reuses per namespace) and the remote client — plus the
//! v2-compat handshake and the oversize `PUT_BATCH` redirect.

use qcheck::chunk::ChunkRef;
use qcheck::error::Error;
use qcheck::hash::Sha256;
use qcheck::remote::{
    proto, reset_stream_peak_buffer, spawn_daemon, stream_peak_buffer, RemoteStore,
};
use qcheck::store::{ObjectStore, StagedChunk, StoreBackend, StoreKind};

fn scratch(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let p = std::env::temp_dir().join(format!(
        "qcheck-stream-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Deterministic pseudo-random payload (xorshift over the index, so
/// reruns and both wire ends agree byte for byte).
fn payload(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| {
            let mut x = i as u32 ^ 0x9E37_79B9;
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x as u8
        })
        .collect()
}

fn reference(data: &[u8]) -> ChunkRef {
    ChunkRef {
        hash: Sha256::digest(data),
        len: data.len() as u32,
    }
}

/// A `put_stream` source yielding `data` in `step`-byte segments,
/// counting how many times it was polled (drain accounting).
#[allow(clippy::type_complexity)]
fn source_of(
    data: &[u8],
    step: usize,
) -> (
    impl FnMut() -> qcheck::error::Result<Option<Vec<u8>>> + '_,
    std::sync::Arc<std::sync::atomic::AtomicU64>,
) {
    let polls = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let counter = std::sync::Arc::clone(&polls);
    let mut offset = 0usize;
    let f = move || {
        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if offset >= data.len() {
            return Ok(None);
        }
        let end = (offset + step).min(data.len());
        let seg = data[offset..end].to_vec();
        offset = end;
        Ok(Some(seg))
    };
    (f, polls)
}

/// Collects a `get_stream` into one buffer.
fn collect_stream(
    store: &dyn ObjectStore,
    r: &ChunkRef,
    segment: usize,
) -> qcheck::error::Result<Vec<u8>> {
    let mut out = Vec::new();
    store.get_stream(r, segment, &mut |seg| {
        out.extend_from_slice(seg);
        Ok(())
    })?;
    Ok(out)
}

#[test]
fn local_backends_stream_round_trip_and_dedup_drain() {
    for kind in [StoreKind::Loose, StoreKind::Pack] {
        let dir = scratch("local");
        let store = StoreBackend::open(&dir, kind).unwrap();
        // Not a multiple of the source step or the read segment: both
        // seams (partial last segment, partial last read) are exercised.
        let data = payload(300_000 + 17);
        let r = reference(&data);

        let (mut src, _) = source_of(&data, 64 << 10);
        assert!(store.put_stream(&r, &mut src, false).unwrap(), "{kind:?}");
        assert!(store.contains(&r.hash));
        // Streamed object is a first-class object: plain get sees it.
        assert_eq!(store.get(&r).unwrap(), data);
        // Streamed read round-trips at an unrelated granularity.
        assert_eq!(collect_stream(&store, &r, 10_000).unwrap(), data);

        // Dedup: the second stream is stale AND fully drains its source
        // (wire-backed callers rely on that to keep framing aligned).
        let (mut src2, polls) = source_of(&data, 100_000);
        assert!(!store.put_stream(&r, &mut src2, false).unwrap());
        // 300_017 bytes at 100_000 per segment = 4 polls incl. the None.
        assert_eq!(polls.load(std::sync::atomic::Ordering::Relaxed), 5);

        // Empty payload streams too (zero Data segments).
        let empty = reference(b"");
        let (mut src3, _) = source_of(b"", 1024);
        assert!(store.put_stream(&empty, &mut src3, false).unwrap());
        assert_eq!(collect_stream(&store, &empty, 1024).unwrap(), b"");
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn local_put_stream_refuses_lying_reference_and_stays_clean() {
    for kind in [StoreKind::Loose, StoreKind::Pack] {
        let dir = scratch("liar");
        let store = StoreBackend::open(&dir, kind).unwrap();
        let data = payload(50_000);
        let mut lying = reference(&data);
        lying.hash = Sha256::digest(b"something else");
        let (mut src, _) = source_of(&data, 16 << 10);
        let err = store.put_stream(&lying, &mut src, false).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }), "{kind:?}: {err}");
        assert!(!store.contains(&lying.hash));
        // The aborted stream left no staging debris behind.
        assert_eq!(store.clear_staging().unwrap(), 0, "{kind:?}");

        // A length lie is caught too (source ends early).
        let mut short = reference(&data);
        short.len += 1;
        let (mut src2, _) = source_of(&data, 16 << 10);
        let err = store.put_stream(&short, &mut src2, false).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }), "{kind:?}: {err}");
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn local_get_stream_detects_corruption_incrementally() {
    for kind in [StoreKind::Loose, StoreKind::Pack] {
        let dir = scratch("corrupt");
        let store = StoreBackend::open(&dir, kind).unwrap();
        let data = payload(120_000);
        let r = reference(&data);
        store
            .put_batch(
                &[StagedChunk {
                    reference: r,
                    data: &data,
                }],
                false,
            )
            .unwrap();
        store.corrupt_object(&r.hash, 60_000).unwrap();
        let err = collect_stream(&store, &r, 8 << 10).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }), "{kind:?}: {err}");
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn remote_stream_round_trip_with_bounded_buffering() {
    let root = scratch("remote-rt");
    let daemon = spawn_daemon(&root, StoreKind::Pack).unwrap();
    let store = RemoteStore::connect(daemon.addr(), "stream").unwrap();
    // Five wire segments' worth, not a multiple of anything; the 3 MiB
    // source blocks force the client to re-chunk to the wire cap.
    let data = payload((9 << 20) + 4099);
    let r = reference(&data);

    reset_stream_peak_buffer();
    let (mut src, _) = source_of(&data, 3 << 20);
    assert!(store.put_stream(&r, &mut src, false).unwrap());
    assert!(store.contains(&r.hash));
    assert_eq!(collect_stream(&store, &r, 1 << 20).unwrap(), data);
    let peak = stream_peak_buffer();
    assert!(
        peak > 0 && peak <= proto::MAX_STREAM_SEGMENT as u64,
        "peak stream buffer {peak} outside (0, {}]",
        proto::MAX_STREAM_SEGMENT
    );

    // The streamed object is indistinguishable from a batched one.
    assert_eq!(store.get(&r).unwrap(), data);
    assert_eq!(store.stats().unwrap().object_count, 1);

    // Dedup short-circuits at Begin — no body crosses the wire — but
    // the source contract (fully drained) still holds.
    let before = store.round_trips();
    let (mut src2, polls) = source_of(&data, 3 << 20);
    assert!(!store.put_stream(&r, &mut src2, false).unwrap());
    assert_eq!(
        store.round_trips() - before,
        1,
        "a dedup'd stream must cost exactly the Begin round trip"
    );
    assert_eq!(polls.load(std::sync::atomic::Ordering::Relaxed), 5);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn remote_get_stream_judges_missing_and_corrupt_objects() {
    let root = scratch("remote-judged");
    let daemon = spawn_daemon(&root, StoreKind::Loose).unwrap();
    let store = RemoteStore::connect(daemon.addr(), "judged").unwrap();

    // Missing: judged NotFound before any frame streams.
    let ghost = reference(b"never stored");
    let err = collect_stream(&store, &ghost, 4 << 10).unwrap_err();
    assert!(matches!(err, Error::NotFound { .. }), "{err}");
    store
        .ping()
        .expect("connection must survive a judged error");

    // Corrupt server-side: the stream ends in a judged error instead of
    // StreamEnd (the server hashes as it reads), and the connection
    // stays aligned for the next request.
    let data = payload(5 << 20);
    let r = reference(&data);
    let (mut src, _) = source_of(&data, 1 << 20);
    assert!(store.put_stream(&r, &mut src, false).unwrap());
    store.corrupt_object(&r.hash, 1 << 20).unwrap();
    let err = collect_stream(&store, &r, 1 << 20).unwrap_err();
    assert!(matches!(err, Error::Corrupt { .. }), "{err}");
    store
        .ping()
        .expect("connection must survive a corrupt stream");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn remote_put_stream_refuses_lying_reference() {
    let root = scratch("remote-liar");
    let daemon = spawn_daemon(&root, StoreKind::Pack).unwrap();
    let store = RemoteStore::connect(daemon.addr(), "liar").unwrap();
    let data = payload(3 << 20);
    let mut lying = reference(&data);
    lying.hash = Sha256::digest(b"what I claim");
    let (mut src, _) = source_of(&data, 1 << 20);
    let err = store.put_stream(&lying, &mut src, false).unwrap_err();
    assert!(matches!(err, Error::Corrupt { .. }), "{err}");
    assert!(!store.contains(&lying.hash));
    assert_eq!(store.stats().unwrap().object_count, 0);
    assert_eq!(store.clear_staging().unwrap(), 0);
    store
        .ping()
        .expect("connection must survive a refused stream");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn oversized_put_batch_chunk_is_redirected_at_streaming() {
    let root = scratch("oversize");
    let daemon = spawn_daemon(&root, StoreKind::Pack).unwrap();
    let store = RemoteStore::connect(daemon.addr(), "big").unwrap();
    // One byte over the frame cap: the refusal must fire client-side,
    // before a doomed quarter-gigabyte frame is encoded, and point the
    // caller at the streaming op.
    let data = vec![0u8; proto::MAX_FRAME_LEN + 1];
    let r = reference(&data);
    let before = store.round_trips();
    let err = store
        .put_batch(
            &[StagedChunk {
                reference: r,
                data: &data,
            }],
            false,
        )
        .unwrap_err();
    assert!(matches!(err, Error::Protocol { .. }), "{err}");
    assert!(
        err.to_string().contains("PUT_STREAM"),
        "error must point at the streaming op: {err}"
    );
    assert_eq!(store.round_trips(), before, "must fail before the wire");
    // And the streaming op handles that exact payload.
    let (mut src, _) = source_of(&data, 8 << 20);
    assert!(store.put_stream(&r, &mut src, false).unwrap());
    assert_eq!(store.stats().unwrap().object_count, 1);
    let _ = std::fs::remove_dir_all(root);
}

/// A protocol-v2 client (today's fleet mid-upgrade) must keep working
/// against a v3 daemon: the server echoes the client's version and
/// serves the v2 dialect unchanged.
#[test]
fn v2_client_interops_with_v3_server() {
    use std::io::Write as _;
    let root = scratch("v2-compat");
    let daemon = spawn_daemon(&root, StoreKind::Pack).unwrap();
    let mut stream = std::net::TcpStream::connect(daemon.addr()).unwrap();
    let hello = proto::Request::Hello {
        version: proto::PROTO_VERSION_MIN,
        namespace: "compat".into(),
        auth: String::new(),
        flags: 0,
        lease_token: 0,
        min_generation: 0,
    };
    proto::write_frame(&mut stream, &hello.encode()).unwrap();
    stream.flush().unwrap();
    match proto::Response::decode(&proto::read_frame(&mut stream).unwrap()).unwrap() {
        proto::Response::HelloOk { version, .. } => {
            assert_eq!(version, proto::PROTO_VERSION_MIN, "server must echo v2");
        }
        other => panic!("unexpected handshake response {other:?}"),
    }
    // A v2 data-plane request round-trips on the negotiated connection.
    proto::write_frame(&mut stream, &proto::Request::Ping.encode()).unwrap();
    stream.flush().unwrap();
    match proto::Response::decode(&proto::read_frame(&mut stream).unwrap()).unwrap() {
        proto::Response::Pong => {}
        other => panic!("unexpected ping response {other:?}"),
    }
    // But the v3 stream ops are refused on a v2 connection — with a
    // judged error, not a stream the client cannot parse.
    let r = reference(b"x");
    proto::write_frame(
        &mut stream,
        &proto::Request::GetStream { reference: r }.encode(),
    )
    .unwrap();
    stream.flush().unwrap();
    match proto::Response::decode(&proto::read_frame(&mut stream).unwrap()).unwrap() {
        proto::Response::Err { .. } => {}
        other => panic!("v2 connection must not receive stream frames, got {other:?}"),
    }
    // Versions below the window stay refused.
    let mut old = std::net::TcpStream::connect(daemon.addr()).unwrap();
    let hello = proto::Request::Hello {
        version: 1,
        namespace: "compat".into(),
        auth: String::new(),
        flags: 0,
        lease_token: 0,
        min_generation: 0,
    };
    proto::write_frame(&mut old, &hello.encode()).unwrap();
    old.flush().unwrap();
    let resp = proto::Response::decode(&proto::read_frame(&mut old).unwrap()).unwrap();
    assert!(matches!(resp, proto::Response::Err { .. }), "{resp:?}");
    let _ = std::fs::remove_dir_all(root);
}
