//! The crate's qobs metric handles — one module so the metric-name
//! contract (documented in `crates/qcheck/README.md`) lives in one
//! place. All handles gate on the process-wide `QOBS` mode except
//! [`STREAM_PEAK`], which existing stream tests read back through
//! [`crate::remote::stream_peak_buffer`] regardless of mode.

/// Completed [`crate::repo::Repository::save`] calls.
pub static SAVES: qobs::LazyCounter = qobs::LazyCounter::new("qcheck_saves_total");
/// Completed [`crate::repo::Repository::recover`] calls.
pub static RECOVERS: qobs::LazyCounter = qobs::LazyCounter::new("qcheck_recovers_total");
/// Completed GC sweeps.
pub static GCS: qobs::LazyCounter = qobs::LazyCounter::new("qcheck_gc_total");
/// Manifest-log compactions (retention-triggered epoch rewrites).
pub static COMPACTIONS: qobs::LazyCounter = qobs::LazyCounter::new("qcheck_log_compactions_total");
/// Sum of `RecoveryReport::manifests_tried` over all recoveries
/// (healthy repositories contribute exactly 1 per recover).
pub static MANIFESTS_TRIED: qobs::LazyCounter =
    qobs::LazyCounter::new("qcheck_manifests_tried_total");
/// Manifest-log replays (every repository open / recover / fsck pass).
pub static MLOG_REPLAYS: qobs::LazyCounter =
    qobs::LazyCounter::new("qcheck_manifest_log_replays_total");
/// Wall time of every durability fsync (loose chunks, packs, manifest
/// log, root slots, staged writes), in nanoseconds.
pub static FSYNC_NS: qobs::LazyHistogram = qobs::LazyHistogram::new("qcheck_fsync_ns");
/// Wall time of every commit rename, in nanoseconds.
pub static RENAME_NS: qobs::LazyHistogram = qobs::LazyHistogram::new("qcheck_rename_ns");
/// Process-wide remote round trips (the per-handle
/// [`crate::remote::RemoteStore::round_trips`] counter stays exact per
/// connection; this is the aggregate a scrape sees).
pub static ROUND_TRIPS: qobs::LazyCounter =
    qobs::LazyCounter::new("qcheck_remote_round_trips_total");
/// High-water mark of any streaming frame buffer, in bytes.
pub static STREAM_PEAK: qobs::LazyGauge = qobs::LazyGauge::new("qcheck_stream_peak_buffer_bytes");
