//! Deterministic binary encoding.
//!
//! Checkpoint payloads must be *byte-stable*: the same logical snapshot must
//! serialize to the same bytes on every run, or content-addressed dedup and
//! bitwise resume verification fall apart. General-purpose serializers do not
//! promise that, so the on-disk format uses this small hand-rolled codec:
//! little-endian fixed-width integers, LEB128 varints, f64 as raw IEEE-754
//! bits (NaN payloads preserved), and length-prefixed byte strings.

use crate::error::{Error, Result};

/// Append-only binary encoder.
///
/// # Examples
///
/// ```
/// use qcheck::codec::{Decoder, Encoder};
///
/// let mut enc = Encoder::new();
/// enc.put_u64(7).put_str("params").put_f64_slice(&[1.0, -2.5]);
/// let bytes = enc.into_bytes();
///
/// let mut dec = Decoder::new(&bytes, "example");
/// assert_eq!(dec.get_u64().unwrap(), 7);
/// assert_eq!(dec.get_str().unwrap(), "params");
/// assert_eq!(dec.get_f64_vec().unwrap(), vec![1.0, -2.5]);
/// assert!(dec.finish().is_ok());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Creates an encoder with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(n),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow of the current buffer.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes an i64 (two's complement little-endian).
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes an f64 as its raw bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        self
    }

    /// Writes an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) -> &mut Self {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
        self
    }

    /// Writes a varint length followed by raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.put_varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Writes a UTF-8 string (varint length + bytes).
    pub fn put_str(&mut self, s: &str) -> &mut Self {
        self.put_bytes(s.as_bytes())
    }

    /// Writes a varint count followed by raw f64 bit patterns.
    pub fn put_f64_slice(&mut self, xs: &[f64]) -> &mut Self {
        self.put_varint(xs.len() as u64);
        for &x in xs {
            self.put_f64(x);
        }
        self
    }

    /// Writes raw bytes without a length prefix (caller knows the framing).
    pub fn put_raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self
    }
}

/// Bounds-checked binary decoder over a byte slice.
#[derive(Clone, Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
    what: &'a str,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder; `what` names the input for error messages.
    pub fn new(data: &'a [u8], what: &'a str) -> Self {
        Decoder { data, pos: 0, what }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn fail(&self, detail: impl Into<String>) -> Error {
        Error::Decode {
            what: self.what.to_string(),
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.fail(format!("need {n} bytes, only {} remain", self.remaining())));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads an i64.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_i64(&mut self) -> Result<i64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(i64::from_le_bytes(a))
    }

    /// Reads an f64 bit pattern.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or a varint longer than 10 bytes.
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut result = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(self.fail("varint overflow"));
            }
            result |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Reads a varint-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or an absurd length prefix.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.get_varint()? as usize;
        if len > self.remaining() {
            return Err(self.fail(format!("length prefix {len} exceeds remaining input")));
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a varint-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes).map_err(|e| self.fail(format!("invalid utf-8: {e}")))
    }

    /// Reads a varint-prefixed f64 vector.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>> {
        let len = self.get_varint()? as usize;
        if len
            .checked_mul(8)
            .map(|n| n > self.remaining())
            .unwrap_or(true)
        {
            return Err(self.fail(format!("f64 count {len} exceeds remaining input")));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Asserts all input was consumed.
    ///
    /// # Errors
    ///
    /// Fails when trailing bytes remain (a framing bug or corruption).
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            let n = self.remaining();
            return Err(self.fail(format!("{n} trailing bytes")));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_round_trips() {
        let mut e = Encoder::new();
        e.put_u8(0xAB)
            .put_u32(0xDEADBEEF)
            .put_u64(u64::MAX)
            .put_i64(-42)
            .put_f64(-0.0);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "t");
        assert_eq!(d.get_u8().unwrap(), 0xAB);
        assert_eq!(d.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_i64().unwrap(), -42);
        assert_eq!(d.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        d.finish().unwrap();
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX, u32::MAX as u64] {
            let mut e = Encoder::new();
            e.put_varint(v);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes, "v");
            assert_eq!(d.get_varint().unwrap(), v);
            d.finish().unwrap();
        }
    }

    #[test]
    fn varint_is_compact() {
        let mut e = Encoder::new();
        e.put_varint(5);
        assert_eq!(e.len(), 1);
        let mut e = Encoder::new();
        e.put_varint(300);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn strings_and_bytes() {
        let mut e = Encoder::new();
        e.put_str("héllo").put_bytes(&[1, 2, 3]).put_str("");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "s");
        assert_eq!(d.get_str().unwrap(), "héllo");
        assert_eq!(d.get_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.get_str().unwrap(), "");
        d.finish().unwrap();
    }

    #[test]
    fn f64_slice_preserves_nan_payloads() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let xs = vec![0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, weird, 1.5e-300];
        let mut e = Encoder::new();
        e.put_f64_slice(&xs);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "f");
        let ys = d.get_f64_vec().unwrap();
        assert_eq!(xs.len(), ys.len());
        for (a, b) in xs.iter().zip(&ys) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncation_is_detected() {
        let mut e = Encoder::new();
        e.put_u64(1).put_str("abcdef");
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut], "trunc");
            let r = d.get_u64().and_then(|_| d.get_str());
            assert!(r.is_err(), "cut at {cut} not detected");
        }
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut e = Encoder::new();
        e.put_u8(1).put_u8(2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "t");
        d.get_u8().unwrap();
        assert!(d.finish().is_err());
    }

    #[test]
    fn absurd_length_prefix_rejected() {
        // varint claims 2^40 bytes follow.
        let mut e = Encoder::new();
        e.put_varint(1u64 << 40);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "bomb");
        assert!(d.get_bytes().is_err());
        let mut d2 = Decoder::new(&bytes, "bomb2");
        assert!(d2.get_f64_vec().is_err());
    }

    #[test]
    fn determinism_same_input_same_bytes() {
        let build = || {
            let mut e = Encoder::new();
            e.put_str("snapshot")
                .put_f64_slice(&[1.0, 2.0])
                .put_varint(99);
            e.into_bytes()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn raw_round_trip() {
        let mut e = Encoder::new();
        e.put_raw(&[9, 8, 7]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "r");
        assert_eq!(d.get_raw(3).unwrap(), &[9, 8, 7]);
        d.finish().unwrap();
    }

    #[test]
    fn decoder_error_reports_offset_and_name() {
        let bytes = [1u8, 2];
        let mut d = Decoder::new(&bytes, "manifest-header");
        d.get_u8().unwrap();
        let err = d.get_u64().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("manifest-header"));
        assert!(msg.contains("byte 1"));
    }
}
