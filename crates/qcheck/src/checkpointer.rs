//! The [`Checkpointer`]: policy-driven checkpointing of a live training
//! loop.
//!
//! Call [`Checkpointer::on_step`] after every optimizer step with anything
//! implementing [`Checkpointable`]; the configured
//! [`crate::policy::CheckpointPolicy`] implementation decides when a
//! snapshot is captured and committed, and an EWMA of measured write cost
//! feeds back into cost-aware policies (Young–Daly, adaptive).

use std::time::Instant;

use crate::error::Result;
use crate::manifest::CheckpointId;
use crate::policy::{CheckpointPolicy, PolicyContext};
use crate::repo::{CheckpointRepo, SaveOptions, SaveReport};
use crate::snapshot::Checkpointable;
use crate::store::{ObjectStore, StoreBackend};

/// EWMA factor for the observed checkpoint cost.
const COST_ALPHA: f64 = 0.3;

/// Policy-driven checkpoint writer for a training loop. Generic over the
/// repository's storage backend; defaults to the runtime-selected
/// [`StoreBackend`].
#[derive(Debug)]
pub struct Checkpointer<S: ObjectStore = StoreBackend> {
    repo: CheckpointRepo<S>,
    policy: Box<dyn CheckpointPolicy + Send>,
    options: SaveOptions,
    started: Instant,
    last_checkpoint_step: Option<u64>,
    last_checkpoint_ms: Option<u64>,
    observed_cost_ms: f64,
    history: Vec<SaveReport>,
}

impl<S: ObjectStore> Checkpointer<S> {
    /// Creates a checkpointer writing to `repo` under `policy`.
    pub fn new(
        repo: CheckpointRepo<S>,
        policy: Box<dyn CheckpointPolicy + Send>,
        options: SaveOptions,
    ) -> Self {
        Checkpointer {
            repo,
            policy,
            options,
            started: Instant::now(),
            last_checkpoint_step: None,
            last_checkpoint_ms: None,
            observed_cost_ms: 0.0,
            history: Vec::new(),
        }
    }

    /// The underlying repository.
    pub fn repo(&self) -> &CheckpointRepo<S> {
        &self.repo
    }

    /// All save reports so far.
    pub fn history(&self) -> &[SaveReport] {
        &self.history
    }

    /// Total bytes written across all checkpoints.
    pub fn total_bytes_written(&self) -> u64 {
        self.history.iter().map(|r| r.bytes_written()).sum()
    }

    /// EWMA of observed checkpoint write cost, milliseconds.
    pub fn observed_cost_ms(&self) -> f64 {
        self.observed_cost_ms
    }

    /// Asks the policy and, if due, captures and commits a checkpoint.
    ///
    /// Returns the save report when a checkpoint was written.
    ///
    /// # Errors
    ///
    /// Propagates repository failures. The policy state is *not* advanced on
    /// failure, so the next step retries.
    pub fn on_step<T: Checkpointable>(
        &mut self,
        step: u64,
        subject: &T,
    ) -> Result<Option<SaveReport>> {
        let now_ms = self.started.elapsed().as_millis() as u64;
        let ctx = PolicyContext {
            step,
            now_ms,
            last_checkpoint_step: self.last_checkpoint_step,
            last_checkpoint_ms: self.last_checkpoint_ms,
            observed_checkpoint_cost_ms: self.observed_cost_ms,
        };
        if !self.policy.should_checkpoint(&ctx) {
            return Ok(None);
        }
        let report = self.force_checkpoint(step, subject)?;
        Ok(Some(report))
    }

    /// Captures and commits unconditionally.
    ///
    /// # Errors
    ///
    /// Propagates repository failures.
    pub fn force_checkpoint<T: Checkpointable>(
        &mut self,
        step: u64,
        subject: &T,
    ) -> Result<SaveReport> {
        let t0 = Instant::now();
        let snapshot = subject.capture();
        let report = self.repo.save(&snapshot, &self.options)?;
        let cost_ms = t0.elapsed().as_secs_f64() * 1000.0;
        self.observed_cost_ms = if self.observed_cost_ms == 0.0 {
            cost_ms
        } else {
            (1.0 - COST_ALPHA) * self.observed_cost_ms + COST_ALPHA * cost_ms
        };
        self.last_checkpoint_step = Some(step);
        self.last_checkpoint_ms = Some(self.started.elapsed().as_millis() as u64);
        self.history.push(report.clone());
        Ok(report)
    }

    /// Restores `subject` from the newest valid checkpoint (recovery scan).
    ///
    /// Returns the id restored from.
    ///
    /// # Errors
    ///
    /// Fails when no valid checkpoint exists or the snapshot is structurally
    /// incompatible with `subject`.
    pub fn restore_latest<T: Checkpointable>(&self, subject: &mut T) -> Result<CheckpointId> {
        let (snapshot, report) = self.repo.recover()?;
        subject
            .restore(&snapshot)
            .map_err(crate::error::Error::InvalidConfig)?;
        Ok(report.recovered.expect("recover() always names its source"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::EveryKSteps;
    use crate::repo::SaveMode;
    use crate::snapshot::TrainingSnapshot;

    /// A toy training loop: params drift deterministically per step.
    #[derive(Clone, Debug, PartialEq)]
    struct ToyLoop {
        step: u64,
        params: Vec<f64>,
    }

    impl ToyLoop {
        fn new(n: usize) -> Self {
            ToyLoop {
                step: 0,
                params: vec![0.0; n],
            }
        }
        fn advance(&mut self) {
            self.step += 1;
            for (i, p) in self.params.iter_mut().enumerate() {
                *p += 1e-3 * ((self.step + i as u64) as f64).sin();
            }
        }
    }

    impl Checkpointable for ToyLoop {
        fn capture(&self) -> TrainingSnapshot {
            let mut s = TrainingSnapshot::new("toy");
            s.step = self.step;
            s.params = self.params.clone();
            s
        }
        fn restore(&mut self, snapshot: &TrainingSnapshot) -> std::result::Result<(), String> {
            if snapshot.params.len() != self.params.len() {
                return Err(format!(
                    "parameter count mismatch: {} vs {}",
                    snapshot.params.len(),
                    self.params.len()
                ));
            }
            self.step = snapshot.step;
            self.params = snapshot.params.clone();
            Ok(())
        }
    }

    fn temp_repo() -> (std::path::PathBuf, CheckpointRepo) {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "qcheck-ckptr-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let repo = CheckpointRepo::open(&path).unwrap();
        (path, repo)
    }

    #[test]
    fn policy_drives_checkpoint_cadence() {
        let (path, repo) = temp_repo();
        let mut ckptr =
            Checkpointer::new(repo, Box::new(EveryKSteps::new(5)), SaveOptions::default());
        let mut looped = ToyLoop::new(32);
        let mut taken = 0;
        for _ in 0..20 {
            looped.advance();
            if ckptr.on_step(looped.step, &looped).unwrap().is_some() {
                taken += 1;
            }
        }
        assert_eq!(taken, 4, "every-5 over 20 steps");
        assert_eq!(ckptr.history().len(), 4);
        assert!(ckptr.total_bytes_written() > 0);
        assert!(ckptr.observed_cost_ms() > 0.0);
        let _ = std::fs::remove_dir_all(path);
    }

    #[test]
    fn restore_round_trip_resumes_state() {
        let (path, repo) = temp_repo();
        let mut ckptr =
            Checkpointer::new(repo, Box::new(EveryKSteps::new(1)), SaveOptions::default());
        let mut looped = ToyLoop::new(16);
        for _ in 0..7 {
            looped.advance();
            ckptr.on_step(looped.step, &looped).unwrap();
        }
        let expected = looped.clone();

        // "Crash": fresh loop, restore.
        let mut fresh = ToyLoop::new(16);
        let id = ckptr.restore_latest(&mut fresh).unwrap();
        assert_eq!(fresh, expected);
        assert!(id.as_str().contains("0000000007"));
        let _ = std::fs::remove_dir_all(path);
    }

    #[test]
    fn restore_rejects_incompatible_subject() {
        let (path, repo) = temp_repo();
        let mut ckptr =
            Checkpointer::new(repo, Box::new(EveryKSteps::new(1)), SaveOptions::default());
        let mut looped = ToyLoop::new(16);
        looped.advance();
        ckptr.on_step(looped.step, &looped).unwrap();

        let mut wrong = ToyLoop::new(99);
        assert!(ckptr.restore_latest(&mut wrong).is_err());
        let _ = std::fs::remove_dir_all(path);
    }

    #[test]
    fn incremental_mode_produces_deltas() {
        let (path, repo) = temp_repo();
        let mut ckptr = Checkpointer::new(
            repo,
            Box::new(EveryKSteps::new(1)),
            SaveOptions {
                mode: SaveMode::DeltaAuto { max_chain_len: 8 },
                ..SaveOptions::default()
            },
        );
        let mut looped = ToyLoop::new(512);
        for _ in 0..4 {
            looped.advance();
            ckptr.on_step(looped.step, &looped).unwrap();
        }
        let kinds: Vec<bool> = ckptr.history().iter().map(|r| r.is_delta).collect();
        assert_eq!(kinds, vec![false, true, true, true]);
        // Resume still exact through the chain.
        let mut fresh = ToyLoop::new(512);
        ckptr.restore_latest(&mut fresh).unwrap();
        assert_eq!(fresh, looped);
        let _ = std::fs::remove_dir_all(path);
    }

    #[test]
    fn force_checkpoint_ignores_policy() {
        let (path, repo) = temp_repo();
        let mut ckptr = Checkpointer::new(
            repo,
            Box::new(EveryKSteps::new(1_000_000)),
            SaveOptions::default(),
        );
        let looped = ToyLoop::new(4);
        assert!(ckptr.on_step(0, &looped).unwrap().is_none());
        let report = ckptr.force_checkpoint(0, &looped).unwrap();
        assert_eq!(report.chain_len, 0);
        let _ = std::fs::remove_dir_all(path);
    }
}
