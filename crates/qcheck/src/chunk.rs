//! Fixed-size chunking of section payloads.
//!
//! Section byte streams are split into fixed-size chunks (default 4 KiB)
//! which are stored content-addressed in the [`crate::store::ChunkStore`].
//! Identical chunks across checkpoints — the unchanged prefix of a parameter
//! vector, a shared dataset blob across a hyperparameter sweep — are stored
//! once (experiment R-F7).

use serde::{Deserialize, Serialize};

use crate::hash::{ContentHash, Sha256};

/// Default chunk size: 4 KiB.
pub const DEFAULT_CHUNK_SIZE: usize = 4096;

/// A reference to one stored chunk: its content address and exact length.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChunkRef {
    /// SHA-256 of the chunk contents.
    pub hash: ContentHash,
    /// Length in bytes (≤ the chunk size used when writing).
    pub len: u32,
}

/// Minimum chunk count before chunk hashing fans out across threads
/// (below this, thread-scope overhead exceeds the SHA-256 work).
pub const PARALLEL_MIN_CHUNKS: usize = 16;

/// Splits `data` into `chunk_size`-byte chunks and returns `(refs, chunks)`,
/// hashing chunks on the ambient [`qpar::current_threads`] worker threads
/// when there are at least [`PARALLEL_MIN_CHUNKS`] of them.
///
/// The last chunk may be shorter. Empty input produces no chunks.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn chunk_bytes(data: &[u8], chunk_size: usize) -> (Vec<ChunkRef>, Vec<&[u8]>) {
    chunk_bytes_threads(data, chunk_size, qpar::current_threads())
}

/// [`chunk_bytes`] with an explicit thread count. Chunk refs are produced
/// in input order whatever the thread count, so results are bit-identical
/// to the serial path.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn chunk_bytes_threads(
    data: &[u8],
    chunk_size: usize,
    threads: usize,
) -> (Vec<ChunkRef>, Vec<&[u8]>) {
    assert!(chunk_size > 0, "chunk size must be positive");
    let slices: Vec<&[u8]> = data.chunks(chunk_size).collect();
    let hashes = if threads > 1 && slices.len() >= PARALLEL_MIN_CHUNKS {
        Sha256::digest_many(slices.clone(), threads)
    } else {
        slices.iter().map(|s| Sha256::digest(s)).collect()
    };
    let refs = hashes
        .into_iter()
        .zip(&slices)
        .map(|(hash, chunk)| ChunkRef {
            hash,
            len: chunk.len() as u32,
        })
        .collect();
    (refs, slices)
}

/// Total byte length referenced by a chunk list.
pub fn total_len(refs: &[ChunkRef]) -> u64 {
    refs.iter().map(|r| r.len as u64).sum()
}

/// Reassembles chunk payloads into the original byte stream.
///
/// The caller supplies chunk contents in order (as fetched from the store);
/// lengths are validated against the refs.
///
/// # Errors
///
/// Returns a description of the first mismatch.
pub fn reassemble(refs: &[ChunkRef], chunks: &[Vec<u8>]) -> Result<Vec<u8>, String> {
    if refs.len() != chunks.len() {
        return Err(format!(
            "chunk count mismatch: {} refs, {} payloads",
            refs.len(),
            chunks.len()
        ));
    }
    let mut out = Vec::with_capacity(total_len(refs) as usize);
    for (i, (r, c)) in refs.iter().zip(chunks).enumerate() {
        if c.len() != r.len as usize {
            return Err(format!(
                "chunk {i} length mismatch: expected {}, got {}",
                r.len,
                c.len()
            ));
        }
        let h = Sha256::digest(c);
        if h != r.hash {
            return Err(format!("chunk {i} hash mismatch"));
        }
        out.extend_from_slice(c);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_covers_input_exactly() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        let (refs, slices) = chunk_bytes(&data, 4096);
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0].len, 4096);
        assert_eq!(refs[2].len, 10_000 - 8192);
        assert_eq!(total_len(&refs), 10_000);
        let owned: Vec<Vec<u8>> = slices.iter().map(|s| s.to_vec()).collect();
        assert_eq!(reassemble(&refs, &owned).unwrap(), data);
    }

    #[test]
    fn empty_input_no_chunks() {
        let (refs, slices) = chunk_bytes(&[], 4096);
        assert!(refs.is_empty());
        assert!(slices.is_empty());
        assert_eq!(reassemble(&refs, &[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn identical_blocks_share_hashes() {
        let mut data = vec![7u8; 8192];
        data.extend_from_slice(&[1, 2, 3]);
        let (refs, _) = chunk_bytes(&data, 4096);
        assert_eq!(refs[0].hash, refs[1].hash);
        assert_ne!(refs[0].hash, refs[2].hash);
    }

    #[test]
    fn exact_multiple_has_no_short_tail() {
        let data = vec![9u8; 8192];
        let (refs, _) = chunk_bytes(&data, 4096);
        assert_eq!(refs.len(), 2);
        assert!(refs.iter().all(|r| r.len == 4096));
    }

    #[test]
    fn reassemble_detects_tampering() {
        let data = vec![5u8; 5000];
        let (refs, slices) = chunk_bytes(&data, 4096);
        let mut owned: Vec<Vec<u8>> = slices.iter().map(|s| s.to_vec()).collect();
        owned[1][0] ^= 0xFF;
        assert!(reassemble(&refs, &owned)
            .unwrap_err()
            .contains("hash mismatch"));

        let mut short = slices.iter().map(|s| s.to_vec()).collect::<Vec<_>>();
        short[0].pop();
        assert!(reassemble(&refs, &short)
            .unwrap_err()
            .contains("length mismatch"));

        assert!(reassemble(&refs, &owned[..1])
            .unwrap_err()
            .contains("count mismatch"));
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_panics() {
        chunk_bytes(&[1], 0);
    }
}
