//! Pluggable content-addressed object storage.
//!
//! The checkpoint repository stores chunk payloads through the
//! [`ObjectStore`] trait, which abstracts *how* content-addressed objects
//! reach the disk. Two backends implement it:
//!
//! * [`LooseStore`] — one file per chunk under `objects/<2-hex>/<62-hex>`
//!   (the original layout, kept as the compatibility default). Every new
//!   chunk costs one stage-file create plus one rename.
//! * [`PackStore`] — one append-only *pack file* per batch under `packs/`,
//!   with an embedded index and a trailing footer. A whole save's worth of
//!   new chunks commits with a single fsync+rename, so the commit syscall
//!   count per checkpoint is O(1) instead of O(chunks).
//!
//! Both backends share the crash-safety contract: objects are staged in
//! `tmp/` and published by an atomic rename. A crash can leave disposable
//! garbage in `tmp/`, never a half-written object in the published
//! namespace. Garbage collection is mark-and-sweep over manifest-reachable
//! hashes ([`ObjectStore::sweep`]); there is no refcount index to corrupt.
//!
//! Backend selection is per repository and *sticky*: the first open writes
//! a one-line `STORE` marker file naming the backend, and later opens obey
//! the marker regardless of the requested kind — switching the environment
//! variable can therefore never strand objects written by the other
//! layout. Fresh repositories honor `QCHECK_STORE=loose|pack` (or the
//! explicit [`crate::repo::CheckpointRepo::open_with`] builder argument).

mod loose;
mod pack;

pub(crate) use loose::verify_chunk;
pub use loose::LooseStore;
pub use pack::{PackStore, DEFAULT_GC_DEAD_FRACTION, GC_DEAD_FRACTION_ENV};

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use crate::chunk::ChunkRef;
use crate::error::{Error, Result};
use crate::hash::{ContentHash, Sha256};
use crate::remote::{RemoteStore, REMOTE_ADDR_ENV, REMOTE_NS_ENV};

/// Name of the marker file persisting a repository's remote namespace
/// (written on first open of a remote-backed repository when
/// `QCHECK_REMOTE_NS` does not pin one).
pub const REMOTE_NS_MARKER_FILE: &str = "REMOTE_NS";

/// Back-compat alias: before the [`ObjectStore`] trait existed the loose
/// layout was the only backend and its type was named `ChunkStore`.
pub type ChunkStore = LooseStore;

/// Name of the backend marker file at the repository root.
pub const STORE_MARKER_FILE: &str = "STORE";

/// Result of a garbage-collection sweep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Objects retained because they were reachable.
    pub live: usize,
    /// Objects deleted.
    pub deleted: usize,
    /// Bytes reclaimed.
    pub reclaimed_bytes: u64,
    /// Unreachable objects intentionally kept this sweep (pack backend:
    /// a mixed pack below the `QCHECK_GC_DEAD_FRACTION` rewrite
    /// threshold is left untouched rather than rewritten — they remain
    /// readable and are re-examined by the next sweep). Always 0 for the
    /// loose backend.
    pub deferred: usize,
    /// Payload bytes held by deferred objects.
    pub deferred_bytes: u64,
}

/// Aggregate store statistics.
///
/// `total_bytes` counts *logical object payload* bytes — the sum of stored
/// chunk lengths — for every backend, so the number is comparable across
/// layouts (the pack backend additionally spends a per-object index entry
/// and a fixed header/footer on disk).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of stored objects.
    pub object_count: usize,
    /// Total logical payload bytes across stored objects.
    pub total_bytes: u64,
}

/// One chunk handed to [`ObjectStore::put_batch`]: its precomputed content
/// reference plus the payload bytes. The reference is trusted at write
/// time (the save path hashes chunks on the parallel encode pipeline);
/// every read re-verifies length and SHA-256.
#[derive(Clone, Copy, Debug)]
pub struct StagedChunk<'a> {
    /// Content address + exact length of `data`.
    pub reference: ChunkRef,
    /// The chunk payload.
    pub data: &'a [u8],
}

/// Outcome of one [`ObjectStore::put_batch`] call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchPutReport {
    /// Per input chunk, in order: `true` when the object was physically
    /// written by this call (`false` = dedup hit, including duplicates
    /// *within* the batch).
    pub fresh: Vec<bool>,
    /// Rename syscalls used to commit the batch (the syscall-count proxy
    /// the pack backend optimizes: 1 per batch instead of 1 per chunk).
    pub renames: u64,
    /// `fsync` calls issued while committing the batch.
    pub fsyncs: u64,
}

impl BatchPutReport {
    /// Number of objects physically written.
    pub fn fresh_count(&self) -> usize {
        self.fresh.iter().filter(|f| **f).count()
    }
}

/// A content-addressed object store.
///
/// Writes are idempotent (an object that exists is never rewritten — that
/// is the dedup) and crash-safe (stage then atomic rename). Reads verify
/// length and SHA-256, so corruption is always *detected*, never silently
/// returned.
pub trait ObjectStore: std::fmt::Debug + Send + Sync {
    /// Stores a batch of chunks, committing them together when the layout
    /// allows it. Objects that already exist are not rewritten.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors. No torn object is ever published, but
    /// a failed batch may have published a *prefix* of its objects
    /// (loose backend; the pack backend is all-or-nothing): those are
    /// content-addressed orphans, invisible until a manifest references
    /// them and reclaimed by the next sweep.
    fn put_batch(&self, chunks: &[StagedChunk<'_>], fsync: bool) -> Result<BatchPutReport>;

    /// Fetches and verifies one chunk.
    ///
    /// # Errors
    ///
    /// [`Error::NotFound`] when absent; [`Error::Corrupt`] when the stored
    /// bytes do not match the reference (bit rot, truncation).
    fn get(&self, reference: &ChunkRef) -> Result<Vec<u8>>;

    /// Fetches and verifies many chunks, in input order. Semantically
    /// `refs.iter().map(get)`; backends override it to batch — the
    /// remote backend pipelines the whole burst in one network round
    /// trip, and the pack backend resolves it against at most one
    /// index rescan (see [`ObjectStore::begin_read_pass`]).
    ///
    /// # Errors
    ///
    /// As [`ObjectStore::get`], failing on the first bad chunk.
    fn get_many(&self, refs: &[ChunkRef]) -> Result<Vec<Vec<u8>>> {
        refs.iter().map(|r| self.get(r)).collect()
    }

    /// Marks the start of a bounded read pass (e.g. one recovery walk).
    /// Within a pass the backend may cap cache-refill work — the pack
    /// backend rescans `packs/` at most once per pass instead of once
    /// per index miss. Passes nest; no-op by default.
    fn begin_read_pass(&self) {}

    /// Ends a read pass started by [`ObjectStore::begin_read_pass`].
    fn end_read_pass(&self) {}

    /// Whether an object with this address exists.
    fn contains(&self, hash: &ContentHash) -> bool;

    /// Whether *every* hash exists. Semantically `hashes.iter().all(…)`
    /// over [`ObjectStore::contains`]; backends may batch the underlying
    /// existence checks (the pack backend stats each distinct pack once
    /// instead of once per chunk — this sits on the per-save delta path).
    fn contains_all(&self, hashes: &[ContentHash]) -> bool {
        hashes.iter().all(|h| self.contains(h))
    }

    /// Enumerates all stored object hashes, ascending.
    ///
    /// # Errors
    ///
    /// Fails on directory-walk errors.
    fn list(&self) -> Result<Vec<ContentHash>>;

    /// Mark-and-sweep garbage collection: deletes every object whose hash
    /// is not in `reachable`, and clears stale staging files.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors; a partially completed sweep is safe
    /// (reachable objects are never deleted).
    fn sweep(&self, reachable: &BTreeSet<ContentHash>) -> Result<GcReport>;

    /// Dry-run of [`ObjectStore::sweep`]: the report a sweep against
    /// `reachable` would produce *right now* — including the pack
    /// backend's compaction-deferral counters — without deleting or
    /// rewriting anything. `qckpt stats` uses this to surface
    /// fragmentation read-only.
    ///
    /// # Errors
    ///
    /// Fails on directory-walk errors.
    fn plan_sweep(&self, reachable: &BTreeSet<ContentHash>) -> Result<GcReport>;

    /// Object count and total logical bytes. Maintained incrementally by
    /// this handle's writes and sweeps — no full directory re-walk per
    /// call once warmed up.
    ///
    /// # Errors
    ///
    /// Fails on directory-walk errors (first, cache-seeding call only for
    /// the loose backend).
    fn stats(&self) -> Result<StoreStats>;

    /// Removes orphaned staging files left behind by crashed writers.
    /// Returns the number of files removed. Safe by construction: `tmp/`
    /// contents are disposable at every point of the commit protocol.
    ///
    /// # Errors
    ///
    /// Fails on directory errors other than absence.
    fn clear_staging(&self) -> Result<usize>;

    // ------------------------------------------------------------------
    // Shared-metadata mirror (remote / multi-client backends only)
    // ------------------------------------------------------------------
    //
    // A *local* backend lives inside the repository directory, so the
    // directory itself is the authority for manifests and the `LATEST`
    // pointer — these methods default to no-ops there. A *shared*
    // backend (the remote daemon) outlives any one working directory:
    // it mirrors that metadata so a client opening a fresh directory
    // can reconstruct the repository. `CheckpointRepo` calls the mirror
    // methods only when `is_shared()` reports true.

    /// Whether this store is shared across working directories (and
    /// therefore mirrors repository metadata). Local backends: `false`.
    fn is_shared(&self) -> bool {
        false
    }

    /// Acquires the store's exclusive writer lease for this handle's
    /// namespace. Local backends rely on the repository's on-disk LOCK
    /// file instead and treat this as a no-op; the remote backend asks
    /// the daemon for a server-side lease (which a crashed writer
    /// cannot leak forever — it expires by TTL).
    ///
    /// # Errors
    ///
    /// Shared backends fail with [`Error::LeaseHeld`] when another live
    /// writer holds the lease, or on transport errors.
    fn acquire_writer_lease(&self) -> Result<()> {
        Ok(())
    }

    /// Releases the writer lease, if one is held. Best-effort no-op for
    /// local backends.
    fn release_writer_lease(&self) {}

    /// Atomically publishes a named metadata blob on the shared store.
    /// No-op for local backends.
    ///
    /// # Errors
    ///
    /// Shared backends fail on transport or server errors.
    fn meta_put(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let _ = (name, bytes);
        Ok(())
    }

    /// Fetches a named metadata blob; `Ok(None)` when absent (always,
    /// for local backends).
    ///
    /// # Errors
    ///
    /// Shared backends fail on transport or server errors.
    fn meta_get(&self, name: &str) -> Result<Option<Vec<u8>>> {
        let _ = name;
        Ok(None)
    }

    /// Fetches many named metadata blobs, in input order. Semantically
    /// `names.iter().map(meta_get)`; the remote backend overrides this
    /// to pipeline every fetch in one burst — fresh-directory resume
    /// pulls a whole history of manifests, and paying one network
    /// round trip per manifest would make that O(checkpoints) in
    /// latency.
    ///
    /// # Errors
    ///
    /// Shared backends fail on transport or server errors.
    fn meta_get_many(&self, names: &[String]) -> Result<Vec<Option<Vec<u8>>>> {
        names.iter().map(|n| self.meta_get(n)).collect()
    }

    /// Lists metadata names under a prefix, ascending (empty for local
    /// backends).
    ///
    /// # Errors
    ///
    /// Shared backends fail on transport or server errors.
    fn meta_list(&self, prefix: &str) -> Result<Vec<String>> {
        let _ = prefix;
        Ok(Vec::new())
    }

    /// Deletes a named metadata blob; absence is not an error. No-op for
    /// local backends.
    ///
    /// # Errors
    ///
    /// Shared backends fail on transport or server errors.
    fn meta_delete(&self, name: &str) -> Result<()> {
        let _ = name;
        Ok(())
    }

    /// Streams one verified chunk to `sink` in segments of at most
    /// `segment` bytes, holding O(segment) memory regardless of chunk
    /// size. The backend hashes incrementally as it reads; `sink` may
    /// therefore observe a *prefix* of a corrupt object before the final
    /// length/SHA check fails — callers that forward the segments (the
    /// streaming wire) surface the trailing error instead of a
    /// completion marker, and the far end discards.
    ///
    /// The default implementation materializes via [`ObjectStore::get`]
    /// and slices; the loose and pack backends override it with true
    /// bounded-memory file reads.
    ///
    /// # Errors
    ///
    /// As [`ObjectStore::get`], plus any error returned by `sink`
    /// (propagated verbatim, aborting the stream).
    fn get_stream(
        &self,
        reference: &ChunkRef,
        segment: usize,
        sink: &mut dyn FnMut(&[u8]) -> Result<()>,
    ) -> Result<()> {
        let data = self.get(reference)?;
        for part in data.chunks(segment.max(1)) {
            sink(part)?;
        }
        Ok(())
    }

    /// Streams one chunk *in* from `source` (a pull-style segment
    /// iterator: `Ok(Some(bytes))` per segment, `Ok(None)` at end),
    /// verifying length and SHA-256 incrementally before commit. Returns
    /// whether a new object was physically written (`false` = dedup
    /// hit). The source is always consumed to exhaustion — even on a
    /// dedup hit — so wire-backed callers keep their framing aligned.
    ///
    /// The default implementation buffers and delegates to
    /// [`ObjectStore::put_batch`]; the loose and pack backends override
    /// it to stage segments straight to disk in O(segment) memory.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] when the streamed bytes do not match
    /// `reference` (nothing is committed), otherwise filesystem or
    /// `source` errors.
    fn put_stream(
        &self,
        reference: &ChunkRef,
        source: &mut dyn FnMut() -> Result<Option<Vec<u8>>>,
        fsync: bool,
    ) -> Result<bool> {
        let mut data = Vec::new();
        while let Some(seg) = source()? {
            data.extend_from_slice(&seg);
        }
        verify_chunk(reference, &data)?;
        let report = self.put_batch(
            &[StagedChunk {
                reference: *reference,
                data: &data,
            }],
            fsync,
        )?;
        Ok(report.fresh[0])
    }

    /// Stores one chunk. Convenience wrapper over [`ObjectStore::put_batch`]
    /// returning the reference and whether a new object was physically
    /// written (`false` = dedup hit).
    ///
    /// # Errors
    ///
    /// As [`ObjectStore::put_batch`].
    fn put(&self, data: &[u8]) -> Result<(ChunkRef, bool)> {
        let reference = ChunkRef {
            hash: Sha256::digest(data),
            len: data.len() as u32,
        };
        let report = self.put_batch(&[StagedChunk { reference, data }], false)?;
        Ok((reference, report.fresh[0]))
    }

    /// Deliberately corrupts a stored object (failure-injection support):
    /// flips one byte at `offset % len`. Test-only API, compiled in only
    /// for `cfg(test)` builds or with the `testing` feature.
    ///
    /// # Errors
    ///
    /// Fails when the object is missing or empty.
    #[cfg(any(test, feature = "testing"))]
    fn corrupt_object(&self, hash: &ContentHash, offset: usize) -> Result<()>;
}

/// Which [`ObjectStore`] layout a repository uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreKind {
    /// One file per chunk (`objects/`): [`LooseStore`].
    #[default]
    Loose,
    /// Batched pack files (`packs/`): [`PackStore`].
    Pack,
    /// A `qckptd` daemon over TCP: [`RemoteStore`]
    /// (`QCHECK_REMOTE_ADDR` names the daemon).
    Remote,
}

impl StoreKind {
    /// Stable name, as written to the `STORE` marker and accepted by the
    /// `QCHECK_STORE` environment variable.
    pub fn as_str(&self) -> &'static str {
        match self {
            StoreKind::Loose => "loose",
            StoreKind::Pack => "pack",
            StoreKind::Remote => "remote",
        }
    }

    /// Parses a backend name.
    pub fn parse(s: &str) -> Option<StoreKind> {
        match s.trim() {
            "loose" => Some(StoreKind::Loose),
            "pack" => Some(StoreKind::Pack),
            "remote" => Some(StoreKind::Remote),
            _ => None,
        }
    }

    /// Resolves the `QCHECK_STORE` environment variable; unset means
    /// [`StoreKind::Loose`] (the compatibility default).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] on an unrecognized value — a typo must not
    /// silently fall back to a different layout.
    pub fn from_env() -> Result<StoreKind> {
        match std::env::var("QCHECK_STORE") {
            Ok(v) => StoreKind::parse(&v).ok_or_else(|| {
                Error::InvalidConfig(format!(
                    "QCHECK_STORE={v:?} (expected \"loose\", \"pack\" or \"remote\")"
                ))
            }),
            Err(_) => Ok(StoreKind::Loose),
        }
    }
}

impl std::fmt::Display for StoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Runtime-selected backend: the default store type of
/// [`crate::repo::CheckpointRepo`]. Enum dispatch keeps the hot paths
/// monomorphic (no vtable) while still letting the backend be chosen per
/// repository at open time.
#[derive(Debug)]
pub enum StoreBackend {
    /// One file per chunk.
    Loose(LooseStore),
    /// Batched pack files.
    Pack(PackStore),
    /// A `qckptd` daemon over TCP.
    Remote(RemoteStore),
}

impl StoreBackend {
    /// Overrides the pack backend's GC rewrite threshold (no-op for the
    /// loose and remote backends — the daemon's threshold is server
    /// configuration). See [`PackStore::set_gc_dead_fraction`].
    pub fn set_gc_dead_fraction(&mut self, fraction: f64) {
        if let StoreBackend::Pack(pack) = self {
            pack.set_gc_dead_fraction(fraction);
        }
    }

    /// The remote client, when this backend is
    /// [`StoreBackend::Remote`] — the hook for protocol-level
    /// inspection (round-trip counters, daemon status).
    pub fn remote(&self) -> Option<&RemoteStore> {
        match self {
            StoreBackend::Remote(r) => Some(r),
            _ => None,
        }
    }

    /// The pack store, when this backend is [`StoreBackend::Pack`] —
    /// the hook for layout-level inspection (index rescan counter).
    pub fn pack(&self) -> Option<&PackStore> {
        match self {
            StoreBackend::Pack(p) => Some(p),
            _ => None,
        }
    }

    /// Opens the given backend under `root` (no marker handling). The
    /// remote backend resolves its daemon address from
    /// `QCHECK_REMOTE_ADDR` and its namespace from `QCHECK_REMOTE_NS`,
    /// a `REMOTE_NS` marker under `root`, or (first open) a freshly
    /// generated name persisted to that marker.
    ///
    /// # Errors
    ///
    /// Fails if directories cannot be created, `QCHECK_REMOTE_ADDR` is
    /// missing for the remote backend, or the daemon is unreachable.
    pub fn open(root: &Path, kind: StoreKind) -> Result<Self> {
        Ok(match kind {
            StoreKind::Loose => StoreBackend::Loose(LooseStore::open(root)?),
            StoreKind::Pack => StoreBackend::Pack(PackStore::open(root)?),
            StoreKind::Remote => {
                let addr = std::env::var(REMOTE_ADDR_ENV).map_err(|_| {
                    Error::InvalidConfig(format!(
                        "QCHECK_STORE=remote requires {REMOTE_ADDR_ENV}=host:port"
                    ))
                })?;
                let namespace = resolve_remote_namespace(root)?;
                StoreBackend::Remote(RemoteStore::connect(addr, namespace)?)
            }
        })
    }

    /// Opens a backend under `root`, honoring the sticky `STORE` marker:
    ///
    /// 1. an existing marker wins over `requested` (a repository never
    ///    changes layout mid-life);
    /// 2. a marker-less root that already holds loose objects is treated
    ///    as loose (pre-marker repositories);
    /// 3. otherwise `requested` is used and recorded in the marker.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or an unparseable marker.
    pub fn open_sticky(root: &Path, requested: StoreKind) -> Result<Self> {
        let marker = root.join(STORE_MARKER_FILE);
        let kind = match fs::read_to_string(&marker) {
            Ok(s) => StoreKind::parse(&s).ok_or_else(|| {
                Error::corrupt(
                    format!("store marker {}", marker.display()),
                    format!("unrecognized backend {:?}", s.trim()),
                )
            })?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let kind = if has_loose_objects(root) {
                    StoreKind::Loose
                } else {
                    requested
                };
                fs::create_dir_all(root)
                    .map_err(|e| Error::io(format!("creating {}", root.display()), e))?;
                fs::write(&marker, format!("{}\n", kind.as_str()))
                    .map_err(|e| Error::io(format!("writing {}", marker.display()), e))?;
                kind
            }
            Err(e) => return Err(Error::io(format!("reading {}", marker.display()), e)),
        };
        StoreBackend::open(root, kind)
    }

    /// Which layout this backend uses.
    pub fn kind(&self) -> StoreKind {
        match self {
            StoreBackend::Loose(_) => StoreKind::Loose,
            StoreBackend::Pack(_) => StoreKind::Pack,
            StoreBackend::Remote(_) => StoreKind::Remote,
        }
    }
}

/// Whether `root` holds a pre-marker loose-layout object directory.
fn has_loose_objects(root: &Path) -> bool {
    fs::read_dir(root.join("objects"))
        .map(|mut entries| entries.next().is_some())
        .unwrap_or(false)
}

/// Resolves the remote namespace for a repository at `root`:
/// `QCHECK_REMOTE_NS` wins, then the repository's `REMOTE_NS` marker,
/// else a fresh random name is generated and persisted to the marker so
/// every later open of this directory lands in the same namespace.
fn resolve_remote_namespace(root: &Path) -> Result<String> {
    if let Ok(ns) = std::env::var(REMOTE_NS_ENV) {
        let ns = ns.trim().to_string();
        if !crate::remote::proto::valid_namespace(&ns) {
            return Err(Error::InvalidConfig(format!(
                "{REMOTE_NS_ENV}={ns:?} is not a valid namespace"
            )));
        }
        return Ok(ns);
    }
    let marker = root.join(REMOTE_NS_MARKER_FILE);
    match fs::read_to_string(&marker) {
        Ok(s) => {
            let ns = s.trim().to_string();
            if crate::remote::proto::valid_namespace(&ns) {
                Ok(ns)
            } else {
                Err(Error::corrupt(
                    format!("namespace marker {}", marker.display()),
                    format!("invalid namespace {ns:?}"),
                ))
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            // No shared randomness source in the dependency budget:
            // hash process identity + wall clock + a counter. Collision
            // would require two generators with identical pid, nanos
            // and counter — and even then namespaces only share, never
            // corrupt (content addressing keeps objects consistent).
            static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0);
            let mut h = Sha256::new();
            h.update(&(std::process::id() as u64).to_le_bytes());
            h.update(&nanos.to_le_bytes());
            h.update(
                &SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    .to_le_bytes(),
            );
            let ns = format!("auto-{}", &h.finalize().to_hex()[..16]);
            fs::create_dir_all(root)
                .map_err(|e| Error::io(format!("creating {}", root.display()), e))?;
            fs::write(&marker, format!("{ns}\n"))
                .map_err(|e| Error::io(format!("writing {}", marker.display()), e))?;
            Ok(ns)
        }
        Err(e) => Err(Error::io(format!("reading {}", marker.display()), e)),
    }
}

macro_rules! delegate {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            StoreBackend::Loose($inner) => $body,
            StoreBackend::Pack($inner) => $body,
            StoreBackend::Remote($inner) => $body,
        }
    };
}

impl ObjectStore for StoreBackend {
    fn put_batch(&self, chunks: &[StagedChunk<'_>], fsync: bool) -> Result<BatchPutReport> {
        delegate!(self, s => s.put_batch(chunks, fsync))
    }

    fn get(&self, reference: &ChunkRef) -> Result<Vec<u8>> {
        delegate!(self, s => s.get(reference))
    }

    fn get_many(&self, refs: &[ChunkRef]) -> Result<Vec<Vec<u8>>> {
        delegate!(self, s => s.get_many(refs))
    }

    fn begin_read_pass(&self) {
        delegate!(self, s => s.begin_read_pass())
    }

    fn end_read_pass(&self) {
        delegate!(self, s => s.end_read_pass())
    }

    fn contains(&self, hash: &ContentHash) -> bool {
        delegate!(self, s => s.contains(hash))
    }

    fn contains_all(&self, hashes: &[ContentHash]) -> bool {
        delegate!(self, s => s.contains_all(hashes))
    }

    fn list(&self) -> Result<Vec<ContentHash>> {
        delegate!(self, s => s.list())
    }

    fn sweep(&self, reachable: &BTreeSet<ContentHash>) -> Result<GcReport> {
        delegate!(self, s => s.sweep(reachable))
    }

    fn plan_sweep(&self, reachable: &BTreeSet<ContentHash>) -> Result<GcReport> {
        delegate!(self, s => s.plan_sweep(reachable))
    }

    fn stats(&self) -> Result<StoreStats> {
        delegate!(self, s => s.stats())
    }

    fn clear_staging(&self) -> Result<usize> {
        delegate!(self, s => s.clear_staging())
    }

    fn get_stream(
        &self,
        reference: &ChunkRef,
        segment: usize,
        sink: &mut dyn FnMut(&[u8]) -> Result<()>,
    ) -> Result<()> {
        delegate!(self, s => s.get_stream(reference, segment, sink))
    }

    fn put_stream(
        &self,
        reference: &ChunkRef,
        source: &mut dyn FnMut() -> Result<Option<Vec<u8>>>,
        fsync: bool,
    ) -> Result<bool> {
        delegate!(self, s => s.put_stream(reference, source, fsync))
    }

    fn is_shared(&self) -> bool {
        delegate!(self, s => s.is_shared())
    }

    fn acquire_writer_lease(&self) -> Result<()> {
        delegate!(self, s => s.acquire_writer_lease())
    }

    fn release_writer_lease(&self) {
        delegate!(self, s => s.release_writer_lease())
    }

    fn meta_put(&self, name: &str, bytes: &[u8]) -> Result<()> {
        delegate!(self, s => s.meta_put(name, bytes))
    }

    fn meta_get(&self, name: &str) -> Result<Option<Vec<u8>>> {
        delegate!(self, s => s.meta_get(name))
    }

    fn meta_get_many(&self, names: &[String]) -> Result<Vec<Option<Vec<u8>>>> {
        delegate!(self, s => s.meta_get_many(names))
    }

    fn meta_list(&self, prefix: &str) -> Result<Vec<String>> {
        delegate!(self, s => s.meta_list(prefix))
    }

    fn meta_delete(&self, name: &str) -> Result<()> {
        delegate!(self, s => s.meta_delete(name))
    }

    #[cfg(any(test, feature = "testing"))]
    fn corrupt_object(&self, hash: &ContentHash, offset: usize) -> Result<()> {
        delegate!(self, s => s.corrupt_object(hash, offset))
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Minimal temp-dir helper shared by the backend test modules
    //! (std-only; removed on drop).

    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct TempDir(PathBuf);

    impl TempDir {
        pub fn new() -> Self {
            let path = std::env::temp_dir().join(format!(
                "qcheck-store-test-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_kind_parse_round_trip() {
        for kind in [StoreKind::Loose, StoreKind::Pack] {
            assert_eq!(StoreKind::parse(kind.as_str()), Some(kind));
            assert_eq!(
                StoreKind::parse(&format!(" {}\n", kind.as_str())),
                Some(kind)
            );
        }
        assert_eq!(StoreKind::parse("packed"), None);
    }

    #[test]
    fn sticky_marker_wins_over_request() {
        let dir = testutil::TempDir::new();
        let first = StoreBackend::open_sticky(dir.path(), StoreKind::Pack).unwrap();
        assert_eq!(first.kind(), StoreKind::Pack);
        // Second open requests loose; the marker must win.
        let second = StoreBackend::open_sticky(dir.path(), StoreKind::Loose).unwrap();
        assert_eq!(second.kind(), StoreKind::Pack);
    }

    #[test]
    fn marker_less_repo_with_loose_objects_stays_loose() {
        let dir = testutil::TempDir::new();
        let loose = LooseStore::open(dir.path()).unwrap();
        loose.put(b"pre-marker object").unwrap();
        let backend = StoreBackend::open_sticky(dir.path(), StoreKind::Pack).unwrap();
        assert_eq!(
            backend.kind(),
            StoreKind::Loose,
            "legacy repo must not flip layout"
        );
    }

    #[test]
    fn garbage_marker_is_rejected() {
        let dir = testutil::TempDir::new();
        std::fs::write(dir.path().join(STORE_MARKER_FILE), "sharded\n").unwrap();
        assert!(matches!(
            StoreBackend::open_sticky(dir.path(), StoreKind::Loose),
            Err(Error::Corrupt { .. })
        ));
    }

    #[test]
    fn backends_are_read_compatible_on_their_own_layout() {
        for kind in [StoreKind::Loose, StoreKind::Pack] {
            let dir = testutil::TempDir::new();
            let store = StoreBackend::open_sticky(dir.path(), kind).unwrap();
            let (r, fresh) = store.put(b"cross-backend payload").unwrap();
            assert!(fresh);
            let reopened = StoreBackend::open_sticky(dir.path(), kind).unwrap();
            assert_eq!(reopened.get(&r).unwrap(), b"cross-backend payload");
        }
    }
}
