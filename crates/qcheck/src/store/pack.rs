//! Packed object layout: one append-only pack file per batch.
//!
//! A training loop saving a checkpoint writes tens to hundreds of new
//! chunks. The loose layout pays one stage-file create plus one rename per
//! chunk; on fsync-heavy configurations it also pays one fsync per chunk.
//! The pack layout writes the whole batch into a single *pack file* —
//! payload blobs followed by an embedded index — staged in `tmp/` and
//! published with one optional fsync and exactly one rename. The commit
//! syscall count per save is O(1) in the number of chunks.
//!
//! ## On-disk format (pack v3)
//!
//! ```text
//! packs/pack-<64-hex>.qpk        (hex = SHA-256 of the file contents)
//!
//! offset 0   magic   "QPACK\0"          6 bytes
//!        6   version u32 le (= 3)       4 bytes
//!       10   blob payloads, concatenated
//!  index at  entries: count × (hash 32 | offset u64 le | len u32 le)
//!  footer    index_offset u64 le | count u32 le | crc32(index) u32 le
//!            | tail magic "QPAKEND\0"   = 24 bytes
//! ```
//!
//! Readers locate the index from the fixed-size footer, so opening a pack
//! costs two small reads regardless of payload size. A torn or truncated
//! pack fails the footer/CRC checks and is ignored wholesale — exactly the
//! crash semantics of a loose store whose staged objects never got
//! renamed. Packs are immutable once published; garbage collection
//! rewrites a pack only when it holds a mix of live and dead objects
//! (stage + rename again), deletes it when everything is dead, and leaves
//! it untouched when everything is live.
//!
//! ## Pack-index cache
//!
//! A handle keeps every pack's index in memory (`hash → pack/offset/len`,
//! 44 bytes per object on disk, comparable in memory). Lookups never touch
//! the directory; a miss triggers a cheap rescan of `packs/` so that packs
//! published by other handles (e.g. a background writer on the same
//! repository) become visible without reopening. Within a *read pass*
//! ([`ObjectStore::begin_read_pass`], e.g. one recovery walk) that
//! miss-triggered rescan fires at most once — a recovery walking a
//! partially-damaged history would otherwise rescan `packs/` on every
//! missing chunk, which made pack recovery slower than loose. The
//! [`PackStore::index_rescans`] counter makes the bound testable.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::chunk::ChunkRef;
use crate::error::{Error, Result};
use crate::hash::{crc32, ContentHash, Sha256};

use super::loose::{clear_dir_files, verify_chunk};
use super::{BatchPutReport, GcReport, ObjectStore, StagedChunk, StoreStats};

/// Magic bytes opening every pack file.
const PACK_MAGIC: &[u8; 6] = b"QPACK\0";
/// Pack format version (the repository's third on-disk object format,
/// after loose v1 flat and loose v2 fan-out).
const PACK_VERSION: u32 = 3;
/// Tail magic closing every pack file.
const PACK_TAIL: &[u8; 8] = b"QPAKEND\0";
/// Header length: magic + version.
const HEADER_LEN: u64 = 10;
/// Index entry length: hash + offset + len.
const ENTRY_LEN: usize = 44;
/// Footer length: index offset + count + index CRC + tail magic.
const FOOTER_LEN: u64 = 24;

/// Name of the environment variable setting the minimum dead fraction
/// (by object count) a mixed pack must reach before GC rewrites it.
pub const GC_DEAD_FRACTION_ENV: &str = "QCHECK_GC_DEAD_FRACTION";

/// Default GC rewrite threshold: a mixed pack is rewritten only when
/// more than half its objects are dead. Eager rewriting (`0.0`) copies
/// every live byte of every slightly-fragmented pack on every sweep;
/// the threshold bounds that I/O on long-lived repos at the cost of
/// keeping up to this fraction of dead payload per pack.
pub const DEFAULT_GC_DEAD_FRACTION: f64 = 0.5;

fn gc_dead_fraction_from_env() -> f64 {
    std::env::var(GC_DEAD_FRACTION_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|f| f.is_finite())
        .map(|f| f.clamp(0.0, 1.0))
        .unwrap_or(DEFAULT_GC_DEAD_FRACTION)
}

/// Where one object lives: pack slot + absolute file offset + length.
#[derive(Clone, Copy, Debug)]
struct ObjLoc {
    pack: u32,
    offset: u64,
    len: u32,
}

/// In-memory pack-index cache (shared across clones of the handle).
#[derive(Debug, Default)]
struct PackIndex {
    /// Slot → pack file name; `None` marks a deleted pack.
    packs: Vec<Option<String>>,
    /// Pack file name → slot.
    by_name: BTreeMap<String, u32>,
    /// Object hash → location.
    objects: BTreeMap<ContentHash, ObjLoc>,
    /// Incrementally maintained aggregate statistics.
    stats: StoreStats,
}

impl PackIndex {
    fn insert_pack(&mut self, name: String, entries: Vec<(ContentHash, u64, u32)>) {
        let slot = match self.by_name.get(&name) {
            Some(slot) => *slot,
            None => {
                let slot = self.packs.len() as u32;
                self.packs.push(Some(name.clone()));
                self.by_name.insert(name, slot);
                slot
            }
        };
        for (hash, offset, len) in entries {
            // Content addressing makes duplicates across packs identical;
            // first location wins so stats count each object once.
            if let std::collections::btree_map::Entry::Vacant(e) = self.objects.entry(hash) {
                e.insert(ObjLoc {
                    pack: slot,
                    offset,
                    len,
                });
                self.stats.object_count += 1;
                self.stats.total_bytes += len as u64;
            }
        }
    }

    /// Drops a pack whose object hashes are unknown (externally deleted
    /// pack discovered by `refresh`): scans the whole index once.
    fn remove_pack(&mut self, slot: u32) {
        let doomed: Vec<ContentHash> = self
            .objects
            .iter()
            .filter(|(_, loc)| loc.pack == slot)
            .map(|(h, _)| *h)
            .collect();
        self.remove_pack_entries(slot, &doomed);
    }

    /// Drops a pack given its object hashes (the sweep path, which has
    /// them grouped already) — proportional to the pack's own entry
    /// count, not the whole index.
    fn remove_pack_entries(&mut self, slot: u32, hashes: &[ContentHash]) {
        if let Some(name) = self.packs[slot as usize].take() {
            self.by_name.remove(&name);
        }
        for hash in hashes {
            // Only remove entries that still point at this pack: a hash
            // can have been re-homed by a later insert.
            if let Some(loc) = self.objects.get(hash) {
                if loc.pack != slot {
                    continue;
                }
                let len = loc.len;
                self.objects.remove(hash);
                self.stats.object_count -= 1;
                self.stats.total_bytes -= len as u64;
            }
        }
    }
}

/// Read-pass bookkeeping shared across clones of a handle: pass nesting
/// depth and whether the one allowed miss-rescan of this pass has fired.
#[derive(Debug, Default)]
struct PassState {
    depth: std::sync::atomic::AtomicUsize,
    refreshed: std::sync::atomic::AtomicBool,
}

/// MRU pack-descriptor cache slot: `(pack file name, open descriptor)`.
type MruPack = Option<(String, Arc<fs::File>)>;

/// Handle to an on-disk packed object store rooted at `packs/` + `tmp/`.
#[derive(Debug, Clone)]
pub struct PackStore {
    packs_dir: PathBuf,
    tmp_dir: PathBuf,
    index: Arc<Mutex<PackIndex>>,
    /// Read-pass gate for miss-triggered index rescans.
    pass: Arc<PassState>,
    /// Lifetime count of `packs/` directory rescans (the recovery-path
    /// cost the read-pass gate bounds; asserted by regression tests).
    rescans: Arc<std::sync::atomic::AtomicU64>,
    /// Most-recently-read pack's open file, so a recovery walk reading
    /// hundreds of chunks out of one pack pays one `open`, not one per
    /// chunk. Packs are immutable and content-named, so a cached
    /// descriptor can never serve stale bytes.
    mru_pack: Arc<Mutex<MruPack>>,
    /// Minimum dead fraction (by object count) before a mixed pack is
    /// rewritten during [`ObjectStore::sweep`]; see
    /// [`GC_DEAD_FRACTION_ENV`].
    gc_dead_fraction: f64,
}

impl PackStore {
    /// Opens (creating if necessary) a pack store under `root`, loading
    /// the index of every existing pack.
    ///
    /// # Errors
    ///
    /// Fails if directories cannot be created or listed. Individually
    /// damaged pack files are skipped (their objects read as missing),
    /// matching the "detect and fall back" recovery contract.
    pub fn open(root: &Path) -> Result<Self> {
        let packs_dir = root.join("packs");
        let tmp_dir = root.join("tmp");
        fs::create_dir_all(&packs_dir)
            .map_err(|e| Error::io(format!("creating {}", packs_dir.display()), e))?;
        fs::create_dir_all(&tmp_dir)
            .map_err(|e| Error::io(format!("creating {}", tmp_dir.display()), e))?;
        let store = PackStore {
            packs_dir,
            tmp_dir,
            index: Arc::new(Mutex::new(PackIndex::default())),
            pass: Arc::new(PassState::default()),
            rescans: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            mru_pack: Arc::new(Mutex::new(None)),
            gc_dead_fraction: gc_dead_fraction_from_env(),
        };
        store.refresh(&mut store.lock())?;
        Ok(store)
    }

    /// Overrides the GC rewrite threshold for this handle (tests and
    /// tuning; the default comes from [`GC_DEAD_FRACTION_ENV`]).
    pub fn set_gc_dead_fraction(&mut self, fraction: f64) {
        self.gc_dead_fraction = fraction.clamp(0.0, 1.0);
    }

    fn lock(&self) -> MutexGuard<'_, PackIndex> {
        self.index.lock().expect("pack index lock poisoned")
    }

    fn pack_path(&self, name: &str) -> PathBuf {
        self.packs_dir.join(name)
    }

    /// Lifetime count of `packs/` directory rescans performed by this
    /// handle (and its clones). During a bracketed read pass the
    /// miss-triggered rescan fires at most once, so e.g. one `recover()`
    /// walk increments this by at most 1 regardless of how many chunks
    /// miss — the regression guard for the slow-pack-recovery bug.
    pub fn index_rescans(&self) -> u64 {
        self.rescans.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Miss-path rescan, bounded inside a read pass: the first miss of a
    /// pass refreshes, later misses are genuine absences (a writer
    /// cannot be publishing packs while recovery holds the repo lock).
    fn refresh_on_miss(&self, index: &mut PackIndex) -> Result<()> {
        use std::sync::atomic::Ordering;
        if self.pass.depth.load(Ordering::Relaxed) > 0
            && self.pass.refreshed.swap(true, Ordering::Relaxed)
        {
            return Ok(());
        }
        self.refresh(index)
    }

    /// Re-syncs the index with the `packs/` directory: loads packs that
    /// appeared (another handle committed) and drops packs that vanished
    /// (another handle swept).
    fn refresh(&self, index: &mut PackIndex) -> Result<()> {
        self.rescans
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let entries = fs::read_dir(&self.packs_dir)
            .map_err(|e| Error::io(format!("listing {}", self.packs_dir.display()), e))?;
        let mut on_disk: BTreeSet<String> = BTreeSet::new();
        for entry in entries {
            let entry = entry.map_err(|e| Error::io("walking packs", e))?;
            let name = entry.file_name().to_string_lossy().to_string();
            if name.starts_with("pack-") && name.ends_with(".qpk") {
                on_disk.insert(name);
            }
        }
        let known: BTreeSet<String> = index.by_name.keys().cloned().collect();
        for gone in known.difference(&on_disk) {
            let slot = index.by_name[gone];
            index.remove_pack(slot);
        }
        for fresh in on_disk.difference(&known) {
            // A pack that fails its frame checks is skipped, not fatal:
            // its objects simply read as missing and recovery falls back.
            if let Ok(entries) = read_pack_index(&self.pack_path(fresh)) {
                index.insert_pack(fresh.clone(), entries);
            }
        }
        Ok(())
    }

    /// Reads one object's payload given its location; retries through a
    /// refresh when the pack vanished mid-read (concurrent sweep).
    fn read_object(&self, reference: &ChunkRef) -> Result<Vec<u8>> {
        let (f, loc, path) = self.open_object(reference)?;
        let mut buf = vec![0u8; loc.len as usize];
        read_exact_at(&f, &mut buf, loc.offset)
            .map_err(|e| Error::io(format!("reading {}", path.display()), e))?;
        verify_chunk(reference, &buf)?;
        Ok(buf)
    }

    /// Resolves one object to an open pack descriptor + location;
    /// retries through a refresh when the pack vanished mid-lookup
    /// (concurrent sweep).
    fn open_object(&self, reference: &ChunkRef) -> Result<(Arc<fs::File>, ObjLoc, PathBuf)> {
        for attempt in 0..2 {
            let loc = {
                let mut index = self.lock();
                match index.objects.get(&reference.hash) {
                    Some(loc) => {
                        let name = index.packs[loc.pack as usize]
                            .clone()
                            .expect("live object points at live pack");
                        Some((name, *loc))
                    }
                    None => {
                        if attempt == 0 {
                            self.refresh_on_miss(&mut index)?;
                            match index.objects.get(&reference.hash) {
                                Some(loc) => {
                                    let name = index.packs[loc.pack as usize]
                                        .clone()
                                        .expect("live object points at live pack");
                                    Some((name, *loc))
                                }
                                None => None,
                            }
                        } else {
                            None
                        }
                    }
                }
            };
            let Some((name, loc)) = loc else { break };
            let path = self.pack_path(&name);
            // Serve consecutive reads of the same pack through one open
            // descriptor (packs are immutable, so the cache cannot go
            // stale — at worst the file was unlinked, which a held fd
            // survives anyway).
            let cached = {
                let mru = self.mru_pack.lock().expect("mru lock poisoned");
                mru.as_ref()
                    .filter(|(n, _)| *n == name)
                    .map(|(_, f)| Arc::clone(f))
            };
            let open_result = match cached {
                Some(f) => Ok(f),
                None => fs::File::open(&path).map(Arc::new).inspect(|f| {
                    *self.mru_pack.lock().expect("mru lock poisoned") =
                        Some((name.clone(), Arc::clone(f)));
                }),
            };
            match open_result {
                Ok(f) => return Ok((f, loc, path)),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    // Pack deleted under us; resync and retry once.
                    self.refresh(&mut self.lock())?;
                    continue;
                }
                Err(e) => return Err(Error::io(format!("opening {}", path.display()), e)),
            }
        }
        Err(Error::NotFound {
            what: format!("chunk {}", reference.hash),
        })
    }

    /// Serializes, stages and atomically publishes one pack holding
    /// `blobs` (hash + payload per object). Returns the pack name.
    fn write_pack(&self, blobs: &[(ContentHash, &[u8])], fsync: bool) -> Result<String> {
        let payload_len: usize = blobs.iter().map(|(_, b)| b.len()).sum();
        let mut bytes =
            Vec::with_capacity(HEADER_LEN as usize + payload_len + blobs.len() * ENTRY_LEN + 32);
        bytes.extend_from_slice(PACK_MAGIC);
        bytes.extend_from_slice(&PACK_VERSION.to_le_bytes());
        let mut offsets = Vec::with_capacity(blobs.len());
        for (_, blob) in blobs {
            offsets.push(bytes.len() as u64);
            bytes.extend_from_slice(blob);
        }
        let index_offset = bytes.len() as u64;
        let mut index_bytes = Vec::with_capacity(blobs.len() * ENTRY_LEN);
        for ((hash, blob), offset) in blobs.iter().zip(&offsets) {
            index_bytes.extend_from_slice(&hash.0);
            index_bytes.extend_from_slice(&offset.to_le_bytes());
            index_bytes.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        }
        let index_crc = crc32(&index_bytes);
        bytes.extend_from_slice(&index_bytes);
        bytes.extend_from_slice(&index_offset.to_le_bytes());
        bytes.extend_from_slice(&(blobs.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&index_crc.to_le_bytes());
        bytes.extend_from_slice(PACK_TAIL);

        let name = format!("pack-{}.qpk", Sha256::digest(&bytes).to_hex());
        let target = self.pack_path(&name);
        if target.is_file() {
            // Identical pack already published (same content committed by
            // another handle): publishing again would be a no-op.
            return Ok(name);
        }
        let tmp = self.tmp_dir.join(format!(
            "pack-{}-{}",
            std::process::id(),
            crc32(name.as_bytes())
        ));
        {
            let mut f = fs::File::create(&tmp)
                .map_err(|e| Error::io(format!("creating {}", tmp.display()), e))?;
            f.write_all(&bytes)
                .map_err(|e| Error::io(format!("writing {}", tmp.display()), e))?;
            if fsync {
                qobs::time(&crate::obs::FSYNC_NS, || f.sync_all())
                    .map_err(|e| Error::io(format!("syncing {}", tmp.display()), e))?;
            }
        }
        qobs::time(&crate::obs::RENAME_NS, || fs::rename(&tmp, &target))
            .map_err(|e| Error::io(format!("renaming into {}", target.display()), e))?;
        Ok(name)
    }
}

impl ObjectStore for PackStore {
    fn put_batch(&self, chunks: &[StagedChunk<'_>], fsync: bool) -> Result<BatchPutReport> {
        let mut report = BatchPutReport {
            fresh: Vec::with_capacity(chunks.len()),
            ..BatchPutReport::default()
        };
        let mut index = self.lock();
        // Distrust stale dedup hits: another handle's sweep may have
        // deleted a pack this index still references. Stat each distinct
        // pack a hit points at (once per batch); any missing pack forces
        // a resync, after which its objects correctly read as absent and
        // get rewritten — silently "deduping" against a deleted pack
        // would commit a manifest referencing a hole.
        {
            let mut checked: BTreeSet<u32> = BTreeSet::new();
            let mut stale = false;
            for chunk in chunks {
                if let Some(loc) = index.objects.get(&chunk.reference.hash) {
                    if checked.insert(loc.pack) {
                        let name = index.packs[loc.pack as usize]
                            .as_ref()
                            .expect("live object points at live pack");
                        if !self.pack_path(name).is_file() {
                            stale = true;
                            break;
                        }
                    }
                }
            }
            if stale {
                self.refresh(&mut index)?;
            }
        }
        let mut batch_new: BTreeSet<ContentHash> = BTreeSet::new();
        let mut blobs: Vec<(ContentHash, &[u8])> = Vec::new();
        for chunk in chunks {
            let hash = chunk.reference.hash;
            let fresh = !index.objects.contains_key(&hash) && batch_new.insert(hash);
            if fresh {
                blobs.push((hash, chunk.data));
            }
            report.fresh.push(fresh);
        }
        if blobs.is_empty() {
            return Ok(report);
        }
        let name = self.write_pack(&blobs, fsync)?;
        report.renames = 1;
        report.fsyncs = u64::from(fsync);
        // Offsets restate the serialization layout: blobs start right
        // after the header, in input order.
        let mut offset = HEADER_LEN;
        let entries: Vec<(ContentHash, u64, u32)> = blobs
            .iter()
            .map(|(hash, blob)| {
                let entry = (*hash, offset, blob.len() as u32);
                offset += blob.len() as u64;
                entry
            })
            .collect();
        index.insert_pack(name, entries);
        Ok(report)
    }

    fn get(&self, reference: &ChunkRef) -> Result<Vec<u8>> {
        self.read_object(reference)
    }

    fn get_many(&self, refs: &[ChunkRef]) -> Result<Vec<Vec<u8>>> {
        // One batch = one read pass: at most one miss-triggered index
        // rescan for the whole burst.
        self.begin_read_pass();
        let out = refs.iter().map(|r| self.read_object(r)).collect();
        self.end_read_pass();
        out
    }

    fn begin_read_pass(&self) {
        use std::sync::atomic::Ordering;
        if self.pass.depth.fetch_add(1, Ordering::Relaxed) == 0 {
            self.pass.refreshed.store(false, Ordering::Relaxed);
        }
    }

    fn end_read_pass(&self) {
        self.pass
            .depth
            .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn contains(&self, hash: &ContentHash) -> bool {
        let mut index = self.lock();
        if let Some(loc) = index.objects.get(hash) {
            // Confirm the pack file still exists: a concurrent sweep may
            // have deleted it, and a stale `true` would let the save path
            // write a delta against a hole.
            let name = index.packs[loc.pack as usize]
                .as_ref()
                .expect("live object points at live pack");
            return self.pack_path(name).is_file();
        }
        if self.refresh_on_miss(&mut index).is_err() {
            return false;
        }
        index.objects.contains_key(hash)
    }

    fn contains_all(&self, hashes: &[ContentHash]) -> bool {
        fn check(store: &PackStore, index: &PackIndex, hashes: &[ContentHash]) -> bool {
            // Stat each distinct pack once per call, not once per chunk:
            // a delta-chain existence check spans hundreds of chunks but
            // only ~chain-length packs.
            let mut pack_ok: BTreeMap<u32, bool> = BTreeMap::new();
            hashes.iter().all(|h| match index.objects.get(h) {
                Some(loc) => *pack_ok.entry(loc.pack).or_insert_with(|| {
                    let name = index.packs[loc.pack as usize]
                        .as_ref()
                        .expect("live object points at live pack");
                    store.pack_path(name).is_file()
                }),
                None => false,
            })
        }
        let mut index = self.lock();
        if check(self, &index, hashes) {
            return true;
        }
        // Miss or vanished pack: resync once and re-answer.
        if self.refresh_on_miss(&mut index).is_err() {
            return false;
        }
        check(self, &index, hashes)
    }

    fn list(&self) -> Result<Vec<ContentHash>> {
        let mut index = self.lock();
        self.refresh(&mut index)?;
        Ok(index.objects.keys().copied().collect())
    }

    fn sweep(&self, reachable: &BTreeSet<ContentHash>) -> Result<GcReport> {
        let mut index = self.lock();
        self.refresh(&mut index)?;
        let mut report = GcReport::default();

        // Group objects by pack slot.
        let mut per_pack: BTreeMap<u32, Vec<(ContentHash, ObjLoc)>> = BTreeMap::new();
        for (hash, loc) in &index.objects {
            per_pack.entry(loc.pack).or_default().push((*hash, *loc));
        }

        for (slot, entries) in per_pack {
            let live: Vec<&(ContentHash, ObjLoc)> = entries
                .iter()
                .filter(|(h, _)| reachable.contains(h))
                .collect();
            let dead_count = entries.len() - live.len();
            let dead_bytes: u64 = entries
                .iter()
                .filter(|(h, _)| !reachable.contains(h))
                .map(|(_, loc)| loc.len as u64)
                .sum();
            report.live += live.len();
            if dead_count == 0 {
                continue;
            }
            // Compaction threshold: rewriting a mixed pack copies every
            // live byte, so a barely-fragmented pack is left alone until
            // enough of it dies. Fraction is over object count (robust to
            // empty chunks); fully dead packs always delete.
            let dead_fraction = dead_count as f64 / entries.len() as f64;
            if !live.is_empty() && dead_fraction <= self.gc_dead_fraction {
                report.deferred += dead_count;
                report.deferred_bytes += dead_bytes;
                continue;
            }
            report.deleted += dead_count;
            report.reclaimed_bytes += dead_bytes;
            let name = index.packs[slot as usize]
                .clone()
                .expect("swept slot is live");
            let old_path = self.pack_path(&name);
            let pack_hashes: Vec<ContentHash> = entries.iter().map(|(h, _)| *h).collect();
            if live.is_empty() {
                fs::remove_file(&old_path)
                    .map_err(|e| Error::io(format!("deleting {}", old_path.display()), e))?;
                index.remove_pack_entries(slot, &pack_hashes);
                continue;
            }
            // Mixed pack: rewrite the live objects into a new pack, publish
            // it, then drop the old one. A crash in between leaves both
            // packs on disk with duplicate (identical) objects — safe.
            let old_bytes = fs::read(&old_path)
                .map_err(|e| Error::io(format!("reading {}", old_path.display()), e))?;
            let blobs: Vec<(ContentHash, &[u8])> = live
                .iter()
                .map(|(hash, loc)| {
                    let start = loc.offset as usize;
                    (*hash, &old_bytes[start..start + loc.len as usize])
                })
                .collect();
            let new_name = self.write_pack(&blobs, false)?;
            let mut offset = HEADER_LEN;
            let new_entries: Vec<(ContentHash, u64, u32)> = blobs
                .iter()
                .map(|(hash, blob)| {
                    let entry = (*hash, offset, blob.len() as u32);
                    offset += blob.len() as u64;
                    entry
                })
                .collect();
            index.remove_pack_entries(slot, &pack_hashes);
            index.insert_pack(new_name, new_entries);
            let _ = fs::remove_file(&old_path);
        }
        drop(index);
        self.clear_staging()?;
        Ok(report)
    }

    fn plan_sweep(&self, reachable: &BTreeSet<ContentHash>) -> Result<GcReport> {
        let mut index = self.lock();
        self.refresh(&mut index)?;
        let mut report = GcReport::default();
        // Same per-pack grouping and threshold arithmetic as `sweep`,
        // with the I/O arms replaced by accounting.
        let mut per_pack: BTreeMap<u32, Vec<(ContentHash, ObjLoc)>> = BTreeMap::new();
        for (hash, loc) in &index.objects {
            per_pack.entry(loc.pack).or_default().push((*hash, *loc));
        }
        for entries in per_pack.values() {
            let live = entries
                .iter()
                .filter(|(h, _)| reachable.contains(h))
                .count();
            let dead_count = entries.len() - live;
            let dead_bytes: u64 = entries
                .iter()
                .filter(|(h, _)| !reachable.contains(h))
                .map(|(_, loc)| loc.len as u64)
                .sum();
            report.live += live;
            if dead_count == 0 {
                continue;
            }
            let dead_fraction = dead_count as f64 / entries.len() as f64;
            if live > 0 && dead_fraction <= self.gc_dead_fraction {
                report.deferred += dead_count;
                report.deferred_bytes += dead_bytes;
            } else {
                report.deleted += dead_count;
                report.reclaimed_bytes += dead_bytes;
            }
        }
        Ok(report)
    }

    fn stats(&self) -> Result<StoreStats> {
        let mut index = self.lock();
        // A directory listing (not an object walk) keeps multi-handle
        // numbers honest; the per-object work stays incremental.
        self.refresh(&mut index)?;
        Ok(index.stats)
    }

    fn clear_staging(&self) -> Result<usize> {
        clear_dir_files(&self.tmp_dir)
    }

    fn get_stream(
        &self,
        reference: &ChunkRef,
        segment: usize,
        sink: &mut dyn FnMut(&[u8]) -> Result<()>,
    ) -> Result<()> {
        let (f, loc, path) = self.open_object(reference)?;
        if loc.len != reference.len {
            return Err(Error::corrupt(
                format!("chunk {}", reference.hash),
                format!("length {} != expected {}", loc.len, reference.len),
            ));
        }
        let mut hasher = Sha256::new();
        let mut buf = vec![0u8; segment.clamp(1, reference.len.max(1) as usize)];
        let mut done = 0u64;
        while done < u64::from(loc.len) {
            let n = buf.len().min((u64::from(loc.len) - done) as usize);
            read_exact_at(&f, &mut buf[..n], loc.offset + done)
                .map_err(|e| Error::io(format!("reading {}", path.display()), e))?;
            hasher.update(&buf[..n]);
            sink(&buf[..n])?;
            done += n as u64;
        }
        let actual = hasher.finalize();
        if actual != reference.hash {
            return Err(Error::corrupt(
                format!("chunk {}", reference.hash),
                format!("content hash mismatch (got {actual})"),
            ));
        }
        Ok(())
    }

    fn put_stream(
        &self,
        reference: &ChunkRef,
        source: &mut dyn FnMut() -> Result<Option<Vec<u8>>>,
        fsync: bool,
    ) -> Result<bool> {
        if self.contains(&reference.hash) {
            // Dedup hit: still drain the source so wire-backed callers
            // keep their framing aligned.
            while source()?.is_some() {}
            return Ok(false);
        }
        // Stage a single-object pack, hashing the payload (content
        // address) and the whole file (pack name) incrementally so no
        // full-chunk buffer ever exists.
        static STREAM_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = self.tmp_dir.join(format!(
            "pack-stream-{}-{}",
            std::process::id(),
            STREAM_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let staged = (|| -> Result<(fs::File, ContentHash)> {
            let mut file = fs::File::create(&tmp)
                .map_err(|e| Error::io(format!("creating {}", tmp.display()), e))?;
            let mut file_hash = Sha256::new();
            let mut write = |bytes: &[u8]| -> Result<()> {
                file_hash.update(bytes);
                file.write_all(bytes)
                    .map_err(|e| Error::io(format!("writing {}", tmp.display()), e))
            };
            write(PACK_MAGIC)?;
            write(&PACK_VERSION.to_le_bytes())?;
            let mut content = Sha256::new();
            let mut total = 0u64;
            while let Some(seg) = source()? {
                content.update(&seg);
                total += seg.len() as u64;
                write(&seg)?;
            }
            if total != u64::from(reference.len) {
                return Err(Error::corrupt(
                    format!("chunk {}", reference.hash),
                    format!("length {total} != expected {}", reference.len),
                ));
            }
            let actual = content.finalize();
            if actual != reference.hash {
                return Err(Error::corrupt(
                    format!("chunk {}", reference.hash),
                    format!("content hash mismatch (got {actual})"),
                ));
            }
            // Single-entry index + footer, identical to `write_pack`'s
            // layout for a one-blob batch.
            let index_offset = HEADER_LEN + total;
            let mut index_bytes = Vec::with_capacity(ENTRY_LEN);
            index_bytes.extend_from_slice(&reference.hash.0);
            index_bytes.extend_from_slice(&HEADER_LEN.to_le_bytes());
            index_bytes.extend_from_slice(&reference.len.to_le_bytes());
            write(&index_bytes)?;
            write(&index_offset.to_le_bytes())?;
            write(&1u32.to_le_bytes())?;
            write(&crc32(&index_bytes).to_le_bytes())?;
            write(PACK_TAIL)?;
            let name_hash = file_hash.finalize();
            Ok((file, name_hash))
        })();
        let (file, name_hash) = match staged {
            Ok(v) => v,
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                return Err(e);
            }
        };
        let name = format!("pack-{}.qpk", name_hash.to_hex());
        let target = self.pack_path(&name);
        let publish = (|| -> Result<()> {
            if fsync {
                qobs::time(&crate::obs::FSYNC_NS, || file.sync_all())
                    .map_err(|e| Error::io(format!("syncing {}", tmp.display()), e))?;
            }
            qobs::time(&crate::obs::RENAME_NS, || fs::rename(&tmp, &target))
                .map_err(|e| Error::io(format!("renaming into {}", target.display()), e))
        })();
        if let Err(e) = publish {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        self.lock()
            .insert_pack(name, vec![(reference.hash, HEADER_LEN, reference.len)]);
        Ok(true)
    }

    #[cfg(any(test, feature = "testing"))]
    fn corrupt_object(&self, hash: &ContentHash, offset: usize) -> Result<()> {
        let (name, loc) = {
            let mut index = self.lock();
            self.refresh(&mut index)?;
            let loc = *index.objects.get(hash).ok_or_else(|| Error::NotFound {
                what: format!("chunk {hash}"),
            })?;
            let name = index.packs[loc.pack as usize]
                .clone()
                .expect("live object points at live pack");
            (name, loc)
        };
        if loc.len == 0 {
            return Err(Error::corrupt("object", "cannot corrupt empty object"));
        }
        let path = self.pack_path(&name);
        let mut data = fs::read(&path).map_err(|e| Error::io("reading pack", e))?;
        let i = loc.offset as usize + (offset % loc.len as usize);
        data[i] ^= 0x01;
        fs::write(&path, data).map_err(|e| Error::io("writing corrupted pack", e))?;
        Ok(())
    }
}

/// Positioned read that leaves the file cursor untouched on Unix.
#[cfg(unix)]
fn read_exact_at(f: &fs::File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    f.read_exact_at(buf, offset)
}

/// Portable fallback: seek then read through the shared handle.
#[cfg(not(unix))]
fn read_exact_at(mut f: &fs::File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

/// Opens one pack file and returns its `(hash, offset, len)` entries after
/// full frame verification (magics, version, bounds, index CRC).
fn read_pack_index(path: &Path) -> Result<Vec<(ContentHash, u64, u32)>> {
    let corrupt = |detail: String| Error::corrupt(format!("pack {}", path.display()), detail);
    let f =
        fs::File::open(path).map_err(|e| Error::io(format!("opening {}", path.display()), e))?;
    let file_len = f.metadata().map_err(|e| Error::io("stat pack", e))?.len();
    if file_len < HEADER_LEN + FOOTER_LEN {
        return Err(corrupt(format!("short file ({file_len} B)")));
    }
    let mut header = [0u8; HEADER_LEN as usize];
    read_exact_at(&f, &mut header, 0).map_err(|e| Error::io("reading pack header", e))?;
    if &header[..6] != PACK_MAGIC {
        return Err(corrupt("bad magic".into()));
    }
    let version = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if version != PACK_VERSION {
        return Err(Error::UnsupportedVersion {
            found: version,
            supported: PACK_VERSION,
        });
    }
    let mut footer = [0u8; FOOTER_LEN as usize];
    read_exact_at(&f, &mut footer, file_len - FOOTER_LEN)
        .map_err(|e| Error::io("reading pack footer", e))?;
    if &footer[16..24] != PACK_TAIL {
        return Err(corrupt("bad tail magic (torn write?)".into()));
    }
    let index_offset = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes"));
    let count = u32::from_le_bytes(footer[8..12].try_into().expect("4 bytes")) as usize;
    let stored_crc = u32::from_le_bytes(footer[12..16].try_into().expect("4 bytes"));
    let index_len = count
        .checked_mul(ENTRY_LEN)
        .ok_or_else(|| corrupt("index count overflow".into()))? as u64;
    if index_offset < HEADER_LEN || index_offset + index_len != file_len - FOOTER_LEN {
        return Err(corrupt("index bounds mismatch".into()));
    }
    let mut index_bytes = vec![0u8; index_len as usize];
    read_exact_at(&f, &mut index_bytes, index_offset)
        .map_err(|e| Error::io("reading pack index", e))?;
    if crc32(&index_bytes) != stored_crc {
        return Err(corrupt("index crc mismatch".into()));
    }
    let mut entries = Vec::with_capacity(count);
    for chunk in index_bytes.chunks_exact(ENTRY_LEN) {
        let mut hash = [0u8; 32];
        hash.copy_from_slice(&chunk[..32]);
        let offset = u64::from_le_bytes(chunk[32..40].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(chunk[40..44].try_into().expect("4 bytes"));
        if offset < HEADER_LEN || offset + len as u64 > index_offset {
            return Err(corrupt("entry bounds mismatch".into()));
        }
        entries.push((ContentHash(hash), offset, len));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::TempDir;
    use super::*;

    fn temp_store() -> (TempDir, PackStore) {
        let dir = TempDir::new();
        let store = PackStore::open(dir.path()).unwrap();
        (dir, store)
    }

    fn stage(blobs: &[Vec<u8>]) -> Vec<StagedChunk<'_>> {
        blobs
            .iter()
            .map(|b| StagedChunk {
                reference: ChunkRef {
                    hash: Sha256::digest(b),
                    len: b.len() as u32,
                },
                data: b,
            })
            .collect()
    }

    fn pack_files(dir: &TempDir) -> Vec<PathBuf> {
        let mut out: Vec<PathBuf> = fs::read_dir(dir.path().join("packs"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        out.sort();
        out
    }

    #[test]
    fn batch_commits_with_single_rename() {
        let (dir, store) = temp_store();
        let blobs: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 512]).collect();
        let report = store.put_batch(&stage(&blobs), true).unwrap();
        assert!(report.fresh.iter().all(|f| *f));
        assert_eq!(report.renames, 1, "whole batch must commit in one rename");
        assert_eq!(report.fsyncs, 1, "whole batch must commit in one fsync");
        assert_eq!(pack_files(&dir).len(), 1);
        for staged in stage(&blobs) {
            assert_eq!(store.get(&staged.reference).unwrap(), staged.data);
            assert!(store.contains(&staged.reference.hash));
        }
    }

    #[test]
    fn dedup_across_batches_writes_nothing() {
        let (dir, store) = temp_store();
        let blobs: Vec<Vec<u8>> = vec![vec![7; 4096], vec![9; 100]];
        let r1 = store.put_batch(&stage(&blobs), false).unwrap();
        let r2 = store.put_batch(&stage(&blobs), false).unwrap();
        assert_eq!(r1.fresh, vec![true, true]);
        assert_eq!(r2.fresh, vec![false, false]);
        assert_eq!(r2.renames, 0, "full dedup batch must not create a pack");
        assert_eq!(pack_files(&dir).len(), 1);
        assert_eq!(store.stats().unwrap().object_count, 2);
    }

    #[test]
    fn within_batch_duplicates_stored_once() {
        let (_d, store) = temp_store();
        let blobs: Vec<Vec<u8>> = vec![vec![1; 64], vec![1; 64], vec![2; 64]];
        let report = store.put_batch(&stage(&blobs), false).unwrap();
        assert_eq!(report.fresh, vec![true, false, true]);
        let stats = store.stats().unwrap();
        assert_eq!(stats.object_count, 2);
        assert_eq!(stats.total_bytes, 128);
    }

    #[test]
    fn get_missing_is_not_found() {
        let (_d, store) = temp_store();
        let r = ChunkRef {
            hash: Sha256::digest(b"never stored"),
            len: 12,
        };
        assert!(matches!(store.get(&r), Err(Error::NotFound { .. })));
    }

    #[test]
    fn empty_chunk_is_storable() {
        let (_d, store) = temp_store();
        let (r, fresh) = store.put(b"").unwrap();
        assert!(fresh);
        assert_eq!(store.get(&r).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn corruption_is_detected_on_get() {
        let (_d, store) = temp_store();
        let (r, _) = store.put(&[7u8; 100]).unwrap();
        store.corrupt_object(&r.hash, 13).unwrap();
        match store.get(&r) {
            Err(Error::Corrupt { detail, .. }) => assert!(detail.contains("hash mismatch")),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn torn_pack_is_ignored_on_open() {
        let (dir, store) = temp_store();
        let (r, _) = store.put(&[5u8; 2000]).unwrap();
        let pack = pack_files(&dir).pop().unwrap();
        let bytes = fs::read(&pack).unwrap();
        fs::write(&pack, &bytes[..bytes.len() / 2]).unwrap();
        // A fresh handle must reject the torn pack wholesale.
        let reopened = PackStore::open(dir.path()).unwrap();
        assert!(matches!(reopened.get(&r), Err(Error::NotFound { .. })));
        assert_eq!(reopened.stats().unwrap().object_count, 0);
    }

    #[test]
    fn put_after_cross_handle_sweep_rewrites_the_object() {
        let (dir, a) = temp_store();
        let (r, _) = a.put(b"reappearing content").unwrap();
        // A second handle sweeps the (currently unreachable) object away…
        let b = PackStore::open(dir.path()).unwrap();
        b.sweep(&BTreeSet::new()).unwrap();
        // …so A's next put of the same content must NOT dedup against its
        // stale index: that would commit a reference to a hole.
        let (r2, fresh) = a.put(b"reappearing content").unwrap();
        assert_eq!(r, r2);
        assert!(fresh, "stale dedup hit after external sweep");
        assert_eq!(a.get(&r).unwrap(), b"reappearing content");
        assert!(a.contains_all(&[r.hash]));
    }

    #[test]
    fn contains_all_matches_per_hash_contains() {
        let (_d, store) = temp_store();
        let blobs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 100]).collect();
        let staged = stage(&blobs);
        store.put_batch(&staged, false).unwrap();
        let present: Vec<ContentHash> = staged.iter().map(|s| s.reference.hash).collect();
        assert!(store.contains_all(&present));
        let mut with_missing = present.clone();
        with_missing.push(Sha256::digest(b"never stored"));
        assert!(!store.contains_all(&with_missing));
        assert!(store.contains_all(&[]));
    }

    #[test]
    fn cross_handle_reads_see_new_packs() {
        let (dir, writer) = temp_store();
        let reader = PackStore::open(dir.path()).unwrap();
        let (r, _) = writer.put(b"published after reader opened").unwrap();
        assert_eq!(
            reader.get(&r).unwrap(),
            b"published after reader opened",
            "index cache must refresh on miss"
        );
        assert!(reader.contains(&r.hash));
    }

    #[test]
    fn sweep_defers_packs_below_the_dead_fraction_threshold() {
        let (dir, mut store) = temp_store();
        store.set_gc_dead_fraction(0.5);
        let blobs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 200]).collect();
        let staged = stage(&blobs);
        store.put_batch(&staged, false).unwrap();
        let before = pack_files(&dir);
        // 1 of 4 objects dead (0.25 ≤ 0.5): the pack is left untouched —
        // zero GC I/O, the fragmentation is only recorded.
        let reachable: BTreeSet<ContentHash> =
            staged[..3].iter().map(|s| s.reference.hash).collect();
        let report = store.sweep(&reachable).unwrap();
        assert_eq!(report.deleted, 0);
        assert_eq!(report.deferred, 1);
        assert_eq!(report.deferred_bytes, 200);
        assert_eq!(report.live, 3);
        assert_eq!(
            pack_files(&dir),
            before,
            "deferred sweep must do no pack I/O"
        );
        // The deferred object stays readable until a later sweep.
        assert_eq!(store.get(&staged[3].reference).unwrap(), blobs[3]);
        // 3 of 4 dead (0.75 > 0.5): the threshold trips and the pack is
        // rewritten down to the single live object.
        let reachable: BTreeSet<ContentHash> =
            staged[..1].iter().map(|s| s.reference.hash).collect();
        let report = store.sweep(&reachable).unwrap();
        assert_eq!(report.deleted, 3);
        assert_eq!(report.deferred, 0);
        assert_eq!(report.reclaimed_bytes, 600);
        let after = pack_files(&dir);
        assert_eq!(after.len(), 1);
        assert_ne!(after, before, "crossing the threshold rewrites the pack");
        assert_eq!(store.get(&staged[0].reference).unwrap(), blobs[0]);
        assert!(!store.contains(&staged[3].reference.hash));
    }

    #[test]
    fn fully_dead_packs_delete_regardless_of_threshold() {
        let (dir, mut store) = temp_store();
        store.set_gc_dead_fraction(1.0);
        store.put_batch(&stage(&[vec![9u8; 400]]), false).unwrap();
        let report = store.sweep(&BTreeSet::new()).unwrap();
        assert_eq!(report.deleted, 1);
        assert_eq!(report.deferred, 0);
        assert!(pack_files(&dir).is_empty());
    }

    #[test]
    fn sweep_deletes_dead_packs_and_rewrites_mixed_ones() {
        let (dir, mut store) = temp_store();
        // Threshold 0 = the historical eager behavior: any fragmentation
        // rewrites the pack.
        store.set_gc_dead_fraction(0.0);
        // Pack 1: fully dead. Pack 2: mixed.
        let doomed: Vec<Vec<u8>> = vec![vec![1; 300], vec![2; 300]];
        store.put_batch(&stage(&doomed), false).unwrap();
        let mixed: Vec<Vec<u8>> = vec![vec![3; 300], vec![4; 300]];
        let staged = stage(&mixed);
        store.put_batch(&staged, false).unwrap();

        let mut reachable = BTreeSet::new();
        reachable.insert(staged[0].reference.hash);
        let report = store.sweep(&reachable).unwrap();
        assert_eq!(report.live, 1);
        assert_eq!(report.deleted, 3);
        assert_eq!(report.reclaimed_bytes, 900);
        assert_eq!(
            pack_files(&dir).len(),
            1,
            "dead pack gone, mixed pack rewritten"
        );
        assert_eq!(store.get(&staged[0].reference).unwrap(), mixed[0]);
        assert!(!store.contains(&staged[1].reference.hash));
        let stats = store.stats().unwrap();
        assert_eq!(stats.object_count, 1);
        assert_eq!(stats.total_bytes, 300);
        // Survivor readable from a cold handle too (index rebuilt from disk).
        let reopened = PackStore::open(dir.path()).unwrap();
        assert_eq!(reopened.get(&staged[0].reference).unwrap(), mixed[0]);
    }

    #[test]
    fn sweep_keeps_fully_live_packs_untouched() {
        let (dir, store) = temp_store();
        let blobs: Vec<Vec<u8>> = vec![vec![8; 100], vec![9; 100]];
        let staged = stage(&blobs);
        store.put_batch(&staged, false).unwrap();
        let before = pack_files(&dir);
        let reachable: BTreeSet<ContentHash> = staged.iter().map(|s| s.reference.hash).collect();
        let report = store.sweep(&reachable).unwrap();
        assert_eq!(report.deleted, 0);
        assert_eq!(report.live, 2);
        assert_eq!(
            pack_files(&dir),
            before,
            "fully live pack must not be rewritten"
        );
    }

    #[test]
    fn list_returns_sorted_hashes() {
        let (_d, store) = temp_store();
        let blobs: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i]).collect();
        store.put_batch(&stage(&blobs), false).unwrap();
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 10);
        let mut sorted = listed.clone();
        sorted.sort();
        assert_eq!(listed, sorted);
    }

    #[test]
    fn clear_staging_removes_orphans() {
        let (dir, store) = temp_store();
        fs::write(dir.path().join("tmp").join("pack-123-9"), b"orphan").unwrap();
        assert_eq!(store.clear_staging().unwrap(), 1);
        assert_eq!(store.clear_staging().unwrap(), 0);
    }
}
