//! Loose object layout: one file per chunk.
//!
//! Chunks live under `objects/<2-hex>/<62-hex>`, named by the SHA-256 of
//! their contents. Writes are idempotent (a chunk that exists is never
//! rewritten — that is the dedup) and crash-safe (stage into `tmp/`, then
//! atomic rename; a crash can leave garbage in `tmp/`, never a half-written
//! object under `objects/`). Every fresh chunk costs one stage-file create
//! plus one rename — the per-object overhead the pack backend batches away.

use std::collections::BTreeSet;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::chunk::ChunkRef;
use crate::error::{Error, Result};
use crate::hash::{ContentHash, Sha256};

use super::{BatchPutReport, GcReport, ObjectStore, StagedChunk, StoreStats};

/// Handle to an on-disk loose object store rooted at `objects/` + `tmp/`.
#[derive(Debug, Clone)]
pub struct LooseStore {
    objects_dir: PathBuf,
    tmp_dir: PathBuf,
    seq: Arc<std::sync::atomic::AtomicU64>,
    /// Incrementally maintained statistics: seeded by the first
    /// [`ObjectStore::stats`] walk (or an exact sweep), then updated by
    /// this handle's writes. `None` until seeded. Another process writing
    /// the same directory invalidates the numbers until the next sweep.
    stats_cache: Arc<Mutex<Option<StoreStats>>>,
}

impl LooseStore {
    /// Opens (creating if necessary) a loose store under `root`.
    ///
    /// # Errors
    ///
    /// Fails if directories cannot be created.
    pub fn open(root: &Path) -> Result<Self> {
        let objects_dir = root.join("objects");
        let tmp_dir = root.join("tmp");
        fs::create_dir_all(&objects_dir)
            .map_err(|e| Error::io(format!("creating {}", objects_dir.display()), e))?;
        fs::create_dir_all(&tmp_dir)
            .map_err(|e| Error::io(format!("creating {}", tmp_dir.display()), e))?;
        Ok(LooseStore {
            objects_dir,
            tmp_dir,
            seq: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            stats_cache: Arc::new(Mutex::new(None)),
        })
    }

    fn object_path(&self, hash: &ContentHash) -> PathBuf {
        self.objects_dir
            .join(hash.dir_prefix())
            .join(hash.file_suffix())
    }

    /// Writes one object file: stage into `tmp/`, rename into `objects/`.
    fn write_object(&self, hash: &ContentHash, data: &[u8], fsync: bool) -> Result<()> {
        let path = self.object_path(hash);
        let dir = path.parent().expect("object path has parent");
        fs::create_dir_all(dir).map_err(|e| Error::io(format!("creating {}", dir.display()), e))?;
        let tmp = self.tmp_dir.join(format!(
            "obj-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)
                .map_err(|e| Error::io(format!("creating {}", tmp.display()), e))?;
            f.write_all(data)
                .map_err(|e| Error::io(format!("writing {}", tmp.display()), e))?;
            if fsync {
                qobs::time(&crate::obs::FSYNC_NS, || f.sync_all())
                    .map_err(|e| Error::io(format!("syncing {}", tmp.display()), e))?;
            }
        }
        qobs::time(&crate::obs::RENAME_NS, || fs::rename(&tmp, &path))
            .map_err(|e| Error::io(format!("renaming into {}", path.display()), e))?;
        Ok(())
    }

    /// Walks the object directory once, returning exact statistics.
    fn walk_stats(&self) -> Result<StoreStats> {
        let mut stats = StoreStats::default();
        for hash in self.list()? {
            let meta =
                fs::metadata(self.object_path(&hash)).map_err(|e| Error::io("stat object", e))?;
            stats.object_count += 1;
            stats.total_bytes += meta.len();
        }
        Ok(stats)
    }
}

impl ObjectStore for LooseStore {
    fn put_batch(&self, chunks: &[StagedChunk<'_>], fsync: bool) -> Result<BatchPutReport> {
        let mut report = BatchPutReport {
            fresh: Vec::with_capacity(chunks.len()),
            ..BatchPutReport::default()
        };
        let mut new_count = 0usize;
        let mut new_bytes = 0u64;
        for chunk in chunks {
            let fresh = if self.object_path(&chunk.reference.hash).is_file() {
                false
            } else {
                self.write_object(&chunk.reference.hash, chunk.data, fsync)?;
                report.renames += 1;
                report.fsyncs += u64::from(fsync);
                new_count += 1;
                new_bytes += chunk.data.len() as u64;
                true
            };
            report.fresh.push(fresh);
        }
        if new_count > 0 {
            if let Some(stats) = self.stats_cache.lock().expect("stats lock").as_mut() {
                stats.object_count += new_count;
                stats.total_bytes += new_bytes;
            }
        }
        Ok(report)
    }

    fn get(&self, reference: &ChunkRef) -> Result<Vec<u8>> {
        let path = self.object_path(&reference.hash);
        let data = fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                Error::NotFound {
                    what: format!("chunk {}", reference.hash),
                }
            } else {
                Error::io(format!("reading {}", path.display()), e)
            }
        })?;
        verify_chunk(reference, &data)?;
        Ok(data)
    }

    fn contains(&self, hash: &ContentHash) -> bool {
        self.object_path(hash).is_file()
    }

    fn list(&self) -> Result<Vec<ContentHash>> {
        let mut out = Vec::new();
        let entries = fs::read_dir(&self.objects_dir)
            .map_err(|e| Error::io(format!("listing {}", self.objects_dir.display()), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| Error::io("walking objects", e))?;
            if !entry.path().is_dir() {
                continue;
            }
            let prefix = entry.file_name().to_string_lossy().to_string();
            let inner = fs::read_dir(entry.path())
                .map_err(|e| Error::io(format!("listing {}", entry.path().display()), e))?;
            for file in inner {
                let file = file.map_err(|e| Error::io("walking objects", e))?;
                let name = file.file_name().to_string_lossy().to_string();
                if let Some(h) = ContentHash::from_hex(&format!("{prefix}{name}")) {
                    out.push(h);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    fn sweep(&self, reachable: &BTreeSet<ContentHash>) -> Result<GcReport> {
        let mut report = GcReport::default();
        let mut live_stats = StoreStats::default();
        for hash in self.list()? {
            let path = self.object_path(&hash);
            let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            if reachable.contains(&hash) {
                report.live += 1;
                live_stats.object_count += 1;
                live_stats.total_bytes += len;
            } else {
                fs::remove_file(&path)
                    .map_err(|e| Error::io(format!("deleting {}", path.display()), e))?;
                report.deleted += 1;
                report.reclaimed_bytes += len;
            }
        }
        // The sweep walked everything, so the cache becomes exact.
        *self.stats_cache.lock().expect("stats lock") = Some(live_stats);
        self.clear_staging()?;
        Ok(report)
    }

    fn plan_sweep(&self, reachable: &BTreeSet<ContentHash>) -> Result<GcReport> {
        let mut report = GcReport::default();
        for hash in self.list()? {
            if reachable.contains(&hash) {
                report.live += 1;
            } else {
                report.deleted += 1;
                report.reclaimed_bytes += fs::metadata(self.object_path(&hash))
                    .map(|m| m.len())
                    .unwrap_or(0);
            }
        }
        Ok(report)
    }

    fn stats(&self) -> Result<StoreStats> {
        let mut guard = self.stats_cache.lock().expect("stats lock");
        if let Some(stats) = *guard {
            return Ok(stats);
        }
        let stats = self.walk_stats()?;
        *guard = Some(stats);
        Ok(stats)
    }

    fn clear_staging(&self) -> Result<usize> {
        clear_dir_files(&self.tmp_dir)
    }

    fn get_stream(
        &self,
        reference: &ChunkRef,
        segment: usize,
        sink: &mut dyn FnMut(&[u8]) -> Result<()>,
    ) -> Result<()> {
        use std::io::Read;
        let path = self.object_path(&reference.hash);
        let mut file = fs::File::open(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                Error::NotFound {
                    what: format!("chunk {}", reference.hash),
                }
            } else {
                Error::io(format!("opening {}", path.display()), e)
            }
        })?;
        let file_len = file
            .metadata()
            .map_err(|e| Error::io("stat object", e))?
            .len();
        if file_len != u64::from(reference.len) {
            return Err(Error::corrupt(
                format!("chunk {}", reference.hash),
                format!("length {file_len} != expected {}", reference.len),
            ));
        }
        let mut hasher = Sha256::new();
        let mut buf = vec![0u8; segment.clamp(1, reference.len.max(1) as usize)];
        loop {
            let n = file
                .read(&mut buf)
                .map_err(|e| Error::io(format!("reading {}", path.display()), e))?;
            if n == 0 {
                break;
            }
            hasher.update(&buf[..n]);
            sink(&buf[..n])?;
        }
        let actual = hasher.finalize();
        if actual != reference.hash {
            return Err(Error::corrupt(
                format!("chunk {}", reference.hash),
                format!("content hash mismatch (got {actual})"),
            ));
        }
        Ok(())
    }

    fn put_stream(
        &self,
        reference: &ChunkRef,
        source: &mut dyn FnMut() -> Result<Option<Vec<u8>>>,
        fsync: bool,
    ) -> Result<bool> {
        let path = self.object_path(&reference.hash);
        if path.is_file() {
            // Dedup hit: still drain the source so wire-backed callers
            // keep their framing aligned.
            while source()?.is_some() {}
            return Ok(false);
        }
        let dir = path.parent().expect("object path has parent");
        fs::create_dir_all(dir).map_err(|e| Error::io(format!("creating {}", dir.display()), e))?;
        let tmp = self.tmp_dir.join(format!(
            "obj-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let commit = (|| -> Result<()> {
            let mut file = fs::File::create(&tmp)
                .map_err(|e| Error::io(format!("creating {}", tmp.display()), e))?;
            let mut hasher = Sha256::new();
            let mut total = 0u64;
            while let Some(seg) = source()? {
                hasher.update(&seg);
                total += seg.len() as u64;
                file.write_all(&seg)
                    .map_err(|e| Error::io(format!("writing {}", tmp.display()), e))?;
            }
            if total != u64::from(reference.len) {
                return Err(Error::corrupt(
                    format!("chunk {}", reference.hash),
                    format!("length {total} != expected {}", reference.len),
                ));
            }
            let actual = hasher.finalize();
            if actual != reference.hash {
                return Err(Error::corrupt(
                    format!("chunk {}", reference.hash),
                    format!("content hash mismatch (got {actual})"),
                ));
            }
            if fsync {
                qobs::time(&crate::obs::FSYNC_NS, || file.sync_all())
                    .map_err(|e| Error::io(format!("syncing {}", tmp.display()), e))?;
            }
            qobs::time(&crate::obs::RENAME_NS, || fs::rename(&tmp, &path))
                .map_err(|e| Error::io(format!("renaming into {}", path.display()), e))
        })();
        if let Err(e) = commit {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        if let Some(stats) = self.stats_cache.lock().expect("stats lock").as_mut() {
            stats.object_count += 1;
            stats.total_bytes += u64::from(reference.len);
        }
        Ok(true)
    }

    #[cfg(any(test, feature = "testing"))]
    fn corrupt_object(&self, hash: &ContentHash, offset: usize) -> Result<()> {
        let path = self.object_path(hash);
        let mut data = fs::read(&path).map_err(|e| Error::io("reading object", e))?;
        if data.is_empty() {
            return Err(Error::corrupt("object", "cannot corrupt empty object"));
        }
        let i = offset % data.len();
        data[i] ^= 0x01;
        fs::write(&path, data).map_err(|e| Error::io("writing corrupted object", e))?;
        Ok(())
    }
}

/// Shared chunk verification: exact length, then SHA-256. Used by every
/// backend — including the remote client, which re-verifies after the
/// wire so corruption anywhere between disk and socket is detected.
pub(crate) fn verify_chunk(reference: &ChunkRef, data: &[u8]) -> Result<()> {
    if data.len() != reference.len as usize {
        return Err(Error::corrupt(
            format!("chunk {}", reference.hash),
            format!("length {} != expected {}", data.len(), reference.len),
        ));
    }
    let actual = Sha256::digest(data);
    if actual != reference.hash {
        return Err(Error::corrupt(
            format!("chunk {}", reference.hash),
            format!("content hash mismatch (got {actual})"),
        ));
    }
    Ok(())
}

/// Removes every plain file directly under `dir`; absence is not an error.
pub(super) fn clear_dir_files(dir: &Path) -> Result<usize> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(Error::io(format!("listing {}", dir.display()), e)),
    };
    let mut removed = 0usize;
    for entry in entries.flatten() {
        if fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::TempDir;
    use super::*;

    fn temp_store() -> (TempDir, LooseStore) {
        let dir = TempDir::new();
        let store = LooseStore::open(dir.path()).unwrap();
        (dir, store)
    }

    #[test]
    fn put_get_round_trip() {
        let (_d, store) = temp_store();
        let data = b"hello chunk store".to_vec();
        let (r, fresh) = store.put(&data).unwrap();
        assert!(fresh);
        assert_eq!(store.get(&r).unwrap(), data);
        assert!(store.contains(&r.hash));
    }

    #[test]
    fn put_is_idempotent_dedup() {
        let (_d, store) = temp_store();
        let data = vec![42u8; 4096];
        let (r1, fresh1) = store.put(&data).unwrap();
        let (r2, fresh2) = store.put(&data).unwrap();
        assert_eq!(r1, r2);
        assert!(fresh1);
        assert!(!fresh2, "second put must be a dedup hit");
        assert_eq!(store.stats().unwrap().object_count, 1);
    }

    #[test]
    fn batch_reports_renames_and_in_batch_dedup() {
        let (_d, store) = temp_store();
        let blobs: Vec<Vec<u8>> = vec![vec![1; 64], vec![2; 64], vec![1; 64]];
        let staged: Vec<StagedChunk<'_>> = blobs
            .iter()
            .map(|b| StagedChunk {
                reference: ChunkRef {
                    hash: Sha256::digest(b),
                    len: b.len() as u32,
                },
                data: b,
            })
            .collect();
        let report = store.put_batch(&staged, false).unwrap();
        assert_eq!(report.fresh, vec![true, true, false]);
        assert_eq!(
            report.renames, 2,
            "loose layout pays one rename per fresh object"
        );
        assert_eq!(report.fsyncs, 0);
    }

    #[test]
    fn distinct_content_distinct_objects() {
        let (_d, store) = temp_store();
        store.put(b"aaa").unwrap();
        store.put(b"bbb").unwrap();
        let stats = store.stats().unwrap();
        assert_eq!(stats.object_count, 2);
        assert_eq!(stats.total_bytes, 6);
    }

    #[test]
    fn stats_cache_tracks_writes_and_sweeps() {
        let (_d, store) = temp_store();
        store.put(b"one").unwrap();
        let s1 = store.stats().unwrap(); // seeds the cache
        store.put(b"second object").unwrap();
        let s2 = store.stats().unwrap(); // incrementally updated, no walk
        assert_eq!(s2.object_count, s1.object_count + 1);
        assert_eq!(s2.total_bytes, s1.total_bytes + 13);
        assert_eq!(
            s2,
            store.walk_stats().unwrap(),
            "cache must match the directory"
        );
        let report = store.sweep(&BTreeSet::new()).unwrap();
        assert_eq!(report.deleted, 2);
        assert_eq!(store.stats().unwrap(), StoreStats::default());
    }

    #[test]
    fn get_missing_is_not_found() {
        let (_d, store) = temp_store();
        let r = ChunkRef {
            hash: Sha256::digest(b"never stored"),
            len: 12,
        };
        assert!(matches!(store.get(&r), Err(Error::NotFound { .. })));
    }

    #[test]
    fn corruption_is_detected_on_get() {
        let (_d, store) = temp_store();
        let (r, _) = store.put(&[7u8; 100]).unwrap();
        store.corrupt_object(&r.hash, 13).unwrap();
        match store.get(&r) {
            Err(Error::Corrupt { detail, .. }) => assert!(detail.contains("hash mismatch")),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected_on_get() {
        let (_d, store) = temp_store();
        let (r, _) = store.put(&[9u8; 100]).unwrap();
        // Truncate the object file directly.
        let path = store.object_path(&r.hash);
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..50]).unwrap();
        match store.get(&r) {
            Err(Error::Corrupt { detail, .. }) => assert!(detail.contains("length")),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn sweep_removes_unreachable_only() {
        let (_d, store) = temp_store();
        let (keep, _) = store.put(b"keep me").unwrap();
        let (drop1, _) = store.put(b"drop me 1").unwrap();
        let (drop2, _) = store.put(b"drop me 2").unwrap();
        let mut reachable = BTreeSet::new();
        reachable.insert(keep.hash);
        let report = store.sweep(&reachable).unwrap();
        assert_eq!(report.live, 1);
        assert_eq!(report.deleted, 2);
        assert!(report.reclaimed_bytes >= 18);
        assert!(store.contains(&keep.hash));
        assert!(!store.contains(&drop1.hash));
        assert!(!store.contains(&drop2.hash));
    }

    #[test]
    fn list_returns_sorted_hashes() {
        let (_d, store) = temp_store();
        for i in 0..10u8 {
            store.put(&[i]).unwrap();
        }
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 10);
        let mut sorted = listed.clone();
        sorted.sort();
        assert_eq!(listed, sorted);
    }

    #[test]
    fn empty_chunk_is_storable() {
        let (_d, store) = temp_store();
        let (r, _) = store.put(b"").unwrap();
        assert_eq!(store.get(&r).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn clear_staging_removes_orphans() {
        let (d, store) = temp_store();
        fs::write(d.path().join("tmp").join("obj-999-0"), b"orphan").unwrap();
        assert_eq!(store.clear_staging().unwrap(), 1);
        assert_eq!(store.clear_staging().unwrap(), 0);
    }
}
