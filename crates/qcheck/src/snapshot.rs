//! The training-state snapshot model.
//!
//! A [`TrainingSnapshot`] is the complete classical half of a hybrid
//! quantum-classical training loop — the inventory the paper argues must be
//! checkpointed (and contrasts against a naive `2^n`-amplitude simulator
//! dump):
//!
//! | component | size | why it matters for exact resume |
//! |---|---|---|
//! | parameters | `O(P)` | the model itself |
//! | optimizer state | `O(P)` | Adam moments etc.; dropping them changes the trajectory |
//! | RNG streams | `O(1)` | shot noise, batch order, noise unravelling |
//! | dataset cursor | `O(1)` | mini-batch position & epoch ordering |
//! | shot ledger | `O(steps)` | audit trail of consumed QPU shots |
//! | metrics tail | bounded | convergence checks & policies after resume |
//!
//! Snapshots encode deterministically into named *sections* (byte strings),
//! the unit of compression and chunking in the on-disk format.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::codec::{Decoder, Encoder};
use crate::error::{Error, Result};

/// A captured RNG state: the 40-byte serialized form of a xoshiro256**
/// generator (4×8 state words + 8-byte draw counter).
///
/// Persistence goes through the byte-stable [`crate::codec`] (serde's
/// derive does not cover `[u8; 40]`, and the on-disk format never uses
/// serde anyway).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct RngCapture(pub [u8; 40]);

impl std::fmt::Debug for RngCapture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RngCapture({:02x}{:02x}{:02x}{:02x}…)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// Tagged opaque state blob (optimizer state, user extensions).
///
/// The tag identifies the producer (e.g. `"adam-v1"`); restore fails loudly
/// on tag mismatch instead of silently reinterpreting bytes.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateBlob {
    /// Producer identifier, e.g. `"adam-v1"`.
    pub tag: String,
    /// Opaque serialized state.
    pub data: Vec<u8>,
}

impl StateBlob {
    /// Creates a tagged blob.
    pub fn new(tag: impl Into<String>, data: Vec<u8>) -> Self {
        StateBlob {
            tag: tag.into(),
            data,
        }
    }
}

/// Position of the training loop within its dataset.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetCursor {
    /// Completed passes over the data.
    pub epoch: u64,
    /// Index of the next example within the current epoch's order.
    pub position: u64,
    /// Seed that generated the current epoch's shuffle order.
    pub order_seed: u64,
}

/// One recorded metric point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricPoint {
    /// Optimizer step at which the metric was recorded.
    pub step: u64,
    /// Loss (or other scalar) value.
    pub value: f64,
}

/// The complete classical training state of a hybrid loop.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingSnapshot {
    /// Optimizer step count at capture time.
    pub step: u64,
    /// Epoch count at capture time.
    pub epoch: u64,
    /// Wall-clock training time consumed so far, milliseconds.
    pub wall_time_ms: u64,
    /// Free-form run label.
    pub label: String,
    /// The parameter vector.
    pub params: Vec<f64>,
    /// Serialized optimizer state.
    pub optimizer: StateBlob,
    /// Named RNG streams, each a 40-byte xoshiro256** capture
    /// (name → state bytes). Sorted by name for determinism.
    pub rng_streams: BTreeMap<String, RngCapture>,
    /// Dataset position.
    pub cursor: DatasetCursor,
    /// Total QPU shots consumed so far.
    pub total_shots: u64,
    /// Opaque serialized shot ledger (producer-defined).
    pub shot_ledger: Vec<u8>,
    /// Recent metric history (bounded tail).
    pub metrics: Vec<MetricPoint>,
    /// Extension sections (name → bytes). Names must not collide with the
    /// built-in section names.
    pub custom: BTreeMap<String, Vec<u8>>,
}

/// Built-in section names, in serialization order.
pub const SECTION_META: &str = "meta";
/// Parameter-vector section name.
pub const SECTION_PARAMS: &str = "params";
/// Optimizer-state section name.
pub const SECTION_OPTIMIZER: &str = "optimizer";
/// RNG-streams section name.
pub const SECTION_RNG: &str = "rng";
/// Shot-ledger section name.
pub const SECTION_LEDGER: &str = "ledger";
/// Metrics-tail section name.
pub const SECTION_METRICS: &str = "metrics";
/// Prefix for extension sections.
pub const CUSTOM_PREFIX: &str = "custom:";

/// A named byte section — the unit of compression, chunking and delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// Section name.
    pub name: String,
    /// Deterministic payload bytes.
    pub bytes: Vec<u8>,
}

impl TrainingSnapshot {
    /// Creates an empty snapshot with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        TrainingSnapshot {
            label: label.into(),
            ..TrainingSnapshot::default()
        }
    }

    /// Serializes into the deterministic ordered section list.
    pub fn to_sections(&self) -> Vec<Section> {
        let mut sections = Vec::with_capacity(6 + self.custom.len());

        let mut meta = Encoder::new();
        meta.put_u64(self.step)
            .put_u64(self.epoch)
            .put_u64(self.wall_time_ms)
            .put_str(&self.label)
            .put_u64(self.cursor.epoch)
            .put_u64(self.cursor.position)
            .put_u64(self.cursor.order_seed)
            .put_u64(self.total_shots);
        sections.push(Section {
            name: SECTION_META.into(),
            bytes: meta.into_bytes(),
        });

        let mut params = Encoder::with_capacity(self.params.len() * 8 + 8);
        params.put_f64_slice(&self.params);
        sections.push(Section {
            name: SECTION_PARAMS.into(),
            bytes: params.into_bytes(),
        });

        let mut opt = Encoder::new();
        opt.put_str(&self.optimizer.tag)
            .put_bytes(&self.optimizer.data);
        sections.push(Section {
            name: SECTION_OPTIMIZER.into(),
            bytes: opt.into_bytes(),
        });

        let mut rng = Encoder::new();
        rng.put_varint(self.rng_streams.len() as u64);
        for (name, state) in &self.rng_streams {
            rng.put_str(name).put_raw(&state.0);
        }
        sections.push(Section {
            name: SECTION_RNG.into(),
            bytes: rng.into_bytes(),
        });

        let mut ledger = Encoder::new();
        ledger.put_bytes(&self.shot_ledger);
        sections.push(Section {
            name: SECTION_LEDGER.into(),
            bytes: ledger.into_bytes(),
        });

        let mut metrics = Encoder::new();
        metrics.put_varint(self.metrics.len() as u64);
        for m in &self.metrics {
            metrics.put_u64(m.step).put_f64(m.value);
        }
        sections.push(Section {
            name: SECTION_METRICS.into(),
            bytes: metrics.into_bytes(),
        });

        for (name, bytes) in &self.custom {
            sections.push(Section {
                name: format!("{CUSTOM_PREFIX}{name}"),
                bytes: bytes.clone(),
            });
        }

        sections
    }

    /// Reconstructs a snapshot from sections.
    ///
    /// # Errors
    ///
    /// Fails when a required section is missing or malformed.
    pub fn from_sections(sections: &[Section]) -> Result<Self> {
        let find = |name: &str| -> Result<&Section> {
            sections
                .iter()
                .find(|s| s.name == name)
                .ok_or_else(|| Error::NotFound {
                    what: format!("snapshot section '{name}'"),
                })
        };

        let meta_sec = find(SECTION_META)?;
        let mut d = Decoder::new(&meta_sec.bytes, "section meta");
        let step = d.get_u64()?;
        let epoch = d.get_u64()?;
        let wall_time_ms = d.get_u64()?;
        let label = d.get_str()?;
        let cursor = DatasetCursor {
            epoch: d.get_u64()?,
            position: d.get_u64()?,
            order_seed: d.get_u64()?,
        };
        let total_shots = d.get_u64()?;
        d.finish()?;

        let params_sec = find(SECTION_PARAMS)?;
        let mut d = Decoder::new(&params_sec.bytes, "section params");
        let params = d.get_f64_vec()?;
        d.finish()?;

        let opt_sec = find(SECTION_OPTIMIZER)?;
        let mut d = Decoder::new(&opt_sec.bytes, "section optimizer");
        let optimizer = StateBlob {
            tag: d.get_str()?,
            data: d.get_bytes()?,
        };
        d.finish()?;

        let rng_sec = find(SECTION_RNG)?;
        let mut d = Decoder::new(&rng_sec.bytes, "section rng");
        let n = d.get_varint()? as usize;
        let mut rng_streams = BTreeMap::new();
        for _ in 0..n {
            let name = d.get_str()?;
            let raw = d.get_raw(40)?;
            let mut state = [0u8; 40];
            state.copy_from_slice(raw);
            rng_streams.insert(name, RngCapture(state));
        }
        d.finish()?;

        let ledger_sec = find(SECTION_LEDGER)?;
        let mut d = Decoder::new(&ledger_sec.bytes, "section ledger");
        let shot_ledger = d.get_bytes()?;
        d.finish()?;

        let metrics_sec = find(SECTION_METRICS)?;
        let mut d = Decoder::new(&metrics_sec.bytes, "section metrics");
        let n = d.get_varint()? as usize;
        let mut metrics = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            metrics.push(MetricPoint {
                step: d.get_u64()?,
                value: d.get_f64()?,
            });
        }
        d.finish()?;

        let mut custom = BTreeMap::new();
        for s in sections {
            if let Some(name) = s.name.strip_prefix(CUSTOM_PREFIX) {
                custom.insert(name.to_string(), s.bytes.clone());
            }
        }

        Ok(TrainingSnapshot {
            step,
            epoch,
            wall_time_ms,
            label,
            params,
            optimizer,
            rng_streams,
            cursor,
            total_shots,
            shot_ledger,
            metrics,
            custom,
        })
    }

    /// Total serialized payload bytes across sections (pre-compression) —
    /// the "hybrid classical state" column of the inventory table.
    pub fn payload_bytes(&self) -> usize {
        self.to_sections().iter().map(|s| s.bytes.len()).sum()
    }

    /// Per-section byte breakdown (name, bytes), for experiment R-T1.
    pub fn section_sizes(&self) -> Vec<(String, usize)> {
        self.to_sections()
            .into_iter()
            .map(|s| (s.name, s.bytes.len()))
            .collect()
    }
}

/// Contract between a training loop and the checkpointer.
///
/// Implementors capture *all* state needed for a bitwise-exact resume:
/// a `restore(capture())` round trip must make the future trajectory of the
/// loop identical to one that never stopped.
pub trait Checkpointable {
    /// Captures the complete training state.
    fn capture(&self) -> TrainingSnapshot;

    /// Restores from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a message when the snapshot is structurally incompatible
    /// (wrong parameter count, unknown optimizer tag, …).
    fn restore(&mut self, snapshot: &TrainingSnapshot) -> std::result::Result<(), String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> TrainingSnapshot {
        let mut s = TrainingSnapshot::new("vqe-tfim-8q");
        s.step = 412;
        s.epoch = 3;
        s.wall_time_ms = 98_765;
        s.params = vec![0.1, -0.2, 1.0e-9, f64::MIN_POSITIVE, 3.5];
        s.optimizer = StateBlob::new("adam-v1", vec![9, 9, 9, 1, 2, 3]);
        s.rng_streams.insert("shots".into(), RngCapture([7u8; 40]));
        s.rng_streams.insert("data".into(), RngCapture([1u8; 40]));
        s.cursor = DatasetCursor {
            epoch: 3,
            position: 17,
            order_seed: 0xDEAD,
        };
        s.total_shots = 1_234_567;
        s.shot_ledger = vec![5; 100];
        s.metrics = vec![
            MetricPoint {
                step: 410,
                value: -3.2,
            },
            MetricPoint {
                step: 411,
                value: -3.25,
            },
        ];
        s.custom.insert("schedule".into(), vec![1, 2]);
        s
    }

    #[test]
    fn section_round_trip_is_lossless() {
        let snap = sample_snapshot();
        let sections = snap.to_sections();
        let back = TrainingSnapshot::from_sections(&sections).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = sample_snapshot().to_sections();
        let b = sample_snapshot().to_sections();
        assert_eq!(a, b);
    }

    #[test]
    fn section_names_are_ordered_and_complete() {
        let names: Vec<String> = sample_snapshot()
            .to_sections()
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(
            names,
            vec![
                "meta",
                "params",
                "optimizer",
                "rng",
                "ledger",
                "metrics",
                "custom:schedule"
            ]
        );
    }

    #[test]
    fn missing_required_section_is_detected() {
        let snap = sample_snapshot();
        let mut sections = snap.to_sections();
        sections.retain(|s| s.name != SECTION_PARAMS);
        let err = TrainingSnapshot::from_sections(&sections).unwrap_err();
        assert!(err.to_string().contains("params"));
    }

    #[test]
    fn corrupted_section_is_detected() {
        let snap = sample_snapshot();
        let mut sections = snap.to_sections();
        let meta = sections
            .iter_mut()
            .find(|s| s.name == SECTION_META)
            .unwrap();
        meta.bytes.truncate(4);
        assert!(TrainingSnapshot::from_sections(&sections).is_err());
    }

    #[test]
    fn params_preserve_exact_bits() {
        let mut snap = TrainingSnapshot::new("bits");
        snap.params = vec![f64::NAN, -0.0, f64::from_bits(0x0000_0000_0000_0001)];
        let back = TrainingSnapshot::from_sections(&snap.to_sections()).unwrap();
        for (a, b) in snap.params.iter().zip(&back.params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = TrainingSnapshot::new("");
        let back = TrainingSnapshot::from_sections(&snap.to_sections()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn payload_bytes_scales_with_params() {
        let mut small = TrainingSnapshot::new("s");
        small.params = vec![0.0; 10];
        let mut big = TrainingSnapshot::new("s");
        big.params = vec![0.0; 10_000];
        assert!(big.payload_bytes() > small.payload_bytes() + 9_000 * 8);
    }

    #[test]
    fn section_sizes_cover_all_components() {
        let sizes = sample_snapshot().section_sizes();
        assert_eq!(sizes.len(), 7);
        let params_size = sizes.iter().find(|(n, _)| n == "params").unwrap().1;
        assert!(params_size >= 5 * 8);
    }

    #[test]
    fn rng_streams_sorted_by_name() {
        // BTreeMap guarantees order; verify encoding reflects it.
        let snap = sample_snapshot();
        let sections = snap.to_sections();
        let rng = sections.iter().find(|s| s.name == SECTION_RNG).unwrap();
        let mut d = Decoder::new(&rng.bytes, "rng");
        let n = d.get_varint().unwrap();
        assert_eq!(n, 2);
        assert_eq!(d.get_str().unwrap(), "data");
    }
}
