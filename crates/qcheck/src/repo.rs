//! The checkpoint repository: layout, commit protocol, load & recovery.
//!
//! ```text
//! <root>/
//!   STORE               sticky backend marker: "loose" | "pack"
//!   objects/ab/cdef…    content-addressed chunks (loose backend)
//!   packs/pack-….qpk    batched pack files (pack backend)
//!   ROOT.0, ROOT.1      dual root slots (see `manifest_log`)
//!   manifest-<e>.qlg    append-only CRC-framed manifest log
//!   tmp/                staging area; contents are disposable
//!   LOCK                advisory writer lock
//! ```
//!
//! ## Commit protocol (atomic mode)
//!
//! 1. write every new chunk (one [`crate::store::ObjectStore::put_batch`]
//!    call: per-object stage+rename on the loose backend, a single staged
//!    pack published by one fsync+rename on the pack backend);
//! 2. append one `ManifestPut` + `LatestAdvance` record pair to the
//!    manifest log — **one** write, one optional fsync, zero renames;
//! 3. publish by writing the *stale* root slot with a bumped generation —
//!    one small write, one optional fsync.
//!
//! A crash during step 2 leaves a torn log tail behind the committed
//! region (truncated on recovery); a crash during step 3 can only tear the
//! stale slot, so readers fall back to the surviving root. Valid records
//! beyond the committed length are a completed-but-unpublished save and
//! still count for recovery (newest-valid-wins). Whole-save commit cost is
//! therefore O(1) in renames and fsyncs regardless of snapshot size.
//! Recovery replays the log (already in id order) instead of walking a
//! manifest directory. The legacy `manifests/` + `LATEST` layout is
//! migrated into an epoch-0 log automatically on open.
//! The naive in-place mode ([`CommitMode::InPlaceUnsafe`]) exists purely as
//! the baseline for experiment R-F8: it publishes by overwriting the live
//! root slot in place, and advances the committed length *before* the
//! record lands — exactly the torn-write exposure the dual-slot protocol
//! removes.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use std::sync::Mutex;

use crate::chunk::{chunk_bytes_threads, DEFAULT_CHUNK_SIZE};
use crate::compress::Compression;
use crate::delta::{BlockPatch, DEFAULT_BLOCK_SIZE};
use crate::error::{Error, Result};
use crate::failure::{CrashPoint, StorageFault};
use crate::hash::Sha256;
use crate::manifest::{CheckpointId, CheckpointKind, Manifest, PayloadKind, SectionEntry};
use crate::manifest_log::{self as mlog, LogReplay, RecordKind, RootSlot};
use crate::snapshot::{
    Section, TrainingSnapshot, SECTION_LEDGER, SECTION_OPTIMIZER, SECTION_PARAMS,
};
use crate::store::{GcReport, ObjectStore, StagedChunk, StoreBackend, StoreKind};

/// Hard upper bound on delta-chain walks (cycle guard).
const CHAIN_HARD_LIMIT: usize = 4096;

/// Largest snapshot (summed section bytes) the delta-base encode cache
/// will pin in memory. Larger snapshots fall back to disk resolution —
/// trading the cached-base speedup for bounded memory.
const ENCODE_CACHE_MAX_BYTES: usize = 64 << 20;

/// Full vs incremental save.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SaveMode {
    /// Always write a self-contained checkpoint.
    Full,
    /// Write a delta against the latest checkpoint when one exists and the
    /// resulting chain stays within `max_chain_len`; otherwise write full.
    DeltaAuto {
        /// Maximum allowed chain length (a full checkpoint has length 0).
        max_chain_len: u32,
    },
}

/// Commit durability protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitMode {
    /// Stage + rename; crash-safe at every point.
    Atomic,
    /// Write manifest and pointer in place — the unsafe baseline.
    InPlaceUnsafe,
}

/// Per-section compression selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompressionPolicy {
    /// XOR-f64 for parameter-like sections, RLE for the ledger, raw
    /// otherwise.
    Default,
    /// One codec for every section.
    Uniform(Compression),
}

impl CompressionPolicy {
    fn codec_for(&self, section_name: &str) -> Compression {
        match self {
            CompressionPolicy::Uniform(c) => *c,
            CompressionPolicy::Default => match section_name {
                SECTION_PARAMS | SECTION_OPTIMIZER => Compression::XorF64,
                SECTION_LEDGER => Compression::Rle,
                _ => Compression::None,
            },
        }
    }
}

/// Options controlling one `save` call.
#[derive(Clone, Debug)]
pub struct SaveOptions {
    /// Full or incremental.
    pub mode: SaveMode,
    /// Codec selection.
    pub compression: CompressionPolicy,
    /// Chunk size for the object store.
    pub chunk_size: usize,
    /// Block size for delta diffs.
    pub delta_block_size: usize,
    /// Commit protocol.
    pub commit: CommitMode,
    /// fsync staged files before rename.
    pub fsync: bool,
    /// Optional simulated crash (evaluation only).
    pub crash: Option<CrashPoint>,
    /// Override the manifest timestamp (tests / determinism).
    pub created_unix_ms: Option<u64>,
    /// Worker threads for the encode phase (per-section compression and
    /// per-chunk hashing). `None` resolves [`qpar::current_threads`]
    /// (`QCHECK_THREADS` / builder override / hardware). The encoded bytes
    /// are identical for every thread count.
    pub threads: Option<usize>,
}

impl Default for SaveOptions {
    fn default() -> Self {
        SaveOptions {
            mode: SaveMode::Full,
            compression: CompressionPolicy::Default,
            chunk_size: DEFAULT_CHUNK_SIZE,
            delta_block_size: DEFAULT_BLOCK_SIZE,
            commit: CommitMode::Atomic,
            fsync: false,
            crash: None,
            created_unix_ms: None,
            threads: None,
        }
    }
}

impl SaveOptions {
    /// Incremental saving with the given chain bound.
    pub fn incremental(max_chain_len: u32) -> Self {
        SaveOptions {
            mode: SaveMode::DeltaAuto { max_chain_len },
            ..SaveOptions::default()
        }
    }
}

/// Statistics from one committed checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SaveReport {
    /// Id of the new checkpoint.
    pub id: CheckpointId,
    /// Whether a delta was written.
    pub is_delta: bool,
    /// Delta-chain length of the new checkpoint.
    pub chain_len: u32,
    /// Logical (uncompressed, resolved) snapshot bytes.
    pub logical_bytes: u64,
    /// Stored payload bytes referenced by the manifest (compressed).
    pub stored_bytes: u64,
    /// Bytes of *new* chunk objects physically written (dedup discount).
    pub new_chunk_bytes: u64,
    /// Count of new chunk objects.
    pub chunks_new: usize,
    /// Count of dedup hits.
    pub chunks_deduped: usize,
    /// Rename syscalls the object store used to commit this save's new
    /// chunks: O(chunks) for the loose backend, ≤ 1 for the pack backend.
    /// (Commit-path renames are counted separately in `commit_renames`.)
    pub store_renames: u64,
    /// `fsync` calls the object store issued while committing new chunks.
    pub store_fsyncs: u64,
    /// Rename syscalls the *commit* path (manifest + pointer publication)
    /// used beyond the chunk writes. Always 0 under the manifest-log
    /// protocol — the whole-save O(1) acceptance counter.
    pub commit_renames: u64,
    /// `fsync` calls the commit path issued: 0 with `fsync` off, exactly
    /// 2 with it on (log append + root slot), independent of snapshot
    /// size.
    pub commit_fsyncs: u64,
    /// Manifest record size (the encoded manifest bytes).
    pub manifest_bytes: u64,
}

impl SaveReport {
    /// Total bytes that hit the disk for this checkpoint.
    pub fn bytes_written(&self) -> u64 {
        self.new_chunk_bytes + self.manifest_bytes
    }
}

/// Outcome of a recovery scan.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Manifests that were rejected, with the reason.
    pub skipped: Vec<(String, String)>,
    /// Id of the checkpoint that was recovered, if any.
    pub recovered: Option<CheckpointId>,
    /// Orphaned staging files (debris from crashed writers) deleted
    /// before the scan — local `tmp/` debris plus, for a shared
    /// (remote) backend, server-side staging cleared over the wire.
    pub staging_cleared: usize,
    /// Manifests this repository *handle* has pulled down from a shared
    /// (remote) backend because they were missing locally, summed over
    /// the open-time sync and every recovery sync — nonzero exactly
    /// when this working directory was missing history, e.g. a
    /// fresh-directory resume. Always 0 for local backends.
    pub meta_synced: usize,
    /// Checkpoints the scan attempted to load before succeeding (or
    /// exhausting the log). 1 on a healthy repository — recovery
    /// short-circuits on the newest checkpoint instead of validating
    /// the whole history.
    pub manifests_tried: usize,
}

/// Retention policies for [`CheckpointRepo::apply_retention`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Retention {
    /// Never delete.
    KeepAll,
    /// Keep the newest `n` checkpoints (plus any delta bases they need).
    KeepLast(usize),
}

/// Report from a retention pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RetentionReport {
    /// Manifests deleted.
    pub manifests_deleted: usize,
    /// Garbage-collection results for the chunk store.
    pub gc: GcReport,
}

/// Output of the parallel per-section encode phase of
/// [`CheckpointRepo::save`].
struct SectionEncode {
    payload_kind: PayloadKind,
    codec: Compression,
    stored_len: usize,
    section_sha: crate::hash::ContentHash,
    compressed: Vec<u8>,
}

/// An on-disk checkpoint repository, generic over its [`ObjectStore`]
/// backend. The default backend is the runtime-selected [`StoreBackend`]
/// (`QCHECK_STORE=loose|pack`, sticky per repository via the `STORE`
/// marker); a concrete backend type can be injected with
/// [`CheckpointRepo::with_store`].
#[derive(Debug)]
pub struct CheckpointRepo<S: ObjectStore = StoreBackend> {
    root: PathBuf,
    tmp_dir: PathBuf,
    store: S,
    seq: Mutex<u64>,
    /// Cached replay of the manifest log. `None` forces a from-disk
    /// replay on next access; a cached state is cross-checked against
    /// the on-disk root generation and log length (two tiny reads) so
    /// concurrent handles observe each other's commits.
    state: Mutex<Option<LogReplay>>,
    /// Total manifests pulled from a shared backend by this handle
    /// (see [`RecoveryReport::meta_synced`]).
    meta_synced: std::sync::atomic::AtomicUsize,
    /// Sections of the last checkpoint this handle committed. Delta saves
    /// diff against the latest checkpoint; when it is the one we just
    /// wrote, the cache saves a full read-decompress-verify pass over the
    /// base (`resolve_sections`) per save. Keyed by id, so a checkpoint
    /// written by anyone else simply misses and resolves from disk; chunk
    /// *existence* is still checked on every hit (GC races demote to the
    /// resolve path). Deliberate tradeoff: byte-level bit rot striking the
    /// base *between two consecutive saves* is no longer caught at save
    /// time — it surfaces at recover/fsck time, where recovery falls back
    /// past the damaged chain, and `max_chain_len` bounds the exposure.
    encode_cache: Mutex<Option<EncodeCache>>,
}

/// Encode-cache entry: the last checkpoint this handle committed.
#[derive(Debug)]
struct EncodeCache {
    /// Id of the cached checkpoint (must match `LATEST` to be used).
    id: CheckpointId,
    /// Its resolved sections (the delta base for the next save).
    sections: Vec<Section>,
    /// Chunk hashes of the checkpoint's *entire* delta chain, so a cache
    /// hit can confirm chain existence with stats alone — no manifest
    /// re-reads per save.
    chain_chunks: Vec<crate::hash::ContentHash>,
}

impl CheckpointRepo<StoreBackend> {
    /// Opens a repository, creating the layout when absent. The storage
    /// backend is resolved from the repository's sticky `STORE` marker
    /// when present, else from `QCHECK_STORE` (default: loose).
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or an invalid `QCHECK_STORE` value.
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        let kind = StoreKind::from_env()?;
        Self::open_with(root, kind)
    }

    /// Opens a repository with an explicit backend preference (builder
    /// form of the `QCHECK_STORE` switch). An existing repository's
    /// sticky marker still wins — a repository never changes layout.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn open_with(root: impl AsRef<Path>, kind: StoreKind) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)
            .map_err(|e| Error::io(format!("creating {}", root.display()), e))?;
        let store = StoreBackend::open_sticky(&root, kind)?;
        Self::with_store(root, store)
    }

    /// Which storage layout this repository uses.
    pub fn store_kind(&self) -> StoreKind {
        self.store.kind()
    }
}

impl<S: ObjectStore> CheckpointRepo<S> {
    /// Builds a repository around an already-opened backend. This is the
    /// generic constructor; most callers want [`CheckpointRepo::open`].
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn with_store(root: impl AsRef<Path>, store: S) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        let tmp_dir = root.join("tmp");
        fs::create_dir_all(&tmp_dir)
            .map_err(|e| Error::io(format!("creating {}", tmp_dir.display()), e))?;
        let repo = CheckpointRepo {
            root,
            tmp_dir,
            store,
            seq: Mutex::new(0),
            state: Mutex::new(None),
            encode_cache: Mutex::new(None),
            meta_synced: std::sync::atomic::AtomicUsize::new(0),
        };
        // One-shot migration of the legacy `manifests/` + `LATEST`
        // layout into the manifest log (idempotent; also finishes a
        // migration that crashed mid-way).
        repo.migrate_legacy_layout()?;
        // A shared backend mirrors the repository metadata: pull down
        // whatever this directory is missing *before* the sequence
        // counter is seeded, so a fresh working directory continues the
        // namespace's id sequence instead of restarting it.
        repo.sync_shared_meta()?;
        let next = repo
            .list_ids()?
            .last()
            .and_then(|id| id.as_str().rsplit('-').next().map(str::to_string))
            .and_then(|s| s.parse::<u64>().ok())
            .map(|s| s + 1)
            .unwrap_or(0);
        *repo.seq.lock().expect("seq lock poisoned") = next;
        Ok(repo)
    }

    /// Repository root path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The underlying object store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the underlying object store (per-handle tuning
    /// hooks such as `StoreBackend::set_gc_dead_fraction`).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Path of the current manifest log file (`manifest-<epoch>.qlg`).
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors while refreshing the log state.
    pub fn manifest_log_path(&self) -> Result<PathBuf> {
        self.with_state(|st| Ok(mlog::log_path(&self.root, st.epoch)))
    }

    /// Paths of the two root slots (`ROOT.0`, `ROOT.1`). Either or both
    /// may not exist yet.
    pub fn root_slot_paths(&self) -> [PathBuf; 2] {
        [
            mlog::root_slot_path(&self.root, 0),
            mlog::root_slot_path(&self.root, 1),
        ]
    }

    // ------------------------------------------------------------------
    // manifest-log state
    // ------------------------------------------------------------------

    /// Ensures the cached log replay matches the on-disk commit
    /// structures (root generation + log length), replaying when stale.
    fn ensure_fresh(&self, guard: &mut Option<LogReplay>) -> Result<()> {
        let fresh = match guard.as_ref() {
            None => false,
            Some(st) => {
                let slots = mlog::read_root_slots(&self.root);
                let gen_now = slots
                    .iter()
                    .flatten()
                    .map(|r| r.generation)
                    .max()
                    .unwrap_or(0);
                let len_now = fs::metadata(mlog::log_path(&self.root, st.epoch))
                    .map(|m| m.len())
                    .unwrap_or(0);
                gen_now == st.generation && len_now == st.file_len
            }
        };
        if !fresh {
            *guard = Some(mlog::replay(&self.root)?);
        }
        Ok(())
    }

    /// Runs `f` against the (fresh) log state under the state lock.
    fn with_state<R>(&self, f: impl FnOnce(&mut LogReplay) -> Result<R>) -> Result<R> {
        let mut guard = self.state.lock().expect("state lock poisoned");
        self.ensure_fresh(&mut guard)?;
        f(guard.as_mut().expect("state loaded"))
    }

    /// Drops a benign torn tail (bytes past the last valid record, at or
    /// beyond the committed length) from the log file. Tail damage
    /// *inside* the committed region is evidence of in-place corruption
    /// and is preserved for detection. Returns 1 when bytes were cut.
    fn truncate_tail_locked(&self, st: &mut LogReplay) -> Result<usize> {
        if st.file_len > st.valid_len && st.valid_len >= st.committed_len {
            let path = mlog::log_path(&self.root, st.epoch);
            let f = fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| Error::io(format!("opening {}", path.display()), e))?;
            f.set_len(st.valid_len)
                .map_err(|e| Error::io("truncating torn manifest-log tail", e))?;
            st.file_len = st.valid_len;
            return Ok(1);
        }
        Ok(0)
    }

    /// Appends `buf` to the current log and publishes it by flipping the
    /// stale root slot (generation + 1). `new_latest` overrides the
    /// latest pointer carried by the new root; `None` keeps the current
    /// one. Returns the log offset the append landed at. The caller
    /// updates the in-memory manifest/span/tombstone maps itself.
    fn append_and_flip(
        &self,
        st: &mut LogReplay,
        buf: &[u8],
        new_latest: Option<&CheckpointId>,
        fsync: bool,
    ) -> Result<u64> {
        self.truncate_tail_locked(st)?;
        let before = mlog::append_to_log(&self.root, st.epoch, buf, fsync)?;
        let latest = new_latest.cloned().or_else(|| st.latest.clone());
        let root = RootSlot {
            generation: st.generation + 1,
            epoch: st.epoch,
            committed_len: before + buf.len() as u64,
            latest: latest.clone(),
        };
        let slot = 1 - st.root_slot;
        mlog::write_root_slot(&self.root, slot, &root, fsync)?;
        st.generation = root.generation;
        st.root_slot = slot;
        st.file_len = root.committed_len;
        st.valid_len = root.committed_len;
        st.committed_len = root.committed_len;
        st.latest = latest;
        Ok(before)
    }

    /// Migrates the legacy per-checkpoint layout (`manifests/*.qmf` +
    /// `LATEST`) into an epoch-0 manifest log with a generation-1 root.
    /// Idempotent: on a repository that already has a root (including
    /// one whose migration crashed after its commit) this only cleans up
    /// leftover legacy files whose ids the log carries; unknown files
    /// are never deleted.
    fn migrate_legacy_layout(&self) -> Result<()> {
        let legacy_dir = self.root.join("manifests");
        let legacy_latest = self.root.join("LATEST");
        let has_new = mlog::read_root_slots(&self.root)
            .iter()
            .any(Option::is_some)
            || !mlog::list_log_epochs(&self.root).is_empty();
        if !has_new {
            let mut manifests: Vec<(CheckpointId, Vec<u8>)> = Vec::new();
            if let Ok(entries) = fs::read_dir(&legacy_dir) {
                for entry in entries.flatten() {
                    let name = entry.file_name().to_string_lossy().to_string();
                    let Some(stem) = name.strip_suffix(".qmf") else {
                        continue;
                    };
                    let Ok(bytes) = fs::read(entry.path()) else {
                        continue;
                    };
                    // Only decodable manifests migrate; a damaged legacy
                    // file is left behind (recovery would have skipped it
                    // under the old layout too).
                    match Manifest::decode(&bytes) {
                        Ok(m) if m.id.as_str() == stem => manifests.push((m.id.clone(), bytes)),
                        _ => {}
                    }
                }
            }
            if manifests.is_empty() && !legacy_latest.exists() {
                return Ok(()); // brand-new repository
            }
            manifests.sort_by(|a, b| a.0.cmp(&b.0));
            let mut buf = mlog::log_header(0);
            for (id, bytes) in &manifests {
                buf.extend(mlog::encode_record(
                    RecordKind::ManifestPut,
                    id.as_str(),
                    bytes,
                ));
            }
            let latest = fs::read_to_string(&legacy_latest)
                .ok()
                .map(|s| CheckpointId(s.trim().to_string()))
                .filter(|id| manifests.iter().any(|(m, _)| m == id))
                .or_else(|| manifests.last().map(|(id, _)| id.clone()));
            if let Some(latest) = &latest {
                buf.extend(mlog::encode_record(
                    RecordKind::LatestAdvance,
                    latest.as_str(),
                    &[],
                ));
            }
            // Stage + rename the whole log, then publish with ROOT.0 —
            // a crash anywhere leaves either the legacy layout intact
            // (no root yet) or a fully committed log.
            self.atomic_write(&mlog::log_path(&self.root, 0), &buf, true)?;
            mlog::write_root_slot(
                &self.root,
                0,
                &RootSlot {
                    generation: 1,
                    epoch: 0,
                    committed_len: buf.len() as u64,
                    latest,
                },
                true,
            )?;
        }
        // Cleanup: remove legacy files the log now carries.
        if legacy_dir.exists() || legacy_latest.exists() {
            let st = mlog::replay(&self.root)?;
            if st.generation == 0 {
                return Ok(());
            }
            if let Ok(entries) = fs::read_dir(&legacy_dir) {
                for entry in entries.flatten() {
                    let name = entry.file_name().to_string_lossy().to_string();
                    let Some(stem) = name.strip_suffix(".qmf") else {
                        continue;
                    };
                    let id = CheckpointId(stem.to_string());
                    if st.manifests.contains_key(&id) || st.tombstones.contains(&id) {
                        let _ = fs::remove_file(entry.path());
                    }
                }
                let _ = fs::remove_dir(&legacy_dir); // only when empty
            }
            let _ = fs::remove_file(&legacy_latest);
        }
        Ok(())
    }

    /// Acquires the writer lock.
    ///
    /// For local backends this is the advisory on-disk `LOCK` file,
    /// removed when the guard drops. For a shared backend (the remote
    /// daemon) a local file would wrongly serialize *directories*, not
    /// writers — and a crashed writer would leak it forever — so the
    /// lock is the daemon's **server-side writer lease** instead:
    /// granted per namespace, renewed by this handle's traffic, expired
    /// by TTL if the process dies. The lease is bound to the store
    /// handle (re-locking from the same handle renews it); it is
    /// released when the handle drops or via
    /// [`crate::store::ObjectStore::release_writer_lease`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Locked`] when another local writer holds the
    /// LOCK file, or [`Error::LeaseHeld`] when another live handle holds
    /// the namespace's lease.
    pub fn try_lock(&self) -> Result<RepoLock> {
        if self.store.is_shared() {
            self.store.acquire_writer_lease()?;
            return Ok(RepoLock { path: None });
        }
        let path = self.root.join("LOCK");
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", std::process::id());
                Ok(RepoLock { path: Some(path) })
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Err(Error::Locked(path)),
            Err(e) => Err(Error::io("acquiring lock", e)),
        }
    }

    // ------------------------------------------------------------------
    // save
    // ------------------------------------------------------------------

    /// Commits a snapshot as a new checkpoint.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, on integrity failures while reading the delta
    /// base, or with [`Error::SimulatedCrash`] when a crash point fires.
    pub fn save(&self, snapshot: &TrainingSnapshot, options: &SaveOptions) -> Result<SaveReport> {
        if options.chunk_size == 0 || options.delta_block_size == 0 {
            return Err(Error::InvalidConfig(
                "chunk_size and delta_block_size must be positive".into(),
            ));
        }
        let _span = qobs::span("qcheck.save");
        crate::obs::SAVES.inc();
        let sections = snapshot.to_sections();

        // Decide full vs delta. The base sections come from the in-memory
        // cache when the latest checkpoint is the one this handle just
        // wrote (the common case in a training loop); otherwise they are
        // resolved — and verified — from disk.
        let mut base: Option<(Manifest, Vec<Section>)> = None;
        let mut base_chain_chunks: Option<Vec<crate::hash::ContentHash>> = None;
        if let SaveMode::DeltaAuto { max_chain_len } = options.mode {
            if let Some(latest_id) = self.read_latest()? {
                if let Ok(m) = self.load_manifest(&latest_id) {
                    if m.chain_len < max_chain_len {
                        let cached = {
                            let mut guard =
                                self.encode_cache.lock().expect("encode cache poisoned");
                            match guard.take() {
                                Some(c) if c.id == m.id => Some(c),
                                other => {
                                    *guard = other;
                                    None
                                }
                            }
                        };
                        // Even on a cache hit, confirm every chunk of the
                        // *whole* base chain still exists on disk (stats
                        // only, using the cached chain inventory) — a GC
                        // race or deleted object must demote us to the
                        // resolve path, whose failure falls back to a
                        // self-contained full checkpoint instead of a
                        // delta against a hole.
                        let cached = cached.filter(|c| self.store.contains_all(&c.chain_chunks));
                        match cached {
                            Some(c) => {
                                base_chain_chunks = Some(c.chain_chunks);
                                base = Some((m, c.sections));
                            }
                            None => {
                                if let Ok(base_sections) = self.resolve_sections(&m) {
                                    // One-time chain walk to rebuild the
                                    // chunk inventory for the new cache
                                    // entry (resolve verified content, so
                                    // existence is implied here).
                                    base_chain_chunks = self.collect_chain_chunks(&m);
                                    base = Some((m, base_sections));
                                }
                            }
                        }
                    }
                }
            }
        }

        let seq = {
            let mut guard = self.seq.lock().expect("seq lock poisoned");
            let s = *guard;
            *guard += 1;
            s
        };
        let id = CheckpointId::new(snapshot.step, seq);

        // ------------------------------------------------------------------
        // Encode phase: per-section compression candidates + hashes, fanned
        // out across worker threads (sections are independent). The chosen
        // encodings are identical at every thread count.
        // ------------------------------------------------------------------
        let threads = options.threads.unwrap_or_else(qpar::current_threads);
        let base_sections = base.as_ref().map(|(_, s)| s.as_slice());
        let encode_one = |section: &Section| -> SectionEncode {
            let codec = options.compression.codec_for(&section.name);
            let section_sha = Sha256::digest(&section.bytes);
            // Candidate encodings; the smallest compressed form wins.
            // Full payload is always a candidate.
            let full_compressed = codec.compress(&section.bytes);
            let mut best = (
                PayloadKind::Full,
                codec,
                section.bytes.len(),
                full_compressed,
            );
            if let Some(base_section) =
                base_sections.and_then(|bs| bs.iter().find(|b| b.name == section.name))
            {
                // Block-level patch: wins on sparse updates and
                // length-changing sections (append-only ledger).
                let patch = BlockPatch::diff(
                    &base_section.bytes,
                    &section.bytes,
                    options.delta_block_size,
                );
                let encoded = patch.encode();
                let compressed = codec.compress(&encoded);
                if compressed.len() < best.3.len() {
                    best = (PayloadKind::DeltaPatch, codec, encoded.len(), compressed);
                }
                // Byte-wise XOR against the base: wins on dense but
                // small-magnitude updates (optimizer steps late in
                // training) — only differing bytes survive.
                if base_section.bytes.len() == section.bytes.len() {
                    let xored: Vec<u8> = base_section
                        .bytes
                        .iter()
                        .zip(&section.bytes)
                        .map(|(a, b)| a ^ b)
                        .collect();
                    let compressed = Compression::ZeroElideF64.compress(&xored);
                    if compressed.len() < best.3.len() {
                        best = (
                            PayloadKind::XorBase,
                            Compression::ZeroElideF64,
                            xored.len(),
                            compressed,
                        );
                    }
                }
            }
            let (payload_kind, codec, stored_len, compressed) = best;
            SectionEncode {
                payload_kind,
                codec,
                stored_len,
                section_sha,
                compressed,
            }
        };
        let encoded: Vec<SectionEncode> = if threads > 1 && sections.len() > 1 {
            qpar::map_threads(threads, sections.iter().collect(), encode_one)
        } else {
            sections.iter().map(encode_one).collect()
        };

        // Snapshot root hash: digest of the per-section digests. Every
        // section is verified against its own digest on resolve, so the
        // root binds the full snapshot without a second pass over the data
        // (and the per-section digests parallelize; a flat whole-snapshot
        // hash would serialize on one thread).
        let snapshot_sha = {
            let mut h = Sha256::new();
            for enc in &encoded {
                h.update(&enc.section_sha.0);
            }
            h.finalize()
        };

        // ------------------------------------------------------------------
        // Commit phase: chunk (hashing in parallel), then hand the whole
        // save's chunk set to the store as ONE batch — the pack backend
        // commits it with a single fsync+rename; the loose backend falls
        // back to per-object writes. Input order is section order, so
        // dedup accounting stays deterministic across backends.
        // ------------------------------------------------------------------
        let mut section_refs = Vec::with_capacity(sections.len());
        let mut staged: Vec<StagedChunk<'_>> = Vec::new();
        for enc in &encoded {
            let (refs, slices) = chunk_bytes_threads(&enc.compressed, options.chunk_size, threads);
            for (r, slice) in refs.iter().zip(&slices) {
                staged.push(StagedChunk {
                    reference: *r,
                    data: slice,
                });
            }
            section_refs.push(refs);
        }
        let batch = self.store.put_batch(&staged, options.fsync)?;
        let mut chunks_new = 0usize;
        let mut chunks_deduped = 0usize;
        let mut new_chunk_bytes = 0u64;
        for (chunk, fresh) in staged.iter().zip(&batch.fresh) {
            if *fresh {
                chunks_new += 1;
                new_chunk_bytes += chunk.data.len() as u64;
            } else {
                chunks_deduped += 1;
            }
        }
        let entries: Vec<SectionEntry> = sections
            .iter()
            .zip(&encoded)
            .zip(section_refs)
            .map(|((section, enc), refs)| SectionEntry {
                name: section.name.clone(),
                codec: enc.codec,
                payload_kind: enc.payload_kind,
                stored_len: enc.stored_len as u64,
                section_len: section.bytes.len() as u64,
                section_sha: enc.section_sha,
                chunks: refs,
            })
            .collect();

        if let Some(CrashPoint::AfterChunkWrites) = options.crash {
            return Err(Error::SimulatedCrash {
                at: CrashPoint::AfterChunkWrites.to_string(),
            });
        }

        let (kind, chain_len) = match &base {
            Some((m, _)) => (
                CheckpointKind::Delta { base: m.id.clone() },
                m.chain_len + 1,
            ),
            None => (CheckpointKind::Full, 0),
        };

        let manifest = Manifest {
            id: id.clone(),
            step: snapshot.step,
            kind,
            chain_len,
            created_unix_ms: options.created_unix_ms.unwrap_or_else(now_unix_ms),
            snapshot_sha,
            sections: entries,
        };
        let manifest_bytes = manifest.encode();

        // Commit: append the record pair to the manifest log, mirror to a
        // shared backend, publish with a root-slot write. Any failure
        // (including simulated crashes) drops the cached state so the
        // next access replays exactly what reached the disk.
        let commit_fsyncs = {
            let mut guard = self.state.lock().expect("state lock poisoned");
            self.ensure_fresh(&mut guard)?;
            let st = guard.as_mut().expect("state loaded");
            match self.commit_save(st, &id, &manifest, &manifest_bytes, options) {
                Ok(n) => n,
                Err(e) => {
                    *guard = None;
                    return Err(e);
                }
            }
        };

        // Seed the encode cache for the next delta save: the checkpoint we
        // just committed is the latest, and these are exactly the sections
        // `resolve_sections` would reconstruct for it. Oversized snapshots
        // are not cached — pinning them would roughly double steady-state
        // checkpointing memory for the handle's lifetime.
        let snapshot_bytes: usize = sections.iter().map(|s| s.bytes.len()).sum();
        let chain_chunks = {
            // Own chunks plus (for deltas) the verified base chain's.
            let own = manifest.chunk_refs().map(|r| r.hash);
            match (&manifest.kind, base_chain_chunks) {
                (CheckpointKind::Full, _) => Some(own.collect::<Vec<_>>()),
                (CheckpointKind::Delta { .. }, Some(mut chain)) => {
                    chain.splice(0..0, own);
                    Some(chain)
                }
                // Delta whose chain inventory could not be rebuilt: skip
                // caching rather than cache an unverifiable entry.
                (CheckpointKind::Delta { .. }, None) => None,
            }
        };
        *self.encode_cache.lock().expect("encode cache poisoned") = match chain_chunks {
            Some(chain_chunks) if snapshot_bytes <= ENCODE_CACHE_MAX_BYTES => Some(EncodeCache {
                id: id.clone(),
                sections,
                chain_chunks,
            }),
            _ => None,
        };

        Ok(SaveReport {
            is_delta: manifest.is_delta(),
            chain_len: manifest.chain_len,
            logical_bytes: manifest.logical_bytes(),
            stored_bytes: manifest.stored_bytes(),
            new_chunk_bytes,
            chunks_new,
            chunks_deduped,
            store_renames: batch.renames,
            store_fsyncs: batch.fsyncs,
            commit_renames: 0,
            commit_fsyncs,
            manifest_bytes: manifest_bytes.len() as u64,
            id,
        })
    }

    /// The commit half of [`CheckpointRepo::save`]: log append + mirror +
    /// root publication, with the simulated crash points woven in.
    /// Returns the number of commit-path fsyncs issued. Runs under the
    /// state lock; on error the caller must invalidate the cached state.
    fn commit_save(
        &self,
        st: &mut LogReplay,
        id: &CheckpointId,
        manifest: &Manifest,
        manifest_bytes: &[u8],
        options: &SaveOptions,
    ) -> Result<u64> {
        let mut records = mlog::encode_record(RecordKind::ManifestPut, id.as_str(), manifest_bytes);
        let put_len = records.len() as u64;
        records.extend(mlog::encode_record(
            RecordKind::LatestAdvance,
            id.as_str(),
            &[],
        ));
        self.truncate_tail_locked(st)?;
        let mut commit_fsyncs = 0u64;
        let before;
        match options.commit {
            CommitMode::Atomic => {
                if let Some(CrashPoint::MidManifestWrite { keep_fraction_pct }) = options.crash {
                    // Torn append: bytes land past the committed length
                    // and the root never moves — recovery truncates them
                    // as debris, no detectable corruption remains.
                    let keep = records.len() * keep_fraction_pct.min(100) as usize / 100;
                    mlog::append_to_log(&self.root, st.epoch, &records[..keep], false)?;
                    return Err(Error::SimulatedCrash {
                        at: format!("mid-manifest-write(atomic,{keep})"),
                    });
                }
                before = mlog::append_to_log(&self.root, st.epoch, &records, options.fsync)?;
                if options.fsync {
                    commit_fsyncs += 1;
                }
            }
            CommitMode::InPlaceUnsafe => {
                if let Some(CrashPoint::MidManifestWrite { keep_fraction_pct }) = options.crash {
                    // The unsafe baseline advances the committed length
                    // *before* the record lands, so the torn record sits
                    // inside the committed region — detectable corruption
                    // recovery must flag (experiment R-F8).
                    let keep = records.len() * keep_fraction_pct.min(100) as usize / 100;
                    let base = st.file_len.max(mlog::LOG_HEADER_LEN);
                    let root = RootSlot {
                        generation: st.generation + 1,
                        epoch: st.epoch,
                        committed_len: base + records.len() as u64,
                        latest: st.latest.clone(),
                    };
                    mlog::write_root_slot(&self.root, st.root_slot, &root, false)?;
                    mlog::append_to_log(&self.root, st.epoch, &records[..keep], false)?;
                    return Err(Error::SimulatedCrash {
                        at: format!("mid-manifest-write(in-place,{keep})"),
                    });
                }
                before = mlog::append_to_log(&self.root, st.epoch, &records, options.fsync)?;
                if options.fsync {
                    commit_fsyncs += 1;
                }
            }
        }

        // Mirror the manifest to a shared backend once it is locally
        // durable. Ordering matters for fresh-directory recovery: the
        // chunks went to the (shared) store before the manifest, so a
        // mirrored manifest is always resolvable remotely; a crash in
        // between leaves the remote one checkpoint behind the local
        // directory, never ahead of its data.
        self.mirror_meta(&format!("manifests/{}", id.file_name()), manifest_bytes)?;

        if let Some(CrashPoint::BeforeLatestSwing) = options.crash {
            return Err(Error::SimulatedCrash {
                at: CrashPoint::BeforeLatestSwing.to_string(),
            });
        }

        // Publish. Atomic mode writes the *stale* slot (a torn write can
        // only damage an already-superseded root); the in-place baseline
        // overwrites the live slot.
        let root = RootSlot {
            generation: st.generation + 1,
            epoch: st.epoch,
            committed_len: before + records.len() as u64,
            latest: Some(id.clone()),
        };
        let slot = match options.commit {
            CommitMode::Atomic => 1 - st.root_slot,
            CommitMode::InPlaceUnsafe => st.root_slot,
        };
        if matches!(options.crash, Some(CrashPoint::MidLatestWrite)) {
            let bytes = root.encode();
            fs::write(
                mlog::root_slot_path(&self.root, slot),
                &bytes[..bytes.len() / 2],
            )
            .map_err(|e| Error::io("torn root-slot write", e))?;
            return Err(Error::SimulatedCrash {
                at: CrashPoint::MidLatestWrite.to_string(),
            });
        }
        mlog::write_root_slot(&self.root, slot, &root, options.fsync)?;
        if options.fsync {
            commit_fsyncs += 1;
        }
        self.mirror_meta("LATEST", format!("{}\n", id.as_str()).as_bytes())?;

        st.spans.insert(id.clone(), (before, put_len));
        st.manifests.insert(id.clone(), manifest.clone());
        st.tombstones.remove(id);
        st.latest = Some(id.clone());
        st.records += 2;
        st.generation = root.generation;
        st.root_slot = slot;
        st.file_len = root.committed_len;
        st.valid_len = root.committed_len;
        st.committed_len = root.committed_len;
        Ok(commit_fsyncs)
    }

    /// Pulls repository metadata (manifests, `LATEST`) down from a
    /// shared backend into this working directory's manifest log. No-op
    /// (`Ok(0)`) for local backends. Local state wins: a manifest the
    /// log already carries is never overwritten, the mirror's `LATEST`
    /// is only adopted when the log has no latest pointer, and a
    /// **tombstoned** id (retired by retention here) is never re-pulled
    /// — instead its mirror delete is re-issued, reconciling the
    /// divergence a crash between local retire and remote delete leaves
    /// behind (the delete is idempotent).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or local filesystem errors.
    pub fn sync_shared_meta(&self) -> Result<usize> {
        if !self.store.is_shared() {
            return Ok(0);
        }
        let listed = self.store.meta_list("manifests/")?;
        let mut guard = self.state.lock().expect("state lock poisoned");
        self.ensure_fresh(&mut guard)?;
        let st = guard.as_mut().expect("state loaded");
        let res = self.sync_shared_meta_locked(st, listed);
        if res.is_err() {
            *guard = None;
        }
        res
    }

    fn sync_shared_meta_locked(&self, st: &mut LogReplay, listed: Vec<String>) -> Result<usize> {
        // Partition the mirror's inventory. Defensive name filter: the
        // server validated these, but only plain `<id>.qmf` names are
        // meaningful here.
        let mut missing: Vec<(String, CheckpointId)> = Vec::new();
        let mut retired: Vec<String> = Vec::new();
        for name in listed {
            let Some(file) = name.strip_prefix("manifests/") else {
                continue;
            };
            let Some(stem) = file.strip_suffix(".qmf") else {
                continue;
            };
            if stem.is_empty() || stem.contains('/') || stem.contains("..") {
                continue;
            }
            let id = CheckpointId(stem.to_string());
            if st.tombstones.contains(&id) {
                retired.push(name);
            } else if !st.manifests.contains_key(&id) {
                missing.push((name, id));
            }
        }
        // One pipelined burst for every missing manifest (the remote
        // backend overrides meta_get_many), not a round trip each.
        let names: Vec<String> = missing.iter().map(|(n, _)| n.clone()).collect();
        let mut buf = Vec::new();
        let mut pulled: Vec<(CheckpointId, Manifest, u64, u64)> = Vec::new();
        for ((_, id), bytes) in missing.iter().zip(self.store.meta_get_many(&names)?) {
            let Some(bytes) = bytes else { continue };
            // Verify before adoption — a mirror can rot like any store.
            let Ok(m) = Manifest::decode(&bytes) else {
                continue;
            };
            if &m.id != id {
                continue;
            }
            let off = buf.len() as u64;
            let rec = mlog::encode_record(RecordKind::ManifestPut, id.as_str(), &bytes);
            buf.extend_from_slice(&rec);
            pulled.push((id.clone(), m, off, rec.len() as u64));
        }
        let mut adopt_latest: Option<CheckpointId> = None;
        if st.latest.is_none() {
            if let Some(bytes) = self.store.meta_get("LATEST")? {
                let id = CheckpointId(String::from_utf8_lossy(&bytes).trim().to_string());
                if st.manifests.contains_key(&id) || pulled.iter().any(|(p, ..)| p == &id) {
                    buf.extend(mlog::encode_record(
                        RecordKind::LatestAdvance,
                        id.as_str(),
                        &[],
                    ));
                    adopt_latest = Some(id);
                }
            }
        }
        let count = pulled.len();
        if !buf.is_empty() {
            // One batched append + root flip for the whole pull.
            let before = self.append_and_flip(st, &buf, adopt_latest.as_ref(), false)?;
            for (id, m, off, len) in pulled {
                st.spans.insert(id.clone(), (before + off, len));
                st.records += 1;
                st.manifests.insert(id, m);
            }
            if adopt_latest.is_some() {
                st.records += 1;
            }
        }
        // Reconcile retention divergence: re-issue the (idempotent)
        // mirror delete for every id we retired durably but the mirror
        // still lists.
        for name in retired {
            self.store.meta_delete(&name)?;
        }
        self.meta_synced
            .fetch_add(count, std::sync::atomic::Ordering::Relaxed);
        Ok(count)
    }

    /// Mirrors one just-committed metadata file to a shared backend
    /// (no-op locally).
    fn mirror_meta(&self, name: &str, bytes: &[u8]) -> Result<()> {
        if self.store.is_shared() {
            self.store.meta_put(name, bytes)?;
        }
        Ok(())
    }

    /// Chunk hashes of `manifest`'s entire delta chain (newest first), or
    /// `None` when an ancestor manifest is unreadable or the chain exceeds
    /// the cycle guard.
    fn collect_chain_chunks(&self, manifest: &Manifest) -> Option<Vec<crate::hash::ContentHash>> {
        let mut out = Vec::new();
        let mut cursor = manifest.clone();
        for _ in 0..CHAIN_HARD_LIMIT {
            out.extend(cursor.chunk_refs().map(|r| r.hash));
            match &cursor.kind {
                CheckpointKind::Full => return Some(out),
                CheckpointKind::Delta { base } => cursor = self.load_manifest(base).ok()?,
            }
        }
        None
    }

    fn atomic_write(&self, target: &Path, bytes: &[u8], fsync: bool) -> Result<()> {
        static STAGE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = self.tmp_dir.join(format!(
            "stage-{}-{}",
            std::process::id(),
            STAGE.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)
                .map_err(|e| Error::io(format!("creating {}", tmp.display()), e))?;
            f.write_all(bytes)
                .map_err(|e| Error::io(format!("writing {}", tmp.display()), e))?;
            if fsync {
                qobs::time(&crate::obs::FSYNC_NS, || f.sync_all())
                    .map_err(|e| Error::io(format!("syncing {}", tmp.display()), e))?;
            }
        }
        qobs::time(&crate::obs::RENAME_NS, || fs::rename(&tmp, target))
            .map_err(|e| Error::io(format!("renaming into {}", target.display()), e))?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // load
    // ------------------------------------------------------------------

    /// Reads the committed latest pointer from the manifest log's root
    /// slot; `None` when the repository is empty or the pointer dangles
    /// (its manifest record is damaged or deleted).
    ///
    /// # Errors
    ///
    /// Fails on log-replay I/O errors.
    pub fn read_latest(&self) -> Result<Option<CheckpointId>> {
        self.with_state(|st| Ok(st.latest.clone()))
    }

    /// Lists all intact checkpoint ids, ascending.
    ///
    /// # Errors
    ///
    /// Fails on log-replay I/O errors.
    pub fn list_ids(&self) -> Result<Vec<CheckpointId>> {
        self.with_state(|st| Ok(st.manifests.keys().cloned().collect()))
    }

    /// Loads one manifest from the replayed log state.
    ///
    /// # Errors
    ///
    /// [`Error::NotFound`] when the log carries no intact record for
    /// `id` (absent, deleted, or damaged — damage details are surfaced
    /// via [`Self::damaged_manifests`]).
    pub fn load_manifest(&self, id: &CheckpointId) -> Result<Manifest> {
        self.with_state(|st| {
            st.manifests
                .get(id)
                .cloned()
                .ok_or_else(|| Error::NotFound {
                    what: format!("manifest {id}"),
                })
        })
    }

    /// Manifest-log records that failed CRC/frame validation on the
    /// last replay, as `(record label, reason)` pairs. Empty on a
    /// healthy log; a benign torn tail (crash mid-append past the
    /// committed length) does *not* appear here.
    ///
    /// # Errors
    ///
    /// Fails on log-replay I/O errors.
    pub fn damaged_manifests(&self) -> Result<Vec<(String, String)>> {
        self.with_state(|st| Ok(st.damaged.clone()))
    }

    /// Resolves a manifest to its full section payloads, walking and
    /// verifying the delta chain.
    ///
    /// # Errors
    ///
    /// Fails on missing/corrupt chunks, hash mismatches at any chain layer,
    /// or chains exceeding the hard cycle guard.
    pub fn resolve_sections(&self, manifest: &Manifest) -> Result<Vec<Section>> {
        // Collect the chain: newest → oldest full checkpoint.
        let mut chain = vec![manifest.clone()];
        let mut guard = 0usize;
        loop {
            let last = chain.last().expect("non-empty");
            match &last.kind {
                CheckpointKind::Full => break,
                CheckpointKind::Delta { base } => {
                    guard += 1;
                    if guard > CHAIN_HARD_LIMIT {
                        return Err(Error::ChainTooLong {
                            length: guard,
                            limit: CHAIN_HARD_LIMIT,
                        });
                    }
                    let base_manifest = self.load_manifest(base)?;
                    chain.push(base_manifest);
                }
            }
        }

        // Resolve oldest-first.
        let mut sections: Vec<Section> = Vec::new();
        for m in chain.iter().rev() {
            let mut next: Vec<Section> = Vec::with_capacity(m.sections.len());
            for entry in &m.sections {
                // One batched fetch per section: the remote backend
                // pipelines the whole burst in a single round trip, and
                // the pack backend resolves it against one index scan.
                let chunks = self.store.get_many(&entry.chunks)?;
                let compressed: Vec<u8> = chunks.concat();
                let stored = entry.codec.decompress(&compressed)?;
                if stored.len() as u64 != entry.stored_len {
                    return Err(Error::corrupt(
                        format!("section {} of {}", entry.name, m.id),
                        format!("stored length {} != {}", stored.len(), entry.stored_len),
                    ));
                }
                let bytes = match entry.payload_kind {
                    PayloadKind::Full => stored,
                    PayloadKind::DeltaPatch => {
                        let patch = BlockPatch::decode(&stored)?;
                        let base_section = sections
                            .iter()
                            .find(|s| s.name == entry.name)
                            .ok_or_else(|| Error::NotFound {
                                what: format!("base section {} for delta {}", entry.name, m.id),
                            })?;
                        patch.apply(&base_section.bytes)?
                    }
                    PayloadKind::XorBase => {
                        let base_section = sections
                            .iter()
                            .find(|s| s.name == entry.name)
                            .ok_or_else(|| Error::NotFound {
                                what: format!("base section {} for xor delta {}", entry.name, m.id),
                            })?;
                        if base_section.bytes.len() != stored.len() {
                            return Err(Error::corrupt(
                                format!("section {} of {}", entry.name, m.id),
                                format!(
                                    "xor payload length {} != base length {}",
                                    stored.len(),
                                    base_section.bytes.len()
                                ),
                            ));
                        }
                        base_section
                            .bytes
                            .iter()
                            .zip(&stored)
                            .map(|(a, b)| a ^ b)
                            .collect()
                    }
                };
                if bytes.len() as u64 != entry.section_len {
                    return Err(Error::corrupt(
                        format!("section {} of {}", entry.name, m.id),
                        format!("resolved length {} != {}", bytes.len(), entry.section_len),
                    ));
                }
                let sha = Sha256::digest(&bytes);
                if sha != entry.section_sha {
                    return Err(Error::corrupt(
                        format!("section {} of {}", entry.name, m.id),
                        "resolved section hash mismatch".to_string(),
                    ));
                }
                next.push(Section {
                    name: entry.name.clone(),
                    bytes,
                });
            }
            sections = next;
        }

        // Snapshot root hash: digest of the per-section digests, which were
        // each verified against the resolved bytes above.
        let mut h = Sha256::new();
        for entry in &manifest.sections {
            h.update(&entry.section_sha.0);
        }
        if h.finalize() != manifest.snapshot_sha {
            return Err(Error::corrupt(
                format!("checkpoint {}", manifest.id),
                "snapshot hash mismatch".to_string(),
            ));
        }
        Ok(sections)
    }

    /// Loads a checkpoint by id into a snapshot.
    ///
    /// # Errors
    ///
    /// Propagates manifest / chunk / decode failures.
    pub fn load(&self, id: &CheckpointId) -> Result<TrainingSnapshot> {
        let manifest = self.load_manifest(id)?;
        let sections = self.resolve_sections(&manifest)?;
        TrainingSnapshot::from_sections(&sections)
    }

    /// Loads the checkpoint named by `LATEST`.
    ///
    /// # Errors
    ///
    /// [`Error::NotFound`] when the repo has no pointer; otherwise as
    /// [`CheckpointRepo::load`].
    pub fn load_latest(&self) -> Result<(CheckpointId, TrainingSnapshot)> {
        let id = self.read_latest()?.ok_or_else(|| Error::NotFound {
            what: "LATEST pointer".into(),
        })?;
        let snap = self.load(&id)?;
        Ok((id, snap))
    }

    /// Recovery: replays the manifest log (newest valid root slot,
    /// falling back across slots on a torn write), then validates
    /// checkpoints newest-first until one loads intact — O(log replay),
    /// not a directory walk, and normally `manifests_tried == 1`.
    /// Orphaned staging files (debris of the crash being recovered
    /// from) are garbage collected first — `tmp/` contents are
    /// disposable at every point of the commit protocol, so this is
    /// always safe — and a benign torn log tail is truncated away. For
    /// a shared (remote) backend this clears *both* staging areas — the
    /// store's own (the server-side `tmp/`, via `CLEAR_STAGING` on the
    /// live connection) and the local repository `tmp/` — pulls down
    /// any manifests this directory is missing, and reconciles
    /// retention divergence (re-issuing mirror deletes for tombstoned
    /// ids), so recovery works from a fresh directory against the same
    /// daemon.
    ///
    /// # Errors
    ///
    /// [`Error::NoValidCheckpoint`] when nothing can be recovered.
    pub fn recover(&self) -> Result<(TrainingSnapshot, RecoveryReport)> {
        let _span = qobs::span("qcheck.recover");
        crate::obs::RECOVERS.inc();
        // Store staging first (for local backends this *is* the repo
        // `tmp/`), then whatever the store didn't own — for a remote
        // backend the local manifest staging dir is a separate
        // directory the server never sees.
        let mut staging_cleared = self.store.clear_staging().unwrap_or(0);
        staging_cleared += clear_dir_files_local(&self.tmp_dir);
        // Force a from-disk replay — recovery must not trust cached
        // state — and chop any benign torn tail the crash left.
        {
            let mut guard = self.state.lock().expect("state lock poisoned");
            *guard = None;
        }
        staging_cleared += self.with_state(|st| self.truncate_tail_locked(st))?;
        let mut report = RecoveryReport {
            staging_cleared,
            meta_synced: {
                let _ = self.sync_shared_meta();
                self.meta_synced.load(std::sync::atomic::Ordering::Relaxed)
            },
            ..RecoveryReport::default()
        };
        let (ids, damaged) = self.with_state(|st| {
            Ok((
                st.manifests.keys().rev().cloned().collect::<Vec<_>>(),
                st.damaged.clone(),
            ))
        })?;
        // Log records that failed validation are reported alongside the
        // checkpoints whose chunks fail below.
        report.skipped.extend(damaged);
        // Bracket the chunk walk as one read pass: the pack backend
        // rescans packs/ at most once for the whole walk instead of
        // once per index miss.
        self.store.begin_read_pass();
        let mut recovered = None;
        for id in ids {
            report.manifests_tried += 1;
            match self.load(&id) {
                Ok(snapshot) => {
                    report.recovered = Some(id);
                    recovered = Some(snapshot);
                    break;
                }
                Err(e) => {
                    report
                        .skipped
                        .push((id.as_str().to_string(), e.to_string()));
                }
            }
        }
        self.store.end_read_pass();
        crate::obs::MANIFESTS_TRIED.add(report.manifests_tried as u64);
        match recovered {
            Some(snapshot) => Ok((snapshot, report)),
            None => Err(Error::NoValidCheckpoint {
                rejected: report.skipped.len(),
            }),
        }
    }

    // ------------------------------------------------------------------
    // maintenance
    // ------------------------------------------------------------------

    /// Mark-and-sweep garbage collection over the chunk store: everything
    /// referenced by a *decodable* manifest survives.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn gc(&self) -> Result<GcReport> {
        let _span = qobs::span("qcheck.gc");
        crate::obs::GCS.inc();
        self.store.sweep(&self.reachable_chunks()?)
    }

    /// Read-only preview of what [`CheckpointRepo::gc`] would do right
    /// now — including the pack backend's compaction-deferral counters
    /// (`GcReport::{deferred,deferred_bytes}`). Deletes nothing.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn gc_plan(&self) -> Result<GcReport> {
        self.store.plan_sweep(&self.reachable_chunks()?)
    }

    /// The chunk hashes referenced by every intact manifest.
    fn reachable_chunks(&self) -> Result<BTreeSet<crate::hash::ContentHash>> {
        self.with_state(|st| {
            Ok(st
                .manifests
                .values()
                .flat_map(|m| m.chunk_refs().map(|c| c.hash))
                .collect())
        })
    }

    /// Applies a retention policy, retiring old checkpoints (keeping
    /// delta bases alive) and then garbage-collecting chunks.
    ///
    /// Retire order is crash-safe against resurrection: tombstone
    /// records land durably in the manifest log *first*, then the
    /// mirror deletes go out; a crash in between leaves tombstones that
    /// block re-pulling the retired ids, and the next
    /// [`Self::sync_shared_meta`] / [`Self::recover`] re-issues the
    /// (idempotent) mirror deletes.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn apply_retention(&self, retention: Retention) -> Result<RetentionReport> {
        self.apply_retention_with(retention, None)
    }

    /// [`Self::apply_retention`] with an optional injected crash point
    /// ([`CrashPoint::AfterRetireLocal`] fires between the local
    /// tombstone append and the mirror deletes — the exact interleaving
    /// that used to resurrect retired checkpoints on the next fresh-dir
    /// sync).
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors, or [`Error::SimulatedCrash`] at the
    /// injected point.
    pub fn apply_retention_with(
        &self,
        retention: Retention,
        crash: Option<CrashPoint>,
    ) -> Result<RetentionReport> {
        let mut report = RetentionReport::default();
        let keep_n = match retention {
            Retention::KeepAll => {
                report.gc = self.gc()?;
                self.maybe_compact()?;
                return Ok(report);
            }
            Retention::KeepLast(n) => n,
        };
        // Phase 1 (durable, local): compute the retire set against the
        // replayed state and append its tombstone records in one flip.
        let retired = {
            let mut guard = self.state.lock().expect("state lock poisoned");
            self.ensure_fresh(&mut guard)?;
            let st = guard.as_mut().expect("state loaded");
            let res = self.retire_locked(st, keep_n);
            if res.is_err() {
                *guard = None;
            }
            res?
        };
        if matches!(crash, Some(CrashPoint::AfterRetireLocal)) && !retired.is_empty() {
            return Err(Error::SimulatedCrash {
                at: CrashPoint::AfterRetireLocal.to_string(),
            });
        }
        // Phase 2: mirror the deletes (idempotent — missing names are
        // fine, so crash-replay of this loop converges).
        if self.store.is_shared() {
            for id in &retired {
                self.store
                    .meta_delete(&format!("manifests/{}", id.file_name()))?;
            }
        }
        report.manifests_deleted = retired.len();
        report.gc = self.gc()?;
        self.maybe_compact()?;
        Ok(report)
    }

    /// Computes the retire set under the state lock and appends its
    /// tombstone records + root flip. Returns the retired ids.
    fn retire_locked(&self, st: &mut LogReplay, keep_n: usize) -> Result<Vec<CheckpointId>> {
        let newest: Vec<CheckpointId> = st.manifests.keys().rev().take(keep_n).cloned().collect();
        // Transitively keep delta bases.
        let mut keep: BTreeSet<CheckpointId> = BTreeSet::new();
        for id in &newest {
            let mut cursor = id.clone();
            let mut guard = 0usize;
            loop {
                if !keep.insert(cursor.clone()) {
                    break;
                }
                guard += 1;
                if guard > CHAIN_HARD_LIMIT {
                    break;
                }
                match st.manifests.get(&cursor) {
                    Some(m) => match &m.kind {
                        CheckpointKind::Delta { base } => cursor = base.clone(),
                        CheckpointKind::Full => break,
                    },
                    None => break,
                }
            }
        }
        let retired: Vec<CheckpointId> = st
            .manifests
            .keys()
            .filter(|id| !keep.contains(*id))
            .cloned()
            .collect();
        if retired.is_empty() {
            return Ok(retired);
        }
        let mut buf = Vec::new();
        for id in &retired {
            buf.extend(mlog::encode_record(
                RecordKind::ManifestDelete,
                id.as_str(),
                &[],
            ));
        }
        self.append_and_flip(st, &buf, None, false)?;
        for id in &retired {
            st.manifests.remove(id);
            st.spans.remove(id);
            st.tombstones.insert(id.clone());
            st.records += 1;
            if st.latest.as_ref() == Some(id) {
                // KeepLast(0) edge: the pointer itself was retired.
                st.latest = None;
            }
        }
        Ok(retired)
    }

    /// Compacts the manifest log into a fresh epoch when replay cost has
    /// outgrown the live state (record count > 2× live + tombstones +
    /// slack). The new log is staged and renamed in (the one rename
    /// retention pays), the root flips to the new epoch, and old epoch
    /// logs are deleted. Tombstones survive compaction on shared
    /// backends (they are the durable delete intent the mirror
    /// reconciliation needs) and are dropped on local ones.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    fn maybe_compact(&self) -> Result<bool> {
        let mut guard = self.state.lock().expect("state lock poisoned");
        self.ensure_fresh(&mut guard)?;
        let st = guard.as_mut().expect("state loaded");
        let live = st.manifests.len() as u64;
        let tombs = st.tombstones.len() as u64;
        if st.records <= 2 * (live + tombs) + 16 {
            return Ok(false);
        }
        let res = self.compact_log_locked(st);
        if res.is_err() {
            *guard = None;
        }
        res.map(|()| true)
    }

    fn compact_log_locked(&self, st: &mut LogReplay) -> Result<()> {
        let _span = qobs::span("qcheck.compact_log");
        crate::obs::COMPACTIONS.inc();
        let epoch = st.epoch + 1;
        let mut buf = mlog::log_header(epoch).to_vec();
        let mut spans: BTreeMap<CheckpointId, (u64, u64)> = BTreeMap::new();
        let mut records = 0u64;
        for (id, m) in &st.manifests {
            let off = buf.len() as u64;
            let rec = mlog::encode_record(RecordKind::ManifestPut, id.as_str(), &m.encode());
            buf.extend_from_slice(&rec);
            spans.insert(id.clone(), (off, rec.len() as u64));
            records += 1;
        }
        if self.store.is_shared() {
            for id in &st.tombstones {
                buf.extend(mlog::encode_record(
                    RecordKind::ManifestDelete,
                    id.as_str(),
                    &[],
                ));
                records += 1;
            }
        } else {
            st.tombstones.clear();
        }
        if let Some(latest) = &st.latest {
            buf.extend(mlog::encode_record(
                RecordKind::LatestAdvance,
                latest.as_str(),
                &[],
            ));
            records += 1;
        }
        self.atomic_write(&mlog::log_path(&self.root, epoch), &buf, true)?;
        let root = RootSlot {
            generation: st.generation + 1,
            epoch,
            committed_len: buf.len() as u64,
            latest: st.latest.clone(),
        };
        let slot = 1 - st.root_slot;
        mlog::write_root_slot(&self.root, slot, &root, true)?;
        for old in mlog::list_log_epochs(&self.root) {
            if old != epoch {
                let _ = fs::remove_file(mlog::log_path(&self.root, old));
            }
        }
        st.generation = root.generation;
        st.epoch = epoch;
        st.root_slot = slot;
        st.committed_len = buf.len() as u64;
        st.valid_len = buf.len() as u64;
        st.file_len = buf.len() as u64;
        st.spans = spans;
        st.records = records;
        st.damaged.clear();
        Ok(())
    }

    /// Test/fault-injection hook: damages the *log record* carrying
    /// `id`'s manifest in place, the manifest-log equivalent of
    /// corrupting a per-checkpoint file in the legacy layout.
    /// `BitFlip` flips one payload byte, `Truncate` chops the record
    /// (and everything after it), `Delete` scrubs the record to same-
    /// length padding so the id vanishes without a frame error.
    ///
    /// # Errors
    ///
    /// [`Error::NotFound`] when the log carries no record for `id`.
    pub fn corrupt_manifest(&self, id: &CheckpointId, fault: StorageFault) -> Result<()> {
        let (epoch, span) = self.with_state(|st| {
            let span = st.spans.get(id).copied().ok_or_else(|| Error::NotFound {
                what: format!("manifest record {id}"),
            })?;
            Ok((st.epoch, span))
        })?;
        let path = mlog::log_path(&self.root, epoch);
        let (off, len) = (span.0 as usize, span.1 as usize);
        match fault {
            StorageFault::BitFlip { offset } => {
                let mut bytes =
                    fs::read(&path).map_err(|e| Error::io("reading manifest log", e))?;
                // Land inside the record payload (past the frame
                // header) so the flip damages manifest bytes, not the
                // record id.
                let header = 4 + 1 + 2 + id.as_str().len() + 4;
                let payload_len = len.saturating_sub(header + 4).max(1);
                let target = off + header + (offset as usize % payload_len);
                bytes[target] ^= 0x01;
                fs::write(&path, &bytes).map_err(|e| Error::io("writing manifest log", e))?;
            }
            StorageFault::Truncate { keep_pct } => {
                let keep = span.0 + span.1 * u64::from(keep_pct.min(100)) / 100;
                let f = fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| Error::io("opening manifest log", e))?;
                f.set_len(keep)
                    .map_err(|e| Error::io("truncating manifest log", e))?;
            }
            StorageFault::Delete => {
                let mut bytes =
                    fs::read(&path).map_err(|e| Error::io("reading manifest log", e))?;
                let pad = mlog::encode_record(
                    RecordKind::Padding,
                    "",
                    &vec![0u8; len - mlog::RECORD_OVERHEAD],
                );
                bytes[off..off + len].copy_from_slice(&pad);
                fs::write(&path, &bytes).map_err(|e| Error::io("writing manifest log", e))?;
            }
        }
        *self.state.lock().expect("state lock poisoned") = None;
        Ok(())
    }

    /// Compacts the latest checkpoint's delta chain by rewriting it as a
    /// full checkpoint (bounding future recovery latency — experiment R-F6).
    ///
    /// Returns `None` when the latest checkpoint is already full.
    ///
    /// # Errors
    ///
    /// Propagates load/save failures.
    pub fn compact_latest(&self, options: &SaveOptions) -> Result<Option<SaveReport>> {
        let (id, snapshot) = self.load_latest()?;
        let manifest = self.load_manifest(&id)?;
        if !manifest.is_delta() {
            return Ok(None);
        }
        let mut opts = options.clone();
        opts.mode = SaveMode::Full;
        let report = self.save(&snapshot, &opts)?;
        Ok(Some(report))
    }
}

/// Guard for the writer lock. A local LOCK file (`path` set) is removed
/// on drop; a server-side lease (`path` empty) stays with the *store
/// handle* — it is renewed by traffic, released when the handle drops,
/// and expired by TTL if the process is killed, so the guard itself has
/// nothing to clean up.
#[derive(Debug)]
pub struct RepoLock {
    path: Option<PathBuf>,
}

impl Drop for RepoLock {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            let _ = fs::remove_file(path);
        }
    }
}

/// Best-effort removal of plain files directly under `dir` (the local
/// manifest-staging sweep used by recovery; absence and races are fine).
fn clear_dir_files_local(dir: &Path) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| fs::remove_file(e.path()).is_ok())
        .count()
}

fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Reference cost of a naive simulator-state checkpoint for an `n`-qubit
/// register: `2^n` amplitudes × 16 bytes. The paper's contrast line.
pub fn naive_statevector_bytes(num_qubits: u32) -> u128 {
    (1u128 << num_qubits) * 16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::StateBlob;

    struct TempRepo {
        path: PathBuf,
    }

    impl TempRepo {
        fn new() -> (Self, CheckpointRepo) {
            static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "qcheck-repo-test-{}-{}",
                std::process::id(),
                N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            ));
            let repo = CheckpointRepo::open(&path).unwrap();
            (TempRepo { path }, repo)
        }
    }

    impl Drop for TempRepo {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.path);
        }
    }

    fn snapshot_at(step: u64, params: Vec<f64>) -> TrainingSnapshot {
        let mut s = TrainingSnapshot::new("test-run");
        s.step = step;
        s.params = params;
        s.optimizer = StateBlob::new("adam-v1", vec![0u8; 64]);
        s.rng_streams.insert(
            "shots".into(),
            crate::snapshot::RngCapture([step as u8; 40]),
        );
        s.total_shots = step * 1000;
        s
    }

    #[test]
    fn save_and_load_full_round_trip() {
        let (_t, repo) = TempRepo::new();
        let snap = snapshot_at(10, vec![0.5; 100]);
        let report = repo.save(&snap, &SaveOptions::default()).unwrap();
        assert!(!report.is_delta);
        assert_eq!(report.chain_len, 0);
        let (id, loaded) = repo.load_latest().unwrap();
        assert_eq!(id, report.id);
        assert_eq!(loaded, snap);
    }

    #[test]
    fn incremental_saves_form_chain_and_resolve() {
        let (_t, repo) = TempRepo::new();
        let opts = SaveOptions::incremental(10);
        let mut params = vec![0.1f64; 2000];
        let r0 = repo.save(&snapshot_at(0, params.clone()), &opts).unwrap();
        assert!(!r0.is_delta);
        for step in 1..5u64 {
            params[step as usize * 7] += 0.001;
            let r = repo
                .save(&snapshot_at(step, params.clone()), &opts)
                .unwrap();
            assert!(r.is_delta, "step {step}");
            assert_eq!(r.chain_len as u64, step);
        }
        let (_, loaded) = repo.load_latest().unwrap();
        assert_eq!(loaded.params, params);
        assert_eq!(loaded.step, 4);
    }

    #[test]
    fn delta_saves_write_fewer_bytes_than_full() {
        let (_t, repo) = TempRepo::new();
        let opts = SaveOptions::incremental(100);
        let mut params = vec![0.123f64; 20_000];
        let full = repo.save(&snapshot_at(0, params.clone()), &opts).unwrap();
        params[5] += 1e-9;
        let delta = repo.save(&snapshot_at(1, params.clone()), &opts).unwrap();
        assert!(delta.is_delta);
        assert!(
            delta.bytes_written() < full.bytes_written() / 4,
            "delta {} vs full {}",
            delta.bytes_written(),
            full.bytes_written()
        );
    }

    #[test]
    fn chain_limit_forces_full() {
        let (_t, repo) = TempRepo::new();
        let opts = SaveOptions::incremental(2);
        let mut reports = Vec::new();
        for step in 0..6u64 {
            reports.push(
                repo.save(&snapshot_at(step, vec![step as f64; 50]), &opts)
                    .unwrap(),
            );
        }
        let chain: Vec<u32> = reports.iter().map(|r| r.chain_len).collect();
        assert_eq!(chain, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn dedup_across_identical_saves() {
        let (_t, repo) = TempRepo::new();
        let snap = snapshot_at(1, vec![0.7; 5000]);
        let r1 = repo.save(&snap, &SaveOptions::default()).unwrap();
        // Same logical content ⇒ all chunks dedup.
        let r2 = repo.save(&snap, &SaveOptions::default()).unwrap();
        assert!(r1.chunks_new > 0);
        assert_eq!(r2.chunks_new, 0, "identical snapshot rewrote chunks");
        assert_eq!(r2.chunks_deduped, r1.chunks_new + r1.chunks_deduped);
    }

    #[test]
    fn recover_prefers_newest_valid() {
        let (_t, repo) = TempRepo::new();
        repo.save(&snapshot_at(1, vec![1.0; 10]), &SaveOptions::default())
            .unwrap();
        let r2 = repo
            .save(&snapshot_at(2, vec![2.0; 10]), &SaveOptions::default())
            .unwrap();
        let (snap, report) = repo.recover().unwrap();
        assert_eq!(snap.step, 2);
        assert_eq!(report.recovered, Some(r2.id));
        assert!(report.skipped.is_empty());
    }

    #[test]
    fn recover_falls_back_over_corrupt_manifest() {
        let (_t, repo) = TempRepo::new();
        repo.save(&snapshot_at(1, vec![1.0; 10]), &SaveOptions::default())
            .unwrap();
        let r2 = repo
            .save(&snapshot_at(2, vec![2.0; 10]), &SaveOptions::default())
            .unwrap();
        // Corrupt the newest manifest's log record.
        repo.corrupt_manifest(&r2.id, crate::failure::StorageFault::BitFlip { offset: 33 })
            .unwrap();
        let (snap, report) = repo.recover().unwrap();
        assert_eq!(snap.step, 1);
        assert_eq!(report.skipped.len(), 1);
    }

    #[test]
    fn recover_detects_corrupt_chunk() {
        let (_t, repo) = TempRepo::new();
        repo.save(&snapshot_at(1, vec![1.0; 4000]), &SaveOptions::default())
            .unwrap();
        let r2 = repo
            .save(&snapshot_at(2, vec![2.0; 4000]), &SaveOptions::default())
            .unwrap();
        // Corrupt one chunk of the newest checkpoint.
        let m = repo.load_manifest(&r2.id).unwrap();
        let victim = m.chunk_refs().next().unwrap().hash;
        repo.store().corrupt_object(&victim, 0).unwrap();
        let (snap, _) = repo.recover().unwrap();
        // Fell back (step 1) unless the corrupted chunk was shared; in that
        // case both fail — but these params differ so chunks are distinct.
        assert_eq!(snap.step, 1);
    }

    #[test]
    fn recover_on_empty_repo_fails_cleanly() {
        let (_t, repo) = TempRepo::new();
        match repo.recover() {
            Err(Error::NoValidCheckpoint { rejected: 0 }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crash_before_manifest_leaves_previous_state() {
        let (_t, repo) = TempRepo::new();
        repo.save(&snapshot_at(1, vec![1.0; 100]), &SaveOptions::default())
            .unwrap();
        let opts = SaveOptions {
            crash: Some(CrashPoint::AfterChunkWrites),
            ..SaveOptions::default()
        };
        let err = repo
            .save(&snapshot_at(2, vec![2.0; 100]), &opts)
            .unwrap_err();
        assert!(matches!(err, Error::SimulatedCrash { .. }));
        let (snap, _) = repo.recover().unwrap();
        assert_eq!(snap.step, 1);
    }

    #[test]
    fn atomic_mid_manifest_crash_is_recoverable() {
        let (_t, repo) = TempRepo::new();
        repo.save(&snapshot_at(1, vec![1.0; 100]), &SaveOptions::default())
            .unwrap();
        for pct in [10u8, 50, 90] {
            let opts = SaveOptions {
                crash: Some(CrashPoint::MidManifestWrite {
                    keep_fraction_pct: pct,
                }),
                ..SaveOptions::default()
            };
            let _ = repo
                .save(&snapshot_at(2, vec![2.0; 100]), &opts)
                .unwrap_err();
            let (snap, report) = repo.recover().unwrap();
            assert_eq!(snap.step, 1, "pct {pct}");
            assert!(report.skipped.is_empty(), "atomic mode left no debris");
        }
    }

    #[test]
    fn inplace_mid_manifest_crash_leaves_detectable_corruption() {
        let (_t, repo) = TempRepo::new();
        repo.save(&snapshot_at(1, vec![1.0; 100]), &SaveOptions::default())
            .unwrap();
        let opts = SaveOptions {
            commit: CommitMode::InPlaceUnsafe,
            crash: Some(CrashPoint::MidManifestWrite {
                keep_fraction_pct: 60,
            }),
            ..SaveOptions::default()
        };
        let _ = repo
            .save(&snapshot_at(2, vec![2.0; 100]), &opts)
            .unwrap_err();
        // The torn manifest exists on disk but must be rejected, not
        // silently half-read.
        let (snap, report) = repo.recover().unwrap();
        assert_eq!(snap.step, 1);
        assert_eq!(report.skipped.len(), 1);
    }

    #[test]
    fn torn_latest_pointer_does_not_break_recovery() {
        let (_t, repo) = TempRepo::new();
        repo.save(&snapshot_at(1, vec![1.0; 100]), &SaveOptions::default())
            .unwrap();
        let opts = SaveOptions {
            commit: CommitMode::InPlaceUnsafe,
            crash: Some(CrashPoint::MidLatestWrite),
            ..SaveOptions::default()
        };
        let _ = repo
            .save(&snapshot_at(2, vec![2.0; 100]), &opts)
            .unwrap_err();
        // load_latest may fail (torn pointer), recover() must not.
        let (snap, _) = repo.recover().unwrap();
        assert_eq!(
            snap.step, 2,
            "manifest 2 was fully written before the pointer tear"
        );
    }

    #[test]
    fn gc_reclaims_unreferenced_chunks() {
        let (_t, repo) = TempRepo::new();
        let r1 = repo
            .save(&snapshot_at(1, vec![1.0; 5000]), &SaveOptions::default())
            .unwrap();
        repo.save(&snapshot_at(2, vec![2.0; 5000]), &SaveOptions::default())
            .unwrap();
        // Drop the first manifest's record, then GC.
        repo.corrupt_manifest(&r1.id, crate::failure::StorageFault::Delete)
            .unwrap();
        let report = repo.gc().unwrap();
        assert!(report.deleted > 0);
        // Remaining checkpoint still loads.
        let (snap, _) = repo.recover().unwrap();
        assert_eq!(snap.step, 2);
    }

    #[test]
    fn retention_keeps_delta_bases() {
        let (_t, repo) = TempRepo::new();
        let opts = SaveOptions::incremental(10);
        for step in 0..5u64 {
            repo.save(&snapshot_at(step, vec![step as f64; 1000]), &opts)
                .unwrap();
        }
        // Keep last 1: the newest is a delta whose chain reaches the full
        // checkpoint at step 0 — all bases must survive.
        let report = repo.apply_retention(Retention::KeepLast(1)).unwrap();
        assert_eq!(report.manifests_deleted, 0, "all were chain bases");
        let (snap, _) = repo.recover().unwrap();
        assert_eq!(snap.step, 4);
    }

    #[test]
    fn retention_deletes_unneeded_fulls() {
        let (_t, repo) = TempRepo::new();
        for step in 0..5u64 {
            repo.save(
                &snapshot_at(step, vec![step as f64; 1000]),
                &SaveOptions::default(),
            )
            .unwrap();
        }
        let report = repo.apply_retention(Retention::KeepLast(2)).unwrap();
        assert_eq!(report.manifests_deleted, 3);
        assert!(report.gc.deleted > 0);
        assert_eq!(repo.list_ids().unwrap().len(), 2);
        let (snap, _) = repo.recover().unwrap();
        assert_eq!(snap.step, 4);
    }

    #[test]
    fn compact_latest_rewrites_chain_as_full() {
        let (_t, repo) = TempRepo::new();
        let opts = SaveOptions::incremental(10);
        for step in 0..4u64 {
            repo.save(&snapshot_at(step, vec![step as f64; 500]), &opts)
                .unwrap();
        }
        let report = repo.compact_latest(&opts).unwrap().unwrap();
        assert!(!report.is_delta);
        assert_eq!(report.chain_len, 0);
        let (_, snap) = repo.load_latest().unwrap();
        assert_eq!(snap.step, 3);
        // Compacting a full checkpoint is a no-op.
        assert!(repo.compact_latest(&opts).unwrap().is_none());
    }

    #[test]
    fn lock_is_exclusive_and_released() {
        let (_t, repo) = TempRepo::new();
        let guard = repo.try_lock().unwrap();
        if repo.store().is_shared() {
            // Shared stores delegate exclusion to the server-side
            // writer lease, which is handle-scoped: re-locking through
            // the same handle renews the lease instead of conflicting.
            // Cross-handle exclusion is covered by
            // tests/replication.rs::writer_lease_excludes_second_writer_and_expires_by_ttl.
            assert!(repo.try_lock().is_ok());
            return;
        }
        assert!(matches!(repo.try_lock(), Err(Error::Locked(_))));
        drop(guard);
        assert!(repo.try_lock().is_ok());
    }

    #[test]
    fn reopen_continues_sequence() {
        let (t, repo) = TempRepo::new();
        let r1 = repo
            .save(&snapshot_at(5, vec![0.0; 10]), &SaveOptions::default())
            .unwrap();
        drop(repo);
        let repo2 = CheckpointRepo::open(&t.path).unwrap();
        let r2 = repo2
            .save(&snapshot_at(5, vec![1.0; 10]), &SaveOptions::default())
            .unwrap();
        assert_ne!(r1.id, r2.id, "sequence must not collide across reopen");
        assert!(r2.id > r1.id);
    }

    #[test]
    fn uniform_compression_policy_is_respected() {
        let (_t, repo) = TempRepo::new();
        let opts = SaveOptions {
            compression: CompressionPolicy::Uniform(Compression::Rle),
            ..SaveOptions::default()
        };
        let r = repo.save(&snapshot_at(1, vec![0.0; 4096]), &opts).unwrap();
        let m = repo.load_manifest(&r.id).unwrap();
        assert!(m.sections.iter().all(|s| s.codec == Compression::Rle));
        // All-zero params compress massively under RLE (32 KiB → runs of 255
        // zeros at 3 bytes each ≈ 400 bytes).
        let params = m.sections.iter().find(|s| s.name == "params").unwrap();
        let stored: usize = params.chunks.iter().map(|c| c.len as usize).sum();
        assert!(stored < 1000, "stored {stored}");
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (_t, repo) = TempRepo::new();
        let opts = SaveOptions {
            chunk_size: 0,
            ..SaveOptions::default()
        };
        assert!(matches!(
            repo.save(&snapshot_at(0, vec![]), &opts),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn naive_statevector_cost_reference() {
        assert_eq!(naive_statevector_bytes(10), 16 * 1024);
        assert_eq!(naive_statevector_bytes(20), 16 * 1024 * 1024);
        assert_eq!(naive_statevector_bytes(30), 16 * 1024 * 1024 * 1024);
    }

    fn scratch_root(tag: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "qcheck-repo-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ))
    }

    /// A snapshot with incompressible (pattern-free) parameters so every
    /// save produces many distinct chunks.
    fn bulky_snapshot(step: u64) -> TrainingSnapshot {
        let mut s = TrainingSnapshot::new("bulky");
        s.step = step;
        s.params = (0..8000)
            .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ step) as f64 * 1e-18)
            .collect();
        s
    }

    #[test]
    fn pack_backend_commits_each_save_with_one_rename() {
        let path = scratch_root("pack-renames");
        let repo = CheckpointRepo::open_with(&path, crate::store::StoreKind::Pack).unwrap();
        let r = repo
            .save(&bulky_snapshot(1), &SaveOptions::default())
            .unwrap();
        assert!(
            r.chunks_new > 8,
            "need a multi-chunk save, got {}",
            r.chunks_new
        );
        assert_eq!(r.store_renames, 1, "pack backend: O(1) renames per save");
        // Fully deduplicated save: no pack is created at all.
        let r2 = repo
            .save(&bulky_snapshot(1), &SaveOptions::default())
            .unwrap();
        assert_eq!(r2.chunks_new, 0);
        assert_eq!(r2.store_renames, 0);
        // Everything still loads.
        let (snap, _) = repo.recover().unwrap();
        assert_eq!(snap.step, 1);
        let _ = fs::remove_dir_all(path);
    }

    #[test]
    fn loose_backend_pays_one_rename_per_chunk() {
        let path = scratch_root("loose-renames");
        let repo = CheckpointRepo::open_with(&path, crate::store::StoreKind::Loose).unwrap();
        let r = repo
            .save(&bulky_snapshot(1), &SaveOptions::default())
            .unwrap();
        assert_eq!(r.store_renames, r.chunks_new as u64);
        let _ = fs::remove_dir_all(path);
    }

    #[test]
    fn backend_marker_is_sticky_across_reopen() {
        let path = scratch_root("sticky");
        let repo = CheckpointRepo::open_with(&path, crate::store::StoreKind::Pack).unwrap();
        repo.save(&snapshot_at(1, vec![1.0; 500]), &SaveOptions::default())
            .unwrap();
        drop(repo);
        // Reopen requesting the other layout: the marker must win and the
        // data must remain readable.
        let repo2 = CheckpointRepo::open_with(&path, crate::store::StoreKind::Loose).unwrap();
        assert_eq!(repo2.store_kind(), crate::store::StoreKind::Pack);
        let (snap, _) = repo2.recover().unwrap();
        assert_eq!(snap.step, 1);
        let _ = fs::remove_dir_all(path);
    }

    #[test]
    fn recover_clears_staging_debris() {
        let (_t, repo) = TempRepo::new();
        repo.save(&snapshot_at(1, vec![1.0; 100]), &SaveOptions::default())
            .unwrap();
        let opts = SaveOptions {
            crash: Some(CrashPoint::MidManifestWrite {
                keep_fraction_pct: 50,
            }),
            ..SaveOptions::default()
        };
        let _ = repo
            .save(&snapshot_at(2, vec![2.0; 100]), &opts)
            .unwrap_err();
        let (snap, report) = repo.recover().unwrap();
        assert_eq!(snap.step, 1);
        assert!(
            report.staging_cleared >= 1,
            "the torn staged manifest must be garbage collected"
        );
        let leftovers = fs::read_dir(repo.root().join("tmp")).unwrap().count();
        assert_eq!(leftovers, 0);
        let _ = fs::remove_dir_all(repo.root());
    }

    #[test]
    fn recovery_short_circuits_on_a_healthy_repository() {
        let (_t, repo) = TempRepo::new();
        let mut params = vec![0.4f64; 600];
        for step in 1..=5u64 {
            params[step as usize] += 0.01;
            repo.save(&snapshot_at(step, params.clone()), &SaveOptions::default())
                .unwrap();
        }
        let (snap, report) = repo.recover().unwrap();
        assert_eq!(snap.step, 5);
        assert!(report.skipped.is_empty());
        assert_eq!(
            report.manifests_tried, 1,
            "healthy recovery must validate only the newest checkpoint, not walk history"
        );
    }

    #[test]
    fn commit_counters_are_o1_per_save() {
        let (_t, repo) = TempRepo::new();
        let mut opts = SaveOptions::default();
        let r = repo.save(&snapshot_at(1, vec![0.3; 2000]), &opts).unwrap();
        assert_eq!(r.commit_renames, 0, "the log commit path never renames");
        assert_eq!(r.commit_fsyncs, 0, "fsync off: no commit fsyncs");
        opts.fsync = true;
        let r = repo.save(&snapshot_at(2, vec![0.31; 2000]), &opts).unwrap();
        assert_eq!(r.commit_renames, 0);
        assert_eq!(
            r.commit_fsyncs, 2,
            "fsync on: exactly log append + root flip"
        );
        // Ten times the parameters: the commit profile must not grow.
        let r = repo
            .save(&snapshot_at(3, vec![0.32; 20_000]), &opts)
            .unwrap();
        assert_eq!((r.commit_renames, r.commit_fsyncs), (0, 2));
    }
}
