//! # qcheck — checkpointing for hybrid quantum-classical training state
//!
//! This crate is the core contribution of the `qnn-checkpoint` project
//! (reproducing *"Quantum Neural Networks Need Checkpointing"*, HotStorage
//! 2025): a storage library that persists the **classical half** of a hybrid
//! quantum-classical training loop — parameters, optimizer moments, RNG
//! streams, dataset cursor, shot ledger — with properties a training system
//! actually needs:
//!
//! * **Exact resume.** A [`snapshot::TrainingSnapshot`] captures every
//!   stochastic input of the loop; restoring it reproduces the future
//!   trajectory *bit for bit* (shot noise included).
//! * **Cheap and frequent.** Snapshots are `O(parameters)`, not
//!   `O(2^qubits)`; incremental (delta-chain) checkpoints plus XOR-float
//!   compression shrink steady-state writes further.
//! * **Crash-safe.** Stage-and-rename commits mean a crash at any point
//!   leaves a recoverable repository; manifests are CRC-framed and payloads
//!   SHA-256-addressed, so corruption is always *detected* and recovery
//!   falls back to the newest intact checkpoint.
//! * **Cost-aware.** Built-in checkpoint-interval policies include the
//!   Young–Daly optimum and an online-adaptive variant.
//!
//! ## Threading model (save path)
//!
//! The encode half of [`repo::CheckpointRepo::save`] — per-section
//! compression-candidate selection, per-section SHA-256, and per-chunk
//! hashing — fans out across the shared [`qpar`] layer. The thread count is
//! [`repo::SaveOptions::threads`] when set, else [`qpar::current_threads`]
//! (`QCHECK_THREADS` env var / builder / hardware). Guarantees:
//!
//! 1. **Bit-exactness** — encoded bytes, chunk refs and manifests are
//!    byte-identical at every thread count: all fan-outs preserve input
//!    order and there are no cross-item reductions.
//! 2. **Serial commit** — chunk-store writes, dedup accounting, manifest
//!    and `LATEST` commits stay strictly serial in section order; the
//!    crash-safety protocol is untouched by threading.
//! 3. **Serial thresholds** — chunk hashing fans out only above
//!    [`chunk::PARALLEL_MIN_CHUNKS`] chunks; tiny snapshots never pay
//!    scoped-thread overhead.
//!
//! Delta saves additionally keep the just-committed sections in memory, so
//! the steady-state training loop never re-reads its own base checkpoint
//! from disk; combined with [`background::BackgroundCheckpointer`], a
//! parallel encode overlaps the training step entirely.
//!
//! ## Quickstart
//!
//! ```
//! use qcheck::repo::{CheckpointRepo, SaveOptions};
//! use qcheck::snapshot::TrainingSnapshot;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let dir = std::env::temp_dir().join(format!("qcheck-doc-{}", std::process::id()));
//! let repo = CheckpointRepo::open(&dir)?;
//!
//! let mut snapshot = TrainingSnapshot::new("vqe-demo");
//! snapshot.step = 42;
//! snapshot.params = vec![0.1, 0.2, 0.3];
//! repo.save(&snapshot, &SaveOptions::default())?;
//!
//! let (recovered, report) = repo.recover()?;
//! assert_eq!(recovered.step, 42);
//! assert!(report.skipped.is_empty());
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! | module | contents |
//! |---|---|
//! | [`snapshot`] | the training-state model and [`snapshot::Checkpointable`] contract |
//! | [`repo`] | repository layout, atomic commit, load, recovery, GC, retention |
//! | [`checkpointer`] | policy-driven driver for live training loops |
//! | [`policy`] | interval policies incl. Young–Daly and its analytic models |
//! | [`manifest`] | the framed on-disk metadata format |
//! | [`store`] | pluggable content-addressed object stores ([`store::ObjectStore`]: loose files / batched packs / remote daemon) |
//! | [`remote`] | the `qckptd` object-store daemon, its wire protocol, and the [`remote::RemoteStore`] client |
//! | [`delta`] | block-level incremental patches |
//! | [`compress`] | RLE and XOR-f64 codecs |
//! | [`chunk`] | fixed-size chunking |
//! | [`codec`] | deterministic binary encoding |
//! | [`manifest_log`] | append-only manifest log + dual root slots (the O(1) commit) |
//! | [`hash`] | in-repo SHA-256 and CRC32 |
//! | [`failure`] | crash points and storage-fault injection |
//! | [`error`] | the crate-wide [`error::Error`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod checkpointer;
pub mod chunk;
pub mod codec;
pub mod compress;
pub mod delta;
pub mod error;
pub mod failure;
pub mod hash;
pub mod manifest;
pub mod manifest_log;
pub mod obs;
pub mod policy;
pub mod remote;
pub mod repo;
pub mod snapshot;
pub mod store;
pub mod verify;

pub use background::BackgroundCheckpointer;
pub use checkpointer::Checkpointer;
pub use compress::Compression;
pub use error::{Error, Result};
pub use manifest::{CheckpointId, Manifest};
pub use policy::{Adaptive, CheckpointPolicy, EveryKSteps, WallClock, YoungDaly};
pub use remote::RemoteStore;
pub use repo::{
    CheckpointRepo, CommitMode, CompressionPolicy, Retention, SaveMode, SaveOptions, SaveReport,
};
pub use snapshot::{Checkpointable, TrainingSnapshot};
pub use store::{LooseStore, ObjectStore, PackStore, StoreBackend, StoreKind, StoreStats};
pub use verify::{export_bundle, fsck, import_bundle, read_bundle, FsckReport};
