//! Repository verification (`fsck`) and portable checkpoint bundles.
//!
//! * [`fsck`] walks the entire repository — every manifest, every chunk,
//!   every delta chain — and reports what is intact, what is damaged and
//!   what is orphaned, without modifying anything. Operators run it after
//!   suspected storage trouble; the failure-injection tests run it to prove
//!   damage is always *visible*.
//! * [`export_bundle`]/[`import_bundle`] pack one checkpoint (with its full
//!   delta chain collapsed) into a single self-describing byte stream, so a
//!   training run can move between machines — e.g. from the cloud worker
//!   that crashed to the workstation debugging it.

use crate::codec::{Decoder, Encoder};
use crate::error::{Error, Result};
use crate::hash::{crc32, Sha256};
use crate::manifest::CheckpointId;
use crate::repo::{CheckpointRepo, SaveOptions};
use crate::snapshot::TrainingSnapshot;
use crate::store::ObjectStore;

/// Magic framing for portable bundles.
const BUNDLE_MAGIC: &[u8; 6] = b"QBNDL\0";
/// Bundle format version.
const BUNDLE_VERSION: u32 = 1;

/// Per-checkpoint verification outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointHealth {
    /// Manifest, chunks and chain all verify.
    Intact,
    /// The manifest file failed its frame checks.
    ManifestCorrupt(String),
    /// One or more referenced chunks are missing or corrupt.
    ChunksDamaged(String),
    /// The checkpoint verifies only up to a broken delta base.
    ChainBroken(String),
}

impl CheckpointHealth {
    /// Whether this checkpoint would be recoverable.
    pub fn is_intact(&self) -> bool {
        matches!(self, CheckpointHealth::Intact)
    }
}

/// Full repository verification report.
#[derive(Clone, Debug, Default)]
pub struct FsckReport {
    /// Per-checkpoint health, ascending id order.
    pub checkpoints: Vec<(CheckpointId, CheckpointHealth)>,
    /// Chunk objects referenced by no decodable manifest.
    pub orphan_chunks: usize,
    /// Bytes held by orphan chunks.
    pub orphan_bytes: u64,
    /// Whether the `LATEST` pointer names an intact checkpoint.
    pub latest_ok: bool,
}

impl FsckReport {
    /// Count of intact checkpoints.
    pub fn intact_count(&self) -> usize {
        self.checkpoints
            .iter()
            .filter(|(_, h)| h.is_intact())
            .count()
    }

    /// Whether everything verifies and nothing is orphaned.
    pub fn is_clean(&self) -> bool {
        self.latest_ok
            && self.orphan_chunks == 0
            && self.checkpoints.iter().all(|(_, h)| h.is_intact())
    }
}

/// Verifies the whole repository without modifying it.
///
/// # Errors
///
/// Fails only on filesystem-level errors (permission, I/O); damage is
/// reported, not raised.
pub fn fsck<S: ObjectStore>(repo: &CheckpointRepo<S>) -> Result<FsckReport> {
    let mut report = FsckReport::default();
    let ids = repo.list_ids()?;
    let mut referenced: std::collections::BTreeSet<crate::hash::ContentHash> =
        std::collections::BTreeSet::new();

    for id in &ids {
        let health = match repo.load_manifest(id) {
            Err(e) => CheckpointHealth::ManifestCorrupt(e.to_string()),
            Ok(manifest) => {
                for c in manifest.chunk_refs() {
                    referenced.insert(c.hash);
                }
                // Verify chunks first for a precise diagnosis.
                let chunk_problem = manifest
                    .chunk_refs()
                    .find_map(|c| repo.store().get(c).err().map(|e| e.to_string()));
                match chunk_problem {
                    Some(problem) => CheckpointHealth::ChunksDamaged(problem),
                    None => match repo.resolve_sections(&manifest) {
                        Ok(_) => CheckpointHealth::Intact,
                        Err(e) => CheckpointHealth::ChainBroken(e.to_string()),
                    },
                }
            }
        };
        report.checkpoints.push((id.clone(), health));
    }

    // Manifest-log records that failed CRC/frame validation never make it
    // into `list_ids` — surface them as corrupt checkpoints so damage is
    // reported, not silently dropped.
    for (label, reason) in repo.damaged_manifests()? {
        report.checkpoints.push((
            CheckpointId(label),
            CheckpointHealth::ManifestCorrupt(reason),
        ));
    }
    report.checkpoints.sort_by(|(a, _), (b, _)| a.cmp(b));

    for hash in repo.store().list()? {
        if !referenced.contains(&hash) {
            report.orphan_chunks += 1;
        }
    }
    if report.orphan_chunks > 0 {
        // Orphan bytes = store total − referenced total (referenced chunks
        // that are damaged still occupy their on-disk length).
        let total = repo.store().stats()?.total_bytes;
        let mut referenced_bytes = 0u64;
        for id in &ids {
            if let Ok(m) = repo.load_manifest(id) {
                for c in m.chunk_refs() {
                    if referenced.remove(&c.hash) {
                        referenced_bytes += c.len as u64;
                    }
                }
            }
        }
        report.orphan_bytes = total.saturating_sub(referenced_bytes);
    }

    report.latest_ok = match repo.read_latest()? {
        None => report.checkpoints.is_empty(),
        Some(latest) => report
            .checkpoints
            .iter()
            .any(|(id, h)| *id == latest && h.is_intact()),
    };
    Ok(report)
}

/// Exports one checkpoint (delta chain collapsed) as a portable bundle.
///
/// Layout: magic, version, id, snapshot payload (sections re-serialized
/// from the resolved snapshot), SHA-256 of the payload, trailing CRC32.
///
/// # Errors
///
/// Fails when the checkpoint cannot be loaded or verified.
pub fn export_bundle<S: ObjectStore>(
    repo: &CheckpointRepo<S>,
    id: &CheckpointId,
) -> Result<Vec<u8>> {
    let snapshot = repo.load(id)?;
    let mut payload = Encoder::new();
    let sections = snapshot.to_sections();
    payload.put_varint(sections.len() as u64);
    for s in &sections {
        payload.put_str(&s.name).put_bytes(&s.bytes);
    }
    let payload = payload.into_bytes();
    let sha = Sha256::digest(&payload);

    let mut e = Encoder::with_capacity(payload.len() + 128);
    e.put_raw(BUNDLE_MAGIC);
    e.put_u32(BUNDLE_VERSION);
    e.put_str(id.as_str());
    e.put_raw(&sha.0);
    e.put_bytes(&payload);
    let crc = crc32(e.as_bytes());
    e.put_u32(crc);
    Ok(e.into_bytes())
}

/// Parses and verifies a bundle, returning the snapshot and its original id.
///
/// # Errors
///
/// Fails on framing, version, CRC or SHA mismatches.
pub fn read_bundle(bytes: &[u8]) -> Result<(CheckpointId, TrainingSnapshot)> {
    if bytes.len() < BUNDLE_MAGIC.len() + 8 {
        return Err(Error::corrupt("bundle", "too short"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if stored_crc != crc32(body) {
        return Err(Error::corrupt("bundle", "crc mismatch"));
    }
    let mut d = Decoder::new(body, "bundle");
    let magic = d.get_raw(BUNDLE_MAGIC.len())?;
    if magic != BUNDLE_MAGIC {
        return Err(Error::corrupt("bundle", "bad magic"));
    }
    let version = d.get_u32()?;
    if version != BUNDLE_VERSION {
        return Err(Error::UnsupportedVersion {
            found: version,
            supported: BUNDLE_VERSION,
        });
    }
    let id = CheckpointId(d.get_str()?);
    let mut sha = [0u8; 32];
    sha.copy_from_slice(d.get_raw(32)?);
    let payload = d.get_bytes()?;
    d.finish()?;
    if Sha256::digest(&payload) != crate::hash::ContentHash(sha) {
        return Err(Error::corrupt("bundle", "payload hash mismatch"));
    }
    let mut pd = Decoder::new(&payload, "bundle payload");
    let n = pd.get_varint()? as usize;
    let mut sections = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        sections.push(crate::snapshot::Section {
            name: pd.get_str()?,
            bytes: pd.get_bytes()?,
        });
    }
    pd.finish()?;
    let snapshot = TrainingSnapshot::from_sections(&sections)?;
    Ok((id, snapshot))
}

/// Imports a bundle into a repository as a new full checkpoint.
///
/// Returns the id assigned in the destination repository.
///
/// # Errors
///
/// Fails on bundle verification or save errors.
pub fn import_bundle<S: ObjectStore>(
    repo: &CheckpointRepo<S>,
    bytes: &[u8],
) -> Result<CheckpointId> {
    let (_, snapshot) = read_bundle(bytes)?;
    let report = repo.save(&snapshot, &SaveOptions::default())?;
    Ok(report.id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::StorageFault;
    use crate::snapshot::StateBlob;

    fn scratch() -> std::path::PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qcheck-verify-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn snapshot_at(step: u64) -> TrainingSnapshot {
        let mut s = TrainingSnapshot::new("verify-test");
        s.step = step;
        s.params = (0..500).map(|i| step as f64 + i as f64 * 1e-3).collect();
        s.optimizer = StateBlob::new("adam-v1", vec![1; 32]);
        s
    }

    #[test]
    fn clean_repo_fscks_clean() {
        let dir = scratch();
        let repo = CheckpointRepo::open(&dir).unwrap();
        for step in 1..=3 {
            repo.save(&snapshot_at(step), &SaveOptions::incremental(8))
                .unwrap();
        }
        let report = fsck(&repo).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.intact_count(), 3);
        assert!(report.latest_ok);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn empty_repo_is_clean() {
        let dir = scratch();
        let repo = CheckpointRepo::open(&dir).unwrap();
        let report = fsck(&repo).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.intact_count(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fsck_pinpoints_manifest_damage() {
        let dir = scratch();
        let repo = CheckpointRepo::open(&dir).unwrap();
        let r1 = repo.save(&snapshot_at(1), &SaveOptions::default()).unwrap();
        repo.save(&snapshot_at(2), &SaveOptions::default()).unwrap();
        repo.corrupt_manifest(&r1.id, StorageFault::BitFlip { offset: 40 })
            .unwrap();
        let report = fsck(&repo).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.intact_count(), 1);
        let (_, health) = &report.checkpoints[0];
        assert!(
            matches!(health, CheckpointHealth::ManifestCorrupt(_)),
            "{health:?}"
        );
        // Damaged manifest's chunks become orphans from fsck's viewpoint.
        assert!(report.orphan_chunks > 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fsck_pinpoints_chunk_damage() {
        let dir = scratch();
        let repo = CheckpointRepo::open(&dir).unwrap();
        let r = repo.save(&snapshot_at(1), &SaveOptions::default()).unwrap();
        let m = repo.load_manifest(&r.id).unwrap();
        let victim = m.chunk_refs().next().unwrap().hash;
        repo.store().corrupt_object(&victim, 9).unwrap();
        let report = fsck(&repo).unwrap();
        assert!(matches!(
            report.checkpoints[0].1,
            CheckpointHealth::ChunksDamaged(_)
        ));
        assert!(!report.latest_ok);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fsck_flags_broken_chain() {
        let dir = scratch();
        let repo = CheckpointRepo::open(&dir).unwrap();
        let opts = SaveOptions::incremental(16);
        let base = repo.save(&snapshot_at(1), &opts).unwrap();
        repo.save(&snapshot_at(2), &opts).unwrap();
        // Drop the base manifest's record: the delta's chain is broken.
        repo.corrupt_manifest(&base.id, StorageFault::Delete)
            .unwrap();
        let report = fsck(&repo).unwrap();
        let delta_health = &report.checkpoints[0].1;
        assert!(
            matches!(delta_health, CheckpointHealth::ChainBroken(_)),
            "{delta_health:?}"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bundle_round_trip() {
        let dir = scratch();
        let repo = CheckpointRepo::open(&dir).unwrap();
        let opts = SaveOptions::incremental(8);
        // Build a chain so export has to collapse it.
        for step in 1..=4 {
            repo.save(&snapshot_at(step), &opts).unwrap();
        }
        let latest = repo.read_latest().unwrap().unwrap();
        let bundle = export_bundle(&repo, &latest).unwrap();

        let (orig_id, snapshot) = read_bundle(&bundle).unwrap();
        assert_eq!(orig_id, latest);
        assert_eq!(snapshot.step, 4);
        assert_eq!(snapshot, snapshot_at(4));

        // Import into a fresh repository.
        let dir2 = scratch();
        let repo2 = CheckpointRepo::open(&dir2).unwrap();
        let new_id = import_bundle(&repo2, &bundle).unwrap();
        let loaded = repo2.load(&new_id).unwrap();
        assert_eq!(loaded, snapshot_at(4));
        let _ = std::fs::remove_dir_all(dir);
        let _ = std::fs::remove_dir_all(dir2);
    }

    #[test]
    fn bundle_rejects_corruption() {
        let dir = scratch();
        let repo = CheckpointRepo::open(&dir).unwrap();
        let r = repo.save(&snapshot_at(9), &SaveOptions::default()).unwrap();
        let bundle = export_bundle(&repo, &r.id).unwrap();
        for i in (0..bundle.len()).step_by(101) {
            let mut broken = bundle.clone();
            broken[i] ^= 0x10;
            assert!(read_bundle(&broken).is_err(), "flip at {i} accepted");
        }
        assert!(read_bundle(&bundle[..bundle.len() / 2]).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bundle_rejects_future_version() {
        let dir = scratch();
        let repo = CheckpointRepo::open(&dir).unwrap();
        let r = repo.save(&snapshot_at(1), &SaveOptions::default()).unwrap();
        let mut bundle = export_bundle(&repo, &r.id).unwrap();
        bundle.truncate(bundle.len() - 4);
        bundle[6..10].copy_from_slice(&7u32.to_le_bytes());
        let crc = crc32(&bundle);
        bundle.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            read_bundle(&bundle),
            Err(Error::UnsupportedVersion { found: 7, .. })
        ));
        let _ = std::fs::remove_dir_all(dir);
    }
}
