//! `qckpt` — repository inspection and maintenance CLI.
//!
//! ```text
//! qckpt <repo> list                     list checkpoints
//! qckpt <repo> show <id|latest>         manifest + snapshot summary
//! qckpt <repo> stats                    storage backend + object statistics
//! qckpt <repo> metrics                  qobs text exposition (daemon's if remote)
//! qckpt <repo> fsck                     verify everything
//! qckpt <repo> gc                       sweep unreferenced chunks
//! qckpt <repo> compact                  rewrite the latest chain as full
//! qckpt <repo> retain <n>               keep the newest n checkpoints
//! qckpt <repo> export <id|latest> <file>  write a portable bundle
//! qckpt <repo> import <file>            import a bundle as a new checkpoint
//! ```

use std::process::ExitCode;

use qcheck::manifest::CheckpointId;
use qcheck::repo::{CheckpointRepo, Retention, SaveOptions};
use qcheck::store::ObjectStore;
use qcheck::verify::{export_bundle, fsck, import_bundle, CheckpointHealth};

fn usage() -> ExitCode {
    eprintln!(
        "usage: qckpt <repo> <list|show|stats|metrics|fsck|gc|compact|retain|export|import> [args]\n\
         see `qckpt --help` in the module docs for details"
    );
    ExitCode::from(2)
}

fn resolve_id(repo: &CheckpointRepo, spec: &str) -> Result<CheckpointId, String> {
    if spec == "latest" {
        repo.read_latest()
            .map_err(|e| e.to_string())?
            .ok_or_else(|| "repository has no LATEST pointer".to_string())
    } else {
        Ok(CheckpointId(spec.to_string()))
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return Err("missing arguments".into());
    }
    let repo = CheckpointRepo::open(&args[0]).map_err(|e| e.to_string())?;
    match (args[1].as_str(), args.get(2), args.get(3)) {
        ("list", None, None) => {
            let ids = repo.list_ids().map_err(|e| e.to_string())?;
            let latest = repo.read_latest().map_err(|e| e.to_string())?;
            println!(
                "{:<28} {:>6} {:>7} {:>10} {:>12}",
                "id", "kind", "chain", "step", "stored-B"
            );
            for id in ids {
                match repo.load_manifest(&id) {
                    Ok(m) => println!(
                        "{:<28} {:>6} {:>7} {:>10} {:>12}{}",
                        id.as_str(),
                        if m.is_delta() { "delta" } else { "full" },
                        m.chain_len,
                        m.step,
                        m.stored_bytes(),
                        if Some(&id) == latest.as_ref() {
                            "  <- LATEST"
                        } else {
                            ""
                        },
                    ),
                    Err(e) => println!("{:<28} CORRUPT: {e}", id.as_str()),
                }
            }
            Ok(())
        }
        ("show", Some(spec), None) => {
            let id = resolve_id(&repo, spec)?;
            let manifest = repo.load_manifest(&id).map_err(|e| e.to_string())?;
            println!("id:           {}", manifest.id);
            println!("step:         {}", manifest.step);
            println!("kind:         {:?}", manifest.kind);
            println!("chain length: {}", manifest.chain_len);
            println!("created (ms): {}", manifest.created_unix_ms);
            println!("snapshot sha: {}", manifest.snapshot_sha);
            println!("sections:");
            for s in &manifest.sections {
                println!(
                    "  {:<16} {:>9} B logical, {:>9} B stored, codec {}, {:?}, {} chunks",
                    s.name,
                    s.section_len,
                    s.chunks.iter().map(|c| c.len as u64).sum::<u64>(),
                    s.codec,
                    s.payload_kind,
                    s.chunks.len()
                );
            }
            let snapshot = repo.load(&id).map_err(|e| e.to_string())?;
            println!("label:        {}", snapshot.label);
            println!("params:       {}", snapshot.params.len());
            println!("total shots:  {}", snapshot.total_shots);
            println!(
                "rng streams:  {:?}",
                snapshot.rng_streams.keys().collect::<Vec<_>>()
            );
            Ok(())
        }
        ("stats", None, None) => {
            let stats = repo.store().stats().map_err(|e| e.to_string())?;
            let ids = repo.list_ids().map_err(|e| e.to_string())?;
            println!("backend:       {}", repo.store_kind());
            println!("checkpoints:   {}", ids.len());
            println!("objects:       {}", stats.object_count);
            println!("payload bytes: {}", stats.total_bytes);
            // Read-only sweep preview: what a `gc` would reclaim now,
            // and what the pack backend's compaction threshold would
            // keep deferring (fragmentation that is measured but not
            // yet worth a pack rewrite).
            let plan = repo.gc_plan().map_err(|e| e.to_string())?;
            println!(
                "gc would reclaim: {} objects ({} B)",
                plan.deleted, plan.reclaimed_bytes
            );
            println!(
                "gc deferred:      {} objects ({} B) below the rewrite threshold",
                plan.deferred, plan.deferred_bytes
            );
            if let Some(remote) = repo.store().remote() {
                println!(
                    "remote:        {} ns={} round-trips={}",
                    remote.addr(),
                    remote.namespace(),
                    remote.round_trips()
                );
            }
            Ok(())
        }
        ("metrics", None, None) => {
            // Against a remote backend, show the daemon's registry (the
            // interesting one: request counters, fsync timings live
            // server-side); locally, show this process's own.
            match repo.store().remote() {
                Some(remote) => print!("{}", remote.metrics().map_err(|e| e.to_string())?),
                None => print!("{}", qobs::text_exposition()),
            }
            Ok(())
        }
        ("fsck", None, None) => {
            let report = fsck(&repo).map_err(|e| e.to_string())?;
            for (id, health) in &report.checkpoints {
                match health {
                    CheckpointHealth::Intact => println!("ok      {id}"),
                    CheckpointHealth::ManifestCorrupt(d) => println!("BAD     {id}: manifest: {d}"),
                    CheckpointHealth::ChunksDamaged(d) => println!("BAD     {id}: chunks: {d}"),
                    CheckpointHealth::ChainBroken(d) => println!("BAD     {id}: chain: {d}"),
                }
            }
            println!(
                "{} intact / {} total; {} orphan chunks ({} B); LATEST {}",
                report.intact_count(),
                report.checkpoints.len(),
                report.orphan_chunks,
                report.orphan_bytes,
                if report.latest_ok { "ok" } else { "BROKEN" }
            );
            if report.is_clean() {
                Ok(())
            } else {
                Err("repository is not clean".into())
            }
        }
        ("gc", None, None) => {
            let report = repo.gc().map_err(|e| e.to_string())?;
            println!(
                "live {} / deleted {} objects, reclaimed {} B; deferred {} ({} B)",
                report.live,
                report.deleted,
                report.reclaimed_bytes,
                report.deferred,
                report.deferred_bytes
            );
            Ok(())
        }
        ("compact", None, None) => {
            match repo
                .compact_latest(&SaveOptions::default())
                .map_err(|e| e.to_string())?
            {
                Some(r) => println!(
                    "compacted chain into {} ({} B written)",
                    r.id,
                    r.bytes_written()
                ),
                None => println!("latest checkpoint is already full; nothing to do"),
            }
            Ok(())
        }
        ("retain", Some(n), None) => {
            let n: usize = n.parse().map_err(|_| format!("bad count '{n}'"))?;
            let report = repo
                .apply_retention(Retention::KeepLast(n))
                .map_err(|e| e.to_string())?;
            println!(
                "deleted {} manifests; gc reclaimed {} B",
                report.manifests_deleted, report.gc.reclaimed_bytes
            );
            Ok(())
        }
        ("export", Some(spec), Some(path)) => {
            let id = resolve_id(&repo, spec)?;
            let bundle = export_bundle(&repo, &id).map_err(|e| e.to_string())?;
            std::fs::write(path, &bundle).map_err(|e| e.to_string())?;
            println!("wrote {} ({} B) to {path}", id, bundle.len());
            Ok(())
        }
        ("import", Some(path), None) => {
            let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
            let id = import_bundle(&repo, &bytes).map_err(|e| e.to_string())?;
            println!("imported as {id}");
            Ok(())
        }
        _ => Err("unrecognized command".into()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            if msg == "missing arguments" || msg == "unrecognized command" {
                return usage();
            }
            eprintln!("qckpt: {msg}");
            ExitCode::FAILURE
        }
    }
}
