//! `qckptd` — the remote checkpoint object-store daemon.
//!
//! ```text
//! qckptd serve <root> [--addr host:port] [--store loose|pack]
//!                     [--port-file path] [--auth-token tok]
//!                     [--replicate-from host:port]
//!                     [--lease-ttl-secs n]   serve namespaces from <root>
//! qckptd status <addr>                       print daemon status
//! qckptd metrics <addr>                      print the qobs text exposition
//! qckptd promote <addr>                      promote a secondary to primary
//! qckptd shutdown <addr>                     graceful shutdown
//! ```
//!
//! `serve` defaults to `127.0.0.1:0` (an ephemeral port) and always
//! prints the actual bound address on stdout; `--port-file` additionally
//! writes `host:port` to a file once the listener is up, which is how
//! scripts (CI) wait for readiness and learn the port:
//!
//! ```bash
//! qckptd serve /var/lib/qckptd --port-file /tmp/qckptd.port &
//! export QCHECK_STORE=remote QCHECK_REMOTE_ADDR=$(cat /tmp/qckptd.port)
//! ```
//!
//! With `--replicate-from`, the daemon starts as a **secondary**: it
//! tails the primary's per-namespace oplog (refusing client writes) and
//! is promoted to primary with `qckptd promote` when the primary dies.
//! `status`, `promote` and `shutdown` present `QCHECK_REMOTE_TOKEN`
//! when set; a daemon started with `--auth-token` requires it for
//! privileged operations from non-loopback peers (and always requires
//! loopback for shutdown).

use std::process::ExitCode;

use qcheck::remote::proto::{role_name, ROLE_SECONDARY};
use qcheck::remote::{RemoteStore, ReplicateConfig, Server, ServerConfig};
use qcheck::store::StoreKind;

fn usage() -> ExitCode {
    eprintln!(
        "usage: qckptd serve <root> [--addr host:port] [--store loose|pack] [--port-file path]\n\
         \x20                    [--auth-token tok] [--replicate-from host:port] [--lease-ttl-secs n]\n\
         \x20      qckptd status <addr>\n\
         \x20      qckptd metrics <addr>\n\
         \x20      qckptd promote <addr>\n\
         \x20      qckptd shutdown <addr>"
    );
    ExitCode::from(2)
}

/// Control-plane connections use a reserved namespace; it is never
/// written to (status/promote/shutdown/ping are namespace-free
/// operations).
const CONTROL_NS: &str = "control";

fn serve(args: &[String]) -> Result<(), String> {
    let mut root: Option<&str> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut kind = StoreKind::Pack;
    let mut port_file: Option<String> = None;
    let mut auth_token: Option<String> = None;
    let mut replicate_from: Option<String> = None;
    let mut lease_ttl: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--store" => {
                let v = it.next().ok_or("--store needs a value")?;
                kind = match StoreKind::parse(v) {
                    Some(StoreKind::Remote) | None => {
                        return Err(format!("--store {v}: expected loose or pack"))
                    }
                    Some(k) => k,
                };
            }
            "--port-file" => {
                port_file = Some(it.next().ok_or("--port-file needs a value")?.clone())
            }
            "--auth-token" => {
                auth_token = Some(it.next().ok_or("--auth-token needs a value")?.clone())
            }
            "--replicate-from" => {
                replicate_from = Some(it.next().ok_or("--replicate-from needs a value")?.clone())
            }
            "--lease-ttl-secs" => {
                let v = it.next().ok_or("--lease-ttl-secs needs a value")?;
                lease_ttl =
                    Some(v.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("--lease-ttl-secs {v}: expected a positive integer")
                    })?);
            }
            other if root.is_none() && !other.starts_with('-') => root = Some(other),
            other => return Err(format!("unrecognized argument '{other}'")),
        }
    }
    let root = root.ok_or("serve needs a <root> directory")?;
    let mut config = ServerConfig::new(root);
    config.store_kind = kind;
    // The daemon process runs no competing compute: connection handlers
    // come from the qpar worker pool (dedicated threads past its cap).
    config.handlers_on_pool = true;
    config.auth_token = auth_token.clone();
    if let Some(secs) = lease_ttl {
        config.lease_ttl = std::time::Duration::from_secs(secs);
    }
    if let Some(primary) = &replicate_from {
        let mut repl = ReplicateConfig::new(primary.clone());
        // The tailer authenticates to the primary with the same token
        // this daemon requires of its own clients (a replicated pair
        // shares one token).
        repl.auth_token = auth_token;
        config.replicate = Some(repl);
    }
    // Optional periodic metrics dump to stderr (QOBS_DUMP_SECS=<n>).
    qobs::init_dump_from_env();
    let server = Server::bind(&addr, config).map_err(|e| e.to_string())?;
    let bound = server.local_addr();
    match &replicate_from {
        Some(primary) => {
            println!("qckptd: serving {root} ({kind} layout) on {bound} as secondary of {primary}")
        }
        None => println!("qckptd: serving {root} ({kind} layout) on {bound}"),
    }
    if let Some(path) = port_file {
        // Stage + rename so a watcher never reads a half-written file.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{bound}\n")).map_err(|e| e.to_string())?;
        std::fs::rename(&tmp, &path).map_err(|e| e.to_string())?;
    }
    server.serve().map_err(|e| e.to_string())?;
    println!("qckptd: shutdown complete");
    Ok(())
}

fn status(addr: &str) -> Result<(), String> {
    let client = RemoteStore::connect(addr, CONTROL_NS).map_err(|e| e.to_string())?;
    let status = client.status().map_err(|e| e.to_string())?;
    println!("address:       {addr}");
    println!("protocol:      v{}", status.version);
    println!("role:          {}", role_name(status.role));
    println!("generation:    {}", status.generation);
    println!("namespaces:    {}", status.namespaces);
    println!("connections:   {}", status.connections);
    println!("oplog-entries: {}", status.oplog_entries);
    if status.role == ROLE_SECONDARY {
        println!("repl-lag:      {} entries behind primary", status.repl_lag);
    } else {
        println!(
            "repl-lag:      {} entries unacked by secondaries",
            status.repl_lag
        );
    }
    // A v3 daemon additionally exposes its metrics registry; fold the
    // interesting scalars into status. Absence (v2 peer, QOBS=off on
    // the daemon) is not an error.
    if let Ok(text) = client.metrics() {
        if let Some(secs) = metric_value(&text, "qckptd_uptime_seconds") {
            println!("uptime:        {secs}s");
        }
        let mut ops: Vec<(String, u64)> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("qckptd_requests_total{") {
                if let Some((labels, value)) = rest.split_once("} ") {
                    let op = labels
                        .split(',')
                        .find_map(|kv| kv.strip_prefix("op=\""))
                        .and_then(|v| v.strip_suffix('"'))
                        .unwrap_or(labels);
                    if let Ok(n) = value.trim().parse::<u64>() {
                        ops.push((op.to_string(), n));
                    }
                }
            }
        }
        if !ops.is_empty() {
            ops.sort();
            let mut merged: Vec<(String, u64)> = Vec::new();
            for (op, n) in ops {
                match merged.last_mut() {
                    Some((last, total)) if *last == op => *total += n,
                    _ => merged.push((op, n)),
                }
            }
            let rendered: Vec<String> = merged.iter().map(|(op, n)| format!("{op}={n}")).collect();
            println!("requests:      {}", rendered.join(" "));
        }
    }
    Ok(())
}

/// First sample of an exact (unlabeled) metric in a text exposition.
fn metric_value(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        rest.strip_prefix(' ')?.trim().parse::<u64>().ok()
    })
}

fn metrics(addr: &str) -> Result<(), String> {
    let client = RemoteStore::connect(addr, CONTROL_NS).map_err(|e| e.to_string())?;
    let text = client.metrics().map_err(|e| e.to_string())?;
    print!("{text}");
    Ok(())
}

fn promote(addr: &str) -> Result<(), String> {
    let client = RemoteStore::connect(addr, CONTROL_NS).map_err(|e| e.to_string())?;
    let generation = client.promote_daemon().map_err(|e| e.to_string())?;
    println!("qckptd at {addr}: promoted to primary at generation {generation}");
    println!("re-point clients (QCHECK_REMOTE_ADDR) at this address; the old primary is fenced");
    Ok(())
}

fn shutdown(addr: &str) -> Result<(), String> {
    let client = RemoteStore::connect(addr, CONTROL_NS).map_err(|e| e.to_string())?;
    client.shutdown_daemon().map_err(|e| e.to_string())?;
    println!("qckptd at {addr}: shutdown acknowledged");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => match (cmd.as_str(), rest) {
            ("serve", rest) if !rest.is_empty() => serve(rest),
            ("status", [addr]) => status(addr),
            ("metrics", [addr]) => metrics(addr),
            ("promote", [addr]) => promote(addr),
            ("shutdown", [addr]) => shutdown(addr),
            _ => return usage(),
        },
        None => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("qckptd: {msg}");
            ExitCode::FAILURE
        }
    }
}
