//! Content-addressed chunk store.
//!
//! Chunks live under `objects/<2-hex>/<62-hex>`, named by the SHA-256 of
//! their contents. Writes are idempotent (a chunk that exists is never
//! rewritten — that is the dedup) and crash-safe (stage into `tmp/`, then
//! atomic rename; a crash can leave garbage in `tmp/`, never a half-written
//! object under `objects/`). Garbage collection is mark-and-sweep driven by
//! the manifest set, so there is no refcount index to corrupt.

use std::collections::BTreeSet;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::chunk::ChunkRef;
use crate::error::{Error, Result};
use crate::hash::{ContentHash, Sha256};

/// Handle to an on-disk chunk store rooted at `objects/` + `tmp/`.
#[derive(Debug, Clone)]
pub struct ChunkStore {
    objects_dir: PathBuf,
    tmp_dir: PathBuf,
    fsync: bool,
    seq: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

/// Result of a garbage-collection sweep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Objects retained because they were reachable.
    pub live: usize,
    /// Objects deleted.
    pub deleted: usize,
    /// Bytes reclaimed.
    pub reclaimed_bytes: u64,
}

impl ChunkStore {
    /// Opens (creating if necessary) a chunk store under `root`.
    ///
    /// # Errors
    ///
    /// Fails if directories cannot be created.
    pub fn open(root: &Path, fsync: bool) -> Result<Self> {
        let objects_dir = root.join("objects");
        let tmp_dir = root.join("tmp");
        fs::create_dir_all(&objects_dir)
            .map_err(|e| Error::io(format!("creating {}", objects_dir.display()), e))?;
        fs::create_dir_all(&tmp_dir)
            .map_err(|e| Error::io(format!("creating {}", tmp_dir.display()), e))?;
        Ok(ChunkStore {
            objects_dir,
            tmp_dir,
            fsync,
            seq: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
        })
    }

    fn object_path(&self, hash: &ContentHash) -> PathBuf {
        self.objects_dir
            .join(hash.dir_prefix())
            .join(hash.file_suffix())
    }

    /// Whether a chunk with this address exists.
    pub fn contains(&self, hash: &ContentHash) -> bool {
        self.object_path(hash).is_file()
    }

    /// Stores a chunk, returning its reference. Idempotent: existing chunks
    /// are not rewritten (`put` of identical content is the dedup hit).
    ///
    /// Returns the reference together with `true` when a new object was
    /// physically written (`false` = dedup hit).
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn put(&self, data: &[u8]) -> Result<(ChunkRef, bool)> {
        let hash = Sha256::digest(data);
        let reference = ChunkRef {
            hash,
            len: data.len() as u32,
        };
        let path = self.object_path(&hash);
        if path.is_file() {
            return Ok((reference, false));
        }
        let dir = path.parent().expect("object path has parent");
        fs::create_dir_all(dir).map_err(|e| Error::io(format!("creating {}", dir.display()), e))?;
        let tmp = self.tmp_dir.join(format!(
            "obj-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)
                .map_err(|e| Error::io(format!("creating {}", tmp.display()), e))?;
            f.write_all(data)
                .map_err(|e| Error::io(format!("writing {}", tmp.display()), e))?;
            if self.fsync {
                f.sync_all()
                    .map_err(|e| Error::io(format!("syncing {}", tmp.display()), e))?;
            }
        }
        fs::rename(&tmp, &path)
            .map_err(|e| Error::io(format!("renaming into {}", path.display()), e))?;
        Ok((reference, true))
    }

    /// Fetches and verifies a chunk.
    ///
    /// # Errors
    ///
    /// [`Error::NotFound`] when absent; [`Error::Corrupt`] when the stored
    /// bytes do not match the reference (bit rot, truncation).
    pub fn get(&self, reference: &ChunkRef) -> Result<Vec<u8>> {
        let path = self.object_path(&reference.hash);
        let data = fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                Error::NotFound {
                    what: format!("chunk {}", reference.hash),
                }
            } else {
                Error::io(format!("reading {}", path.display()), e)
            }
        })?;
        if data.len() != reference.len as usize {
            return Err(Error::corrupt(
                format!("chunk {}", reference.hash),
                format!("length {} != expected {}", data.len(), reference.len),
            ));
        }
        let actual = Sha256::digest(&data);
        if actual != reference.hash {
            return Err(Error::corrupt(
                format!("chunk {}", reference.hash),
                format!("content hash mismatch (got {actual})"),
            ));
        }
        Ok(data)
    }

    /// Enumerates all stored object hashes.
    ///
    /// # Errors
    ///
    /// Fails on directory-walk errors. Files with non-hex names are ignored.
    pub fn list(&self) -> Result<Vec<ContentHash>> {
        let mut out = Vec::new();
        let entries = fs::read_dir(&self.objects_dir)
            .map_err(|e| Error::io(format!("listing {}", self.objects_dir.display()), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| Error::io("walking objects", e))?;
            if !entry.path().is_dir() {
                continue;
            }
            let prefix = entry.file_name().to_string_lossy().to_string();
            let inner = fs::read_dir(entry.path())
                .map_err(|e| Error::io(format!("listing {}", entry.path().display()), e))?;
            for file in inner {
                let file = file.map_err(|e| Error::io("walking objects", e))?;
                let name = file.file_name().to_string_lossy().to_string();
                if let Some(h) = ContentHash::from_hex(&format!("{prefix}{name}")) {
                    out.push(h);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Total bytes across all stored objects.
    ///
    /// # Errors
    ///
    /// Fails on directory-walk errors.
    pub fn total_bytes(&self) -> Result<u64> {
        let mut total = 0u64;
        for hash in self.list()? {
            let meta =
                fs::metadata(self.object_path(&hash)).map_err(|e| Error::io("stat object", e))?;
            total += meta.len();
        }
        Ok(total)
    }

    /// Number of stored objects.
    ///
    /// # Errors
    ///
    /// Fails on directory-walk errors.
    pub fn object_count(&self) -> Result<usize> {
        Ok(self.list()?.len())
    }

    /// Mark-and-sweep garbage collection: deletes every object whose hash is
    /// not in `reachable`.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors; a partially completed sweep is safe (the
    /// store never deletes reachable objects).
    pub fn sweep(&self, reachable: &BTreeSet<ContentHash>) -> Result<GcReport> {
        let mut report = GcReport::default();
        for hash in self.list()? {
            if reachable.contains(&hash) {
                report.live += 1;
            } else {
                let path = self.object_path(&hash);
                let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                fs::remove_file(&path)
                    .map_err(|e| Error::io(format!("deleting {}", path.display()), e))?;
                report.deleted += 1;
                report.reclaimed_bytes += len;
            }
        }
        // Clear stale staging files as well.
        if let Ok(entries) = fs::read_dir(&self.tmp_dir) {
            for entry in entries.flatten() {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(report)
    }

    /// Deliberately corrupts a stored object (failure-injection support):
    /// flips one byte at `offset % len`.
    ///
    /// # Errors
    ///
    /// Fails when the object is missing or empty.
    pub fn corrupt_object(&self, hash: &ContentHash, offset: usize) -> Result<()> {
        let path = self.object_path(hash);
        let mut data = fs::read(&path).map_err(|e| Error::io("reading object", e))?;
        if data.is_empty() {
            return Err(Error::corrupt("object", "cannot corrupt empty object"));
        }
        let i = offset % data.len();
        data[i] ^= 0x01;
        fs::write(&path, data).map_err(|e| Error::io("writing corrupted object", e))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store() -> (tempdir::TempDir, ChunkStore) {
        let dir = tempdir::TempDir::new();
        let store = ChunkStore::open(dir.path(), false).unwrap();
        (dir, store)
    }

    /// Minimal temp-dir helper (std-only; removed on drop).
    mod tempdir {
        use std::path::{Path, PathBuf};
        use std::sync::atomic::{AtomicU64, Ordering};

        static COUNTER: AtomicU64 = AtomicU64::new(0);

        pub struct TempDir(PathBuf);

        impl TempDir {
            pub fn new() -> Self {
                let path = std::env::temp_dir().join(format!(
                    "qcheck-store-test-{}-{}",
                    std::process::id(),
                    COUNTER.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::create_dir_all(&path).unwrap();
                TempDir(path)
            }
            pub fn path(&self) -> &Path {
                &self.0
            }
        }

        impl Drop for TempDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }

    #[test]
    fn put_get_round_trip() {
        let (_d, store) = temp_store();
        let data = b"hello chunk store".to_vec();
        let (r, fresh) = store.put(&data).unwrap();
        assert!(fresh);
        assert_eq!(store.get(&r).unwrap(), data);
        assert!(store.contains(&r.hash));
    }

    #[test]
    fn put_is_idempotent_dedup() {
        let (_d, store) = temp_store();
        let data = vec![42u8; 4096];
        let (r1, fresh1) = store.put(&data).unwrap();
        let (r2, fresh2) = store.put(&data).unwrap();
        assert_eq!(r1, r2);
        assert!(fresh1);
        assert!(!fresh2, "second put must be a dedup hit");
        assert_eq!(store.object_count().unwrap(), 1);
    }

    #[test]
    fn distinct_content_distinct_objects() {
        let (_d, store) = temp_store();
        store.put(b"aaa").unwrap();
        store.put(b"bbb").unwrap();
        assert_eq!(store.object_count().unwrap(), 2);
        assert_eq!(store.total_bytes().unwrap(), 6);
    }

    #[test]
    fn get_missing_is_not_found() {
        let (_d, store) = temp_store();
        let r = ChunkRef {
            hash: Sha256::digest(b"never stored"),
            len: 12,
        };
        assert!(matches!(store.get(&r), Err(Error::NotFound { .. })));
    }

    #[test]
    fn corruption_is_detected_on_get() {
        let (_d, store) = temp_store();
        let (r, _) = store.put(&[7u8; 100]).unwrap();
        store.corrupt_object(&r.hash, 13).unwrap();
        match store.get(&r) {
            Err(Error::Corrupt { detail, .. }) => assert!(detail.contains("hash mismatch")),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected_on_get() {
        let (_d, store) = temp_store();
        let (r, _) = store.put(&[9u8; 100]).unwrap();
        // Truncate the object file directly.
        let path = store.object_path(&r.hash);
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..50]).unwrap();
        match store.get(&r) {
            Err(Error::Corrupt { detail, .. }) => assert!(detail.contains("length")),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn sweep_removes_unreachable_only() {
        let (_d, store) = temp_store();
        let (keep, _) = store.put(b"keep me").unwrap();
        let (drop1, _) = store.put(b"drop me 1").unwrap();
        let (drop2, _) = store.put(b"drop me 2").unwrap();
        let mut reachable = BTreeSet::new();
        reachable.insert(keep.hash);
        let report = store.sweep(&reachable).unwrap();
        assert_eq!(report.live, 1);
        assert_eq!(report.deleted, 2);
        assert!(report.reclaimed_bytes >= 18);
        assert!(store.contains(&keep.hash));
        assert!(!store.contains(&drop1.hash));
        assert!(!store.contains(&drop2.hash));
    }

    #[test]
    fn list_returns_sorted_hashes() {
        let (_d, store) = temp_store();
        for i in 0..10u8 {
            store.put(&[i]).unwrap();
        }
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 10);
        let mut sorted = listed.clone();
        sorted.sort();
        assert_eq!(listed, sorted);
    }

    #[test]
    fn empty_chunk_is_storable() {
        let (_d, store) = temp_store();
        let (r, _) = store.put(b"").unwrap();
        assert_eq!(store.get(&r).unwrap(), Vec::<u8>::new());
    }
}
