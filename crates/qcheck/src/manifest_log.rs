//! Append-only manifest log + dual root slots: the O(1) commit protocol.
//!
//! The legacy layout wrote one `manifests/<id>.qmf` file per checkpoint and
//! rewrote `LATEST`, costing two renames per save and a full directory walk
//! on recovery. This module replaces both with:
//!
//! ```text
//! <root>/
//!   ROOT.0, ROOT.1          dual root slots (generation + epoch + CRC)
//!   manifest-<epoch>.qlg    append-only CRC-framed manifest log
//! ```
//!
//! A save appends a `ManifestPut` + `LatestAdvance` record pair to the log
//! (one write, one optional fsync) and then writes the *older* root slot in
//! place with a bumped generation (one small write, one optional fsync) —
//! zero renames end-to-end. Readers pick the valid root slot with the
//! highest generation and replay the log; a torn root write only ever
//! damages the stale slot, so the previous root always survives, and a torn
//! log append is detected by the per-record CRC and truncated away like a
//! WAL tail. Mid-log damage (in-place corruption, bit rot) is skipped by
//! resynchronizing on the next record magic, so one bad record never takes
//! out the checkpoints behind it.
//!
//! Record framing:
//!
//! ```text
//! magic   "QLR\0"                       4 bytes
//! kind    u8 (0 padding, 1 manifest-put, 2 latest-advance, 3 manifest-delete)
//! id_len  u16 le | id bytes            checkpoint id (empty for padding)
//! pay_len u32 le | payload bytes       manifest bytes for manifest-put
//! crc     u32 le                       CRC32 over kind..payload
//! ```
//!
//! The log grows until a retention pass compacts it: live manifests are
//! rewritten into `manifest-<epoch+1>.qlg` (staged + renamed), the root
//! flips to the new epoch, and the old log is deleted. Saves never compact,
//! so the save path stays O(1).

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use crate::error::{Error, Result};
use crate::hash::crc32;
use crate::manifest::{CheckpointId, Manifest};

/// Magic bytes opening each root slot file.
pub const ROOT_MAGIC: &[u8; 6] = b"QROOT\0";
/// Root slot format version.
pub const ROOT_VERSION: u32 = 1;
/// Magic bytes opening the manifest log.
pub const LOG_MAGIC: &[u8; 6] = b"QMLOG\0";
/// Manifest log format version.
pub const LOG_VERSION: u32 = 1;
/// Magic bytes opening every log record.
pub const RECORD_MAGIC: [u8; 4] = *b"QLR\0";
/// Fixed log header: magic + version + epoch.
pub const LOG_HEADER_LEN: u64 = 6 + 4 + 8;
/// Fixed per-record overhead: magic + kind + id_len + pay_len + crc.
pub const RECORD_OVERHEAD: usize = 4 + 1 + 2 + 4 + 4;

/// Sanity bound on a single record's payload (a manifest is KBs).
const MAX_RECORD_PAYLOAD: usize = 64 << 20;
/// Sanity bound on an id inside a record.
const MAX_RECORD_ID: usize = 256;

/// Log record types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// Filler produced by scrubbing a record in place; replay skips it.
    Padding,
    /// A checkpoint manifest (payload = `Manifest::encode()` bytes).
    ManifestPut,
    /// The latest pointer advanced to `id` (no payload).
    LatestAdvance,
    /// Checkpoint `id` was retired by retention (durable delete intent —
    /// for shared backends this record is the proof the mirror delete
    /// must be reconciled, so compaction retains it).
    ManifestDelete,
}

impl RecordKind {
    fn from_u8(v: u8) -> Option<RecordKind> {
        match v {
            0 => Some(RecordKind::Padding),
            1 => Some(RecordKind::ManifestPut),
            2 => Some(RecordKind::LatestAdvance),
            3 => Some(RecordKind::ManifestDelete),
            _ => None,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            RecordKind::Padding => 0,
            RecordKind::ManifestPut => 1,
            RecordKind::LatestAdvance => 2,
            RecordKind::ManifestDelete => 3,
        }
    }
}

/// One root slot: the committed view of the manifest log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootSlot {
    /// Monotonic commit counter; the valid slot with the highest
    /// generation wins.
    pub generation: u64,
    /// Which `manifest-<epoch>.qlg` file this root describes.
    pub epoch: u64,
    /// Log length this commit covered. Valid records beyond it are a
    /// crashed-but-complete commit and still count for recovery
    /// (newest-valid-wins); invalid bytes beyond it are a benign torn
    /// tail.
    pub committed_len: u64,
    /// The committed latest checkpoint.
    pub latest: Option<CheckpointId>,
}

impl RootSlot {
    /// Serializes the slot (magic + version + fields + CRC32).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        b.extend_from_slice(ROOT_MAGIC);
        b.extend_from_slice(&ROOT_VERSION.to_le_bytes());
        b.extend_from_slice(&self.generation.to_le_bytes());
        b.extend_from_slice(&self.epoch.to_le_bytes());
        b.extend_from_slice(&self.committed_len.to_le_bytes());
        let latest = self.latest.as_ref().map(|i| i.as_str()).unwrap_or("");
        b.extend_from_slice(&(latest.len() as u16).to_le_bytes());
        b.extend_from_slice(latest.as_bytes());
        let crc = crc32(&b);
        b.extend_from_slice(&crc.to_le_bytes());
        b
    }

    /// Parses a slot; `None` on any framing/CRC failure (torn write).
    pub fn decode(bytes: &[u8]) -> Option<RootSlot> {
        let fixed = 6 + 4 + 8 + 8 + 8 + 2;
        if bytes.len() < fixed + 4 || &bytes[..6] != ROOT_MAGIC {
            return None;
        }
        if u32::from_le_bytes(bytes[6..10].try_into().ok()?) != ROOT_VERSION {
            return None;
        }
        let generation = u64::from_le_bytes(bytes[10..18].try_into().ok()?);
        let epoch = u64::from_le_bytes(bytes[18..26].try_into().ok()?);
        let committed_len = u64::from_le_bytes(bytes[26..34].try_into().ok()?);
        let latest_len = u16::from_le_bytes(bytes[34..36].try_into().ok()?) as usize;
        if bytes.len() != fixed + latest_len + 4 {
            return None;
        }
        let latest_bytes = &bytes[36..36 + latest_len];
        let stored_crc = u32::from_le_bytes(bytes[36 + latest_len..].try_into().ok()?);
        if crc32(&bytes[..36 + latest_len]) != stored_crc {
            return None;
        }
        let latest = if latest_len == 0 {
            None
        } else {
            Some(CheckpointId(String::from_utf8(latest_bytes.to_vec()).ok()?))
        };
        Some(RootSlot {
            generation,
            epoch,
            committed_len,
            latest,
        })
    }
}

/// Path of root slot `slot` (0 or 1) under `dir`.
pub fn root_slot_path(dir: &Path, slot: usize) -> PathBuf {
    dir.join(format!("ROOT.{slot}"))
}

/// Path of the epoch's manifest log under `dir`.
pub fn log_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("manifest-{epoch:06}.qlg"))
}

/// The fixed log file header for `epoch`.
pub fn log_header(epoch: u64) -> Vec<u8> {
    let mut b = Vec::with_capacity(LOG_HEADER_LEN as usize);
    b.extend_from_slice(LOG_MAGIC);
    b.extend_from_slice(&LOG_VERSION.to_le_bytes());
    b.extend_from_slice(&epoch.to_le_bytes());
    b
}

/// Encodes one framed record.
pub fn encode_record(kind: RecordKind, id: &str, payload: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(RECORD_OVERHEAD + id.len() + payload.len());
    b.extend_from_slice(&RECORD_MAGIC);
    b.push(kind.as_u8());
    b.extend_from_slice(&(id.len() as u16).to_le_bytes());
    b.extend_from_slice(id.as_bytes());
    b.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    b.extend_from_slice(payload);
    let crc = crc32(&b[4..]);
    b.extend_from_slice(&crc.to_le_bytes());
    b
}

/// A successfully parsed record.
struct ParsedRecord<'a> {
    consumed: usize,
    kind: RecordKind,
    id: String,
    payload: &'a [u8],
}

/// Parses one record at the head of `bytes`. `Err((id_guess, reason))` on
/// any framing failure; the guess is the header's id when the header was
/// readable (a payload CRC failure still names its checkpoint).
fn parse_record(bytes: &[u8]) -> std::result::Result<ParsedRecord<'_>, (Option<String>, String)> {
    if bytes.len() < RECORD_OVERHEAD {
        return Err((None, "record truncated before header".into()));
    }
    if bytes[..4] != RECORD_MAGIC {
        return Err((None, "bad record magic".into()));
    }
    let kind = RecordKind::from_u8(bytes[4]).ok_or((None, "unknown record kind".to_string()))?;
    let id_len = u16::from_le_bytes([bytes[5], bytes[6]]) as usize;
    if id_len > MAX_RECORD_ID || bytes.len() < 4 + 1 + 2 + id_len + 4 {
        return Err((None, "record truncated in id".into()));
    }
    let id = match std::str::from_utf8(&bytes[7..7 + id_len]) {
        Ok(s) => s.to_string(),
        Err(_) => return Err((None, "record id is not utf-8".into())),
    };
    let guess = (!id.is_empty()).then(|| id.clone());
    let pay_off = 7 + id_len;
    let pay_len =
        u32::from_le_bytes(bytes[pay_off..pay_off + 4].try_into().expect("4 bytes")) as usize;
    if pay_len > MAX_RECORD_PAYLOAD {
        return Err((guess, "record payload length implausible".into()));
    }
    let total = RECORD_OVERHEAD + id_len + pay_len;
    if bytes.len() < total {
        return Err((guess, "record truncated in payload".into()));
    }
    let stored_crc = u32::from_le_bytes(bytes[total - 4..total].try_into().expect("4 bytes"));
    if crc32(&bytes[4..total - 4]) != stored_crc {
        return Err((guess, "record CRC mismatch".into()));
    }
    Ok(ParsedRecord {
        consumed: total,
        kind,
        id,
        payload: &bytes[pay_off + 4..total - 4],
    })
}

/// Finds the next record-magic offset at or after `from`.
fn find_magic(bytes: &[u8], from: usize) -> Option<usize> {
    if from >= bytes.len() {
        return None;
    }
    bytes[from..]
        .windows(RECORD_MAGIC.len())
        .position(|w| w == RECORD_MAGIC)
        .map(|p| from + p)
}

/// The replayed state of a repository's manifest log.
#[derive(Clone, Debug, Default)]
pub struct LogReplay {
    /// Generation of the chosen root (0 when no valid root exists).
    pub generation: u64,
    /// Epoch (log file) the state was replayed from.
    pub epoch: u64,
    /// Slot index the chosen root was read from.
    pub root_slot: usize,
    /// `committed_len` claimed by the chosen root.
    pub committed_len: u64,
    /// End offset of the last valid record (torn tail bytes beyond this
    /// are safe to truncate once `valid_len >= committed_len`).
    pub valid_len: u64,
    /// On-disk log length at replay time.
    pub file_len: u64,
    /// Live manifests, keyed by id.
    pub manifests: BTreeMap<CheckpointId, Manifest>,
    /// Byte span `(offset, len)` of each live manifest's put record.
    pub spans: BTreeMap<CheckpointId, (u64, u64)>,
    /// Ids retired by a `ManifestDelete` record (durable delete intent;
    /// shared-backend reconciliation re-issues the mirror delete for
    /// these and never re-pulls them).
    pub tombstones: BTreeSet<CheckpointId>,
    /// Latest pointer after replay (root's, advanced by replayed
    /// `LatestAdvance` records; `None` when it dangles).
    pub latest: Option<CheckpointId>,
    /// Records that failed framing/decoding inside the replayed region:
    /// `(best-effort id or "offset-<n>", reason)`.
    pub damaged: Vec<(String, String)>,
    /// Applied (non-padding) records — compaction policy input.
    pub records: u64,
    /// True when the highest-generation slot was unusable and an older
    /// root (or a rootless log scan) served instead.
    pub root_fallback: bool,
}

impl LogReplay {
    /// True when neither a root slot nor a log file exists yet.
    pub fn is_empty_layout(&self) -> bool {
        self.generation == 0 && self.file_len == 0 && self.manifests.is_empty()
    }
}

/// Reads (without validating beyond framing) both root slots.
pub fn read_root_slots(dir: &Path) -> [Option<RootSlot>; 2] {
    let read = |slot: usize| {
        fs::read(root_slot_path(dir, slot))
            .ok()
            .and_then(|b| RootSlot::decode(&b))
    };
    [read(0), read(1)]
}

/// Reads a log file and validates its header; `None` when missing or when
/// the header does not frame-check for `epoch`.
fn read_log(dir: &Path, epoch: u64) -> Option<Vec<u8>> {
    let bytes = fs::read(log_path(dir, epoch)).ok()?;
    if bytes.len() < LOG_HEADER_LEN as usize
        || &bytes[..6] != LOG_MAGIC
        || u32::from_le_bytes(bytes[6..10].try_into().ok()?) != LOG_VERSION
        || u64::from_le_bytes(bytes[10..18].try_into().ok()?) != epoch
    {
        return None;
    }
    Some(bytes)
}

/// Epochs of every `manifest-*.qlg` under `dir`, ascending.
pub fn list_log_epochs(dir: &Path) -> Vec<u64> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<u64> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().to_string();
            let stem = name.strip_prefix("manifest-")?.strip_suffix(".qlg")?;
            stem.parse::<u64>().ok()
        })
        .collect();
    out.sort_unstable();
    out
}

/// Opens the newest valid root (falling back across slots and, with no
/// valid root at all, to a bare log scan) and replays the log.
///
/// # Errors
///
/// I/O errors other than absence. Corruption never errors — it is
/// recorded in [`LogReplay::damaged`] and skipped.
pub fn replay(dir: &Path) -> Result<LogReplay> {
    crate::obs::MLOG_REPLAYS.inc();
    let slots = read_root_slots(dir);
    let mut candidates: Vec<(usize, RootSlot)> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.clone().map(|s| (i, s)))
        .collect();
    candidates.sort_by_key(|(_, s)| std::cmp::Reverse(s.generation));

    let mut out = LogReplay::default();
    let mut log_bytes: Option<Vec<u8>> = None;
    for (rank, (slot, root)) in candidates.iter().enumerate() {
        match read_log(dir, root.epoch) {
            Some(bytes) => {
                out.generation = root.generation;
                out.epoch = root.epoch;
                out.root_slot = *slot;
                out.committed_len = root.committed_len;
                out.latest = root.latest.clone();
                out.root_fallback = rank > 0;
                log_bytes = Some(bytes);
                break;
            }
            None => out.damaged.push((
                format!("root-slot-{slot}"),
                format!(
                    "root generation {} names an unreadable log epoch {}",
                    root.generation, root.epoch
                ),
            )),
        }
    }
    // A torn root *file* (decode failure while the file exists) also means
    // the surviving root served as the fallback.
    if !out.root_fallback {
        out.root_fallback = (0..2).any(|slot| {
            slots[slot].is_none() && root_slot_path(dir, slot).exists() && log_bytes.is_some()
        });
    }
    if log_bytes.is_none() {
        // No usable root: scan for the newest log whose header validates
        // and replay it without a committed region.
        for epoch in list_log_epochs(dir).into_iter().rev() {
            if let Some(bytes) = read_log(dir, epoch) {
                out.epoch = epoch;
                out.committed_len = 0;
                if !candidates.is_empty() {
                    out.root_fallback = true;
                }
                log_bytes = Some(bytes);
                break;
            }
        }
    }
    let Some(bytes) = log_bytes else {
        return Ok(out); // empty layout (or only unreadable debris)
    };

    out.file_len = bytes.len() as u64;
    out.valid_len = LOG_HEADER_LEN.min(out.file_len);
    let mut pos = LOG_HEADER_LEN as usize;
    while pos < bytes.len() {
        match parse_record(&bytes[pos..]) {
            Ok(rec) => {
                let span = (pos as u64, rec.consumed as u64);
                match rec.kind {
                    RecordKind::Padding => {}
                    RecordKind::ManifestPut => {
                        out.records += 1;
                        match Manifest::decode(rec.payload) {
                            Ok(m) if m.id.as_str() == rec.id => {
                                out.tombstones.remove(&m.id);
                                out.spans.insert(m.id.clone(), span);
                                out.manifests.insert(m.id.clone(), m);
                            }
                            Ok(m) => out.damaged.push((
                                rec.id.clone(),
                                format!("record id does not match manifest id {}", m.id),
                            )),
                            Err(e) => out.damaged.push((rec.id.clone(), e.to_string())),
                        }
                    }
                    RecordKind::LatestAdvance => {
                        out.records += 1;
                        out.latest = Some(CheckpointId(rec.id.clone()));
                    }
                    RecordKind::ManifestDelete => {
                        out.records += 1;
                        let id = CheckpointId(rec.id.clone());
                        out.manifests.remove(&id);
                        out.spans.remove(&id);
                        if out.latest.as_ref() == Some(&id) {
                            out.latest = None;
                        }
                        out.tombstones.insert(id);
                    }
                }
                pos += rec.consumed;
                out.valid_len = pos as u64;
            }
            Err((guess, reason)) => {
                let label = guess.unwrap_or_else(|| format!("offset-{pos}"));
                match find_magic(&bytes, pos + 1) {
                    Some(next) => {
                        // Mid-log damage: later records exist, so this is
                        // a detectable hole, not a torn tail. Skip to the
                        // next record magic.
                        out.damaged.push((label, reason));
                        pos = next;
                    }
                    None => {
                        // Tail damage. Inside the committed region it is
                        // real corruption (an in-place writer claimed these
                        // bytes); beyond it, the benign torn tail of a
                        // crashed append, silently truncated on replay.
                        if (pos as u64) < out.committed_len {
                            out.damaged.push((label, reason));
                        }
                        break;
                    }
                }
            }
        }
    }
    // A latest pointer that names no live manifest (deleted, damaged or
    // never landed) is treated as absent; recovery never trusted the
    // pointer anyway.
    if let Some(l) = &out.latest {
        if !out.manifests.contains_key(l) {
            out.latest = None;
        }
    }
    Ok(out)
}

/// Appends raw bytes to the epoch's log, creating it (with its header)
/// when absent. Returns the file length before the append.
///
/// # Errors
///
/// Filesystem errors.
pub fn append_to_log(dir: &Path, epoch: u64, bytes: &[u8], fsync: bool) -> Result<u64> {
    use std::io::Write;
    let path = log_path(dir, epoch);
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| Error::io(format!("opening {}", path.display()), e))?;
    let mut len = f
        .metadata()
        .map_err(|e| Error::io("stat manifest log", e))?
        .len();
    if len == 0 {
        f.write_all(&log_header(epoch))
            .map_err(|e| Error::io("writing manifest log header", e))?;
        len = LOG_HEADER_LEN;
    }
    f.write_all(bytes)
        .map_err(|e| Error::io("appending manifest log record", e))?;
    if fsync {
        qobs::time(&crate::obs::FSYNC_NS, || f.sync_all())
            .map_err(|e| Error::io("syncing manifest log", e))?;
    }
    Ok(len)
}

/// Writes root slot `slot` in place (single small write + optional fsync).
///
/// # Errors
///
/// Filesystem errors.
pub fn write_root_slot(dir: &Path, slot: usize, root: &RootSlot, fsync: bool) -> Result<()> {
    use std::io::Write;
    let path = root_slot_path(dir, slot);
    let mut f = fs::File::create(&path)
        .map_err(|e| Error::io(format!("creating {}", path.display()), e))?;
    f.write_all(&root.encode())
        .map_err(|e| Error::io("writing root slot", e))?;
    if fsync {
        qobs::time(&crate::obs::FSYNC_NS, || f.sync_all())
            .map_err(|e| Error::io("syncing root slot", e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::CheckpointKind;

    fn scratch(tag: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qcheck-mlog-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn manifest(id: &str) -> Manifest {
        Manifest {
            id: CheckpointId(id.to_string()),
            step: 1,
            kind: CheckpointKind::Full,
            chain_len: 0,
            created_unix_ms: 0,
            snapshot_sha: crate::hash::Sha256::digest(id.as_bytes()),
            sections: Vec::new(),
        }
    }

    fn commit(dir: &Path, gen: u64, slot: usize, m: &Manifest) {
        let mut rec = encode_record(RecordKind::ManifestPut, m.id.as_str(), &m.encode());
        rec.extend(encode_record(RecordKind::LatestAdvance, m.id.as_str(), &[]));
        let before = append_to_log(dir, 0, &rec, false).unwrap();
        let root = RootSlot {
            generation: gen,
            epoch: 0,
            committed_len: before + rec.len() as u64,
            latest: Some(m.id.clone()),
        };
        write_root_slot(dir, slot, &root, false).unwrap();
    }

    #[test]
    fn root_slot_round_trips_and_rejects_any_bitflip() {
        let root = RootSlot {
            generation: 7,
            epoch: 2,
            committed_len: 12345,
            latest: Some(CheckpointId("ckpt-0000000001-000003".into())),
        };
        let bytes = root.encode();
        assert_eq!(RootSlot::decode(&bytes).unwrap(), root);
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x01;
            assert!(RootSlot::decode(&b).is_none(), "bitflip at {i} accepted");
        }
        for keep in 0..bytes.len() {
            assert!(RootSlot::decode(&bytes[..keep]).is_none());
        }
    }

    #[test]
    fn replay_applies_put_advance_delete() {
        let dir = scratch("apply");
        commit(&dir, 1, 0, &manifest("ckpt-0000000001-000000"));
        commit(&dir, 2, 1, &manifest("ckpt-0000000002-000001"));
        let st = replay(&dir).unwrap();
        assert_eq!(st.generation, 2);
        assert_eq!(st.manifests.len(), 2);
        assert_eq!(
            st.latest.as_ref().unwrap().as_str(),
            "ckpt-0000000002-000001"
        );
        assert!(st.damaged.is_empty());
        // Retire the older one.
        let rec = encode_record(RecordKind::ManifestDelete, "ckpt-0000000001-000000", &[]);
        let before = append_to_log(&dir, 0, &rec, false).unwrap();
        let root = RootSlot {
            generation: 3,
            epoch: 0,
            committed_len: before + rec.len() as u64,
            latest: st.latest.clone(),
        };
        write_root_slot(&dir, 1, &root, false).unwrap();
        let st = replay(&dir).unwrap();
        assert_eq!(st.manifests.len(), 1);
        assert!(st
            .tombstones
            .contains(&CheckpointId("ckpt-0000000001-000000".into())));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_beyond_committed_is_silently_truncated() {
        let dir = scratch("tail");
        commit(&dir, 1, 0, &manifest("ckpt-0000000001-000000"));
        let full = replay(&dir).unwrap();
        // Append a torn (partial) record without flipping the root.
        let rec = encode_record(RecordKind::ManifestPut, "ckpt-0000000002-000001", b"junk");
        append_to_log(&dir, 0, &rec[..rec.len() / 2], false).unwrap();
        let st = replay(&dir).unwrap();
        assert_eq!(st.manifests.len(), 1);
        assert!(st.damaged.is_empty(), "{:?}", st.damaged);
        assert_eq!(st.valid_len, full.valid_len);
        assert!(st.file_len > st.valid_len);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn complete_records_beyond_committed_still_count() {
        let dir = scratch("beyond");
        commit(&dir, 1, 0, &manifest("ckpt-0000000001-000000"));
        // Full append of checkpoint 2, but the root never flipped
        // (crash before the root write).
        let m2 = manifest("ckpt-0000000002-000001");
        let mut rec = encode_record(RecordKind::ManifestPut, m2.id.as_str(), &m2.encode());
        rec.extend(encode_record(
            RecordKind::LatestAdvance,
            m2.id.as_str(),
            &[],
        ));
        append_to_log(&dir, 0, &rec, false).unwrap();
        let st = replay(&dir).unwrap();
        assert_eq!(st.manifests.len(), 2, "newest valid wins");
        assert_eq!(st.latest.as_ref().unwrap().as_str(), m2.id.as_str());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn mid_log_damage_is_skipped_with_resync() {
        let dir = scratch("midlog");
        commit(&dir, 1, 0, &manifest("ckpt-0000000001-000000"));
        commit(&dir, 2, 1, &manifest("ckpt-0000000002-000001"));
        let st = replay(&dir).unwrap();
        let (off, len) = st.spans[&CheckpointId("ckpt-0000000001-000000".into())];
        // Flip a payload byte of the *older* record.
        let path = log_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[(off + len / 2) as usize] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        let st = replay(&dir).unwrap();
        assert_eq!(st.manifests.len(), 1, "later record must survive");
        assert!(st
            .manifests
            .contains_key(&CheckpointId("ckpt-0000000002-000001".into())));
        assert_eq!(st.damaged.len(), 1);
        assert_eq!(st.damaged[0].0, "ckpt-0000000001-000000");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_newest_root_falls_back_to_previous_slot() {
        let dir = scratch("rootfall");
        commit(&dir, 1, 0, &manifest("ckpt-0000000001-000000"));
        commit(&dir, 2, 1, &manifest("ckpt-0000000002-000001"));
        // Tear the newest root (slot 1, generation 2) at every prefix.
        let good = fs::read(root_slot_path(&dir, 1)).unwrap();
        for keep in 0..good.len() {
            fs::write(root_slot_path(&dir, 1), &good[..keep]).unwrap();
            let st = replay(&dir).unwrap();
            assert_eq!(st.generation, 1, "keep={keep}");
            assert!(st.root_fallback, "keep={keep}");
            // The log records are intact, so both manifests still replay.
            assert_eq!(st.manifests.len(), 2, "keep={keep}");
        }
        fs::write(root_slot_path(&dir, 1), &good).unwrap();
        assert!(!replay(&dir).unwrap().root_fallback);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn empty_dir_replays_to_empty_state() {
        let dir = scratch("empty");
        let st = replay(&dir).unwrap();
        assert!(st.is_empty_layout());
        assert!(st.latest.is_none());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn padding_records_are_invisible() {
        let dir = scratch("pad");
        commit(&dir, 1, 0, &manifest("ckpt-0000000001-000000"));
        let st = replay(&dir).unwrap();
        let (off, len) = st.spans[&CheckpointId("ckpt-0000000001-000000".into())];
        // Scrub the record in place with a same-length padding record.
        let pad_payload = vec![0u8; len as usize - RECORD_OVERHEAD];
        let pad = encode_record(RecordKind::Padding, "", &pad_payload);
        assert_eq!(pad.len() as u64, len);
        let path = log_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[off as usize..(off + len) as usize].copy_from_slice(&pad);
        fs::write(&path, bytes).unwrap();
        let st = replay(&dir).unwrap();
        assert!(st.manifests.is_empty());
        assert!(st.damaged.is_empty(), "{:?}", st.damaged);
        let _ = fs::remove_dir_all(dir);
    }
}
