//! Block-level delta encoding for incremental checkpoints.
//!
//! An incremental checkpoint stores, per section, only the fixed-size blocks
//! that changed relative to a *base* checkpoint, plus the resulting length.
//! Late in training most optimizer steps touch every parameter but change
//! few *bytes* meaningfully, so deltas are combined with the XOR-f64 codec
//! at the compression layer (experiment R-F5); at the block layer the win
//! comes from untouched regions (frozen layers, ledger prefixes, metrics
//! history).

use crate::codec::{Decoder, Encoder};
use crate::error::{Error, Result};

/// Default delta block size: 512 bytes (64 parameters).
pub const DEFAULT_BLOCK_SIZE: usize = 512;

/// A block-level patch transforming one byte string into another.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockPatch {
    /// Block granularity used by the diff.
    pub block_size: u32,
    /// Length of the result after applying the patch.
    pub result_len: u64,
    /// `(block_index, new_bytes)` for each changed block, sorted by index.
    pub blocks: Vec<(u64, Vec<u8>)>,
}

impl BlockPatch {
    /// Diffs `new` against `base` at `block_size` granularity.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn diff(base: &[u8], new: &[u8], block_size: usize) -> BlockPatch {
        assert!(block_size > 0, "block size must be positive");
        let mut blocks = Vec::new();
        let n_blocks = new.len().div_ceil(block_size);
        for b in 0..n_blocks {
            let start = b * block_size;
            let end = (start + block_size).min(new.len());
            let new_block = &new[start..end];
            let base_block = if start < base.len() {
                &base[start..end.min(base.len())]
            } else {
                &[][..]
            };
            if new_block != base_block {
                blocks.push((b as u64, new_block.to_vec()));
            }
        }
        BlockPatch {
            block_size: block_size as u32,
            result_len: new.len() as u64,
            blocks,
        }
    }

    /// Applies the patch to `base`, producing the new byte string.
    ///
    /// # Errors
    ///
    /// Fails when a block index or length is inconsistent with `result_len`.
    pub fn apply(&self, base: &[u8]) -> Result<Vec<u8>> {
        let bs = self.block_size as usize;
        if bs == 0 {
            return Err(Error::corrupt("block patch", "zero block size"));
        }
        let result_len = self.result_len as usize;
        let mut out = vec![0u8; result_len];
        // Start from the base, truncated/zero-extended to the result length.
        let copy = base.len().min(result_len);
        out[..copy].copy_from_slice(&base[..copy]);
        for (index, bytes) in &self.blocks {
            let start = (*index as usize) * bs;
            let end = start + bytes.len();
            if end > result_len {
                return Err(Error::corrupt(
                    "block patch",
                    format!("block {index} overruns result length {result_len}"),
                ));
            }
            // Every block except possibly the final one must be full-sized.
            let is_final = end == result_len;
            if bytes.len() != bs && !is_final {
                return Err(Error::corrupt(
                    "block patch",
                    format!("interior block {index} has length {}", bytes.len()),
                ));
            }
            out[start..end].copy_from_slice(bytes);
        }
        Ok(out)
    }

    /// Serialized patch bytes (deterministic).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_varint(self.block_size as u64)
            .put_varint(self.result_len)
            .put_varint(self.blocks.len() as u64);
        for (index, bytes) in &self.blocks {
            e.put_varint(*index).put_bytes(bytes);
        }
        e.into_bytes()
    }

    /// Parses bytes produced by [`BlockPatch::encode`].
    ///
    /// # Errors
    ///
    /// Fails on truncation or framing violations.
    pub fn decode(data: &[u8]) -> Result<BlockPatch> {
        let mut d = Decoder::new(data, "block patch");
        let block_size = d.get_varint()? as u32;
        let result_len = d.get_varint()?;
        let count = d.get_varint()? as usize;
        let mut blocks = Vec::with_capacity(count.min(1 << 20));
        let mut prev_index: Option<u64> = None;
        for _ in 0..count {
            let index = d.get_varint()?;
            if let Some(p) = prev_index {
                if index <= p {
                    return Err(Error::corrupt(
                        "block patch",
                        format!("non-monotonic block index {index}"),
                    ));
                }
            }
            prev_index = Some(index);
            blocks.push((index, d.get_bytes()?));
        }
        d.finish()?;
        Ok(BlockPatch {
            block_size,
            result_len,
            blocks,
        })
    }

    /// Bytes of changed payload carried by this patch.
    pub fn changed_bytes(&self) -> usize {
        self.blocks.iter().map(|(_, b)| b.len()).sum()
    }

    /// Number of changed blocks.
    pub fn changed_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the patch is a no-op (identical content, same length).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_apply_identity() {
        let base: Vec<u8> = (0..5000u32).map(|i| (i % 256) as u8).collect();
        let mut new = base.clone();
        new[100] ^= 0xFF;
        new[4999] ^= 0x01;
        let patch = BlockPatch::diff(&base, &new, 512);
        assert_eq!(patch.apply(&base).unwrap(), new);
        assert_eq!(patch.changed_blocks(), 2);
    }

    #[test]
    fn identical_inputs_empty_patch() {
        let base = vec![9u8; 2048];
        let patch = BlockPatch::diff(&base, &base, 512);
        assert!(patch.is_empty());
        assert_eq!(patch.apply(&base).unwrap(), base);
    }

    #[test]
    fn growth_is_handled() {
        let base = vec![1u8; 1000];
        let mut new = base.clone();
        new.extend_from_slice(&[2u8; 600]);
        let patch = BlockPatch::diff(&base, &new, 512);
        assert_eq!(patch.apply(&base).unwrap(), new);
    }

    #[test]
    fn shrink_is_handled() {
        let base = vec![1u8; 1600];
        let new = vec![1u8; 700];
        let patch = BlockPatch::diff(&base, &new, 512);
        assert_eq!(patch.apply(&base).unwrap(), new);
        // Only the boundary block differs (shorter tail).
        assert!(patch.changed_blocks() <= 1);
    }

    #[test]
    fn empty_base_full_patch() {
        let new = vec![3u8; 1100];
        let patch = BlockPatch::diff(&[], &new, 512);
        assert_eq!(patch.changed_blocks(), 3);
        assert_eq!(patch.apply(&[]).unwrap(), new);
    }

    #[test]
    fn empty_new_empties_result() {
        let base = vec![3u8; 1100];
        let patch = BlockPatch::diff(&base, &[], 512);
        assert!(patch.is_empty());
        assert_eq!(patch.result_len, 0);
        assert_eq!(patch.apply(&base).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn encode_decode_round_trip() {
        let base: Vec<u8> = (0..3000u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut new = base.clone();
        for i in (0..3000).step_by(700) {
            new[i] ^= 0xAA;
        }
        let patch = BlockPatch::diff(&base, &new, 256);
        let encoded = patch.encode();
        let decoded = BlockPatch::decode(&encoded).unwrap();
        assert_eq!(patch, decoded);
        assert_eq!(decoded.apply(&base).unwrap(), new);
    }

    #[test]
    fn decode_rejects_truncation() {
        let patch = BlockPatch::diff(&[0u8; 100], &[1u8; 100], 32);
        let encoded = patch.encode();
        for cut in 1..encoded.len() {
            assert!(
                BlockPatch::decode(&encoded[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn decode_rejects_non_monotonic_blocks() {
        let mut e = Encoder::new();
        e.put_varint(16) // block size
            .put_varint(64) // result len
            .put_varint(2) // two blocks
            .put_varint(1)
            .put_bytes(&[0u8; 16])
            .put_varint(1) // duplicate index
            .put_bytes(&[0u8; 16]);
        assert!(BlockPatch::decode(&e.into_bytes()).is_err());
    }

    #[test]
    fn apply_rejects_overrun() {
        let patch = BlockPatch {
            block_size: 16,
            result_len: 20,
            blocks: vec![(1, vec![0u8; 16])], // bytes 16..32 > 20
        };
        assert!(patch.apply(&[0u8; 20]).is_err());
    }

    #[test]
    fn apply_rejects_short_interior_block() {
        let patch = BlockPatch {
            block_size: 16,
            result_len: 64,
            blocks: vec![(0, vec![0u8; 8])], // short but not final
        };
        assert!(patch.apply(&[1u8; 64]).is_err());
    }

    #[test]
    fn sparse_updates_yield_small_patches() {
        // 64 KiB section, one byte changed → one 512-byte block.
        let base = vec![0u8; 65536];
        let mut new = base.clone();
        new[30_000] = 1;
        let patch = BlockPatch::diff(&base, &new, DEFAULT_BLOCK_SIZE);
        assert_eq!(patch.changed_blocks(), 1);
        assert!(patch.encode().len() < 600);
    }

    #[test]
    fn patch_chain_composes() {
        // v0 → v1 → v2: applying both patches sequentially reproduces v2.
        let v0 = vec![0u8; 4096];
        let mut v1 = v0.clone();
        v1[10] = 1;
        let mut v2 = v1.clone();
        v2[2000] = 2;
        let p01 = BlockPatch::diff(&v0, &v1, 512);
        let p12 = BlockPatch::diff(&v1, &v2, 512);
        let r1 = p01.apply(&v0).unwrap();
        let r2 = p12.apply(&r1).unwrap();
        assert_eq!(r2, v2);
    }
}
