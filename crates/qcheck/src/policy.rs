//! Checkpoint-interval policies.
//!
//! When to checkpoint is a cost trade-off: checkpoint too often and the
//! overhead dominates; too rarely and every failure loses a long stretch of
//! work. The classical first-order optimum is the Young/Daly interval
//! `τ* = √(2·C·M)` for checkpoint cost `C` and mean time between failures
//! `M` (Young 1974, Daly 2006). The [`math`] module carries the model
//! functions the evaluation plots against measurements (experiments R-F1 and
//! R-F3); the [`CheckpointPolicy`] implementations drive the live training
//! loop.

use serde::{Deserialize, Serialize};

/// Observation window handed to a policy on every step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicyContext {
    /// Current optimizer step (0-based; `should_checkpoint` is asked after
    /// the step completes).
    pub step: u64,
    /// Wall-clock milliseconds since training (re)started.
    pub now_ms: u64,
    /// Step at which the last checkpoint was taken (`None` before the
    /// first).
    pub last_checkpoint_step: Option<u64>,
    /// Wall-clock of the last checkpoint.
    pub last_checkpoint_ms: Option<u64>,
    /// Exponentially weighted cost of recent checkpoint writes, ms.
    pub observed_checkpoint_cost_ms: f64,
}

/// A strategy deciding when a checkpoint should be written.
pub trait CheckpointPolicy: std::fmt::Debug {
    /// Returns `true` when a checkpoint should be taken now.
    fn should_checkpoint(&mut self, ctx: &PolicyContext) -> bool;

    /// Human-readable policy name for logs and reports.
    fn name(&self) -> &'static str;
}

/// Checkpoint every `k` optimizer steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EveryKSteps {
    /// Interval in steps; must be ≥ 1.
    pub k: u64,
}

impl EveryKSteps {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u64) -> Self {
        assert!(k > 0, "interval must be at least one step");
        EveryKSteps { k }
    }
}

impl CheckpointPolicy for EveryKSteps {
    fn should_checkpoint(&mut self, ctx: &PolicyContext) -> bool {
        // `ctx.step` counts *completed* steps (1-based after the first),
        // so the policy fires at steps k, 2k, 3k, …
        ctx.step
            .saturating_sub(ctx.last_checkpoint_step.unwrap_or(0))
            >= self.k
    }

    fn name(&self) -> &'static str {
        "every-k-steps"
    }
}

/// Checkpoint when at least `interval_ms` of wall clock has elapsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WallClock {
    /// Interval in milliseconds; must be ≥ 1.
    pub interval_ms: u64,
}

impl WallClock {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `interval_ms == 0`.
    pub fn new(interval_ms: u64) -> Self {
        assert!(interval_ms > 0, "interval must be positive");
        WallClock { interval_ms }
    }
}

impl CheckpointPolicy for WallClock {
    fn should_checkpoint(&mut self, ctx: &PolicyContext) -> bool {
        let last = ctx.last_checkpoint_ms.unwrap_or(0);
        ctx.now_ms.saturating_sub(last) >= self.interval_ms
    }

    fn name(&self) -> &'static str {
        "wall-clock"
    }
}

/// Young–Daly policy: wall-clock interval `√(2·C·M)` with a fixed assumed
/// MTBF and the *measured* checkpoint cost from the context.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct YoungDaly {
    /// Assumed mean time between failures, milliseconds.
    pub mtbf_ms: f64,
    /// Fallback checkpoint cost before any has been observed, ms.
    pub initial_cost_ms: f64,
    /// Lower clamp on the interval (avoid re-checkpointing every step when
    /// C is tiny), ms.
    pub min_interval_ms: f64,
}

impl YoungDaly {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics on non-positive MTBF.
    pub fn new(mtbf_ms: f64, initial_cost_ms: f64) -> Self {
        assert!(mtbf_ms > 0.0, "MTBF must be positive");
        YoungDaly {
            mtbf_ms,
            initial_cost_ms: initial_cost_ms.max(0.1),
            min_interval_ms: 1.0,
        }
    }

    /// The interval currently in force given an observed cost.
    pub fn interval_ms(&self, observed_cost_ms: f64) -> f64 {
        let c = if observed_cost_ms > 0.0 {
            observed_cost_ms
        } else {
            self.initial_cost_ms
        };
        math::young_daly_interval(c, self.mtbf_ms).max(self.min_interval_ms)
    }
}

impl CheckpointPolicy for YoungDaly {
    fn should_checkpoint(&mut self, ctx: &PolicyContext) -> bool {
        let interval = self.interval_ms(ctx.observed_checkpoint_cost_ms);
        let last = ctx.last_checkpoint_ms.unwrap_or(0);
        (ctx.now_ms.saturating_sub(last) as f64) >= interval
    }

    fn name(&self) -> &'static str {
        "young-daly"
    }
}

/// Adaptive policy: Young–Daly interval with the MTBF itself estimated
/// online from observed failures (EWMA of inter-failure times).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Adaptive {
    /// Current MTBF estimate, ms.
    pub mtbf_estimate_ms: f64,
    /// EWMA factor in (0, 1]; higher = more reactive.
    pub alpha: f64,
    /// Fallback cost, ms.
    pub initial_cost_ms: f64,
    last_failure_ms: Option<u64>,
}

impl Adaptive {
    /// Creates an adaptive policy with a prior MTBF guess.
    ///
    /// # Panics
    ///
    /// Panics on invalid `alpha` or non-positive prior.
    pub fn new(prior_mtbf_ms: f64, alpha: f64) -> Self {
        assert!(prior_mtbf_ms > 0.0, "prior MTBF must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Adaptive {
            mtbf_estimate_ms: prior_mtbf_ms,
            alpha,
            initial_cost_ms: 100.0,
            last_failure_ms: None,
        }
    }

    /// Records an observed failure at `now_ms`, updating the MTBF estimate.
    pub fn record_failure(&mut self, now_ms: u64) {
        if let Some(prev) = self.last_failure_ms {
            let gap = now_ms.saturating_sub(prev) as f64;
            if gap > 0.0 {
                self.mtbf_estimate_ms =
                    (1.0 - self.alpha) * self.mtbf_estimate_ms + self.alpha * gap;
            }
        }
        self.last_failure_ms = Some(now_ms);
    }
}

impl CheckpointPolicy for Adaptive {
    fn should_checkpoint(&mut self, ctx: &PolicyContext) -> bool {
        let c = if ctx.observed_checkpoint_cost_ms > 0.0 {
            ctx.observed_checkpoint_cost_ms
        } else {
            self.initial_cost_ms
        };
        let interval = math::young_daly_interval(c, self.mtbf_estimate_ms).max(1.0);
        let last = ctx.last_checkpoint_ms.unwrap_or(0);
        (ctx.now_ms.saturating_sub(last) as f64) >= interval
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

/// Analytic checkpoint/restart models (Young 1974; Daly 2006).
pub mod math {
    /// First-order optimal checkpoint interval `τ* = √(2·C·M)`.
    ///
    /// Units are caller-chosen but must be consistent.
    pub fn young_daly_interval(checkpoint_cost: f64, mtbf: f64) -> f64 {
        (2.0 * checkpoint_cost.max(0.0) * mtbf.max(0.0)).sqrt()
    }

    /// Expected fraction of runtime spent on checkpoint overhead + rework
    /// when checkpointing every `tau` with cost `c`, restart cost `r`, MTBF
    /// `m` (first-order model):
    ///
    /// `overhead(τ) = c/τ + (τ/2 + r)/m`
    ///
    /// The first term is the write overhead, the second the expected rework
    /// plus restart per unit time.
    pub fn expected_overhead_fraction(tau: f64, c: f64, r: f64, m: f64) -> f64 {
        assert!(tau > 0.0 && m > 0.0, "tau and MTBF must be positive");
        c / tau + (tau / 2.0 + r) / m
    }

    /// Expected *useful-work* lost per failure without checkpointing: the
    /// job restarts from scratch, so on average `elapsed/2` is lost plus the
    /// full restart cost (queue re-entry).
    pub fn expected_lost_work_no_checkpoint(run_length: f64, restart_cost: f64) -> f64 {
        run_length / 2.0 + restart_cost
    }

    /// Expected useful-work lost per failure with interval-τ checkpointing:
    /// half an interval of rework plus restore + queue re-entry.
    pub fn expected_lost_work_with_checkpoint(tau: f64, restore_cost: f64) -> f64 {
        tau / 2.0 + restore_cost
    }

    /// Expected wall-clock to finish `work` units given MTBF `m`, restart
    /// cost `r`, checkpoint interval `tau` and cost `c` (0 ⇒ no
    /// checkpointing; the job must complete a full failure-free run).
    ///
    /// With checkpointing, uses the first-order overhead model. Without, it
    /// uses the classical memoryless-restart expectation
    /// `E[T] = (e^{work/m} − 1)·(m + r)` — exponential in job length, which
    /// is the motivation figure's no-checkpoint curve.
    pub fn expected_makespan(work: f64, m: f64, r: f64, tau: f64, c: f64) -> f64 {
        assert!(work >= 0.0 && m > 0.0, "work and MTBF must be valid");
        if tau <= 0.0 {
            return ((work / m).exp() - 1.0) * (m + r);
        }
        let overhead = expected_overhead_fraction(tau, c, r, m);
        work * (1.0 + overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(step: u64, now_ms: u64, last_step: Option<u64>, last_ms: Option<u64>) -> PolicyContext {
        PolicyContext {
            step,
            now_ms,
            last_checkpoint_step: last_step,
            last_checkpoint_ms: last_ms,
            observed_checkpoint_cost_ms: 50.0,
        }
    }

    #[test]
    fn every_k_fires_on_schedule() {
        let mut p = EveryKSteps::new(10);
        assert!(!p.should_checkpoint(&ctx(5, 0, None, None)));
        assert!(!p.should_checkpoint(&ctx(9, 0, None, None)));
        assert!(p.should_checkpoint(&ctx(10, 0, None, None)));
        assert!(!p.should_checkpoint(&ctx(15, 0, Some(10), None)));
        assert!(!p.should_checkpoint(&ctx(19, 0, Some(10), None)));
        assert!(p.should_checkpoint(&ctx(20, 0, Some(10), None)));
    }

    #[test]
    #[should_panic(expected = "interval must be at least one step")]
    fn every_k_zero_rejected() {
        EveryKSteps::new(0);
    }

    #[test]
    fn wall_clock_fires_on_elapsed() {
        let mut p = WallClock::new(1000);
        assert!(!p.should_checkpoint(&ctx(0, 500, None, None)));
        assert!(p.should_checkpoint(&ctx(0, 1000, None, None)));
        assert!(!p.should_checkpoint(&ctx(0, 1500, None, Some(1000))));
        assert!(p.should_checkpoint(&ctx(0, 2100, None, Some(1000))));
    }

    #[test]
    fn young_daly_interval_math() {
        // τ* = sqrt(2 * 50 * 10_000) = 1000.
        assert!((math::young_daly_interval(50.0, 10_000.0) - 1000.0).abs() < 1e-9);
        assert_eq!(math::young_daly_interval(0.0, 100.0), 0.0);
    }

    #[test]
    fn young_daly_policy_uses_observed_cost() {
        let mut p = YoungDaly::new(10_000.0, 50.0);
        // With observed cost 50 ms → interval 1000 ms.
        assert!(!p.should_checkpoint(&ctx(0, 999, None, Some(0))));
        assert!(p.should_checkpoint(&ctx(0, 1000, None, Some(0))));
        // Interval scales with cost.
        assert!(p.interval_ms(200.0) > p.interval_ms(50.0));
    }

    #[test]
    fn overhead_is_u_shaped_with_minimum_near_optimum() {
        let c = 50.0;
        let r = 500.0;
        let m = 100_000.0;
        let opt = math::young_daly_interval(c, m);
        let at_opt = math::expected_overhead_fraction(opt, c, r, m);
        for tau in [opt / 8.0, opt / 2.0, opt * 2.0, opt * 8.0] {
            assert!(
                math::expected_overhead_fraction(tau, c, r, m) > at_opt,
                "tau {tau} beat the optimum"
            );
        }
    }

    #[test]
    fn lost_work_models() {
        assert_eq!(math::expected_lost_work_no_checkpoint(1000.0, 50.0), 550.0);
        assert_eq!(math::expected_lost_work_with_checkpoint(100.0, 50.0), 100.0);
        // Checkpointing wins whenever τ << run length.
        assert!(
            math::expected_lost_work_with_checkpoint(100.0, 50.0)
                < math::expected_lost_work_no_checkpoint(1000.0, 50.0)
        );
    }

    #[test]
    fn makespan_no_checkpoint_explodes_for_long_jobs() {
        let m = 1000.0;
        let short = math::expected_makespan(100.0, m, 10.0, 0.0, 0.0);
        let long = math::expected_makespan(5000.0, m, 10.0, 0.0, 0.0);
        assert!(long / short > 50.0, "no-ckpt makespan must blow up");
        // With checkpointing the growth is ~linear.
        let short_c = math::expected_makespan(100.0, m, 10.0, 44.7, 1.0);
        let long_c = math::expected_makespan(5000.0, m, 10.0, 44.7, 1.0);
        assert!((long_c / short_c - 50.0).abs() < 1.0);
    }

    #[test]
    fn adaptive_learns_mtbf() {
        let mut p = Adaptive::new(1_000_000.0, 0.5);
        // Failures every ~10 s should drag the estimate down.
        for i in 1..=20u64 {
            p.record_failure(i * 10_000);
        }
        assert!(
            p.mtbf_estimate_ms < 100_000.0,
            "estimate {} did not adapt",
            p.mtbf_estimate_ms
        );
        assert!(p.mtbf_estimate_ms > 5_000.0);
    }

    #[test]
    fn adaptive_checkpoints_more_often_under_failures() {
        let mut calm = Adaptive::new(10_000_000.0, 0.5);
        let mut stormy = Adaptive::new(10_000_000.0, 0.5);
        for i in 1..=10u64 {
            stormy.record_failure(i * 5_000);
        }
        // With cost 50 ms: calm interval = √(2·50·10⁷) ≈ 31.6 s,
        // stormy interval ≈ √(2·50·5000) ≈ 0.7 s.
        let c = ctx(0, 10_000, None, Some(0));
        // Stormy has a tiny MTBF estimate → short interval → fires.
        assert!(stormy.should_checkpoint(&c.clone()));
        // Calm has an enormous MTBF → does not fire within ten seconds.
        assert!(!calm.should_checkpoint(&c));
    }

    #[test]
    fn policy_names() {
        assert_eq!(EveryKSteps::new(1).name(), "every-k-steps");
        assert_eq!(WallClock::new(1).name(), "wall-clock");
        assert_eq!(YoungDaly::new(1.0, 1.0).name(), "young-daly");
        assert_eq!(Adaptive::new(1.0, 0.5).name(), "adaptive");
    }
}
