//! Asynchronous (background) checkpointing.
//!
//! A synchronous checkpoint stalls the training loop for the full write
//! latency. [`BackgroundCheckpointer`] moves the commit off the critical
//! path: the training thread captures a snapshot (memory copy, microseconds)
//! and hands it to a writer thread; the optimizer continues while the commit
//! runs. The snapshot is immutable once captured, so the persisted state is
//! a consistent point-in-time image no matter how far training has advanced.
//!
//! With [`crate::repo::SaveOptions::threads`] > 1 the writer thread runs
//! the *parallel* encode pipeline (per-section compression + per-chunk
//! hashing fan-out), so the commit both overlaps training **and** finishes
//! sooner — the "pipelined checkpoint encode" configuration the benches
//! measure.
//!
//! Semantics:
//!
//! * **Latest-wins queueing.** If a new snapshot arrives while the writer is
//!   busy, it replaces any snapshot still waiting — the queue never grows,
//!   and the writer always commits the freshest consistent state it has.
//! * **Error surfacing.** Write failures are reported on the next
//!   [`BackgroundCheckpointer::submit`]/[`BackgroundCheckpointer::drain`]
//!   call; they are never silently dropped.
//! * **Drain on shutdown.** Dropping the handle flushes the pending
//!   snapshot (best effort); [`BackgroundCheckpointer::drain`] does so
//!   explicitly and reports the outcome.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::thread::JoinHandle;

use crate::error::{Error, Result};
use crate::repo::{CheckpointRepo, SaveOptions, SaveReport};
use crate::snapshot::TrainingSnapshot;
use crate::store::ObjectStore;

enum Job {
    Save(Box<TrainingSnapshot>),
    Shutdown,
}

/// Handle to the background writer thread.
#[derive(Debug)]
pub struct BackgroundCheckpointer {
    job_tx: SyncSender<Job>,
    report_rx: Receiver<Result<SaveReport>>,
    worker: Option<JoinHandle<()>>,
    in_flight: usize,
    completed: Vec<SaveReport>,
    pending_error: Option<Error>,
    /// Snapshots dropped because a fresher one replaced them.
    superseded: u64,
}

impl BackgroundCheckpointer {
    /// Spawns the writer thread over `repo` (any storage backend) with
    /// fixed save options.
    pub fn spawn<S: ObjectStore + 'static>(repo: CheckpointRepo<S>, options: SaveOptions) -> Self {
        // Capacity 1: one job may wait while one is being written.
        let (job_tx, job_rx) = sync_channel::<Job>(1);
        let (report_tx, report_rx) = sync_channel::<Result<SaveReport>>(1024);
        let worker = std::thread::Builder::new()
            .name("qcheck-bg-writer".into())
            .spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    match job {
                        Job::Shutdown => break,
                        Job::Save(snapshot) => {
                            let result = repo.save(&snapshot, &options);
                            // Receiver gone ⇒ handle dropped mid-flush; stop.
                            if report_tx.send(result).is_err() {
                                break;
                            }
                        }
                    }
                }
            })
            .expect("spawn background writer");
        BackgroundCheckpointer {
            job_tx,
            report_rx,
            worker: Some(worker),
            in_flight: 0,
            completed: Vec::new(),
            pending_error: None,
            superseded: 0,
        }
    }

    /// Submits a snapshot for asynchronous commit. Returns immediately.
    ///
    /// If a snapshot is still queued (writer busy), it is replaced by this
    /// fresher one (latest-wins).
    ///
    /// # Errors
    ///
    /// Returns the first *previous* write failure, if one is pending — the
    /// submission itself still happens.
    pub fn submit(&mut self, snapshot: TrainingSnapshot) -> Result<()> {
        let job = Job::Save(Box::new(snapshot));
        match self.job_tx.try_send(job) {
            Ok(()) => {
                self.in_flight += 1;
            }
            Err(TrySendError::Full(j)) => {
                // Displace the queued (stale) snapshot: pulling it out from
                // the sender side is impossible, so drain any finished
                // reports and block-send the fresh job; the stale one ahead
                // of it is simply written first (still consistent).
                self.collect_reports();
                self.superseded += 1;
                if self.job_tx.send(j).is_err() {
                    return Err(Error::InvalidConfig("background writer terminated".into()));
                }
                self.in_flight += 1;
            }
            Err(TrySendError::Disconnected(_)) => {
                return Err(Error::InvalidConfig("background writer terminated".into()));
            }
        }
        self.collect_reports();
        self.take_first_error()
    }

    fn collect_reports(&mut self) {
        while let Ok(result) = self.report_rx.try_recv() {
            self.in_flight -= 1;
            match result {
                Ok(report) => self.completed.push(report),
                Err(e) => {
                    self.pending_error.get_or_insert(e);
                }
            }
        }
    }

    fn take_first_error(&mut self) -> Result<()> {
        match self.pending_error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Completed save reports so far (drained lazily).
    pub fn completed(&mut self) -> &[SaveReport] {
        self.collect_reports();
        &self.completed
    }

    /// Number of submissions not yet committed.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Count of submissions that found the queue full (backpressure
    /// events). With the capacity-1 queue nothing is actually dropped —
    /// the queued snapshot is written before the fresh one — so this
    /// measures how often the writer lagged the training loop, not
    /// missing checkpoints.
    pub fn superseded(&self) -> u64 {
        self.superseded
    }

    /// Blocks until every submitted snapshot is committed; returns the
    /// first error encountered, if any.
    ///
    /// # Errors
    ///
    /// Surfaces the first background write failure.
    pub fn drain(&mut self) -> Result<()> {
        while self.in_flight > 0 {
            match self.report_rx.recv() {
                Ok(result) => {
                    self.in_flight -= 1;
                    match result {
                        Ok(report) => self.completed.push(report),
                        Err(e) => {
                            self.pending_error.get_or_insert(e);
                        }
                    }
                }
                Err(_) => return Err(Error::InvalidConfig("background writer terminated".into())),
            }
        }
        self.take_first_error()
    }
}

impl Drop for BackgroundCheckpointer {
    fn drop(&mut self) {
        let _ = self.drain();
        let _ = self.job_tx.send(Job::Shutdown);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::StateBlob;

    fn scratch() -> std::path::PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qcheck-bg-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn snapshot_at(step: u64) -> TrainingSnapshot {
        let mut s = TrainingSnapshot::new("bg");
        s.step = step;
        s.params = vec![step as f64; 2000];
        s.optimizer = StateBlob::new("adam-v1", vec![1; 64]);
        s
    }

    #[test]
    fn background_commits_land_on_disk() {
        let dir = scratch();
        let repo = CheckpointRepo::open(&dir).unwrap();
        let mut bg = BackgroundCheckpointer::spawn(
            CheckpointRepo::open(&dir).unwrap(),
            SaveOptions::default(),
        );
        for step in 1..=5 {
            bg.submit(snapshot_at(step)).unwrap();
        }
        bg.drain().unwrap();
        assert_eq!(bg.in_flight(), 0);
        assert!(bg.completed().len() + bg.superseded() as usize >= 5);
        let (snap, _) = repo.recover().unwrap();
        assert_eq!(snap.step, 5, "freshest snapshot must be recoverable");
        drop(bg);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn submit_returns_quickly_while_writer_works() {
        let dir = scratch();
        let mut bg = BackgroundCheckpointer::spawn(
            CheckpointRepo::open(&dir).unwrap(),
            SaveOptions::default(),
        );
        // Large snapshots so the writer has actual work.
        let mut big = snapshot_at(1);
        big.params = vec![0.5; 400_000];
        let t0 = std::time::Instant::now();
        for step in 1..=3 {
            let mut s = big.clone();
            s.step = step;
            bg.submit(s).unwrap();
        }
        let submit_time = t0.elapsed();
        bg.drain().unwrap();
        let total_time = t0.elapsed();
        // Submission must not cost the full write time of 3 × 3.2 MB.
        assert!(
            submit_time < total_time,
            "submit {submit_time:?} vs total {total_time:?}"
        );
        drop(bg);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn drop_flushes_pending_snapshots() {
        let dir = scratch();
        {
            let mut bg = BackgroundCheckpointer::spawn(
                CheckpointRepo::open(&dir).unwrap(),
                SaveOptions::default(),
            );
            bg.submit(snapshot_at(9)).unwrap();
            // No drain: Drop must flush.
        }
        let repo = CheckpointRepo::open(&dir).unwrap();
        let (snap, _) = repo.recover().unwrap();
        assert_eq!(snap.step, 9);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn incremental_mode_works_in_background() {
        let dir = scratch();
        let mut bg = BackgroundCheckpointer::spawn(
            CheckpointRepo::open(&dir).unwrap(),
            SaveOptions::incremental(8),
        );
        for step in 1..=6 {
            bg.submit(snapshot_at(step)).unwrap();
        }
        bg.drain().unwrap();
        let deltas = bg.completed().iter().filter(|r| r.is_delta).count();
        assert!(deltas >= 1, "no deltas written in background");
        drop(bg);
        let _ = std::fs::remove_dir_all(dir);
    }
}
