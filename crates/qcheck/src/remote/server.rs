//! The `qckptd` daemon: a multi-tenant checkpoint object-store server.
//!
//! ## Layout
//!
//! The daemon roots every *namespace* (one training run / one logical
//! repository) in its own directory:
//!
//! ```text
//! <root>/GENERATION     fencing epoch (bumped + persisted on promote)
//! <root>/ns/<namespace>/
//!   STORE            sticky backend marker (loose | pack)
//!   objects/ | packs/  the namespace's object store (reuses the local
//!                      backends: loose fan-out dirs or pack v3 files)
//!   tmp/             server-side staging (disposable)
//!   meta/            named metadata blobs (manifests/…, LATEST)
//!   OPLOG            append-only log of committed mutations (repl)
//! ```
//!
//! Reusing [`StoreBackend`] for per-namespace storage means the daemon
//! inherits the local backends' whole crash-safety story: staged writes,
//! atomic renames, CRC-framed packs, mark-and-sweep GC. A client dying
//! mid-`put_batch` never reaches the store at all — the request frame
//! never completes, so nothing is staged, and whatever debris an earlier
//! crash left in `tmp/` is disposable by construction.
//!
//! ## Roles, generations, leases (protocol v2)
//!
//! A daemon is either a **primary** (accepts writes, appends each
//! committed metadata mutation to the namespace's oplog) or a
//! **secondary** ([`ServerConfig::replicate`] — tails a primary via
//! `qcheck::remote::repl` and refuses client writes with a typed
//! not-primary error). Promotion bumps and persists the **generation**;
//! a client that has seen the new generation carries it in its Hello,
//! and the demoted primary — whose generation is lower — must refuse
//! the handshake, which is the write fence.
//!
//! **Writer leases** replace the advisory per-directory LOCK file for
//! shared stores: a writer requests the namespace's lease in its Hello,
//! the lease renews on traffic and expires after
//! [`ServerConfig::lease_ttl`], and a second writer is refused with a
//! typed lease-held error instead of silently interleaving saves.
//!
//! When an **auth token** is configured, privileged operations
//! (`SHUTDOWN`, destructive `SWEEP`, `PROMOTE`, replication streams)
//! require it; data-plane operations stay open so existing tenants keep
//! working. `SHUTDOWN` additionally stays loopback-only, token or not.
//!
//! ## Threading
//!
//! One handler runs per connection. The standalone `qckptd` daemon
//! draws handlers from the shared [`qpar`] worker pool
//! ([`ServerConfig::handlers_on_pool`] — its process runs no competing
//! compute; encode parallelism runs client-side), falling back to
//! dedicated threads when the pool is disabled or saturated so
//! accepting never blocks behind slow peers. Embedded (in-process)
//! servers use dedicated threads unconditionally: they share the pool
//! with the trainer's own fan-outs, and a handler parked on a pool
//! worker there could deadlock the compute that feeds it.
//!
//! Namespace state is created lazily on first use and shared between
//! connections through a mutex-guarded map; the [`StoreBackend`]s
//! themselves are internally synchronized, so two clients of one
//! namespace serialize only on the store's own locks.

use std::collections::BTreeMap;
use std::fs;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::chunk::ChunkRef;
use crate::error::{Error, Result};
use crate::store::{BatchPutReport, ObjectStore, StagedChunk, StoreBackend, StoreKind, StoreStats};

use super::proto::{
    read_frame, valid_meta_name, valid_namespace, write_frame, ErrCode, LeaseGrant, OplogOp,
    Request, Response, HELLO_FLAG_REPL, HELLO_FLAG_WANT_LEASE, PROTO_VERSION, PROTO_VERSION_MIN,
    ROLE_PRIMARY, ROLE_SECONDARY, STREAM_SEGMENT_BYTES,
};
use super::repl::{self, Oplog, ReplStop, ReplicateConfig, SyncReport};

/// File (under the daemon root) persisting the generation across
/// restarts — a promoted daemon must never come back demoted.
const GENERATION_FILE: &str = "GENERATION";

/// Default writer-lease time-to-live.
pub const DEFAULT_LEASE_TTL: Duration = Duration::from_secs(30);

/// Configuration for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Directory holding every namespace.
    pub root: PathBuf,
    /// Backend layout for *new* namespaces (existing ones keep their
    /// sticky marker). Pack is the default: a whole `put_batch` commits
    /// with one rename, which is the point of a checkpoint daemon.
    pub store_kind: StoreKind,
    /// Overrides the pack GC rewrite threshold for every namespace
    /// (`None` = the `QCHECK_GC_DEAD_FRACTION` default). The
    /// backend-equivalence suites pin `0.0` (eager) here.
    pub gc_dead_fraction: Option<f64>,
    /// Fault injection: close each connection after this many request
    /// frames (handshake excluded). Exercises the client's
    /// reconnect-and-replay path; `None` in production.
    pub drop_after_requests: Option<u64>,
    /// Draw connection handlers from the shared [`qpar`] worker pool
    /// (the standalone `qckptd` daemon turns this on — its process runs
    /// no competing compute). Leave off when the server is embedded in
    /// a process that also fans compute out through the pool: a handler
    /// parked on a pool worker while that process waits for pool
    /// compute is a deadlock. Off, every connection gets a dedicated
    /// thread.
    pub handlers_on_pool: bool,
    /// Auth token required for privileged operations (shutdown,
    /// destructive sweep, promote, replication streams). `None` keeps
    /// the v1 behavior: loopback is the only control boundary.
    pub auth_token: Option<String>,
    /// Writer-lease time-to-live; leases renew on every request from
    /// their holder.
    pub lease_ttl: Duration,
    /// Run as a replication secondary tailing this primary. The daemon
    /// refuses client writes until promoted.
    pub replicate: Option<ReplicateConfig>,
}

impl ServerConfig {
    /// Default configuration rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ServerConfig {
            root: root.into(),
            store_kind: StoreKind::Pack,
            gc_dead_fraction: None,
            drop_after_requests: None,
            handlers_on_pool: false,
            auth_token: None,
            lease_ttl: DEFAULT_LEASE_TTL,
            replicate: None,
        }
    }
}

/// One namespace's storage: object store + metadata directory + oplog.
#[derive(Debug)]
pub(crate) struct Namespace {
    pub(crate) store: StoreBackend,
    root: PathBuf,
    meta_dir: PathBuf,
    /// Staging counter for atomic metadata publishes.
    meta_seq: AtomicU64,
    /// Append-only log of committed mutations (the unit of replication).
    pub(crate) oplog: Oplog,
}

impl Namespace {
    fn open(ns_root: &Path, kind: StoreKind, gc_dead_fraction: Option<f64>) -> Result<Namespace> {
        fs::create_dir_all(ns_root)
            .map_err(|e| Error::io(format!("creating {}", ns_root.display()), e))?;
        let mut store = StoreBackend::open_sticky(ns_root, kind)?;
        if let Some(f) = gc_dead_fraction {
            store.set_gc_dead_fraction(f);
        }
        let meta_dir = ns_root.join("meta");
        fs::create_dir_all(&meta_dir)
            .map_err(|e| Error::io(format!("creating {}", meta_dir.display()), e))?;
        let oplog = Oplog::open(ns_root)?;
        Ok(Namespace {
            store,
            root: ns_root.to_path_buf(),
            meta_dir,
            meta_seq: AtomicU64::new(0),
            oplog,
        })
    }

    fn meta_path(&self, name: &str) -> PathBuf {
        // `name` passed the grammar check: relative, no `..` components.
        self.meta_dir.join(name)
    }

    /// Atomically publishes one metadata blob (stage in `tmp/`, rename).
    pub(crate) fn meta_put(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let target = self.meta_path(name);
        if let Some(parent) = target.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| Error::io(format!("creating {}", parent.display()), e))?;
        }
        let tmp_dir = self.root.join("tmp");
        fs::create_dir_all(&tmp_dir)
            .map_err(|e| Error::io(format!("creating {}", tmp_dir.display()), e))?;
        let tmp = tmp_dir.join(format!(
            "meta-{}-{}",
            std::process::id(),
            self.meta_seq.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, bytes).map_err(|e| Error::io(format!("writing {}", tmp.display()), e))?;
        fs::rename(&tmp, &target)
            .map_err(|e| Error::io(format!("renaming into {}", target.display()), e))?;
        Ok(())
    }

    fn meta_get(&self, name: &str) -> Result<Option<Vec<u8>>> {
        match fs::read(self.meta_path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(Error::io(format!("reading meta {name}"), e)),
        }
    }

    fn meta_list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut out = Vec::new();
        let mut stack = vec![(self.meta_dir.clone(), String::new())];
        while let Some((dir, rel)) = stack.pop() {
            let entries = match fs::read_dir(&dir) {
                Ok(entries) => entries,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(Error::io(format!("listing {}", dir.display()), e)),
            };
            for entry in entries {
                let entry = entry.map_err(|e| Error::io("walking meta", e))?;
                let name = entry.file_name().to_string_lossy().to_string();
                let child_rel = if rel.is_empty() {
                    name
                } else {
                    format!("{rel}/{name}")
                };
                if entry.path().is_dir() {
                    stack.push((entry.path(), child_rel));
                } else if child_rel.starts_with(prefix) {
                    out.push(child_rel);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    pub(crate) fn meta_delete(&self, name: &str) -> Result<()> {
        match fs::remove_file(self.meta_path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Error::io(format!("deleting meta {name}"), e)),
        }
    }
}

/// A granted writer lease.
#[derive(Debug)]
struct Lease {
    token: u64,
    expires: Instant,
    holder: String,
}

/// What a secondary has learned about (and reported to) its primary.
#[derive(Debug, Default)]
struct ReplProgress {
    /// On a secondary: the primary's generation as of the last poll.
    primary_generation: u64,
    /// On a secondary: the primary's total oplog length at last poll.
    primary_total: u64,
    /// On a secondary: entries applied locally as of the last pass.
    applied_total: u64,
    /// On a primary: per-namespace applied offsets acked by a tailer.
    acked: BTreeMap<String, u64>,
}

/// Connections accepted since process start (all in-process daemons
/// share one registry; single-daemon deployments read this as "this
/// daemon's total").
static OBS_CONNECTIONS: qobs::LazyCounter = qobs::LazyCounter::new("qckptd_connections_total");
/// Connections currently open.
static OBS_INFLIGHT: qobs::LazyGauge = qobs::LazyGauge::new("qckptd_inflight_connections");
/// Frame bytes received from clients (payload + frame header/CRC).
static OBS_BYTES_IN: qobs::LazyCounter = qobs::LazyCounter::new("qckptd_bytes_in_total");
/// Frame bytes sent to clients (payload + frame header/CRC).
static OBS_BYTES_OUT: qobs::LazyCounter = qobs::LazyCounter::new("qckptd_bytes_out_total");
/// Fresh writer-lease grants (renewals not counted).
static OBS_LEASE_GRANTS: qobs::LazyCounter = qobs::LazyCounter::new("qckptd_lease_grants_total");
/// Leases that were found expired and removed.
static OBS_LEASE_EXPIRIES: qobs::LazyCounter =
    qobs::LazyCounter::new("qckptd_lease_expiries_total");
/// Replication lag in oplog entries, refreshed on STATUS / METRICS.
static OBS_REPL_LAG: qobs::LazyGauge = qobs::LazyGauge::new("qckptd_repl_lag_entries");
/// Seconds since this daemon started, refreshed on STATUS / METRICS.
static OBS_UPTIME: qobs::LazyGauge = qobs::LazyGauge::new("qckptd_uptime_seconds");

/// Per-frame length on the wire: 4-byte length prefix + 4-byte CRC32.
const FRAME_OVERHEAD: u64 = 8;

/// Bumps the per-namespace, per-op request counter
/// (`qckptd_requests_total{ns=...,op=...}`).
fn count_request(ns: &str, op: &'static str) {
    if qobs::enabled() {
        qobs::counter(&qobs::labeled(
            "qckptd_requests_total",
            &[("ns", ns), ("op", op)],
        ))
        .inc();
    }
}

/// Stable op label for the request counter.
fn op_name(req: &Request) -> &'static str {
    match req {
        Request::Hello { .. } => "hello",
        Request::Ping => "ping",
        Request::PutBatch { .. } => "put_batch",
        Request::Get { .. } => "get",
        Request::Contains { .. } => "contains",
        Request::List => "list",
        Request::Sweep { .. } => "sweep",
        Request::Stats => "stats",
        Request::ClearStaging => "clear_staging",
        Request::MetaPut { .. } => "meta_put",
        Request::MetaGet { .. } => "meta_get",
        Request::MetaList { .. } => "meta_list",
        Request::MetaDelete { .. } => "meta_delete",
        Request::Status => "status",
        Request::Shutdown => "shutdown",
        Request::Corrupt { .. } => "corrupt",
        Request::ReplStatus => "repl_status",
        Request::ReplFetch { .. } => "repl_fetch",
        Request::ReplChunks { .. } => "repl_chunks",
        Request::ReplAck { .. } => "repl_ack",
        Request::Promote => "promote",
        Request::LeaseRelease => "lease_release",
        Request::GetStream { .. } => "get_stream",
        Request::PutStreamBegin { .. } => "put_stream_begin",
        Request::PutStreamData(_) => "put_stream_data",
        Request::PutStreamEnd => "put_stream_end",
        Request::ReplChunkStream { .. } => "repl_chunk_stream",
        Request::Metrics => "metrics",
    }
}

/// Shared daemon state.
#[derive(Debug)]
pub(crate) struct Shared {
    config: ServerConfig,
    namespaces: Mutex<BTreeMap<String, Arc<Namespace>>>,
    shutdown: AtomicBool,
    /// Connection-id source for the socks map; the operator-visible
    /// total lives in the qobs registry (`qckptd_connections_total`).
    conn_seq: AtomicU64,
    active: AtomicU64,
    /// Process start, for the uptime gauge.
    started: Instant,
    /// Duplicated handles of every live connection's socket plus a
    /// "currently serving a request" flag, keyed by connection id and
    /// removed by the handler on exit. The graceful-drain path closes
    /// idle sockets (handlers parked in `read_frame`) immediately and
    /// gives busy ones a bounded grace to finish their request.
    socks: Mutex<BTreeMap<u64, (TcpStream, Arc<AtomicBool>)>>,
    /// [`ROLE_PRIMARY`] or [`ROLE_SECONDARY`]; flips on promote.
    role: AtomicU8,
    /// Fencing epoch, persisted in `<root>/GENERATION`.
    generation: AtomicU64,
    /// Per-namespace writer leases.
    leases: Mutex<BTreeMap<String, Lease>>,
    lease_counter: AtomicU64,
    repl: Mutex<ReplProgress>,
}

impl Shared {
    pub(crate) fn namespace(&self, name: &str) -> Result<Arc<Namespace>> {
        let mut map = self.namespaces.lock().expect("namespace map poisoned");
        if let Some(ns) = map.get(name) {
            return Ok(Arc::clone(ns));
        }
        let ns_root = self.config.root.join("ns").join(name);
        let ns = Arc::new(Namespace::open(
            &ns_root,
            self.config.store_kind,
            self.config.gc_dead_fraction,
        )?);
        map.insert(name.to_string(), Arc::clone(&ns));
        Ok(ns)
    }

    fn namespace_count(&self) -> u64 {
        // Count what is on disk, not just what this process has touched.
        fs::read_dir(self.config.root.join("ns"))
            .map(|entries| entries.count() as u64)
            .unwrap_or(0)
    }

    /// Namespace names materialized on disk (sorted).
    fn namespace_names(&self) -> Vec<String> {
        let mut names: Vec<String> = fs::read_dir(self.config.root.join("ns"))
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .map(|e| e.file_name().to_string_lossy().to_string())
                    .filter(|n| valid_namespace(n))
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    }

    /// `(namespace, oplog length)` for every namespace on disk.
    fn oplog_lengths(&self) -> Result<Vec<(String, u64)>> {
        self.namespace_names()
            .into_iter()
            .map(|n| {
                let len = self.namespace(&n)?.oplog.len();
                Ok((n, len))
            })
            .collect()
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    pub(crate) fn role(&self) -> u8 {
        self.role.load(Ordering::Acquire)
    }

    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Secondary bookkeeping: what the primary looked like at last poll.
    pub(crate) fn note_primary(&self, generation: u64, total: u64) {
        let mut repl = self.repl.lock().expect("repl state poisoned");
        repl.primary_generation = generation;
        repl.primary_total = total;
    }

    /// Secondary bookkeeping: entries applied locally after a pass.
    pub(crate) fn note_applied(&self, total: u64) {
        self.repl.lock().expect("repl state poisoned").applied_total = total;
    }

    /// Replication lag in entries, per the [`Response::Status`] contract.
    fn repl_lag(&self, lengths: &[(String, u64)]) -> u64 {
        let local_total: u64 = lengths.iter().map(|(_, l)| l).sum();
        let repl = self.repl.lock().expect("repl state poisoned");
        if self.role() == ROLE_SECONDARY {
            repl.primary_total
                .saturating_sub(repl.applied_total.max(local_total))
        } else if repl.acked.is_empty() {
            0
        } else {
            lengths
                .iter()
                .map(|(n, l)| l.saturating_sub(*repl.acked.get(n).unwrap_or(&0)))
                .sum()
        }
    }

    /// Promotes this daemon to primary under a bumped, persisted
    /// generation (strictly above anything it has seen).
    pub(crate) fn promote(&self) -> Result<u64> {
        let seen = self
            .repl
            .lock()
            .expect("repl state poisoned")
            .primary_generation;
        let new_gen = self.generation().max(seen) + 1;
        persist_generation(&self.config.root, new_gen)?;
        self.generation.store(new_gen, Ordering::Release);
        self.role.store(ROLE_PRIMARY, Ordering::Release);
        Ok(new_gen)
    }

    /// Grants (or renews) the namespace's writer lease.
    fn acquire_lease(&self, ns: &str, presented: u64, holder: &str) -> Result<LeaseGrant> {
        let ttl = self.config.lease_ttl;
        let now = Instant::now();
        let mut leases = self.leases.lock().expect("lease table poisoned");
        // Reclaim a TTL-expired lease first so every expiry is counted
        // exactly once, whether a write with the stale token noticed it
        // (check_lease) or a new writer claimed the namespace here.
        if leases.get(ns).is_some_and(|l| l.expires <= now) {
            leases.remove(ns);
            OBS_LEASE_EXPIRIES.inc();
        }
        match leases.get_mut(ns) {
            Some(l) if l.expires > now && l.token != presented => Err(Error::LeaseHeld(format!(
                "namespace {ns:?} writer lease is held by {}",
                l.holder
            ))),
            Some(l) if l.expires > now => {
                // Reconnecting holder re-presented its token: renew.
                l.expires = now + ttl;
                l.holder = holder.to_string();
                Ok(LeaseGrant {
                    token: l.token,
                    ttl_ms: ttl.as_millis() as u64,
                })
            }
            _ => {
                OBS_LEASE_GRANTS.inc();
                let token = self.lease_counter.fetch_add(1, Ordering::Relaxed) + 1;
                leases.insert(
                    ns.to_string(),
                    Lease {
                        token,
                        expires: now + ttl,
                        holder: holder.to_string(),
                    },
                );
                Ok(LeaseGrant {
                    token,
                    ttl_ms: ttl.as_millis() as u64,
                })
            }
        }
    }

    /// Write gate: refuses when a *different* live writer holds the
    /// namespace's lease; renews the lease when the caller holds it.
    /// No lease (or an expired one) leaves writes open — leases are the
    /// opt-in exclusivity a [`crate::repo::CheckpointRepo`] requests.
    fn check_lease(&self, ns: &str, token: u64) -> Result<()> {
        let mut leases = self.leases.lock().expect("lease table poisoned");
        if let Some(l) = leases.get_mut(ns) {
            if l.expires <= Instant::now() {
                leases.remove(ns);
                OBS_LEASE_EXPIRIES.inc();
            } else if l.token != token {
                return Err(Error::LeaseHeld(format!(
                    "namespace {ns:?} writer lease is held by {}",
                    l.holder
                )));
            } else {
                l.expires = Instant::now() + self.config.lease_ttl;
            }
        }
        Ok(())
    }

    /// Renews the lease on any traffic from its holder.
    fn renew_lease(&self, ns: &str, token: u64) {
        if token == 0 {
            return;
        }
        let mut leases = self.leases.lock().expect("lease table poisoned");
        if let Some(l) = leases.get_mut(ns) {
            if l.token == token && l.expires > Instant::now() {
                l.expires = Instant::now() + self.config.lease_ttl;
            }
        }
    }

    /// Releases the lease if `token` holds it (idempotent).
    fn release_lease(&self, ns: &str, token: u64) {
        if token == 0 {
            return;
        }
        let mut leases = self.leases.lock().expect("lease table poisoned");
        if leases.get(ns).is_some_and(|l| l.token == token) {
            leases.remove(ns);
        }
    }
}

fn load_generation(root: &Path) -> u64 {
    fs::read_to_string(root.join(GENERATION_FILE))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

fn persist_generation(root: &Path, generation: u64) -> Result<()> {
    let tmp = root.join(format!("{GENERATION_FILE}.tmp-{}", std::process::id()));
    fs::write(&tmp, format!("{generation}\n"))
        .map_err(|e| Error::io(format!("writing {}", tmp.display()), e))?;
    fs::rename(&tmp, root.join(GENERATION_FILE))
        .map_err(|e| Error::io("publishing generation", e))?;
    Ok(())
}

/// A bound (but not yet serving) checkpoint daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the daemon to `addr` (use port 0 for an ephemeral port) and
    /// creates the storage root.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound or the root cannot be
    /// created.
    pub fn bind(addr: &str, config: ServerConfig) -> Result<Server> {
        fs::create_dir_all(config.root.join("ns"))
            .map_err(|e| Error::io(format!("creating {}", config.root.display()), e))?;
        let listener =
            TcpListener::bind(addr).map_err(|e| Error::io(format!("binding {addr}"), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::io("resolving bound address", e))?;
        let role = if config.replicate.is_some() {
            ROLE_SECONDARY
        } else {
            ROLE_PRIMARY
        };
        let generation = load_generation(&config.root);
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                config,
                namespaces: Mutex::new(BTreeMap::new()),
                shutdown: AtomicBool::new(false),
                conn_seq: AtomicU64::new(0),
                active: AtomicU64::new(0),
                started: Instant::now(),
                socks: Mutex::new(BTreeMap::new()),
                role: AtomicU8::new(role),
                generation: AtomicU64::new(generation),
                leases: Mutex::new(BTreeMap::new()),
                lease_counter: AtomicU64::new(0),
                repl: Mutex::new(ReplProgress::default()),
            }),
        })
    }

    /// The bound address (the real port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves connections until a client sends `Shutdown`. Each
    /// connection is handled on a [`qpar`] pool worker when one is
    /// available, else on a dedicated thread. A secondary additionally
    /// runs its tailer thread here (unless configured manual).
    ///
    /// # Errors
    ///
    /// Fails only on accept-loop errors; per-connection failures are
    /// contained to their connection.
    pub fn serve(self) -> Result<()> {
        let tailer = match &self.shared.config.replicate {
            Some(cfg) if !cfg.manual => {
                let shared = Arc::clone(&self.shared);
                let cfg = cfg.clone();
                Some(std::thread::spawn(move || repl::run_tailer(shared, cfg)))
            }
            _ => None,
        };
        // Tolerance for transient accept failures (fd exhaustion under
        // connection pressure, EINTR): back off briefly and keep
        // serving — existing connections closing is exactly what clears
        // the condition. Only a long unbroken error streak (a genuinely
        // dead listener) is fatal.
        const MAX_CONSECUTIVE_ACCEPT_ERRORS: u32 = 100;
        let mut accept_errors = 0u32;
        for stream in self.listener.incoming() {
            if self.shared.is_shutdown() {
                break;
            }
            let stream = match stream {
                Ok(s) => {
                    accept_errors = 0;
                    s
                }
                Err(e) => {
                    accept_errors += 1;
                    if accept_errors >= MAX_CONSECUTIVE_ACCEPT_ERRORS {
                        return Err(Error::io("accepting connection", e));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    continue;
                }
            };
            let shared = Arc::clone(&self.shared);
            let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
            OBS_CONNECTIONS.inc();
            OBS_INFLIGHT.add(1);
            let busy = shared.active.fetch_add(1, Ordering::Relaxed) as usize;
            let serving = Arc::new(AtomicBool::new(false));
            if let Ok(dup) = stream.try_clone() {
                shared
                    .socks
                    .lock()
                    .expect("socks poisoned")
                    .insert(conn_id, (dup, Arc::clone(&serving)));
            }
            let on_pool = self.shared.config.handlers_on_pool;
            let job: Box<dyn FnOnce() + Send> = Box::new(move || {
                let _ = handle_connection(&shared, stream, &serving);
                shared
                    .socks
                    .lock()
                    .expect("socks poisoned")
                    .remove(&conn_id);
                shared.active.fetch_sub(1, Ordering::Relaxed);
                OBS_INFLIGHT.sub(1);
            });
            match on_pool {
                // Pool unavailable or saturated: a dedicated thread
                // preserves the one-handler-per-connection contract.
                true => {
                    if let Err(job) = qpar::pool::spawn_detached(busy, job) {
                        std::thread::spawn(job);
                    }
                }
                false => {
                    std::thread::spawn(job);
                }
            }
        }
        // Graceful drain: close *idle* connections (handlers parked in
        // `read_frame` between requests) immediately, let handlers that
        // are mid-request finish and send their response, and re-sweep
        // until everyone is gone. The overall deadline bounds exit even
        // against a peer whose request never completes.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            {
                let socks = self.shared.socks.lock().expect("socks poisoned");
                let force = std::time::Instant::now() >= deadline;
                for (sock, serving) in socks.values() {
                    if force || !serving.load(Ordering::Acquire) {
                        let _ = sock.shutdown(std::net::Shutdown::Both);
                    }
                }
            }
            if self.shared.active.load(Ordering::Acquire) == 0
                || std::time::Instant::now() >= deadline
            {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        // The tailer polls the shutdown flag every few ms; join is
        // prompt once the flag is up.
        if let Some(t) = tailer {
            let _ = t.join();
        }
        Ok(())
    }

    /// Spawns the accept loop on a background thread and returns a
    /// handle — the in-process form used by tests, benches and examples.
    pub fn spawn(self) -> DaemonHandle {
        let addr = self.addr;
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.serve());
        DaemonHandle {
            addr,
            shared,
            thread: Some(thread),
        }
    }
}

/// Handle to an in-process daemon; shuts it down on drop.
#[derive(Debug)]
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<Result<()>>>,
}

impl DaemonHandle {
    /// The daemon's address, as a `host:port` string for
    /// [`super::RemoteStore::connect`].
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// The daemon's current role byte.
    pub fn role(&self) -> u8 {
        self.shared.role()
    }

    /// The daemon's current generation.
    pub fn generation(&self) -> u64 {
        self.shared.generation()
    }

    /// Promotes this daemon to primary in-process (the test/embedded
    /// form of `qckptd promote`); returns the new generation.
    ///
    /// # Errors
    ///
    /// Fails when the generation cannot be persisted.
    pub fn promote(&self) -> Result<u64> {
        self.shared.promote()
    }

    /// Runs one replication pass against the configured primary,
    /// optionally stopping early at a crash-drill point. Only valid on
    /// a daemon configured with [`ServerConfig::replicate`]; pairs with
    /// `manual: true`, where no background tailer competes.
    ///
    /// # Errors
    ///
    /// Fails when this daemon is not a secondary or the primary is
    /// unreachable.
    pub fn repl_sync(&self, stop: Option<ReplStop>) -> Result<SyncReport> {
        let cfg = self.shared.config.replicate.clone().ok_or_else(|| {
            Error::InvalidConfig("daemon is not configured as a replication secondary".into())
        })?;
        let mut client = repl::ReplClient::connect(&cfg.primary_addr, cfg.auth_token.as_deref())?;
        repl::sync_once(&self.shared, &mut client, stop)
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Spawns an in-process daemon on an ephemeral localhost port — the
/// one-liner for tests and examples. `gc_dead_fraction` is pinned to
/// `0.0` (eager GC) so remote repositories behave byte-identically to
/// the local backends' logical-equivalence contract.
///
/// # Errors
///
/// As [`Server::bind`].
pub fn spawn_daemon(root: impl Into<PathBuf>, kind: StoreKind) -> Result<DaemonHandle> {
    let mut config = ServerConfig::new(root);
    config.store_kind = kind;
    config.gc_dead_fraction = Some(0.0);
    Ok(Server::bind("127.0.0.1:0", config)?.spawn())
}

/// Spawns an in-process *secondary* tailing `primary_addr`, on an
/// ephemeral localhost port.
///
/// # Errors
///
/// As [`Server::bind`].
pub fn spawn_secondary(
    root: impl Into<PathBuf>,
    kind: StoreKind,
    primary_addr: &str,
) -> Result<DaemonHandle> {
    let mut config = ServerConfig::new(root);
    config.store_kind = kind;
    config.gc_dead_fraction = Some(0.0);
    config.replicate = Some(ReplicateConfig::new(primary_addr));
    Ok(Server::bind("127.0.0.1:0", config)?.spawn())
}

/// Per-connection facts established by the handshake.
struct ConnCtx {
    namespace: String,
    peer_is_loopback: bool,
    /// The connection presented the configured auth token (or, with no
    /// token configured, comes from loopback).
    privileged: bool,
    /// The connection is a replication stream (`HELLO_FLAG_REPL`).
    is_repl: bool,
    /// Writer-lease token held by this connection (0 = none).
    lease_token: u64,
    /// Negotiated protocol version (the client's, echoed back; v2
    /// clients never see stream frames).
    proto_version: u32,
}

/// Validates a v2/v3 Hello and produces the connection context + reply.
fn handshake(
    shared: &Shared,
    hello: Request,
    peer_is_loopback: bool,
    peer: &str,
) -> Result<(ConnCtx, Response)> {
    let Request::Hello {
        version,
        namespace,
        auth,
        flags,
        lease_token,
        min_generation,
    } = hello
    else {
        return Err(Error::protocol(
            "handshake",
            "first frame must be a versioned Hello",
        ));
    };
    if !(PROTO_VERSION_MIN..=PROTO_VERSION).contains(&version) {
        let hint = if version < PROTO_VERSION_MIN {
            "; v2 added auth, writer leases and replication — upgrade the client"
        } else {
            ""
        };
        return Err(Error::InvalidConfig(format!(
            "unsupported protocol version {version} \
             (server speaks {PROTO_VERSION_MIN} through {PROTO_VERSION}{hint})"
        )));
    }
    if !valid_namespace(&namespace) {
        return Err(Error::InvalidConfig(format!(
            "invalid namespace {namespace:?}"
        )));
    }
    // Auth: a wrong token is refused outright; an absent token leaves
    // the connection unprivileged but serviceable (data-plane ops stay
    // open — the token gates control-plane operations only).
    let privileged = match &shared.config.auth_token {
        Some(token) => {
            if !auth.is_empty() && auth != *token {
                return Err(Error::Unauthorized("auth token does not match".into()));
            }
            auth == *token
        }
        None => peer_is_loopback,
    };
    // Generation fencing: a client that has already talked to a newer
    // primary proves this daemon demoted; it must refuse writes *and*
    // reads (reads could serve a stale LATEST).
    let generation = shared.generation();
    if min_generation > generation {
        return Err(Error::StaleGeneration(format!(
            "client has observed generation {min_generation}; this daemon is at {generation} \
             (demoted primary — re-point at the promoted peer)"
        )));
    }
    let is_repl = flags & HELLO_FLAG_REPL != 0;
    if is_repl && shared.config.auth_token.is_some() && !privileged {
        return Err(Error::Unauthorized(
            "replication streams require the daemon's auth token".into(),
        ));
    }
    let lease = if flags & HELLO_FLAG_WANT_LEASE != 0 {
        if shared.role() != ROLE_PRIMARY {
            return Err(Error::NotPrimary(
                "writer leases are only granted by the primary".into(),
            ));
        }
        Some(shared.acquire_lease(&namespace, lease_token, peer)?)
    } else {
        None
    };
    let ctx = ConnCtx {
        namespace,
        peer_is_loopback,
        privileged,
        is_repl,
        lease_token: lease.map(|g| g.token).unwrap_or(0),
        proto_version: version,
    };
    // Echo the *client's* version: the connection speaks the lower
    // dialect, and a v2 client sees exactly the v2 handshake.
    let reply = Response::HelloOk {
        version,
        role: shared.role(),
        generation,
        lease,
    };
    Ok((ctx, reply))
}

/// Runs one connection to completion: handshake, then a request loop.
fn handle_connection(shared: &Shared, stream: TcpStream, serving: &AtomicBool) -> Result<()> {
    // Daemon-control boundary: with no auth token configured, the peer
    // address is the only signal we have — process-control operations
    // (Shutdown, Promote) are honored from loopback peers only, so a
    // remote tenant of a LAN-exposed daemon cannot stop everyone else's
    // checkpoint store. Shutdown stays loopback-only even *with* a
    // token: stopping the daemon is a host-level act.
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown-peer".into());
    let peer_is_loopback = stream
        .peer_addr()
        .map(|a| a.ip().is_loopback())
        .unwrap_or(false);
    stream
        .set_nodelay(true)
        .map_err(|e| Error::io("setting TCP_NODELAY", e))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| Error::io("cloning stream", e))?,
    );
    let mut writer = BufWriter::new(stream);

    // --- handshake ---
    let hello = read_frame(&mut reader)?;
    OBS_BYTES_IN.add(hello.len() as u64 + FRAME_OVERHEAD);
    let mut ctx = match Request::decode(&hello)
        .and_then(|req| handshake(shared, req, peer_is_loopback, &peer))
    {
        Ok((ctx, reply)) => {
            count_request(&ctx.namespace, "hello");
            send(&mut writer, &reply)?;
            ctx
        }
        Err(e) => {
            let (code, message) = ErrCode::classify(&e);
            send(
                &mut writer,
                &Response::Err {
                    code: code as u8,
                    message,
                },
            )?;
            return Ok(());
        }
    };

    // --- request loop ---
    let mut served = 0u64;
    loop {
        let body = match read_frame(&mut reader) {
            Ok(body) => body,
            // Peer closed (or broke) the connection: normal end of life.
            Err(_) => return Ok(()),
        };
        OBS_BYTES_IN.add(body.len() as u64 + FRAME_OVERHEAD);
        // Mark the connection busy for the graceful-drain sweep: a
        // shutdown arriving now lets this request finish and its
        // response reach the client before the socket is closed.
        serving.store(true, Ordering::Release);
        served += 1;
        let req = match Request::decode(&body) {
            Ok(req) => req,
            Err(e) => {
                let (code, message) = ErrCode::classify(&e);
                let sent = send(
                    &mut writer,
                    &Response::Err {
                        code: code as u8,
                        message,
                    },
                );
                serving.store(false, Ordering::Release);
                sent?;
                drop_budget(shared, served)?;
                continue;
            }
        };
        count_request(&ctx.namespace, op_name(&req));
        // Streaming operations (v3) drive the socket themselves — one
        // request fans out into (GET) or is fed by (PUT) many segment
        // frames — so they bypass the one-response path below.
        if matches!(
            req,
            Request::GetStream { .. }
                | Request::PutStreamBegin { .. }
                | Request::ReplChunkStream { .. }
        ) {
            let done = handle_stream(shared, &mut ctx, &mut reader, &mut writer, req);
            serving.store(false, Ordering::Release);
            done?;
            drop_budget(shared, served)?;
            continue;
        }
        let is_shutdown = matches!(req, Request::Shutdown);
        let response = apply_request(shared, &mut ctx, req);
        let ok = !matches!(response, Response::Err { .. });
        let sent = send(&mut writer, &response);
        serving.store(false, Ordering::Release);
        sent?;
        if is_shutdown && ok {
            shared.shutdown.store(true, Ordering::Release);
            // Unblock the accept loop (the accepted socket's local
            // address is the listening address) so `serve` observes
            // the flag.
            if let Ok(addr) = writer.get_ref().local_addr() {
                let _ = TcpStream::connect(addr);
            }
            return Ok(());
        }
        drop_budget(shared, served)?;
    }
}

/// Fault-injection point: errors out of the handler (dropping the
/// connection) once the configured request budget is exhausted.
fn drop_budget(shared: &Shared, served: u64) -> Result<()> {
    if let Some(cap) = shared.config.drop_after_requests {
        if served >= cap {
            return Err(Error::protocol(
                "fault injection",
                format!("dropping connection after {served} requests"),
            ));
        }
    }
    Ok(())
}

fn send(writer: &mut BufWriter<TcpStream>, resp: &Response) -> Result<()> {
    let body = resp.encode();
    OBS_BYTES_OUT.add(body.len() as u64 + FRAME_OVERHEAD);
    write_frame(writer, &body)?;
    writer
        .flush()
        .map_err(|e| Error::io("flushing response", e))?;
    Ok(())
}

/// Sends a judged error frame (the connection stays usable).
fn send_judged(writer: &mut BufWriter<TcpStream>, e: &Error) -> Result<()> {
    let (code, message) = ErrCode::classify(e);
    send(
        writer,
        &Response::Err {
            code: code as u8,
            message,
        },
    )
}

/// Protocol gate for the v3 stream operations: a connection that
/// negotiated v2 never sends them from a real client, but a raw peer
/// might, and the answer must be a judged refusal, not a stream.
fn require_stream_version(ctx: &ConnCtx) -> Result<()> {
    if ctx.proto_version >= 3 {
        Ok(())
    } else {
        Err(Error::protocol(
            "streaming",
            format!(
                "stream operations need protocol v3; this connection negotiated v{}",
                ctx.proto_version
            ),
        ))
    }
}

/// Dispatches one v3 streaming request. Judged failures answer with an
/// `Err` frame and keep the connection; only transport failures bubble
/// out (dropping the connection, like any other broken peer).
fn handle_stream(
    shared: &Shared,
    ctx: &mut ConnCtx,
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    req: Request,
) -> Result<()> {
    shared.renew_lease(&ctx.namespace, ctx.lease_token);
    match req {
        Request::GetStream { reference } => {
            let setup = require_stream_version(ctx).and_then(|()| shared.namespace(&ctx.namespace));
            match setup {
                Ok(ns) => stream_object_out(&ns, &reference, writer),
                Err(e) => send_judged(writer, &e),
            }
        }
        Request::ReplChunkStream {
            namespace,
            reference,
        } => {
            // Replication streams Hello into the nominal "control"
            // namespace, so the target namespace rides in the request —
            // guarded exactly like the batched REPL_CHUNKS fetch.
            let setup = require_stream_version(ctx)
                .and_then(|()| require_repl(ctx))
                .and_then(|()| {
                    if valid_namespace(&namespace) {
                        shared.namespace(&namespace)
                    } else {
                        Err(Error::InvalidConfig(format!(
                            "invalid namespace {namespace:?}"
                        )))
                    }
                });
            match setup {
                Ok(ns) => stream_object_out(&ns, &reference, writer),
                Err(e) => send_judged(writer, &e),
            }
        }
        Request::PutStreamBegin { reference, fsync } => {
            serve_put_stream(shared, ctx, reader, writer, &reference, fsync)
        }
        _ => Err(Error::protocol(
            "streaming",
            "handle_stream dispatched a non-stream request",
        )),
    }
}

/// GET side of the stream: `StreamBegin`, the object in
/// [`STREAM_SEGMENT_BYTES`] segments, `StreamEnd`. An object found
/// missing *before* the first frame answers with a plain `Err`;
/// corruption the store discovers mid-read (it hashes as it streams)
/// replaces the terminal `StreamEnd` with an `Err` frame — the client
/// sees a judged error either way and the framing stays aligned.
fn stream_object_out(
    ns: &Namespace,
    reference: &ChunkRef,
    writer: &mut BufWriter<TcpStream>,
) -> Result<()> {
    if !ns.store.contains(&reference.hash) {
        // Absent chunks answer like a plain GET: judged, not streamed.
        return send_judged(
            writer,
            &Error::NotFound {
                what: format!("chunk {}", reference.hash),
            },
        );
    }
    write_frame(
        writer,
        &Response::StreamBegin {
            len: u64::from(reference.len),
        }
        .encode(),
    )?;
    let result = ns
        .store
        .get_stream(reference, STREAM_SEGMENT_BYTES, &mut |seg| {
            super::note_stream_buffer(seg.len());
            write_frame(writer, &Response::StreamData(seg.to_vec()).encode())
        });
    match result {
        Ok(()) => write_frame(writer, &Response::StreamEnd { fresh: true }.encode())?,
        Err(e) => {
            let (code, message) = ErrCode::classify(&e);
            write_frame(
                writer,
                &Response::Err {
                    code: code as u8,
                    message,
                }
                .encode(),
            )?;
        }
    }
    writer.flush().map_err(|e| Error::io("flushing stream", e))
}

/// PUT side of the stream. Answers `PutStreamBegin` with `Ok` (proceed),
/// `StreamEnd { fresh: false }` (dedup hit — the client skips the body)
/// or a judged `Err`, then drives the namespace store's `put_stream`
/// with a source closure that reads `PutStreamData` frames in lockstep:
/// each frame is acknowledged by the *next* `source()` call, after the
/// store has staged and hashed it, so exactly one segment is in flight
/// and every frame gets exactly one response whatever the store decides.
fn serve_put_stream(
    shared: &Shared,
    ctx: &mut ConnCtx,
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    reference: &ChunkRef,
    fsync: bool,
) -> Result<()> {
    // Setup refusals answer the Begin frame before anything streams.
    let setup = require_stream_version(ctx)
        .and_then(|()| guard_write(shared, ctx, "put_stream"))
        .and_then(|()| shared.namespace(&ctx.namespace));
    let ns = match setup {
        Ok(ns) => ns,
        Err(e) => return send_judged(writer, &e),
    };
    if ns.store.contains(&reference.hash) {
        return send(writer, &Response::StreamEnd { fresh: false });
    }
    send(writer, &Response::Ok)?;
    let mut pending_ack = false;
    let mut source = || -> Result<Option<Vec<u8>>> {
        if std::mem::take(&mut pending_ack) {
            send(writer, &Response::Ok)?;
        }
        let body = read_frame(reader)?;
        match Request::decode(&body)? {
            Request::PutStreamData(data) => {
                super::note_stream_buffer(data.len());
                pending_ack = true;
                Ok(Some(data))
            }
            Request::PutStreamEnd => Ok(None),
            _ => Err(Error::protocol(
                "put_stream",
                "expected PUT_STREAM_DATA or PUT_STREAM_END inside an open stream",
            )),
        }
    };
    match ns.store.put_stream(reference, &mut source, fsync) {
        // Every Data frame was acked by then: this answers the End frame.
        Ok(fresh) => send(writer, &Response::StreamEnd { fresh }),
        // The reply lands on whichever frame is still unanswered — the
        // Data frame whose staging failed, or the End frame when the
        // assembled payload missed its content address. A judged error
        // keeps the connection; after a transport error inside
        // `source()` this send fails too and the connection drops.
        Err(e) => send_judged(writer, &e),
    }
}

/// Executes one request against its namespace, mapping errors onto
/// [`Response::Err`].
fn apply_request(shared: &Shared, ctx: &mut ConnCtx, req: Request) -> Response {
    let result = apply_request_inner(shared, ctx, req);
    match result {
        Ok(resp) => resp,
        Err(e) => {
            let (code, message) = ErrCode::classify(&e);
            Response::Err {
                code: code as u8,
                message,
            }
        }
    }
}

/// Gate for every mutation: a secondary refuses them outright, and a
/// foreign live writer lease refuses them with the typed lease error
/// (the holder's own traffic renews the lease instead).
fn guard_write(shared: &Shared, ctx: &ConnCtx, what: &str) -> Result<()> {
    if shared.role() != ROLE_PRIMARY {
        return Err(Error::NotPrimary(format!(
            "{what} refused: this daemon is a replication secondary (promote it first)"
        )));
    }
    shared.check_lease(&ctx.namespace, ctx.lease_token)
}

/// Control-plane gate for operations the auth token protects.
fn guard_privileged(shared: &Shared, ctx: &ConnCtx, what: &str) -> Result<()> {
    if shared.config.auth_token.is_some() && !ctx.privileged {
        return Err(Error::Unauthorized(format!(
            "{what} requires the daemon's auth token"
        )));
    }
    Ok(())
}

fn apply_request_inner(shared: &Shared, ctx: &mut ConnCtx, req: Request) -> Result<Response> {
    // Any traffic from a lease holder keeps its lease alive.
    shared.renew_lease(&ctx.namespace, ctx.lease_token);
    let namespace = ctx.namespace.as_str();
    match req {
        Request::Hello { .. } => Err(Error::protocol("handling request", "duplicate Hello")),
        Request::Ping => Ok(Response::Pong),
        Request::PutBatch { fsync, chunks } => {
            guard_write(shared, ctx, "put_batch")?;
            let ns = shared.namespace(namespace)?;
            // Trust boundary: verify every chunk's address before it
            // reaches the store — a lying client must not be able to
            // poison content addresses other clients dedup against.
            for c in &chunks {
                if c.data.len() != c.reference.len as usize
                    || crate::hash::Sha256::digest(&c.data) != c.reference.hash
                {
                    return Err(Error::corrupt(
                        format!("staged chunk {}", c.reference.hash),
                        "payload does not match its content address".to_string(),
                    ));
                }
            }
            let staged: Vec<StagedChunk<'_>> = chunks
                .iter()
                .map(|c| StagedChunk {
                    reference: c.reference,
                    data: &c.data,
                })
                .collect();
            let report: BatchPutReport = ns.store.put_batch(&staged, fsync)?;
            Ok(Response::PutBatch(report))
        }
        Request::Get { reference } => {
            let ns = shared.namespace(namespace)?;
            Ok(Response::Chunk(ns.store.get(&reference)?))
        }
        Request::Contains { hashes } => {
            let ns = shared.namespace(namespace)?;
            Ok(Response::Contains(
                hashes.iter().map(|h| ns.store.contains(h)).collect(),
            ))
        }
        Request::List => {
            let ns = shared.namespace(namespace)?;
            Ok(Response::Hashes(ns.store.list()?))
        }
        Request::Sweep { dry_run, reachable } => {
            let ns = shared.namespace(namespace)?;
            if dry_run {
                // Planning is a read; no gate.
                let reachable = reachable.into_iter().collect();
                return Ok(Response::Gc(ns.store.plan_sweep(&reachable)?));
            }
            guard_privileged(shared, ctx, "destructive sweep")?;
            guard_write(shared, ctx, "sweep")?;
            let set = reachable.iter().copied().collect();
            let report = ns.store.sweep(&set)?;
            ns.oplog.append(&OplogOp::Sweep { reachable })?;
            Ok(Response::Gc(report))
        }
        Request::Stats => {
            let ns = shared.namespace(namespace)?;
            let stats: StoreStats = ns.store.stats()?;
            Ok(Response::Stats(stats))
        }
        Request::ClearStaging => {
            let ns = shared.namespace(namespace)?;
            Ok(Response::Cleared(ns.store.clear_staging()? as u64))
        }
        Request::MetaPut { name, bytes } => {
            guard_write(shared, ctx, "meta_put")?;
            let ns = shared.namespace(namespace)?;
            check_meta_name(&name)?;
            ns.meta_put(&name, &bytes)?;
            // Logged *after* the local apply: a crash in the gap loses
            // the log entry but not the data, and the client's replay
            // of the idempotent MetaPut re-appends it.
            ns.oplog.append(&OplogOp::MetaPut { name, bytes })?;
            Ok(Response::Ok)
        }
        Request::MetaGet { name } => {
            let ns = shared.namespace(namespace)?;
            check_meta_name(&name)?;
            Ok(Response::Meta(ns.meta_get(&name)?))
        }
        Request::MetaList { prefix } => {
            let ns = shared.namespace(namespace)?;
            Ok(Response::Names(ns.meta_list(&prefix)?))
        }
        Request::MetaDelete { name } => {
            guard_write(shared, ctx, "meta_delete")?;
            let ns = shared.namespace(namespace)?;
            check_meta_name(&name)?;
            ns.meta_delete(&name)?;
            ns.oplog.append(&OplogOp::MetaDelete { name })?;
            Ok(Response::Ok)
        }
        Request::Status => {
            let lengths = shared.oplog_lengths()?;
            let oplog_entries = lengths.iter().map(|(_, l)| l).sum();
            let repl_lag = shared.repl_lag(&lengths);
            OBS_REPL_LAG.set(repl_lag as i64);
            OBS_UPTIME.set(shared.started.elapsed().as_secs() as i64);
            Ok(Response::Status {
                version: PROTO_VERSION,
                namespaces: shared.namespace_count(),
                connections: OBS_CONNECTIONS.get().get(),
                role: shared.role(),
                generation: shared.generation(),
                oplog_entries,
                repl_lag,
            })
        }
        Request::Metrics => {
            if ctx.proto_version < 3 {
                return Err(Error::protocol(
                    "handling request",
                    "METRICS requires protocol v3",
                ));
            }
            // Point-in-time gauges are refreshed at scrape time; the
            // rest of the exposition is live counters.
            let lengths = shared.oplog_lengths()?;
            OBS_REPL_LAG.set(shared.repl_lag(&lengths) as i64);
            OBS_UPTIME.set(shared.started.elapsed().as_secs() as i64);
            Ok(Response::Metrics(qobs::text_exposition()))
        }
        Request::Shutdown => {
            guard_privileged(shared, ctx, "shutdown")?;
            if ctx.peer_is_loopback {
                Ok(Response::Ok)
            } else {
                Err(Error::InvalidConfig(
                    "shutdown is only honored from loopback connections \
                     (run `qckptd shutdown` on the daemon's host)"
                        .into(),
                ))
            }
        }
        Request::Promote => {
            // Promote rewires who may write; gate it like shutdown,
            // except a token explicitly enables remote promotion (the
            // operator promoting a surviving secondary is usually not
            // on its host).
            match &shared.config.auth_token {
                Some(_) => guard_privileged(shared, ctx, "promote")?,
                None => {
                    if !ctx.peer_is_loopback {
                        return Err(Error::Unauthorized(
                            "promote is only honored from loopback connections \
                             unless an auth token is configured"
                                .into(),
                        ));
                    }
                }
            }
            let generation = shared.promote()?;
            Ok(Response::Promoted { generation })
        }
        Request::LeaseRelease => {
            shared.release_lease(namespace, ctx.lease_token);
            ctx.lease_token = 0;
            Ok(Response::Ok)
        }
        Request::ReplStatus => {
            require_repl(ctx)?;
            Ok(Response::ReplStatus {
                generation: shared.generation(),
                role: shared.role(),
                namespaces: shared.oplog_lengths()?,
            })
        }
        Request::ReplFetch {
            namespace,
            from,
            max,
        } => {
            require_repl(ctx)?;
            if !valid_namespace(&namespace) {
                return Err(Error::InvalidConfig(format!(
                    "invalid namespace {namespace:?}"
                )));
            }
            let ns = shared.namespace(&namespace)?;
            Ok(Response::ReplEntries(
                ns.oplog.read_from(from, max.min(4096) as usize)?,
            ))
        }
        Request::ReplChunks { namespace, refs } => {
            require_repl(ctx)?;
            if !valid_namespace(&namespace) {
                return Err(Error::InvalidConfig(format!(
                    "invalid namespace {namespace:?}"
                )));
            }
            let ns = shared.namespace(&namespace)?;
            let mut out = Vec::with_capacity(refs.len());
            for r in refs {
                // Absent is not an error: the chunk may have been swept
                // while the secondary was behind; the sweep entry later
                // in the log reconciles it.
                if ns.store.contains(&r.hash) {
                    out.push(Some(super::proto::WireChunk {
                        reference: r,
                        data: ns.store.get(&r)?,
                    }));
                } else {
                    out.push(None);
                }
            }
            Ok(Response::Chunks(out))
        }
        Request::ReplAck { namespace, offset } => {
            require_repl(ctx)?;
            shared
                .repl
                .lock()
                .expect("repl state poisoned")
                .acked
                .insert(namespace, offset);
            Ok(Response::Ok)
        }
        #[cfg(any(test, feature = "testing"))]
        Request::Corrupt { hash, offset } => {
            guard_write(shared, ctx, "corrupt_object")?;
            let ns = shared.namespace(namespace)?;
            ns.store.corrupt_object(&hash, offset as usize)?;
            Ok(Response::Ok)
        }
        #[cfg(not(any(test, feature = "testing")))]
        Request::Corrupt { .. } => Err(Error::InvalidConfig(
            "corrupt-object is a testing-only operation; this daemon was built without it".into(),
        )),
        // Dispatched in `handle_connection` before this point; reaching
        // here would be a dispatch bug, answered as a judged error.
        Request::GetStream { .. }
        | Request::PutStreamBegin { .. }
        | Request::ReplChunkStream { .. } => Err(Error::protocol(
            "handling request",
            "stream request escaped its dispatcher",
        )),
        // Body frames outside an open PUT_STREAM are a framing error.
        Request::PutStreamData(_) | Request::PutStreamEnd => Err(Error::protocol(
            "handling request",
            "PUT_STREAM_DATA/PUT_STREAM_END outside an open PUT_STREAM",
        )),
    }
}

fn require_repl(ctx: &ConnCtx) -> Result<()> {
    if ctx.is_repl {
        Ok(())
    } else {
        Err(Error::InvalidConfig(
            "REPL_* operations are only honored on a replication stream \
             (Hello with the REPL flag)"
                .into(),
        ))
    }
}

fn check_meta_name(name: &str) -> Result<()> {
    if valid_meta_name(name) {
        Ok(())
    } else {
        Err(Error::InvalidConfig(format!(
            "invalid metadata name {name:?}"
        )))
    }
}
