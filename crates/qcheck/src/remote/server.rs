//! The `qckptd` daemon: a multi-tenant checkpoint object-store server.
//!
//! ## Layout
//!
//! The daemon roots every *namespace* (one training run / one logical
//! repository) in its own directory:
//!
//! ```text
//! <root>/ns/<namespace>/
//!   STORE            sticky backend marker (loose | pack)
//!   objects/ | packs/  the namespace's object store (reuses the local
//!                      backends: loose fan-out dirs or pack v3 files)
//!   tmp/             server-side staging (disposable)
//!   meta/            named metadata blobs (manifests/…, LATEST)
//! ```
//!
//! Reusing [`StoreBackend`] for per-namespace storage means the daemon
//! inherits the local backends' whole crash-safety story: staged writes,
//! atomic renames, CRC-framed packs, mark-and-sweep GC. A client dying
//! mid-`put_batch` never reaches the store at all — the request frame
//! never completes, so nothing is staged, and whatever debris an earlier
//! crash left in `tmp/` is disposable by construction.
//!
//! ## Threading
//!
//! One handler runs per connection. The standalone `qckptd` daemon
//! draws handlers from the shared [`qpar`] worker pool
//! ([`ServerConfig::handlers_on_pool`] — its process runs no competing
//! compute; encode parallelism runs client-side), falling back to
//! dedicated threads when the pool is disabled or saturated so
//! accepting never blocks behind slow peers. Embedded (in-process)
//! servers use dedicated threads unconditionally: they share the pool
//! with the trainer's own fan-outs, and a handler parked on a pool
//! worker there could deadlock the compute that feeds it.
//!
//! Namespace state is created lazily on first use and shared between
//! connections through a mutex-guarded map; the [`StoreBackend`]s
//! themselves are internally synchronized, so two clients of one
//! namespace serialize only on the store's own locks.

use std::collections::BTreeMap;
use std::fs;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::{Error, Result};
use crate::store::{BatchPutReport, ObjectStore, StagedChunk, StoreBackend, StoreKind, StoreStats};

use super::proto::{
    read_frame, valid_meta_name, valid_namespace, write_frame, ErrCode, Request, Response,
    PROTO_VERSION,
};

/// Configuration for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Directory holding every namespace.
    pub root: PathBuf,
    /// Backend layout for *new* namespaces (existing ones keep their
    /// sticky marker). Pack is the default: a whole `put_batch` commits
    /// with one rename, which is the point of a checkpoint daemon.
    pub store_kind: StoreKind,
    /// Overrides the pack GC rewrite threshold for every namespace
    /// (`None` = the `QCHECK_GC_DEAD_FRACTION` default). The
    /// backend-equivalence suites pin `0.0` (eager) here.
    pub gc_dead_fraction: Option<f64>,
    /// Fault injection: close each connection after this many request
    /// frames (handshake excluded). Exercises the client's
    /// reconnect-and-replay path; `None` in production.
    pub drop_after_requests: Option<u64>,
    /// Draw connection handlers from the shared [`qpar`] worker pool
    /// (the standalone `qckptd` daemon turns this on — its process runs
    /// no competing compute). Leave off when the server is embedded in
    /// a process that also fans compute out through the pool: a handler
    /// parked on a pool worker while that process waits for pool
    /// compute is a deadlock. Off, every connection gets a dedicated
    /// thread.
    pub handlers_on_pool: bool,
}

impl ServerConfig {
    /// Default configuration rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ServerConfig {
            root: root.into(),
            store_kind: StoreKind::Pack,
            gc_dead_fraction: None,
            drop_after_requests: None,
            handlers_on_pool: false,
        }
    }
}

/// One namespace's storage: object store + metadata directory.
#[derive(Debug)]
struct Namespace {
    store: StoreBackend,
    root: PathBuf,
    meta_dir: PathBuf,
    /// Staging counter for atomic metadata publishes.
    meta_seq: AtomicU64,
}

impl Namespace {
    fn open(ns_root: &Path, kind: StoreKind, gc_dead_fraction: Option<f64>) -> Result<Namespace> {
        fs::create_dir_all(ns_root)
            .map_err(|e| Error::io(format!("creating {}", ns_root.display()), e))?;
        let mut store = StoreBackend::open_sticky(ns_root, kind)?;
        if let Some(f) = gc_dead_fraction {
            store.set_gc_dead_fraction(f);
        }
        let meta_dir = ns_root.join("meta");
        fs::create_dir_all(&meta_dir)
            .map_err(|e| Error::io(format!("creating {}", meta_dir.display()), e))?;
        Ok(Namespace {
            store,
            root: ns_root.to_path_buf(),
            meta_dir,
            meta_seq: AtomicU64::new(0),
        })
    }

    fn meta_path(&self, name: &str) -> PathBuf {
        // `name` passed the grammar check: relative, no `..` components.
        self.meta_dir.join(name)
    }

    /// Atomically publishes one metadata blob (stage in `tmp/`, rename).
    fn meta_put(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let target = self.meta_path(name);
        if let Some(parent) = target.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| Error::io(format!("creating {}", parent.display()), e))?;
        }
        let tmp_dir = self.root.join("tmp");
        fs::create_dir_all(&tmp_dir)
            .map_err(|e| Error::io(format!("creating {}", tmp_dir.display()), e))?;
        let tmp = tmp_dir.join(format!(
            "meta-{}-{}",
            std::process::id(),
            self.meta_seq.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, bytes).map_err(|e| Error::io(format!("writing {}", tmp.display()), e))?;
        fs::rename(&tmp, &target)
            .map_err(|e| Error::io(format!("renaming into {}", target.display()), e))?;
        Ok(())
    }

    fn meta_get(&self, name: &str) -> Result<Option<Vec<u8>>> {
        match fs::read(self.meta_path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(Error::io(format!("reading meta {name}"), e)),
        }
    }

    fn meta_list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut out = Vec::new();
        let mut stack = vec![(self.meta_dir.clone(), String::new())];
        while let Some((dir, rel)) = stack.pop() {
            let entries = match fs::read_dir(&dir) {
                Ok(entries) => entries,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(Error::io(format!("listing {}", dir.display()), e)),
            };
            for entry in entries {
                let entry = entry.map_err(|e| Error::io("walking meta", e))?;
                let name = entry.file_name().to_string_lossy().to_string();
                let child_rel = if rel.is_empty() {
                    name
                } else {
                    format!("{rel}/{name}")
                };
                if entry.path().is_dir() {
                    stack.push((entry.path(), child_rel));
                } else if child_rel.starts_with(prefix) {
                    out.push(child_rel);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    fn meta_delete(&self, name: &str) -> Result<()> {
        match fs::remove_file(self.meta_path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Error::io(format!("deleting meta {name}"), e)),
        }
    }
}

/// Shared daemon state.
#[derive(Debug)]
struct Shared {
    config: ServerConfig,
    namespaces: Mutex<BTreeMap<String, Arc<Namespace>>>,
    shutdown: AtomicBool,
    connections: AtomicU64,
    active: AtomicU64,
    /// Duplicated handles of every live connection's socket plus a
    /// "currently serving a request" flag, keyed by connection id and
    /// removed by the handler on exit. The graceful-drain path closes
    /// idle sockets (handlers parked in `read_frame`) immediately and
    /// gives busy ones a bounded grace to finish their request.
    socks: Mutex<BTreeMap<u64, (TcpStream, Arc<AtomicBool>)>>,
}

impl Shared {
    fn namespace(&self, name: &str) -> Result<Arc<Namespace>> {
        let mut map = self.namespaces.lock().expect("namespace map poisoned");
        if let Some(ns) = map.get(name) {
            return Ok(Arc::clone(ns));
        }
        let ns_root = self.config.root.join("ns").join(name);
        let ns = Arc::new(Namespace::open(
            &ns_root,
            self.config.store_kind,
            self.config.gc_dead_fraction,
        )?);
        map.insert(name.to_string(), Arc::clone(&ns));
        Ok(ns)
    }

    fn namespace_count(&self) -> u64 {
        // Count what is on disk, not just what this process has touched.
        fs::read_dir(self.config.root.join("ns"))
            .map(|entries| entries.count() as u64)
            .unwrap_or(0)
    }
}

/// A bound (but not yet serving) checkpoint daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the daemon to `addr` (use port 0 for an ephemeral port) and
    /// creates the storage root.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound or the root cannot be
    /// created.
    pub fn bind(addr: &str, config: ServerConfig) -> Result<Server> {
        fs::create_dir_all(config.root.join("ns"))
            .map_err(|e| Error::io(format!("creating {}", config.root.display()), e))?;
        let listener =
            TcpListener::bind(addr).map_err(|e| Error::io(format!("binding {addr}"), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::io("resolving bound address", e))?;
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                config,
                namespaces: Mutex::new(BTreeMap::new()),
                shutdown: AtomicBool::new(false),
                connections: AtomicU64::new(0),
                active: AtomicU64::new(0),
                socks: Mutex::new(BTreeMap::new()),
            }),
        })
    }

    /// The bound address (the real port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves connections until a client sends `Shutdown`. Each
    /// connection is handled on a [`qpar`] pool worker when one is
    /// available, else on a dedicated thread.
    ///
    /// # Errors
    ///
    /// Fails only on accept-loop errors; per-connection failures are
    /// contained to their connection.
    pub fn serve(self) -> Result<()> {
        // Tolerance for transient accept failures (fd exhaustion under
        // connection pressure, EINTR): back off briefly and keep
        // serving — existing connections closing is exactly what clears
        // the condition. Only a long unbroken error streak (a genuinely
        // dead listener) is fatal.
        const MAX_CONSECUTIVE_ACCEPT_ERRORS: u32 = 100;
        let mut accept_errors = 0u32;
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(s) => {
                    accept_errors = 0;
                    s
                }
                Err(e) => {
                    accept_errors += 1;
                    if accept_errors >= MAX_CONSECUTIVE_ACCEPT_ERRORS {
                        return Err(Error::io("accepting connection", e));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    continue;
                }
            };
            let shared = Arc::clone(&self.shared);
            let conn_id = shared.connections.fetch_add(1, Ordering::Relaxed);
            let busy = shared.active.fetch_add(1, Ordering::Relaxed) as usize;
            let serving = Arc::new(AtomicBool::new(false));
            if let Ok(dup) = stream.try_clone() {
                shared
                    .socks
                    .lock()
                    .expect("socks poisoned")
                    .insert(conn_id, (dup, Arc::clone(&serving)));
            }
            let on_pool = self.shared.config.handlers_on_pool;
            let job: Box<dyn FnOnce() + Send> = Box::new(move || {
                let _ = handle_connection(&shared, stream, &serving);
                shared
                    .socks
                    .lock()
                    .expect("socks poisoned")
                    .remove(&conn_id);
                shared.active.fetch_sub(1, Ordering::Relaxed);
            });
            match on_pool {
                // Pool unavailable or saturated: a dedicated thread
                // preserves the one-handler-per-connection contract.
                true => {
                    if let Err(job) = qpar::pool::spawn_detached(busy, job) {
                        std::thread::spawn(job);
                    }
                }
                false => {
                    std::thread::spawn(job);
                }
            }
        }
        // Graceful drain: close *idle* connections (handlers parked in
        // `read_frame` between requests) immediately, let handlers that
        // are mid-request finish and send their response, and re-sweep
        // until everyone is gone. The overall deadline bounds exit even
        // against a peer whose request never completes.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            {
                let socks = self.shared.socks.lock().expect("socks poisoned");
                let force = std::time::Instant::now() >= deadline;
                for (sock, serving) in socks.values() {
                    if force || !serving.load(Ordering::Acquire) {
                        let _ = sock.shutdown(std::net::Shutdown::Both);
                    }
                }
            }
            if self.shared.active.load(Ordering::Acquire) == 0
                || std::time::Instant::now() >= deadline
            {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        Ok(())
    }

    /// Spawns the accept loop on a background thread and returns a
    /// handle — the in-process form used by tests, benches and examples.
    pub fn spawn(self) -> DaemonHandle {
        let addr = self.addr;
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.serve());
        DaemonHandle {
            addr,
            shared,
            thread: Some(thread),
        }
    }
}

/// Handle to an in-process daemon; shuts it down on drop.
#[derive(Debug)]
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<Result<()>>>,
}

impl DaemonHandle {
    /// The daemon's address, as a `host:port` string for
    /// [`super::RemoteStore::connect`].
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Spawns an in-process daemon on an ephemeral localhost port — the
/// one-liner for tests and examples. `gc_dead_fraction` is pinned to
/// `0.0` (eager GC) so remote repositories behave byte-identically to
/// the local backends' logical-equivalence contract.
///
/// # Errors
///
/// As [`Server::bind`].
pub fn spawn_daemon(root: impl Into<PathBuf>, kind: StoreKind) -> Result<DaemonHandle> {
    let mut config = ServerConfig::new(root);
    config.store_kind = kind;
    config.gc_dead_fraction = Some(0.0);
    Ok(Server::bind("127.0.0.1:0", config)?.spawn())
}

/// Runs one connection to completion: handshake, then a request loop.
fn handle_connection(shared: &Shared, stream: TcpStream, serving: &AtomicBool) -> Result<()> {
    // Daemon-control boundary: without authentication in the protocol,
    // the peer address is the only signal we have — process-control
    // operations (Shutdown) are honored from loopback peers only, so a
    // remote tenant of a LAN-exposed daemon cannot stop everyone
    // else's checkpoint store.
    let peer_is_loopback = stream
        .peer_addr()
        .map(|a| a.ip().is_loopback())
        .unwrap_or(false);
    stream
        .set_nodelay(true)
        .map_err(|e| Error::io("setting TCP_NODELAY", e))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| Error::io("cloning stream", e))?,
    );
    let mut writer = BufWriter::new(stream);

    // --- handshake ---
    let hello = read_frame(&mut reader)?;
    let namespace = match Request::decode(&hello) {
        Ok(Request::Hello { version, namespace }) => {
            if version != PROTO_VERSION {
                send(
                    &mut writer,
                    &Response::Err {
                        code: ErrCode::Invalid as u8,
                        message: format!(
                            "unsupported protocol version {version} (server speaks {PROTO_VERSION})"
                        ),
                    },
                )?;
                return Ok(());
            }
            if !valid_namespace(&namespace) {
                send(
                    &mut writer,
                    &Response::Err {
                        code: ErrCode::Invalid as u8,
                        message: format!("invalid namespace {namespace:?}"),
                    },
                )?;
                return Ok(());
            }
            namespace
        }
        Ok(_) | Err(_) => {
            send(
                &mut writer,
                &Response::Err {
                    code: ErrCode::Invalid as u8,
                    message: "first frame must be a versioned Hello".into(),
                },
            )?;
            return Ok(());
        }
    };
    send(
        &mut writer,
        &Response::HelloOk {
            version: PROTO_VERSION,
        },
    )?;

    // --- request loop ---
    let mut served = 0u64;
    loop {
        let body = match read_frame(&mut reader) {
            Ok(body) => body,
            // Peer closed (or broke) the connection: normal end of life.
            Err(_) => return Ok(()),
        };
        // Mark the connection busy for the graceful-drain sweep: a
        // shutdown arriving now lets this request finish and its
        // response reach the client before the socket is closed.
        serving.store(true, Ordering::Release);
        served += 1;
        let (response, is_shutdown) = match Request::decode(&body) {
            Ok(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                (
                    apply_request(shared, &namespace, req, peer_is_loopback),
                    is_shutdown,
                )
            }
            Err(e) => {
                let (code, message) = ErrCode::classify(&e);
                (
                    Response::Err {
                        code: code as u8,
                        message,
                    },
                    false,
                )
            }
        };
        let ok = !matches!(response, Response::Err { .. });
        let sent = send(&mut writer, &response);
        serving.store(false, Ordering::Release);
        sent?;
        if is_shutdown && ok {
            shared.shutdown.store(true, Ordering::Release);
            // Unblock the accept loop (the accepted socket's local
            // address is the listening address) so `serve` observes
            // the flag.
            if let Ok(addr) = writer.get_ref().local_addr() {
                let _ = TcpStream::connect(addr);
            }
            return Ok(());
        }
        drop_budget(shared, served)?;
    }
}

/// Fault-injection point: errors out of the handler (dropping the
/// connection) once the configured request budget is exhausted.
fn drop_budget(shared: &Shared, served: u64) -> Result<()> {
    if let Some(cap) = shared.config.drop_after_requests {
        if served >= cap {
            return Err(Error::protocol(
                "fault injection",
                format!("dropping connection after {served} requests"),
            ));
        }
    }
    Ok(())
}

fn send(writer: &mut BufWriter<TcpStream>, resp: &Response) -> Result<()> {
    write_frame(writer, &resp.encode())?;
    writer
        .flush()
        .map_err(|e| Error::io("flushing response", e))?;
    Ok(())
}

/// Executes one request against its namespace, mapping errors onto
/// [`Response::Err`].
fn apply_request(
    shared: &Shared,
    namespace: &str,
    req: Request,
    peer_is_loopback: bool,
) -> Response {
    let result = apply_request_inner(shared, namespace, req, peer_is_loopback);
    match result {
        Ok(resp) => resp,
        Err(e) => {
            let (code, message) = ErrCode::classify(&e);
            Response::Err {
                code: code as u8,
                message,
            }
        }
    }
}

fn apply_request_inner(
    shared: &Shared,
    namespace: &str,
    req: Request,
    peer_is_loopback: bool,
) -> Result<Response> {
    match req {
        Request::Hello { .. } => Err(Error::protocol("handling request", "duplicate Hello")),
        Request::Ping => Ok(Response::Pong),
        Request::PutBatch { fsync, chunks } => {
            let ns = shared.namespace(namespace)?;
            // Trust boundary: verify every chunk's address before it
            // reaches the store — a lying client must not be able to
            // poison content addresses other clients dedup against.
            for c in &chunks {
                if c.data.len() != c.reference.len as usize
                    || crate::hash::Sha256::digest(&c.data) != c.reference.hash
                {
                    return Err(Error::corrupt(
                        format!("staged chunk {}", c.reference.hash),
                        "payload does not match its content address".to_string(),
                    ));
                }
            }
            let staged: Vec<StagedChunk<'_>> = chunks
                .iter()
                .map(|c| StagedChunk {
                    reference: c.reference,
                    data: &c.data,
                })
                .collect();
            let report: BatchPutReport = ns.store.put_batch(&staged, fsync)?;
            Ok(Response::PutBatch(report))
        }
        Request::Get { reference } => {
            let ns = shared.namespace(namespace)?;
            Ok(Response::Chunk(ns.store.get(&reference)?))
        }
        Request::Contains { hashes } => {
            let ns = shared.namespace(namespace)?;
            Ok(Response::Contains(
                hashes.iter().map(|h| ns.store.contains(h)).collect(),
            ))
        }
        Request::List => {
            let ns = shared.namespace(namespace)?;
            Ok(Response::Hashes(ns.store.list()?))
        }
        Request::Sweep { dry_run, reachable } => {
            let ns = shared.namespace(namespace)?;
            let reachable = reachable.into_iter().collect();
            let report = if dry_run {
                ns.store.plan_sweep(&reachable)?
            } else {
                ns.store.sweep(&reachable)?
            };
            Ok(Response::Gc(report))
        }
        Request::Stats => {
            let ns = shared.namespace(namespace)?;
            let stats: StoreStats = ns.store.stats()?;
            Ok(Response::Stats(stats))
        }
        Request::ClearStaging => {
            let ns = shared.namespace(namespace)?;
            Ok(Response::Cleared(ns.store.clear_staging()? as u64))
        }
        Request::MetaPut { name, bytes } => {
            let ns = shared.namespace(namespace)?;
            check_meta_name(&name)?;
            ns.meta_put(&name, &bytes)?;
            Ok(Response::Ok)
        }
        Request::MetaGet { name } => {
            let ns = shared.namespace(namespace)?;
            check_meta_name(&name)?;
            Ok(Response::Meta(ns.meta_get(&name)?))
        }
        Request::MetaList { prefix } => {
            let ns = shared.namespace(namespace)?;
            Ok(Response::Names(ns.meta_list(&prefix)?))
        }
        Request::MetaDelete { name } => {
            let ns = shared.namespace(namespace)?;
            check_meta_name(&name)?;
            ns.meta_delete(&name)?;
            Ok(Response::Ok)
        }
        Request::Status => Ok(Response::Status {
            version: PROTO_VERSION,
            namespaces: shared.namespace_count(),
            connections: shared.connections.load(Ordering::Relaxed),
        }),
        Request::Shutdown => {
            if peer_is_loopback {
                Ok(Response::Ok)
            } else {
                Err(Error::InvalidConfig(
                    "shutdown is only honored from loopback connections \
                     (run `qckptd shutdown` on the daemon's host)"
                        .into(),
                ))
            }
        }
        #[cfg(any(test, feature = "testing"))]
        Request::Corrupt { hash, offset } => {
            let ns = shared.namespace(namespace)?;
            ns.store.corrupt_object(&hash, offset as usize)?;
            Ok(Response::Ok)
        }
        #[cfg(not(any(test, feature = "testing")))]
        Request::Corrupt { .. } => Err(Error::InvalidConfig(
            "corrupt-object is a testing-only operation; this daemon was built without it".into(),
        )),
    }
}

fn check_meta_name(name: &str) -> Result<()> {
    if valid_meta_name(name) {
        Ok(())
    } else {
        Err(Error::InvalidConfig(format!(
            "invalid metadata name {name:?}"
        )))
    }
}
