//! Replication: the per-namespace oplog and the secondary's tailer.
//!
//! ## The oplog
//!
//! A primary appends one [`OplogOp`] per *committed* metadata mutation:
//! manifest publishes and `LATEST` advances (`MetaPut`), retention
//! deletes (`MetaDelete`), and mark-and-sweep runs (`Sweep`). Chunk
//! content is deliberately **not** logged — it is content-addressed, so
//! a secondary derives what it is missing from each replicated manifest
//! and pulls exactly that over [`Request::ReplChunks`]; re-pulling after
//! a crash is idempotent by construction.
//!
//! On disk the log is one append-only file per namespace
//! (`ns/<name>/OPLOG`) of CRC-framed records, the same framing as the
//! wire (`len | body | crc32`) with the body being `offset u64` followed
//! by the op's wire encoding. A torn tail — the daemon died mid-append —
//! is detected by the CRC and truncated away on open: an oplog entry
//! either fully committed or never happened, matching the store's
//! staged-rename discipline.
//!
//! ## The tailer
//!
//! A secondary polls its primary: [`Request::ReplStatus`] discovers
//! namespaces and their log lengths, [`Request::ReplFetch`] streams
//! entries from the local offset, chunks are pulled and **re-verified**
//! against their content addresses (the replication link is not trusted
//! over the hash, same as every other path), the entry is applied to the
//! local namespace, appended to the **local** oplog (keeping offsets
//! aligned, so a promoted secondary can itself be tailed), and the
//! applied offset is acked for primary-side lag accounting.
//!
//! Apply order inside one entry mirrors the client commit protocol:
//! chunks first, then the metadata publish. A crash between the two
//! leaves orphan chunks at worst — exactly the debris recovery and GC
//! already tolerate — and the entry is re-applied idempotently on the
//! next pass. A chunk the primary no longer holds (swept while the
//! secondary was behind) arrives as `None` and is skipped: the sweep
//! that removed it is a later entry in the same log, so convergence at
//! full catch-up is unaffected.

use std::fs;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use crate::codec::{Decoder, Encoder};
use crate::error::{Error, Result};
use crate::hash::crc32;
use crate::manifest::Manifest;
use crate::store::{ObjectStore, StagedChunk};

use super::proto::{
    self, read_frame, valid_namespace, write_frame, OplogOp, OplogRecord, Request, Response,
    HELLO_FLAG_REPL, PROTO_VERSION, ROLE_SECONDARY,
};
use super::server::Shared;

/// File name of a namespace's oplog, directly under the namespace root.
pub const OPLOG_FILE: &str = "OPLOG";

/// Entries per `ReplFetch` round trip.
const FETCH_BATCH: u32 = 256;

/// Chunks at or above this size are pulled one at a time over the v3
/// `REPL_CHUNK_STREAM` fetch — segment by segment, straight into the
/// local store — instead of riding a batched `REPL_CHUNKS` response,
/// which buffers every requested payload at both ends at once.
const REPL_STREAM_CHUNK_BYTES: u32 = 8 << 20;

/// How a secondary follows its primary (part of
/// [`super::ServerConfig`]).
#[derive(Clone, Debug)]
pub struct ReplicateConfig {
    /// Primary address (`host:port`).
    pub primary_addr: String,
    /// Auth token to present to the primary, when it requires one.
    pub auth_token: Option<String>,
    /// Delay between tail polls when caught up.
    pub poll_interval: Duration,
    /// Disable the background tailer thread; tests drive replication
    /// one step at a time through `DaemonHandle::repl_sync` to place
    /// crashes between oplog stages.
    pub manual: bool,
}

impl ReplicateConfig {
    /// Follows `primary_addr` with default pacing.
    pub fn new(primary_addr: impl Into<String>) -> Self {
        ReplicateConfig {
            primary_addr: primary_addr.into(),
            auth_token: None,
            poll_interval: Duration::from_millis(150),
            manual: false,
        }
    }
}

/// Where a manual replication pass stops early — the crash-drill hook
/// for killing a primary "between" oplog stages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplStop {
    /// Stop after pulling and storing the next entry's missing chunks,
    /// before applying its metadata (the "chunks shipped" stage).
    AfterChunks,
    /// Stop after fully applying one entry, before acking it.
    AfterEntry,
}

/// Outcome of one replication pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Oplog entries applied (and appended locally).
    pub entries_applied: u64,
    /// Chunks pulled over the wire.
    pub chunks_pulled: u64,
    /// Entries still outstanding after this pass (lag).
    pub remaining: u64,
    /// The primary's generation as of this pass.
    pub primary_generation: u64,
    /// Namespaces whose catch-up failed on bad *data* (e.g. a pulled
    /// chunk failing its content address) and were set aside for this
    /// pass so the rest of the tenant set keeps replicating. Transport
    /// failures are not quarantine — they abort the pass for a
    /// reconnect.
    pub quarantined: u64,
}

// ---------------------------------------------------------------------
// Oplog
// ---------------------------------------------------------------------

/// One namespace's append-only, CRC-framed oplog.
#[derive(Debug)]
pub struct Oplog {
    path: PathBuf,
    state: Mutex<OplogState>,
}

#[derive(Debug)]
struct OplogState {
    /// Byte offset where each record starts (index = entry offset).
    starts: Vec<u64>,
    /// Byte length of the valid log (truncation point for appends).
    end: u64,
}

impl Oplog {
    /// Opens (or creates) the oplog under `ns_root`, scanning existing
    /// records and truncating a torn tail.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors other than a missing file.
    pub fn open(ns_root: &Path) -> Result<Oplog> {
        let path = ns_root.join(OPLOG_FILE);
        let mut starts = Vec::new();
        let mut end = 0u64;
        match fs::File::open(&path) {
            Ok(file) => {
                let file_len = file
                    .metadata()
                    .map_err(|e| Error::io("reading oplog metadata", e))?
                    .len();
                let mut reader = std::io::BufReader::new(file);
                // A read error is a clean EOF or a torn/damaged tail:
                // everything before `end` is intact; drop the rest.
                while let Ok(body) = read_frame(&mut reader) {
                    starts.push(end);
                    end += 8 + body.len() as u64;
                }
                if end < file_len {
                    let f = fs::OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .map_err(|e| Error::io("opening oplog for truncation", e))?;
                    f.set_len(end)
                        .map_err(|e| Error::io("truncating torn oplog tail", e))?;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(Error::io(format!("opening {}", path.display()), e)),
        }
        Ok(Oplog {
            path,
            state: Mutex::new(OplogState { starts, end }),
        })
    }

    /// Number of committed entries.
    pub fn len(&self) -> u64 {
        self.state.lock().expect("oplog lock poisoned").starts.len() as u64
    }

    /// Whether the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `op` at the next offset and returns that offset.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; the log is untouched then.
    pub fn append(&self, op: &OplogOp) -> Result<u64> {
        let mut state = self.state.lock().expect("oplog lock poisoned");
        let offset = state.starts.len() as u64;
        self.append_locked(
            &mut state,
            &OplogRecord {
                offset,
                op: op.clone(),
            },
        )?;
        Ok(offset)
    }

    /// Appends a record replicated from a primary; its offset must be
    /// exactly the next local offset (the logs stay aligned, which is
    /// what lets a promoted secondary be tailed in turn).
    ///
    /// # Errors
    ///
    /// [`Error::Protocol`] on an offset gap, otherwise I/O errors.
    pub fn append_record(&self, rec: &OplogRecord) -> Result<()> {
        let mut state = self.state.lock().expect("oplog lock poisoned");
        let next = state.starts.len() as u64;
        if rec.offset != next {
            return Err(Error::protocol(
                "appending replicated oplog entry",
                format!("offset {} does not follow local length {next}", rec.offset),
            ));
        }
        self.append_locked(&mut state, rec)
    }

    fn append_locked(&self, state: &mut OplogState, rec: &OplogRecord) -> Result<()> {
        let mut enc = Encoder::new();
        enc.put_u64(rec.offset);
        rec.op.encode_into(&mut enc);
        let body = enc.into_bytes();
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| Error::io(format!("opening {}", self.path.display()), e))?;
        // Defensive: if an earlier crash left bytes past the scanned
        // end, appending would interleave with garbage; truncate first.
        let disk_len = file
            .metadata()
            .map_err(|e| Error::io("reading oplog metadata", e))?
            .len();
        if disk_len != state.end {
            file.set_len(state.end)
                .map_err(|e| Error::io("truncating oplog before append", e))?;
        }
        write_frame(&mut file, &body)?;
        file.flush().map_err(|e| Error::io("flushing oplog", e))?;
        state.starts.push(state.end);
        state.end += 8 + body.len() as u64;
        Ok(())
    }

    /// Reads up to `max` records starting at entry offset `from`.
    ///
    /// # Errors
    ///
    /// Fails on I/O or decode errors (the scanned prefix is trusted; a
    /// record failing to decode here means on-disk damage after open).
    pub fn read_from(&self, from: u64, max: usize) -> Result<Vec<OplogRecord>> {
        let (start_byte, available) = {
            let state = self.state.lock().expect("oplog lock poisoned");
            let total = state.starts.len() as u64;
            if from >= total {
                return Ok(Vec::new());
            }
            (state.starts[from as usize], (total - from) as usize)
        };
        let mut file =
            fs::File::open(&self.path).map_err(|e| Error::io("opening oplog for read", e))?;
        file.seek(SeekFrom::Start(start_byte))
            .map_err(|e| Error::io("seeking oplog", e))?;
        let mut reader = std::io::BufReader::new(file);
        let mut out = Vec::new();
        for i in 0..available.min(max) {
            let body = read_frame(&mut reader)?;
            let mut dec = Decoder::new(&body, "oplog record");
            let offset = dec.get_u64()?;
            let op = OplogOp::decode_from(&mut dec)?;
            dec.finish()?;
            if offset != from + i as u64 {
                return Err(Error::corrupt(
                    "oplog",
                    format!("record at entry {} claims offset {offset}", from + i as u64),
                ));
            }
            out.push(OplogRecord { offset, op });
        }
        Ok(out)
    }
}

// crc32 is pulled in through proto's framing; referenced here so the
// module's framing claim is checked at compile time if proto changes.
const _: fn(&[u8]) -> u32 = crc32;

// ---------------------------------------------------------------------
// Replication client (secondary -> primary)
// ---------------------------------------------------------------------

/// `REPL_STATUS` result: the primary's generation, its role byte, and
/// each namespace's oplog length.
pub(crate) type PrimaryStatus = (u64, u8, Vec<(String, u64)>);

/// A dedicated connection a secondary holds to its primary. Namespace
/// `control` is nominal — `REPL_*` ops name their namespace explicitly.
pub(crate) struct ReplClient {
    reader: std::io::BufReader<std::net::TcpStream>,
    writer: std::io::BufWriter<std::net::TcpStream>,
}

impl ReplClient {
    pub(crate) fn connect(addr: &str, auth: Option<&str>) -> Result<ReplClient> {
        use std::net::ToSocketAddrs;
        let sock_addr = addr
            .to_socket_addrs()
            .map_err(|e| Error::io(format!("resolving {addr}"), e))?
            .next()
            .ok_or_else(|| Error::InvalidConfig(format!("{addr:?} resolves to no address")))?;
        let stream = std::net::TcpStream::connect_timeout(&sock_addr, Duration::from_secs(10))
            .map_err(|e| Error::io(format!("connecting to primary at {addr}"), e))?;
        let timeout = Some(Duration::from_secs(60));
        stream
            .set_read_timeout(timeout)
            .map_err(|e| Error::io("setting read timeout", e))?;
        stream
            .set_write_timeout(timeout)
            .map_err(|e| Error::io("setting write timeout", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| Error::io("setting TCP_NODELAY", e))?;
        let mut client = ReplClient {
            reader: std::io::BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| Error::io("cloning stream", e))?,
            ),
            writer: std::io::BufWriter::new(stream),
        };
        let hello = Request::Hello {
            version: PROTO_VERSION,
            namespace: "control".into(),
            auth: auth.unwrap_or("").to_string(),
            flags: HELLO_FLAG_REPL,
            lease_token: 0,
            min_generation: 0,
        };
        match client.request(&hello)? {
            Response::HelloOk { .. } => Ok(client),
            other => Err(Error::protocol(
                "replication handshake",
                format!("unexpected response {other:?}"),
            )),
        }
    }

    fn request(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        self.writer
            .flush()
            .map_err(|e| Error::io("flushing replication request", e))?;
        Response::decode(&read_frame(&mut self.reader)?)?.into_result("replicating")
    }

    pub(crate) fn status(&mut self) -> Result<PrimaryStatus> {
        match self.request(&Request::ReplStatus)? {
            Response::ReplStatus {
                generation,
                role,
                namespaces,
            } => Ok((generation, role, namespaces)),
            other => Err(unexpected(&other)),
        }
    }

    fn fetch(&mut self, namespace: &str, from: u64, max: u32) -> Result<Vec<OplogRecord>> {
        match self.request(&Request::ReplFetch {
            namespace: namespace.to_string(),
            from,
            max,
        })? {
            Response::ReplEntries(records) => Ok(records),
            other => Err(unexpected(&other)),
        }
    }

    fn chunks(
        &mut self,
        namespace: &str,
        refs: Vec<crate::chunk::ChunkRef>,
    ) -> Result<Vec<Option<proto::WireChunk>>> {
        match self.request(&Request::ReplChunks {
            namespace: namespace.to_string(),
            refs,
        })? {
            Response::Chunks(chunks) => Ok(chunks),
            other => Err(unexpected(&other)),
        }
    }

    /// Pulls one large chunk over `REPL_CHUNK_STREAM`, feeding the
    /// segments straight into `store.put_stream` (which re-verifies the
    /// content address before commit — the replication link is not
    /// trusted over the hash, same as the batched path). Returns `false`
    /// when the primary no longer holds the chunk (swept while this
    /// secondary was behind — the sweep entry later in the log
    /// reconciles it).
    fn chunk_stream(
        &mut self,
        namespace: &str,
        reference: &crate::chunk::ChunkRef,
        store: &crate::store::StoreBackend,
    ) -> Result<bool> {
        let req = Request::ReplChunkStream {
            namespace: namespace.to_string(),
            reference: *reference,
        };
        write_frame(&mut self.writer, &req.encode())?;
        self.writer
            .flush()
            .map_err(|e| Error::io("flushing replication request", e))?;
        let resp = Response::decode(&read_frame(&mut self.reader)?)?;
        let declared = match resp.into_result("replicating chunk stream") {
            Ok(Response::StreamBegin { len }) => len,
            Ok(other) => return Err(unexpected(&other)),
            Err(Error::NotFound { .. }) => return Ok(false),
            Err(e) => return Err(e),
        };
        if declared != u64::from(reference.len) {
            // Data frames are in flight behind the bogus header; the
            // protocol error aborts the pass and forces a reconnect.
            return Err(Error::protocol(
                "replicating chunk stream",
                format!(
                    "primary declared {declared} bytes for a {} byte chunk",
                    reference.len
                ),
            ));
        }
        let mut terminal = false;
        let reader = &mut self.reader;
        let mut source = || -> Result<Option<Vec<u8>>> {
            if terminal {
                return Ok(None);
            }
            let resp = Response::decode(&read_frame(reader)?)?;
            match resp.into_result("replicating chunk stream") {
                Ok(Response::StreamData(data)) => {
                    super::note_stream_buffer(data.len());
                    Ok(Some(data))
                }
                Ok(Response::StreamEnd { .. }) => {
                    terminal = true;
                    Ok(None)
                }
                Ok(other) => Err(unexpected(&other)),
                // A terminal Err frame replaces StreamEnd when the
                // primary discovered corruption mid-read.
                Err(e) => Err(e),
            }
        };
        match store.put_stream(reference, &mut source, false) {
            Ok(_fresh) => Ok(true),
            Err(e) => {
                // Keep the connection aligned before surfacing a local
                // judgment (the pulled bytes failing their content
                // address, a staging failure): the rest of the stream
                // may still be on the wire, and a quarantined namespace
                // must not poison the link for the other tenants.
                // Transport errors skip the drain — the pass aborts and
                // reconnects anyway.
                if !terminal && !matches!(e, Error::Io { .. }) {
                    loop {
                        match Response::decode(&read_frame(&mut self.reader)?)?
                            .into_result("replicating chunk stream")
                        {
                            Ok(Response::StreamData(_)) => continue,
                            Ok(Response::StreamEnd { .. }) | Err(_) => break,
                            Ok(other) => return Err(unexpected(&other)),
                        }
                    }
                }
                Err(e)
            }
        }
    }

    fn ack(&mut self, namespace: &str, offset: u64) -> Result<()> {
        match self.request(&Request::ReplAck {
            namespace: namespace.to_string(),
            offset,
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> Error {
    Error::protocol("replicating", format!("unexpected response {resp:?}"))
}

// ---------------------------------------------------------------------
// Apply path
// ---------------------------------------------------------------------

/// Runs one full replication pass: polls the primary, catches every
/// namespace up (or stops early at `stop` for the crash drills), acks
/// progress, and updates the daemon's lag accounting.
pub(crate) fn sync_once(
    shared: &Shared,
    client: &mut ReplClient,
    stop: Option<ReplStop>,
) -> Result<SyncReport> {
    let (generation, _role, namespaces) = client.status()?;
    let primary_total: u64 = namespaces.iter().map(|(_, len)| len).sum();
    shared.note_primary(generation, primary_total);

    let mut report = SyncReport {
        primary_generation: generation,
        ..SyncReport::default()
    };
    let mut applied_total = 0u64;
    let mut stopped = false;
    for (ns_name, primary_len) in &namespaces {
        if !valid_namespace(ns_name) {
            continue;
        }
        let ns = shared.namespace(ns_name)?;
        if stopped {
            // A crash drill already fired: no further catch-up or acks,
            // but the lag accounting still counts what is on disk.
            applied_total += ns.oplog.len();
            continue;
        }
        match catch_up_namespace(&ns, client, ns_name, *primary_len, stop, &mut report) {
            Ok((local, this_stopped)) => {
                stopped = this_stopped;
                if !stopped {
                    client.ack(ns_name, local)?;
                }
                applied_total += local;
            }
            // The stream itself is suspect (dropped, or framing no
            // longer trusted): abort the pass so the caller reconnects.
            Err(e @ (Error::Io { .. } | Error::Protocol { .. })) => return Err(e),
            // Bad data confined to this namespace (a pulled chunk
            // failing its content address, a local apply refusing):
            // quarantine it for this pass — whatever it did apply is
            // durable in its oplog — and keep the other tenants moving.
            Err(_) => {
                report.quarantined += 1;
                applied_total += ns.oplog.len();
            }
        }
    }
    shared.note_applied(applied_total);
    report.remaining = primary_total.saturating_sub(applied_total);
    Ok(report)
}

/// Catches one namespace up to the primary's oplog length, returning
/// its new local length and whether a crash-drill `stop` fired.
fn catch_up_namespace(
    ns: &super::server::Namespace,
    client: &mut ReplClient,
    ns_name: &str,
    primary_len: u64,
    stop: Option<ReplStop>,
    report: &mut SyncReport,
) -> Result<(u64, bool)> {
    let mut local = ns.oplog.len();
    while local < primary_len {
        let records = client.fetch(ns_name, local, FETCH_BATCH)?;
        if records.is_empty() {
            break;
        }
        for rec in records {
            if rec.offset != local {
                return Err(Error::protocol(
                    "replicating",
                    format!("primary sent offset {}, expected {local}", rec.offset),
                ));
            }
            report.chunks_pulled += pull_missing_chunks(ns, client, ns_name, &rec.op)?;
            if stop == Some(ReplStop::AfterChunks) {
                return Ok((local, true));
            }
            apply_op(ns, &rec.op)?;
            ns.oplog.append_record(&rec)?;
            local += 1;
            report.entries_applied += 1;
            if stop == Some(ReplStop::AfterEntry) {
                return Ok((local, true));
            }
        }
    }
    Ok((local, false))
}

/// For a replicated manifest publish, pulls whatever referenced chunks
/// the local store is missing. Every pulled chunk is re-verified against
/// its content address before it is stored.
fn pull_missing_chunks(
    ns: &super::server::Namespace,
    client: &mut ReplClient,
    ns_name: &str,
    op: &OplogOp,
) -> Result<u64> {
    let OplogOp::MetaPut { name, bytes } = op else {
        return Ok(0);
    };
    if !name.starts_with("manifests/") {
        return Ok(0);
    }
    // A blob under manifests/ that does not decode is replicated as
    // opaque metadata; there is nothing to pull for it.
    let Ok(manifest) = Manifest::decode(bytes) else {
        return Ok(0);
    };
    let mut missing = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for section in &manifest.sections {
        for reference in &section.chunks {
            if seen.insert(reference.hash) && !ns.store.contains(&reference.hash) {
                missing.push(*reference);
            }
        }
    }
    if missing.is_empty() {
        return Ok(0);
    }
    // Large chunks stream one at a time in O(segment) memory; the rest
    // ride the batched fetch as before.
    let (large, missing): (Vec<_>, Vec<_>) = missing
        .into_iter()
        .partition(|r| r.len >= REPL_STREAM_CHUNK_BYTES);
    let mut streamed = 0u64;
    for reference in &large {
        if client.chunk_stream(ns_name, reference, &ns.store)? {
            streamed += 1;
        }
    }
    if missing.is_empty() {
        return Ok(streamed);
    }
    let pulled = client.chunks(ns_name, missing.clone())?;
    if pulled.len() != missing.len() {
        return Err(Error::protocol(
            "replicating chunks",
            format!("asked for {} chunks, got {}", missing.len(), pulled.len()),
        ));
    }
    let mut owned: Vec<proto::WireChunk> = Vec::new();
    for (wanted, got) in missing.iter().zip(pulled) {
        // None: the primary already swept this chunk — the sweep entry
        // follows in the log, so skipping is convergent.
        let Some(chunk) = got else { continue };
        if chunk.reference != *wanted {
            return Err(Error::protocol(
                "replicating chunks",
                format!("primary answered {:?} for {:?}", chunk.reference, wanted),
            ));
        }
        crate::store::verify_chunk(&chunk.reference, &chunk.data)?;
        owned.push(chunk);
    }
    let staged: Vec<StagedChunk<'_>> = owned
        .iter()
        .map(|c| StagedChunk {
            reference: c.reference,
            data: &c.data,
        })
        .collect();
    let count = staged.len() as u64;
    if !staged.is_empty() {
        ns.store.put_batch(&staged, false)?;
    }
    Ok(streamed + count)
}

/// Applies one oplog op to the local namespace (idempotent).
fn apply_op(ns: &super::server::Namespace, op: &OplogOp) -> Result<()> {
    match op {
        OplogOp::MetaPut { name, bytes } => ns.meta_put(name, bytes),
        OplogOp::MetaDelete { name } => ns.meta_delete(name),
        OplogOp::Sweep { reachable } => {
            let set: std::collections::BTreeSet<_> = reachable.iter().copied().collect();
            ns.store.sweep(&set).map(|_| ())
        }
    }
}

/// The secondary's background loop: connect, tail, reconnect with
/// backoff on failure, exit when the daemon shuts down or is promoted.
pub(crate) fn run_tailer(shared: std::sync::Arc<Shared>, cfg: ReplicateConfig) {
    let mut client: Option<ReplClient> = None;
    let mut backoff = Duration::from_millis(50);
    const BACKOFF_CAP: Duration = Duration::from_secs(2);
    while !shared.is_shutdown() && shared.role() == ROLE_SECONDARY {
        let conn = match client.as_mut() {
            Some(c) => c,
            None => match ReplClient::connect(&cfg.primary_addr, cfg.auth_token.as_deref()) {
                Ok(c) => {
                    backoff = Duration::from_millis(50);
                    client.insert(c)
                }
                Err(_) => {
                    interruptible_sleep(&shared, backoff);
                    backoff = (backoff * 2).min(BACKOFF_CAP);
                    continue;
                }
            },
        };
        match sync_once(&shared, conn, None) {
            Ok(_) => interruptible_sleep(&shared, cfg.poll_interval),
            Err(_) => {
                // Primary unreachable or mid-restart: drop the link and
                // retry from scratch; everything is resumable by offset.
                client = None;
                interruptible_sleep(&shared, backoff);
                backoff = (backoff * 2).min(BACKOFF_CAP);
            }
        }
    }
}

/// Sleeps in small slices so shutdown and promotion interrupt promptly.
fn interruptible_sleep(shared: &Shared, total: Duration) {
    let slice = Duration::from_millis(20);
    let mut left = total;
    while left > Duration::ZERO && !shared.is_shutdown() && shared.role() == ROLE_SECONDARY {
        let step = left.min(slice);
        std::thread::sleep(step);
        left = left.saturating_sub(step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Sha256;

    fn scratch(tag: &str) -> std::path::PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qcheck-oplog-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn sample_ops() -> Vec<OplogOp> {
        vec![
            OplogOp::MetaPut {
                name: "manifests/ck-1.qmf".into(),
                bytes: vec![1, 2, 3, 4],
            },
            OplogOp::MetaPut {
                name: "LATEST".into(),
                bytes: b"ck-1\n".to_vec(),
            },
            OplogOp::MetaDelete {
                name: "manifests/ck-0.qmf".into(),
            },
            OplogOp::Sweep {
                reachable: vec![Sha256::digest(b"live")],
            },
        ]
    }

    #[test]
    fn oplog_appends_scans_and_reads_back() {
        let dir = scratch("round-trip");
        let log = Oplog::open(&dir).unwrap();
        assert!(log.is_empty());
        for (i, op) in sample_ops().iter().enumerate() {
            assert_eq!(log.append(op).unwrap(), i as u64);
        }
        assert_eq!(log.len(), 4);
        let back = log.read_from(0, 100).unwrap();
        assert_eq!(back.len(), 4);
        for (i, rec) in back.iter().enumerate() {
            assert_eq!(rec.offset, i as u64);
            assert_eq!(rec.op, sample_ops()[i]);
        }
        // Windowed reads.
        let tail = log.read_from(2, 1).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].offset, 2);
        assert!(log.read_from(99, 10).unwrap().is_empty());

        // Reopen re-scans the same entries.
        drop(log);
        let log = Oplog::open(&dir).unwrap();
        assert_eq!(log.len(), 4);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = scratch("torn");
        let log = Oplog::open(&dir).unwrap();
        for op in sample_ops() {
            log.append(&op).unwrap();
        }
        drop(log);
        // Tear the last record: chop a few bytes off the file.
        let path = dir.join(OPLOG_FILE);
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let log = Oplog::open(&dir).unwrap();
        assert_eq!(log.len(), 3, "torn tail must be dropped");
        // And appending after truncation produces a clean record 3.
        let off = log
            .append(&OplogOp::MetaDelete { name: "x".into() })
            .unwrap();
        assert_eq!(off, 3);
        drop(log);
        let log = Oplog::open(&dir).unwrap();
        assert_eq!(log.len(), 4);
        assert_eq!(
            log.read_from(3, 1).unwrap()[0].op,
            OplogOp::MetaDelete { name: "x".into() }
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn replicated_append_rejects_offset_gaps() {
        let dir = scratch("gaps");
        let log = Oplog::open(&dir).unwrap();
        let rec = OplogRecord {
            offset: 5,
            op: OplogOp::MetaDelete { name: "y".into() },
        };
        let err = log.append_record(&rec).unwrap_err();
        assert!(matches!(err, Error::Protocol { .. }), "{err}");
        assert!(log.is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }
}
