//! `RemoteStore`: the [`ObjectStore`] client for a `qckptd` daemon.
//!
//! One handle owns one (lazily established, reused) TCP connection.
//! Transport failures — a dropped daemon connection, a mid-request
//! reset — are retried with a bounded reconnect-and-replay loop: every
//! protocol operation is idempotent (content-addressed puts, atomic
//! metadata overwrites, convergent sweeps; see [`super::proto`]), so a
//! replay can duplicate *work* but never *state*. Server-reported errors
//! are never retried.
//!
//! Large `put_batch` calls are split into sub-frames and **pipelined**:
//! all request frames are written back-to-back before the first response
//! is read, so a save's chunk upload costs one effective round trip of
//! latency instead of one per sub-batch.

use std::collections::BTreeSet;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::chunk::ChunkRef;
use crate::error::{Error, Result};
use crate::hash::ContentHash;
use crate::store::{BatchPutReport, GcReport, ObjectStore, StagedChunk, StoreStats};

use super::proto::{read_frame, valid_namespace, write_frame, Request, Response, PROTO_VERSION};

/// Transport attempts per logical request: the original plus one
/// reconnect-and-replay. A daemon that fails twice in a row is down, and
/// the caller should see that, not a hang.
const MAX_ATTEMPTS: usize = 2;

/// A `put_batch` is split into pipelined sub-frames of at most this many
/// payload bytes (well under [`super::proto::MAX_FRAME_LEN`]).
const PUT_BATCH_FRAME_BYTES: usize = 4 << 20;

/// Environment variable overriding the per-operation socket timeout
/// (seconds). The default balances "a wedged daemon must surface as an
/// error, not a silent training stall" against server-side operations
/// that legitimately take a while (a sweep rewriting large packs).
pub const TIMEOUT_ENV: &str = "QCHECK_REMOTE_TIMEOUT_SECS";

/// Default connect timeout.
const CONNECT_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

/// Default read/write timeout per socket operation.
const DEFAULT_IO_TIMEOUT_SECS: u64 = 60;

fn io_timeout() -> std::time::Duration {
    let secs = std::env::var(TIMEOUT_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&s| s > 0)
        .unwrap_or(DEFAULT_IO_TIMEOUT_SECS);
    std::time::Duration::from_secs(secs)
}

/// One established connection.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// Client handle to one namespace of a `qckptd` daemon. Implements
/// [`ObjectStore`], so a [`crate::repo::CheckpointRepo`] built over it is
/// a drop-in replacement for a local repository — plus the shared
/// metadata mirror ([`ObjectStore::is_shared`]) that lets a *different*
/// working directory reconstruct the repository from the daemon alone.
pub struct RemoteStore {
    addr: String,
    namespace: String,
    conn: Mutex<Option<Conn>>,
    round_trips: AtomicU64,
}

impl std::fmt::Debug for RemoteStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteStore")
            .field("addr", &self.addr)
            .field("namespace", &self.namespace)
            .field("round_trips", &self.round_trips.load(Ordering::Relaxed))
            .finish()
    }
}

impl RemoteStore {
    /// Connects to the daemon at `addr` (`host:port`) and performs the
    /// versioned handshake for `namespace`.
    ///
    /// # Errors
    ///
    /// Fails when the address is unreachable, the namespace is invalid,
    /// or the server speaks a different protocol version.
    pub fn connect(addr: impl Into<String>, namespace: impl Into<String>) -> Result<RemoteStore> {
        let store = RemoteStore {
            addr: addr.into(),
            namespace: namespace.into(),
            conn: Mutex::new(None),
            round_trips: AtomicU64::new(0),
        };
        if !valid_namespace(&store.namespace) {
            return Err(Error::InvalidConfig(format!(
                "invalid remote namespace {:?} (1-64 chars of [A-Za-z0-9._-])",
                store.namespace
            )));
        }
        // Establish + handshake eagerly so misconfiguration fails at
        // open time, not at the first checkpoint.
        let mut guard = store.conn.lock().expect("conn lock poisoned");
        *guard = Some(store.dial()?);
        drop(guard);
        Ok(store)
    }

    /// The daemon address this handle talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The namespace this handle operates in.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// Protocol round trips performed so far (request/response pairs
    /// that crossed the wire, counting a pipelined `put_batch` burst as
    /// one per sub-frame). The benchmark's `protocol_round_trips`
    /// column.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Dials a fresh connection (bounded connect + per-op socket
    /// timeouts — a wedged or black-holed daemon must fail the save,
    /// not hang the training loop) and performs the handshake.
    fn dial(&self) -> Result<Conn> {
        use std::net::ToSocketAddrs;
        let sock_addr = self
            .addr
            .to_socket_addrs()
            .map_err(|e| Error::io(format!("resolving {}", self.addr), e))?
            .next()
            .ok_or_else(|| {
                Error::InvalidConfig(format!("{:?} resolves to no address", self.addr))
            })?;
        let stream = TcpStream::connect_timeout(&sock_addr, CONNECT_TIMEOUT)
            .map_err(|e| Error::io(format!("connecting to qckptd at {}", self.addr), e))?;
        let timeout = io_timeout();
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| Error::io("setting read timeout", e))?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| Error::io("setting write timeout", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| Error::io("setting TCP_NODELAY", e))?;
        let mut conn = Conn {
            reader: BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| Error::io("cloning stream", e))?,
            ),
            writer: BufWriter::new(stream),
        };
        let hello = Request::Hello {
            version: PROTO_VERSION,
            namespace: self.namespace.clone(),
        };
        write_frame(&mut conn.writer, &hello.encode())?;
        conn.writer
            .flush()
            .map_err(|e| Error::io("flushing handshake", e))?;
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        match Response::decode(&read_frame(&mut conn.reader)?)?.into_result("handshake")? {
            Response::HelloOk { version } if version == PROTO_VERSION => Ok(conn),
            Response::HelloOk { version } => Err(Error::protocol(
                "handshake",
                format!("server answered version {version}, expected {PROTO_VERSION}"),
            )),
            other => Err(unexpected("handshake", &other)),
        }
    }

    /// Sends `requests` pipelined on one connection and returns their
    /// responses, retrying the *whole* burst on a fresh connection after
    /// a transport failure (safe: idempotent ops — see module docs).
    fn exchange(&self, context: &str, requests: &[Request]) -> Result<Vec<Response>> {
        let bodies: Vec<Vec<u8>> = requests.iter().map(Request::encode).collect();
        self.exchange_bodies(context, &bodies)
    }

    /// [`RemoteStore::exchange`] over pre-encoded frame bodies — the
    /// save path encodes its `PutBatch` frames straight from borrowed
    /// chunk slices and hands them here.
    fn exchange_bodies(&self, context: &str, bodies: &[Vec<u8>]) -> Result<Vec<Response>> {
        let mut guard = self.conn.lock().expect("conn lock poisoned");
        let mut last_err: Option<Error> = None;
        for _attempt in 0..MAX_ATTEMPTS {
            let mut conn = match guard.take() {
                Some(conn) => conn,
                None => match self.dial() {
                    Ok(conn) => conn,
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                },
            };
            match Self::exchange_on(&mut conn, bodies) {
                Ok(responses) => {
                    self.round_trips
                        .fetch_add(bodies.len() as u64, Ordering::Relaxed);
                    *guard = Some(conn);
                    // Server-reported errors surface here, after the
                    // transport succeeded — they are NOT retried.
                    return responses
                        .into_iter()
                        .map(|r| r.into_result(context))
                        .collect();
                }
                Err(e) => {
                    // Transport or framing failure: drop the connection
                    // and retry once from scratch.
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| Error::protocol(context.to_string(), "no attempts")))
    }

    /// Writes every request frame, flushes once, then reads every
    /// response — the pipelining primitive.
    fn exchange_on(conn: &mut Conn, bodies: &[Vec<u8>]) -> Result<Vec<Response>> {
        for body in bodies {
            write_frame(&mut conn.writer, body)?;
        }
        conn.writer
            .flush()
            .map_err(|e| Error::io("flushing request", e))?;
        let mut responses = Vec::with_capacity(bodies.len());
        for _ in bodies {
            responses.push(Response::decode(&read_frame(&mut conn.reader)?)?);
        }
        Ok(responses)
    }

    /// Single-request convenience wrapper.
    fn request(&self, context: &str, request: Request) -> Result<Response> {
        let mut responses = self.exchange(context, std::slice::from_ref(&request))?;
        Ok(responses.remove(0))
    }

    /// Asks the daemon for its status line.
    ///
    /// # Errors
    ///
    /// Fails on transport or protocol errors.
    pub fn status(&self) -> Result<(u32, u64, u64)> {
        match self.request("querying status", Request::Status)? {
            Response::Status {
                version,
                namespaces,
                connections,
            } => Ok((version, namespaces, connections)),
            other => Err(unexpected("querying status", &other)),
        }
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Fails on transport or protocol errors.
    pub fn shutdown_daemon(&self) -> Result<()> {
        match self.request("requesting shutdown", Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(unexpected("requesting shutdown", &other)),
        }
    }

    /// Round-trip liveness probe.
    ///
    /// # Errors
    ///
    /// Fails when the daemon is unreachable.
    pub fn ping(&self) -> Result<()> {
        match self.request("pinging", Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pinging", &other)),
        }
    }
}

fn unexpected(context: &str, resp: &Response) -> Error {
    Error::protocol(context.to_string(), format!("unexpected response {resp:?}"))
}

impl ObjectStore for RemoteStore {
    fn put_batch(&self, chunks: &[StagedChunk<'_>], fsync: bool) -> Result<BatchPutReport> {
        // Split into pipelined sub-frames by payload volume, encoding
        // each frame body straight from the borrowed chunk slices (no
        // owned copy of the whole snapshot). Chunk boundaries never
        // split, and order is preserved, so the server observes the
        // same first-occurrence dedup semantics as the local backends
        // (frames on one connection apply in order).
        let mut bodies = Vec::new();
        let mut start = 0usize;
        let mut frame_bytes = 0usize;
        for (i, chunk) in chunks.iter().enumerate() {
            if i > start && frame_bytes + chunk.data.len() > PUT_BATCH_FRAME_BYTES {
                bodies.push(super::proto::encode_put_batch(fsync, &chunks[start..i]));
                start = i;
                frame_bytes = 0;
            }
            frame_bytes += chunk.data.len();
        }
        bodies.push(super::proto::encode_put_batch(fsync, &chunks[start..]));

        let responses = self.exchange_bodies("storing chunk batch", &bodies)?;
        let mut report = BatchPutReport::default();
        for resp in responses {
            match resp {
                Response::PutBatch(part) => {
                    report.fresh.extend(part.fresh);
                    report.renames += part.renames;
                    report.fsyncs += part.fsyncs;
                }
                other => return Err(unexpected("storing chunk batch", &other)),
            }
        }
        if report.fresh.len() != chunks.len() {
            return Err(Error::protocol(
                "storing chunk batch",
                format!(
                    "server acknowledged {} chunks, sent {}",
                    report.fresh.len(),
                    chunks.len()
                ),
            ));
        }
        Ok(report)
    }

    fn get(&self, reference: &ChunkRef) -> Result<Vec<u8>> {
        match self.request(
            "fetching chunk",
            Request::Get {
                reference: *reference,
            },
        )? {
            Response::Chunk(data) => {
                // End-to-end verification: never trust the wire (or the
                // server) over the content address.
                crate::store::verify_chunk(reference, &data)?;
                Ok(data)
            }
            other => Err(unexpected("fetching chunk", &other)),
        }
    }

    fn contains(&self, hash: &ContentHash) -> bool {
        matches!(
            self.request(
                "probing existence",
                Request::Contains {
                    hashes: vec![*hash],
                },
            ),
            Ok(Response::Contains(bools)) if bools == [true]
        )
    }

    fn contains_all(&self, hashes: &[ContentHash]) -> bool {
        if hashes.is_empty() {
            return true;
        }
        matches!(
            self.request(
                "probing existence",
                Request::Contains {
                    hashes: hashes.to_vec(),
                },
            ),
            Ok(Response::Contains(bools)) if bools.len() == hashes.len() && bools.iter().all(|b| *b)
        )
    }

    fn list(&self) -> Result<Vec<ContentHash>> {
        match self.request("listing objects", Request::List)? {
            Response::Hashes(hashes) => Ok(hashes),
            other => Err(unexpected("listing objects", &other)),
        }
    }

    fn sweep(&self, reachable: &BTreeSet<ContentHash>) -> Result<GcReport> {
        match self.request(
            "sweeping",
            Request::Sweep {
                dry_run: false,
                reachable: reachable.iter().copied().collect(),
            },
        )? {
            Response::Gc(report) => Ok(report),
            other => Err(unexpected("sweeping", &other)),
        }
    }

    fn plan_sweep(&self, reachable: &BTreeSet<ContentHash>) -> Result<GcReport> {
        match self.request(
            "planning sweep",
            Request::Sweep {
                dry_run: true,
                reachable: reachable.iter().copied().collect(),
            },
        )? {
            Response::Gc(report) => Ok(report),
            other => Err(unexpected("planning sweep", &other)),
        }
    }

    fn stats(&self) -> Result<StoreStats> {
        match self.request("querying stats", Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("querying stats", &other)),
        }
    }

    fn clear_staging(&self) -> Result<usize> {
        match self.request("clearing staging", Request::ClearStaging)? {
            Response::Cleared(n) => Ok(n as usize),
            other => Err(unexpected("clearing staging", &other)),
        }
    }

    fn is_shared(&self) -> bool {
        true
    }

    fn meta_put(&self, name: &str, bytes: &[u8]) -> Result<()> {
        match self.request(
            "publishing metadata",
            Request::MetaPut {
                name: name.to_string(),
                bytes: bytes.to_vec(),
            },
        )? {
            Response::Ok => Ok(()),
            other => Err(unexpected("publishing metadata", &other)),
        }
    }

    fn meta_get(&self, name: &str) -> Result<Option<Vec<u8>>> {
        match self.request(
            "fetching metadata",
            Request::MetaGet {
                name: name.to_string(),
            },
        )? {
            Response::Meta(opt) => Ok(opt),
            other => Err(unexpected("fetching metadata", &other)),
        }
    }

    fn meta_get_many(&self, names: &[String]) -> Result<Vec<Option<Vec<u8>>>> {
        if names.is_empty() {
            return Ok(Vec::new());
        }
        // Pipelined: all MetaGet frames go out before the first reply
        // is read, so syncing N manifests costs one effective round
        // trip of latency, not N.
        let requests: Vec<Request> = names
            .iter()
            .map(|n| Request::MetaGet { name: n.clone() })
            .collect();
        self.exchange("fetching metadata batch", &requests)?
            .into_iter()
            .map(|resp| match resp {
                Response::Meta(opt) => Ok(opt),
                other => Err(unexpected("fetching metadata batch", &other)),
            })
            .collect()
    }

    fn meta_list(&self, prefix: &str) -> Result<Vec<String>> {
        match self.request(
            "listing metadata",
            Request::MetaList {
                prefix: prefix.to_string(),
            },
        )? {
            Response::Names(names) => Ok(names),
            other => Err(unexpected("listing metadata", &other)),
        }
    }

    fn meta_delete(&self, name: &str) -> Result<()> {
        match self.request(
            "deleting metadata",
            Request::MetaDelete {
                name: name.to_string(),
            },
        )? {
            Response::Ok => Ok(()),
            other => Err(unexpected("deleting metadata", &other)),
        }
    }

    #[cfg(any(test, feature = "testing"))]
    fn corrupt_object(&self, hash: &ContentHash, offset: usize) -> Result<()> {
        match self.request(
            "corrupting object",
            Request::Corrupt {
                hash: *hash,
                offset: offset as u64,
            },
        )? {
            Response::Ok => Ok(()),
            other => Err(unexpected("corrupting object", &other)),
        }
    }
}
